"""Shared benchmark fixtures.

Heavy artifacts (the case-study PIM/PSM) are built once per session;
every benchmark that reproduces a paper artifact also *asserts* the
paper's qualitative claim, so ``pytest benchmarks/ --benchmark-only``
doubles as the experiment regression suite.
"""

from __future__ import annotations

import pytest

from repro.apps.infusion import build_infusion_pim
from repro.apps.schemes import case_study_scheme
from repro.core.transform import transform


@pytest.fixture(scope="session")
def pim():
    return build_infusion_pim()


@pytest.fixture(scope="session")
def scheme():
    return case_study_scheme()


@pytest.fixture(scope="session")
def psm(pim, scheme):
    return transform(pim, scheme)
