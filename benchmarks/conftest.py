"""Shared benchmark fixtures.

Heavy artifacts (the case-study PIM/PSM) are built once per session;
every benchmark that reproduces a paper artifact also *asserts* the
paper's qualitative claim, so ``pytest benchmarks/ --benchmark-only``
doubles as the experiment regression suite.

The suite needs the pytest-benchmark plugin (installed with the
``bench`` extra, see ``setup.py``).  When the plugin is missing the
``bench_*`` modules are skipped at collection time instead of erroring
on the unknown ``benchmark`` fixture; ``benchmarks/run_benchmarks.py``
offers a plugin-free runner that records the perf trajectory instead.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# `pytest benchmarks/` roots itself here (scoped pytest.ini), so the
# repo-root conftest's src-layout path hook never loads — replicate it
# for a clean checkout.
_REPO_ROOT = Path(__file__).resolve().parent.parent
for _entry in (str(_REPO_ROOT), str(_REPO_ROOT / "src")):
    if _entry not in sys.path:
        sys.path.insert(0, _entry)

try:
    import pytest_benchmark  # noqa: F401 - presence check only
except ImportError:  # pragma: no cover - exercised without the extra
    collect_ignore_glob = ["bench_*.py"]


_BENCH_DIR = Path(__file__).resolve().parent


def pytest_collection_modifyitems(config, items):
    """Also skip when the plugin exists but was disabled (-p no:...).

    The hook is session-wide (pytest hands every collected item to
    every conftest), so scope the skip to items under benchmarks/ —
    the unit suite must keep running without the [bench] extra.
    """
    if config.pluginmanager.hasplugin("benchmark"):
        return
    skip = pytest.mark.skip(
        reason="pytest-benchmark plugin not active; install the "
               "[bench] extra or use benchmarks/run_benchmarks.py")
    for item in items:
        if _BENCH_DIR in Path(str(item.fspath)).parents:
            item.add_marker(skip)

from repro.apps.infusion import build_infusion_pim
from repro.apps.schemes import case_study_scheme
from repro.core.transform import transform


@pytest.fixture(scope="session")
def pim():
    return build_infusion_pim()


@pytest.fixture(scope="session")
def scheme():
    return case_study_scheme()


@pytest.fixture(scope="session")
def psm(pim, scheme):
    return transform(pim, scheme)
