"""Experiment F3 — Fig. 3: the mc/io-boundary interaction timeline.

Re-creates the figure's scenario (three pulse inputs, five periodic
invocations) under both read policies and asserts its crux: at the 4th
invocation read-one consumes only i2 while read-all consumes i2 and
i3 together; i1 is read at invocation 3 either way.
"""

from repro.analysis.timeline import fig3_scenario
from repro.core.scheme import ReadPolicy


def bench_fig3_read_all(benchmark):
    result = benchmark(lambda: fig3_scenario(ReadPolicy.READ_ALL))
    assert result.reads_per_invocation[3] == ["i1"]
    assert result.reads_per_invocation[4] == ["i2", "i3"]
    assert result.reads_per_invocation[5] == []
    print()
    print("Fig. 3 under read-all:")
    print(result.rendered())


def bench_fig3_read_one(benchmark):
    result = benchmark(lambda: fig3_scenario(ReadPolicy.READ_ONE))
    assert result.reads_per_invocation[3] == ["i1"]
    assert result.reads_per_invocation[4] == ["i2"]
    assert result.reads_per_invocation[5] == ["i3"]
    print()
    print("Fig. 3 under read-one:")
    for invocation, reads in sorted(
            result.reads_per_invocation.items()):
        print(f"  invocation {invocation}: "
              f"{', '.join(reads) if reads else 'Null'}")
