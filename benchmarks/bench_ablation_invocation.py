"""Experiment A3 — ablation: invocation mechanism and period.

Section III's discussion: "using an aperiodic invocation for the
Code(PIM) can reduce the delay by invoking Code(PIM) immediately
whenever the processed input is inserted to the buffer."  We show the
relaxed bound Δ' and the exact M-C supremum both shrink with the
period, and that aperiodic invocation beats every finite period on
the immediate-response controller.
"""

from repro.core.delays import derive_bounds, symbolic_mc_delay
from repro.core.scheme import InvocationKind
from repro.core.transform import transform

from tests.conftest import build_tiny_pim, build_tiny_scheme

PERIODS = (3, 5, 9)


def bench_a3_period_sweep(benchmark):
    pim = build_tiny_pim(prime=0, deadline=4)

    def sweep():
        rows = {}
        for period in PERIODS:
            scheme = build_tiny_scheme(period=period)
            psm = transform(pim, scheme)
            bounds = derive_bounds(pim, scheme, "m_Req", "c_Ack")
            sup = symbolic_mc_delay(psm, "m_Req", "c_Ack")
            assert sup.bounded and sup.sup <= bounds.relaxed
            rows[period] = (bounds.relaxed, sup.sup)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for period, (relaxed, sup) in rows.items():
        print(f"period {period}ms: Δ'={relaxed}ms, "
              f"model-checked sup={sup}ms")
    relaxed_values = [rows[p][0] for p in PERIODS]
    sup_values = [rows[p][1] for p in PERIODS]
    assert relaxed_values == sorted(relaxed_values)
    assert sup_values == sorted(sup_values)


def bench_a3_aperiodic_beats_periodic(benchmark):
    pim = build_tiny_pim(prime=0, deadline=4)

    def measure():
        aperiodic = build_tiny_scheme(
            invocation_kind=InvocationKind.APERIODIC)
        psm = transform(pim, aperiodic)
        sup_aperiodic = symbolic_mc_delay(psm, "m_Req", "c_Ack")
        periodic = build_tiny_scheme(period=9)
        sup_periodic = symbolic_mc_delay(
            transform(pim, periodic), "m_Req", "c_Ack")
        return sup_aperiodic, sup_periodic

    sup_aperiodic, sup_periodic = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    assert sup_aperiodic.bounded and sup_periodic.bounded
    print(f"\naperiodic sup={sup_aperiodic.sup}ms vs "
          f"period-9 sup={sup_periodic.sup}ms")
    assert sup_aperiodic.sup < sup_periodic.sup
