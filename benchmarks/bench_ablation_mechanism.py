"""Experiment A1 — ablation: polling vs interrupt input mechanisms.

Section III's discussion: "using a polling mechanism for detecting the
environmental input can prolong the reading up to the next polling
time."  We quantify it on the tiny model: the exact (model-checked)
Input-Delay supremum under an interrupt stays at
``delay_max + period`` while under polling it grows linearly with the
polling interval.
"""

from repro.core.delays import (
    analytic_input_delay_bound,
    symbolic_input_delay,
)
from repro.core.scheme import ReadMechanism
from repro.core.transform import transform

from tests.conftest import build_tiny_pim, build_tiny_scheme

POLL_INTERVALS = (4, 8, 12)


def _sup_for(scheme):
    psm = transform(build_tiny_pim(think=40), scheme)
    result = symbolic_input_delay(psm, "m_Req")
    assert result.bounded
    return result.sup


def bench_a1_interrupt_baseline(benchmark):
    scheme = build_tiny_scheme()
    sup = benchmark.pedantic(lambda: _sup_for(scheme),
                             rounds=1, iterations=1)
    # delay_max 2 + worst buffer wait (one period, 5).
    assert sup <= analytic_input_delay_bound(scheme, "m_Req") == 7
    print(f"\ninterrupt: sup Input-Delay = {sup}ms (bound 7ms)")


def bench_a1_polling_sweep(benchmark):
    def sweep():
        sups = {}
        for interval in POLL_INTERVALS:
            scheme = build_tiny_scheme(
                input_mechanism=ReadMechanism.POLLING,
                polling_interval=interval)
            sups[interval] = _sup_for(scheme)
        return sups

    sups = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for interval, sup in sups.items():
        bound = interval + 2 + 5
        print(f"polling every {interval:2d}ms: sup Input-Delay = "
              f"{sup}ms (bound {bound}ms)")
        assert sup <= bound
    # The ablation claim: the delay grows with the polling interval.
    values = [sups[i] for i in POLL_INTERVALS]
    assert values == sorted(values)
    assert values[-1] > values[0]
    # And polling is never better than the interrupt.
    interrupt_sup = _sup_for(build_tiny_scheme())
    assert min(values) >= interrupt_sup
