"""Portfolio verification benchmarks — the many-tenant scheduler.

The plugin-free record for the full 16-scheme case-study sweep lives
in ``run_benchmarks.py`` (``bench_portfolio_16_schemes``); this file
keeps the statistically careful pytest-benchmark harness on a grid
small enough to iterate on, and asserts the qualitative claims: every
scheme verifies, rows commit in job order, and the portfolio path is
bit-identical to per-scheme sequential verification.
"""

from repro.apps.schemes import scheme_grid
from repro.core.framework import TimingVerificationFramework
from repro.mc.portfolio import PortfolioVerifier, portfolio_jobs

from tests.conftest import build_tiny_pim, build_tiny_scheme

CHANNELS = dict(input_channel="m_Req", output_channel="c_Ack")
DEADLINE = 10


def _grid():
    return scheme_grid(build_tiny_scheme,
                       buffer_size=(1, 2, 3), period=(4, 5, 6))


def bench_portfolio_tiny_grid_sequential(benchmark):
    pim = build_tiny_pim()
    schemes = _grid()
    outcome = benchmark.pedantic(
        lambda: PortfolioVerifier(jobs=1).run(portfolio_jobs(
            pim, schemes, deadline_ms=DEADLINE, **CHANNELS)),
        rounds=1, iterations=1)
    assert len(outcome) == 9 and outcome.all_ok
    assert [row.name for row in outcome] == [s.name for s in schemes]


def bench_portfolio_tiny_grid_concurrent(benchmark):
    pim = build_tiny_pim()
    schemes = _grid()
    outcome = benchmark.pedantic(
        lambda: PortfolioVerifier(jobs=4).run(portfolio_jobs(
            pim, schemes, deadline_ms=DEADLINE, **CHANNELS)),
        rounds=1, iterations=1)
    assert len(outcome) == 9 and outcome.all_ok
    print(f"\n{outcome.summary()}")


def bench_portfolio_matches_sequential_verify(benchmark):
    pim = build_tiny_pim()
    schemes = _grid()[:4]
    framework = TimingVerificationFramework()

    def differential():
        outcome = PortfolioVerifier(jobs=4).run(portfolio_jobs(
            pim, schemes, deadline_ms=DEADLINE, **CHANNELS))
        for scheme, row in zip(schemes, outcome):
            report = framework.verify(pim, scheme,
                                      deadline_ms=DEADLINE, **CHANNELS)
            assert row.report.bounds == report.bounds
            assert row.states == report.psm_relaxed_result.visited
            assert row.transitions == \
                report.psm_relaxed_result.transitions
        return outcome

    outcome = benchmark.pedantic(differential, rounds=1, iterations=1)
    assert outcome.all_ok
