"""Experiment F2 — Fig. 2: implementation ↔ PSM block mapping.

Benchmarks the PIM→PSM transformation itself (the paper's central
algorithm) and regenerates the block diagram with the Definition-3
component correspondence.
"""

from repro.analysis.blocks import render_blocks
from repro.core.transform import transform


def bench_fig2_transformation(benchmark, pim, scheme):
    psm = benchmark(lambda: transform(pim, scheme))
    roles = dict(psm.components())
    # One interface automaton per boundary channel + MIO/EXEIO/ENVMC.
    assert set(roles) == {
        "MIO", "ENVMC", "EXEIO",
        "IFMI[m_BolusReq]", "IFMI[m_EmptySyringe]",
        "IFOC[c_Alarm]", "IFOC[c_StartInfusion]",
        "IFOC[c_StopInfusion]",
    }


def bench_fig2_render(benchmark, psm):
    text = benchmark(lambda: render_blocks(psm))
    assert "Input-Device" in text and "Output-Device" in text
    assert "PSM = MIO" in text
    print()
    print(text)
