"""Experiment E1 (extension) — the GPCA requirement catalog.

The paper's platform is the GPCA reference pump (footnote 4); its
safety requirements document lists many bounded-response properties
beyond REQ1.  This extension verifies a three-requirement catalog
(bolus start, pause stop, occlusion alarm) on the richer GPCA model,
then replays the framework per requirement: each PIM-level deadline
breaks on an IS1-style platform while its Lemma-2 relaxed bound
verifies — Theorem 1 per requirement.
"""

from repro.apps.gpca import (
    GPCA_INPUTS,
    GPCA_OUTPUTS,
    GPCA_REQUIREMENTS,
    build_gpca_pim,
    verify_gpca_requirements,
)
from repro.core.delays import derive_bounds
from repro.core.scheme import example_is1
from repro.core.transform import transform
from repro.mc import check_bounded_response


def bench_gpca_requirement_catalog(benchmark):
    pim = build_gpca_pim()
    results = benchmark.pedantic(
        lambda: verify_gpca_requirements(pim),
        rounds=1, iterations=1)
    print()
    for req in GPCA_REQUIREMENTS:
        result = results[req.name]
        print(f"  {req.name:<24} {result.summary()}")
        assert result.holds


def bench_gpca_platform_bounds(benchmark):
    pim = build_gpca_pim()
    scheme = example_is1(GPCA_INPUTS, GPCA_OUTPUTS, buffer_size=3,
                         period=50)

    def per_requirement():
        rows = {}
        psm = transform(pim, scheme)
        for req in GPCA_REQUIREMENTS:
            bounds = derive_bounds(pim, scheme, req.trigger,
                                   req.response)
            original = check_bounded_response(
                psm.network, req.trigger, req.response,
                req.deadline_ms, trace=False)
            relaxed = check_bounded_response(
                psm.network, req.trigger, req.response, bounds.relaxed,
                trace=False)
            rows[req.name] = (req.deadline_ms, bounds.relaxed,
                              original.holds, relaxed.holds)
        return rows

    rows = benchmark.pedantic(per_requirement, rounds=1, iterations=1)
    print()
    print(f"  {'requirement':<24} {'Δ':>6} {'Δ_relaxed':>10} "
          f"{'PSM⊨P(Δ)':>9} {'PSM⊨P(Δ_r)':>11}")
    for name, (deadline, relaxed, orig, rel) in rows.items():
        print(f"  {name:<24} {deadline:>4}ms {relaxed:>8}ms "
              f"{str(orig):>9} {str(rel):>11}")
        # The platform breaks each PIM deadline; the relaxed bound
        # verifies — Theorem 1, once per requirement.
        assert not orig
        assert rel
