"""Experiment F6 — Fig. 6: the code execution model (EXEIO).

Asserts the execution-stage structure (Waiting → Read → Compute →
Write → Waiting), the periodic tick, and the paper's *complementary
transitions*: one io-delivery edge per input channel guarded by the
triple conjunction (buffer non-empty ∧ MIO accepting ∧ original data
guard).
"""

from repro.ta.render import automaton_to_dot


def bench_fig6_structure(benchmark, psm):
    exeio = benchmark(lambda: psm.network.automaton(psm.exeio))
    names = exeio.location_names()
    assert names[0] == "Waiting"
    assert "Read" in names and "Compute" in names
    assert any(name.startswith("Write_") for name in names)
    tick = exeio.edges_from("Waiting")[0]
    assert "t == 100" in str(tick.guard)  # the IS1 period


def bench_fig6_complementary_transitions(benchmark, psm):
    exeio = psm.network.automaton(psm.exeio)

    def analyze():
        read_edges = exeio.edges_from("Read")
        delivered = {}
        for edge in read_edges:
            if edge.sync is not None and edge.sync.is_emit:
                delivered[edge.sync.channel] = str(edge.guard)
        return delivered

    delivered = benchmark(analyze)
    assert set(delivered) == {"i_BolusReq", "i_EmptySyringe"}
    for channel, guard in delivered.items():
        assert f"cnt_{channel} > 0" in guard     # (3) buffered
        assert "mio_loc ==" in guard             # (1) MIO accepting
    print()
    print(automaton_to_dot(psm.network.automaton(psm.exeio)))
