"""Plugin-free benchmark runner: track the perf trajectory across PRs.

Runs the model-checking workloads that dominate every experiment
(zone-graph construction for the tiny and case-study PSMs, the REQ1
violation search) on every available zone backend and writes
``BENCH_<YYYYMMDD>.json`` with states, transitions and wall time per
benchmark.  Committing the file gives each PR a comparable perf
record; the pytest-benchmark suite (``pytest benchmarks/``) remains
the statistically careful harness.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py [--quick]
        [--out DIR] [--backends numpy reference]

``--quick`` skips the case-study workloads (~seconds instead of
~minutes on the pure-Python backend).
"""

from __future__ import annotations

import argparse
import datetime as _dt
import json
import platform
import sys
import time
from pathlib import Path

from repro.apps.infusion import REQ1_DEADLINE_MS, build_infusion_pim
from repro.apps.schemes import case_study_scheme
from repro.core.transform import transform
from repro.mc.observers import check_bounded_response
from repro.mc.queries import zone_graph_stats
from repro.zones.backend import available_backends

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from tests.conftest import build_tiny_pim, build_tiny_scheme  # noqa: E402


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def _record(results, name, backend, states, transitions, seconds,
            **extra):
    entry = {
        "benchmark": name,
        "backend": backend,
        "states": states,
        "transitions": transitions,
        "seconds": round(seconds, 4),
    }
    entry.update(extra)
    results.append(entry)
    print(f"  {name:32s} [{backend:9s}] states={states:>7} "
          f"transitions={transitions:>7} {seconds:8.3f}s")


def run_suite(backends, quick: bool) -> list[dict]:
    results: list[dict] = []
    tiny = transform(build_tiny_pim(), build_tiny_scheme()).network
    case_study = None if quick else transform(
        build_infusion_pim(), case_study_scheme()).network

    for backend in backends:
        stats, seconds = _timed(
            lambda: zone_graph_stats(tiny, zone_backend=backend))
        _record(results, "s1_zone_graph_tiny", backend,
                stats.states, stats.transitions, seconds)

        if case_study is not None:
            stats, seconds = _timed(lambda: zone_graph_stats(
                case_study, zone_backend=backend))
            _record(results, "bench_s1_case_study_psm", backend,
                    stats.states, stats.transitions, seconds)

            stats, seconds = _timed(lambda: zone_graph_stats(
                case_study, zone_backend=backend,
                lazy_subsumption=True))
            _record(results, "s1_case_study_psm_lazy", backend,
                    stats.states, stats.transitions, seconds,
                    lazy_subsumption=True)

            verdict, seconds = _timed(lambda: check_bounded_response(
                case_study, "m_BolusReq", "c_StartInfusion",
                REQ1_DEADLINE_MS, zone_backend=backend))
            assert not verdict.holds, \
                "REQ1 must be violated on the case-study PSM"
            _record(results, "req1_psm_violation", backend,
                    verdict.visited, verdict.transitions, seconds,
                    holds=verdict.holds)
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="skip the case-study workloads")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="directory for BENCH_<date>.json")
    parser.add_argument("--backends", nargs="+", default=None,
                        help="zone backends to run "
                             "(default: all available)")
    args = parser.parse_args(argv)

    backends = args.backends or list(available_backends())
    print(f"zone backends: {', '.join(backends)}")
    results = run_suite(backends, quick=args.quick)

    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:
        numpy_version = None
    payload = {
        "schema": 1,
        "generated": _dt.date.today().isoformat(),
        "python": platform.python_version(),
        "numpy": numpy_version,
        "quick": args.quick,
        "results": results,
    }
    out_path = (args.out
                / f"BENCH_{_dt.date.today().strftime('%Y%m%d')}.json")
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
