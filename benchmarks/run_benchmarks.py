"""Plugin-free benchmark runner: track the perf trajectory across PRs.

Runs the model-checking workloads that dominate every experiment
(zone-graph construction for the tiny and case-study PSMs, the REQ1
violation search, the batched paper-query suite, the 16-scheme
portfolio sweep) on every available zone backend — sequentially and through the sharded parallel explorer
— and writes ``BENCH_<YYYYMMDD>.json`` with states, transitions and
wall time per benchmark.  Committing the file gives each PR a
comparable perf record; the pytest-benchmark suite
(``pytest benchmarks/``) remains the statistically careful harness.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py [--quick]
        [--out DIR] [--backends numpy reference native auto]
        [--jobs 1 4] [--executors thread process] [--summary FILE|-]

    # Per-op kernel microbenchmarks (the data behind the `auto`
    # backend's cost table in repro/zones/costmodel.py)
    PYTHONPATH=src python benchmarks/run_benchmarks.py --kernels

    # CI regression gate: re-run the headline workloads and fail on a
    # >25% slowdown of bench_s1_case_study_psm vs a committed record
    PYTHONPATH=src python benchmarks/run_benchmarks.py \
        --check BENCH_20260727.json

    # CI scaling job (multi-core runner): tiny-PSM portfolio scaling
    # over the jobs x executor grid, markdown table to the step summary
    PYTHONPATH=src python benchmarks/run_benchmarks.py --quick \
        --jobs 1 2 4 --executors thread process \
        --summary "$GITHUB_STEP_SUMMARY"

``--quick`` skips the case-study workloads (~seconds instead of
~minutes on the pure-Python backend).  Every run measures the
``bench_portfolio_tiny`` job-level scaling grid (backend × executor ×
jobs) — the workload CI's ``scaling`` job charts on its 4-vCPU
runners; ``--summary`` renders it as a GitHub-flavored markdown
table.  ``--executors thread process`` also adds a process-executor
row for the full 16-scheme sweep (non-quick runs).
"""

from __future__ import annotations

import argparse
import datetime as _dt
import json
import platform
import sys
import time
from pathlib import Path

# Self-sufficient from a clean checkout (same bootstrap as the repo
# root conftest.py): the src/ layout for `repro`, the repo root for
# the `tests.conftest` tiny-model helpers.
_ROOT = Path(__file__).resolve().parent.parent
for _entry in (str(_ROOT), str(_ROOT / "src")):
    if _entry not in sys.path:
        sys.path.insert(0, _entry)

from repro.apps.infusion import REQ1_DEADLINE_MS, build_infusion_pim  # noqa: E402
from repro.apps.schemes import (
    CASE_STUDY_FAULT_GRID_4,
    GridSpec,
    case_study_grid_16,
    case_study_scheme,
)
from repro.core.transform import transform
from repro.mc.observers import check_bounded_response
from repro.mc.portfolio import PortfolioVerifier, portfolio_jobs
from repro.mc.parallel import make_explorer
from repro.mc.queries import (
    BoundedResponseQuery,
    ResponseSupQuery,
    StatsQuery,
    check_many,
    zone_graph_stats,
)
from repro.zones.backend import available_backends, set_backend
from repro.zones.intern import ZoneInternTable

from tests.conftest import build_tiny_pim, build_tiny_scheme  # noqa: E402

#: The regression gate guards this benchmark (the paper's S1 workload).
HEADLINE = "bench_s1_case_study_psm"
#: Allowed slowdown in ``--check`` mode before the gate fails.
REGRESSION_TOLERANCE = 1.25
#: The job-level scaling workload: a 36-scheme sweep of the tiny PSM —
#: cheap enough for every CI push, heavy enough (~1-2 s sequential on
#: the reference backend) that worker processes beat one core on a
#: multi-core runner.
TINY_SCALING_GRID = GridSpec.of(
    "tests.conftest:build_tiny_scheme",
    buffer_size=(1, 2, 3, 4), period=(4, 5, 6), wcet=(0, 1, 2))
#: Row name of the scaling grid (the CI ``scaling`` job charts these).
SCALING_BENCH = "bench_portfolio_tiny"
#: The fault-axis sweep (loss budget k × replica count r) on the tiny
#: model — the CI scaling job's fault-grid cell.
TINY_FAULT_GRID = GridSpec.of(
    "tests.conftest:build_tiny_scheme", fault_k=(0, 1), fault_r=(1, 2))
#: Row name of the fault sweep cells (tiny in ``--quick``, the
#: case-study :data:`CASE_STUDY_FAULT_GRID_4` otherwise).
FAULT_BENCH = "bench_portfolio_fault_grid"
#: Batched conformance monitoring on the case-study PSM: 256
#: concurrent sessions replaying simulated traces (16 distinct seeds,
#: so lane dedup has real work per round), throughput counted over
#: *all* fed events.  The committed record must clear this floor.
MONITOR_BENCH = "bench_monitor_throughput"
MONITOR_SESSIONS = 256
MONITOR_SEEDS = 16
MONITOR_FLOOR_EVENTS_PER_S = 100_000


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def _timed_best(fn, repeats: int = 3):
    """Best-of-N wall time for the small (sub-second to few-second)
    cells: single shots on a shared box jitter by ±30%, far beyond
    the 5% ``auto`` margin the committed record must support.  The
    long 16-scheme sweeps stay single-shot — they have no ``auto``
    twin and self-average over minutes of work."""
    value, best = _timed(fn)
    for _ in range(repeats - 1):
        value, seconds = _timed(fn)
        best = min(best, seconds)
    return value, best


def _record(results, name, backend, states, transitions, seconds,
            **extra):
    entry = {
        "benchmark": name,
        "backend": backend,
        "states": states,
        "transitions": transitions,
        "seconds": round(seconds, 4),
    }
    entry.update(extra)
    results.append(entry)
    jobs = extra.get("jobs")
    tag = f"{backend}:j{jobs}" if jobs else backend
    executor = extra.get("executor")
    if executor:
        tag += f":{executor[:4]}"
    print(f"  {name:32s} [{tag:16s}] states={states:>7} "
          f"transitions={transitions:>7} {seconds:8.3f}s")


def _case_study_network():
    return transform(build_infusion_pim(), case_study_scheme()).network


def _stats_with_memory(network, *, backend, jobs=None,
                       abstraction=None):
    """zone_graph_stats plus memory proxies.

    Returns ``(stats, extra)`` where ``extra`` carries the passed-store
    row count (stored zones surviving subsumption — the checker's
    dominant memory consumer) and, for sharded runs, the interned-zone
    count of a run-private table.
    """
    from repro.mc.queries import ZoneGraphStats

    table = ZoneInternTable() if jobs is not None else None
    explorer = make_explorer(
        network, jobs=jobs, zone_backend=backend,
        abstraction=abstraction,
        **({"intern": table} if table is not None else {}))
    keys = set()
    result = explorer.explore(visit=lambda s: keys.add(s.key()))
    stats = ZoneGraphStats(states=result.visited,
                           transitions=result.transitions,
                           discrete_configurations=len(keys))
    extra = {"passed_rows": sum(len(bucket) for bucket
                                in explorer.passed_store.values())}
    if table is not None:
        extra["interned_zones"] = len(table)
    if abstraction:
        extra["abstraction"] = abstraction
    return stats, extra


def _paper_query_batch():
    """The paper's query set: S1 stats, REQ1 violation, M-C sup."""
    return [
        StatsQuery(),
        BoundedResponseQuery("m_BolusReq", "c_StartInfusion",
                             REQ1_DEADLINE_MS),
        ResponseSupQuery("m_BolusReq", "c_StartInfusion"),
    ]


def run_suite(backends, quick: bool, jobs_list, executors) -> list[dict]:
    """Measure every requested backend over the committed workloads.

    The small cells interleave the backends (benchmark-outer order):
    the ``auto`` margin gate compares an ``auto`` row against the
    best fixed-backend row of the *same* cell, so the pair must be
    measured seconds apart — a shared box drifts by tens of percent
    over a backend-outer run (the 16-scheme sweeps alone take ~20
    minutes), which would read as ``auto`` overhead. The long sweeps
    have no ``auto`` twin and stay grouped per backend at the end.
    """
    results: list[dict] = []
    tiny = transform(build_tiny_pim(), build_tiny_scheme()).network
    case_study = None if quick else _case_study_network()
    # Backends with a sharded/batched pipeline (and the 16-scheme
    # sweep rows); `auto` rides only the cells every backend runs.
    batched = [b for b in backends if b in ("numpy", "native")]

    for backend in backends:
        stats, seconds = _timed_best(
            lambda: zone_graph_stats(tiny, zone_backend=backend))
        _record(results, "s1_zone_graph_tiny", backend,
                stats.states, stats.transitions, seconds)

    _bench_portfolio_tiny(results, backends, executors, jobs_list)

    if quick:
        # The CI scaling job's fault-grid cell: cheap on the tiny
        # model, so every backend carries the k=0 identity gate.
        for backend in backends:
            _bench_portfolio_fault_grid(
                results, backend, jobs_list[0] if jobs_list else None,
                quick=True)

    if case_study is not None:
        seq_stats = {}
        for backend in backends:
            (stats, memory), seconds = _timed_best(
                lambda: _stats_with_memory(case_study,
                                           backend=backend))
            seq_stats[backend] = stats
            _record(results, HEADLINE, backend,
                    stats.states, stats.transitions, seconds,
                    **memory)

        for jobs in jobs_list:
            for backend in batched:
                (sharded, memory), seconds = _timed_best(
                    lambda: _stats_with_memory(
                        case_study, backend=backend, jobs=jobs))
                assert (sharded.states, sharded.transitions) == \
                    (seq_stats[backend].states,
                     seq_stats[backend].transitions), \
                    "sharded exploration diverged from sequential"
                _record(results, HEADLINE, backend,
                        sharded.states, sharded.transitions, seconds,
                        jobs=jobs, **memory)

        # The Extra+_LU variant of the headline: same reachable
        # behavior, coarser abstraction, smaller zone graph.
        lu_jobs = jobs_list[0] if jobs_list else 1
        for backend in batched:
            (lu_stats, memory), seconds = _timed_best(
                lambda: _stats_with_memory(
                    case_study, backend=backend, jobs=lu_jobs,
                    abstraction="extra_lu"))
            assert lu_stats.states < seq_stats[backend].states, \
                "Extra_LU must shrink the case-study zone graph"
            _record(results, "bench_s1_case_study_psm_lu", backend,
                    lu_stats.states, lu_stats.transitions, seconds,
                    jobs=lu_jobs, **memory)

        for backend in backends:
            lazy, seconds = _timed_best(lambda: zone_graph_stats(
                case_study, zone_backend=backend,
                lazy_subsumption=True))
            _record(results, "s1_case_study_psm_lazy", backend,
                    lazy.states, lazy.transitions, seconds,
                    lazy_subsumption=True)

        for backend in backends:
            verdict, seconds = _timed_best(lambda: check_bounded_response(
                case_study, "m_BolusReq", "c_StartInfusion",
                REQ1_DEADLINE_MS, zone_backend=backend))
            assert not verdict.holds, \
                "REQ1 must be violated on the case-study PSM"
            _record(results, "req1_psm_violation", backend,
                    verdict.visited, verdict.transitions, seconds,
                    holds=verdict.holds)

        batch_jobs = jobs_list[-1] if jobs_list else None
        for backend in batched:
            outcome, seconds = _timed_best(lambda: check_many(
                case_study, _paper_query_batch(),
                zone_backend=backend, jobs=batch_jobs))
            assert outcome.explorations == 1, \
                "the paper query batch must share one exploration"
            assert not outcome.results[1].holds
            _record(results, "paper_queries_check_many", backend,
                    outcome.visited, outcome.transitions, seconds,
                    jobs=batch_jobs, explorations=outcome.explorations,
                    mc_sup=outcome.results[2].sup)

        for backend in batched:
            _bench_portfolio(results, backend, batch_jobs)
            _bench_portfolio(results, backend, batch_jobs,
                             abstraction="extra_lu")
            # The cross-scheme-reuse variants: memo folds the buffer
            # axis, dominance pruning the poll/period axes.
            _bench_portfolio(results, backend, batch_jobs, reuse=True)
            _bench_portfolio(results, backend, batch_jobs,
                             abstraction="extra_lu", reuse=True)

    if case_study is not None:
        _bench_monitor_throughput(results, batched)

    if case_study is not None:
        # The fault-axis sweep's wall time is dominated by its k=1
        # duplex corner (minutes of retry interleavings even under
        # Extra+_LU), so a single backend carries the cell.
        fault_backend = "native" if "native" in batched else \
            (batched[0] if batched else backends[0])
        _bench_portfolio_fault_grid(results, fault_backend,
                                    batch_jobs, quick=False)

    if case_study is not None and "process" in executors:
        # The true-multi-core variant of the 16-scheme sweep: whole
        # jobs partitioned across worker processes — the mode that
        # lets the GIL-bound reference backend scale.
        for backend in backends:
            _bench_portfolio(results, backend,
                             jobs_list[-1] if jobs_list else None,
                             executor="process")
    return results


def _monitor_workload():
    """(psm, streams): the monitor throughput benchmark's inputs.

    Simulated case-study traces from :data:`MONITOR_SEEDS` distinct
    seeds, tiled to :data:`MONITOR_SESSIONS` concurrent sessions —
    duplicate lanes are realistic at traffic scale (phase-anchored
    periodic systems quantize traces into few protocol states) while
    the distinct seeds keep real per-round work in the waves.
    """
    from repro.analysis.table1 import simulate_trials

    pim, scheme = build_infusion_pim(), case_study_scheme()
    traces = []
    for seed in range(MONITOR_SEEDS):
        events: list = []
        simulate_trials(pim, scheme, trials=2, seed=seed,
                        trace_listener=events.append)
        traces.append(events)
    streams = [traces[i % MONITOR_SEEDS]
               for i in range(MONITOR_SESSIONS)]
    return transform(pim, scheme), streams


def _bench_monitor_throughput(results, backends):
    """Batched conformance monitoring throughput (events/second).

    One precompiled :class:`MonitorModel` drives
    :data:`MONITOR_SESSIONS` concurrent sessions through
    :class:`BatchMonitor`; the recorded figure is all fed events over
    the best-of-3 wall time of a *warm* feed (a first feed populates
    the on-demand move index — that cost is the model's, paid once
    per server lifetime, not per trace).  Every session must come
    back conforming, and the committed record must clear
    :data:`MONITOR_FLOOR_EVENTS_PER_S`.
    """
    from repro.monitor import BatchMonitor, MonitorModel

    psm, streams = _monitor_workload()
    total_events = sum(map(len, streams))
    for backend in backends:
        model = MonitorModel(psm, zone_backend=backend,
                             max_states=5_000)
        model.precompile()
        warm = BatchMonitor(model, MONITOR_SESSIONS)
        warm.feed(streams)
        assert warm.conforming, \
            "simulated case-study traces must conform"

        def run():
            runner = BatchMonitor(model, MONITOR_SESSIONS)
            runner.feed(streams)
            return runner

        runner, seconds = _timed_best(run)
        observed = sum(s.events_observed for s in runner.sessions)
        events_per_s = round(total_events / seconds)
        assert runner.conforming
        _record(results, MONITOR_BENCH, backend,
                len(model.intern), observed, seconds,
                sessions=MONITOR_SESSIONS, events=total_events,
                events_per_s=events_per_s)
        if events_per_s < MONITOR_FLOOR_EVENTS_PER_S:
            print(f"  WARNING: {backend} monitor throughput "
                  f"{events_per_s:,} ev/s is under the "
                  f"{MONITOR_FLOOR_EVENTS_PER_S:,} ev/s floor")


def _bench_portfolio_tiny(results, backends, executors, jobs_list):
    """Job-level scaling grid on the tiny PSM (the CI scaling job).

    Sweeps ``TINY_SCALING_GRID`` once per (executor, jobs, backend)
    cell — backends innermost, so each cell's `auto` row is measured
    back-to-back with its fixed twins — and asserts every cell's rows
    are bit-identical to the first: the scaling table is only
    meaningful if every configuration does the same verified work.
    """
    pim = build_tiny_pim()
    schemes = TINY_SCALING_GRID.build()
    baseline = None
    for executor in executors:
        for jobs in jobs_list:
            for backend in backends:
                # A fresh verifier per repeat keeps every timed run
                # cold (no verdict-memo or pool state carries over).
                def sweep(jobs=jobs, executor=executor):
                    verifier = PortfolioVerifier(jobs=jobs,
                                                 executor=executor,
                                                 max_states=500_000)
                    return verifier.run(portfolio_jobs(
                        pim, schemes,
                        input_channel="m_Req",
                        output_channel="c_Ack",
                        deadline_ms=10, measure_suprema=True))

                set_backend(backend)
                try:
                    outcome, seconds = _timed_best(sweep)
                finally:
                    set_backend(None)
                assert outcome.all_ok, \
                    [row.error for row in outcome if not row.ok]
                key = [(row.states, row.transitions,
                        row.relaxed_deadline_ms) for row in outcome]
                if baseline is None:
                    baseline = key
                assert key == baseline, \
                    f"{executor}:j{jobs}:{backend} diverged from " \
                    f"the first cell"
                _record(results, SCALING_BENCH, backend,
                        sum(row.states for row in outcome),
                        sum(row.transitions for row in outcome),
                        seconds, jobs=jobs, executor=executor,
                        schemes=len(outcome),
                        grid=TINY_SCALING_GRID.describe())


def _bench_portfolio(results, backend, jobs, abstraction=None,
                     executor=None, reuse=False):
    """The 16-scheme design-space sweep over the shared worker pool."""
    pim = build_infusion_pim()
    schemes = case_study_grid_16()
    # A run-private intern table doubles as the memory proxy: its
    # final size is the peak count of distinct zones the whole sweep
    # interned (the scoped-per-run default would hide it; process
    # workers never intern, so the proxy reads 0 there).
    table = ZoneInternTable()
    verifier = PortfolioVerifier(jobs=jobs, executor=executor,
                                 max_states=2_000_000,
                                 intern=table, abstraction=abstraction,
                                 reuse=reuse, prune_dominated=reuse)
    # The portfolio pipeline has no zone_backend parameter (it runs
    # whole framework pipelines); pin the ambient backend so the
    # recorded label matches what was actually measured even under a
    # REPRO_ZONE_BACKEND override.
    set_backend(backend)
    try:
        outcome, seconds = _timed(lambda: verifier.run(portfolio_jobs(
            pim, schemes,
            input_channel="m_BolusReq",
            output_channel="c_StartInfusion",
            deadline_ms=REQ1_DEADLINE_MS)))
    finally:
        set_backend(None)
    assert outcome.all_ok, [row.error for row in outcome if not row.ok]
    canonical = [row for row in outcome
                 if "buffer_size=5,period=100,bolus_poll=380,"
                    "read_policy=read-all" in row.name]
    assert canonical and canonical[0].relaxed_deadline_ms == 1430, \
        "the canonical scheme must reproduce Table I's 1430 ms bound"
    # Memoized rows keep their donor's tallies; dominance-derived
    # rows ran no sweep at all and tally as 0.
    states = sum(row.states or 0 for row in outcome)
    transitions = sum(row.transitions or 0 for row in outcome)
    name = "bench_portfolio_16_schemes"
    extra = {}
    if abstraction:
        name += "_lu"
        extra["abstraction"] = abstraction
    if executor and executor != "thread":
        # Rows cross-reference by name (like the _lu suffix): the
        # process-executor sweep must not shadow the thread row's
        # (benchmark, backend, jobs) key.
        name += "_proc"
        extra["executor"] = executor
    if reuse:
        name += "_reuse"
        extra.update(explored=outcome.explored,
                     memo_hits=outcome.memoized,
                     pruned=outcome.pruned)
    _record(results, name, backend,
            states, transitions, seconds, jobs=jobs,
            schemes=len(outcome),
            guaranteed=len(outcome.guaranteed),
            interned_zones=len(table),
            per_scheme=[row.row() for row in outcome], **extra)


def _bench_portfolio_fault_grid(results, backend, jobs, quick):
    """The (k × r) fault-axis sweep plus the k=0 bit-identity gate.

    The grid's ``k=0, r=1`` corner is the exact fault-free scheme:
    its row must be bit-identical (modulo wall time and the axis
    label in its name) to a plain run of the same scheme through the
    same verifier — the standing regression gate for "fault machinery
    present but disabled".
    """
    if quick:
        pim = build_tiny_pim()
        grid = TINY_FAULT_GRID
        plain = build_tiny_scheme()
        channels = dict(input_channel="m_Req", output_channel="c_Ack")
        deadline, max_states, abstraction = 10, 500_000, None
    else:
        pim = build_infusion_pim()
        grid = CASE_STUDY_FAULT_GRID_4
        plain = case_study_scheme()
        channels = dict(input_channel="m_BolusReq",
                        output_channel="c_StartInfusion")
        # Extra+_LU keeps the k=1 duplex corner (every loss budget
        # unit multiplies the retry interleavings) tractable.
        deadline, max_states, abstraction = \
            REQ1_DEADLINE_MS, 4_000_000, "extra_lu"

    def sweep(schemes):
        verifier = PortfolioVerifier(jobs=jobs, max_states=max_states,
                                     abstraction=abstraction)
        return verifier.run(portfolio_jobs(
            pim, schemes, deadline_ms=deadline, **channels))

    set_backend(backend)
    try:
        outcome, seconds = _timed(lambda: sweep(grid.build()))
        baseline = sweep([plain])
    finally:
        set_backend(None)
    assert outcome.all_ok, [row.error for row in outcome if not row.ok]

    def identity(row):
        fields = row.row()
        for volatile in ("name", "seconds"):
            fields.pop(volatile, None)
        return fields

    corner = outcome[0]
    assert "fault_k=0,fault_r=1" in corner.name
    assert identity(corner) == identity(baseline[0]), \
        "the k=0 fault-grid corner diverged from the fault-free run"
    extra = {"abstraction": abstraction} if abstraction else {}
    _record(results, FAULT_BENCH, backend,
            sum(row.states or 0 for row in outcome),
            sum(row.transitions or 0 for row in outcome),
            seconds, jobs=jobs, schemes=len(outcome),
            guaranteed=len(outcome.guaranteed),
            grid=grid.describe(),
            per_scheme=[row.row() for row in outcome], **extra)


# ----------------------------------------------------------------------
# auto-vs-best margin (the `auto` acceptance gate's data)
# ----------------------------------------------------------------------
#: Allowed slowdown of an `auto` row vs the best fixed-backend row of
#: the same benchmark cell in a committed record.
AUTO_MARGIN = 1.05

#: Cells whose best fixed-backend time sits below this are in the
#: timer-noise regime (a 5% margin on a 5ms wall is sub-millisecond)
#: and are excluded from the margin gate.
AUTO_MARGIN_FLOOR_S = 0.05


def auto_margins(results: list[dict]) -> list[tuple[str, float, str,
                                                    float, float]]:
    """Per-cell ``(label, auto_s, best_backend, best_s, ratio)``.

    A cell is a ``(benchmark, jobs, executor)`` combination; `auto`
    rows without a fixed-backend twin (or vice versa) are skipped, as
    are cells faster than ``AUTO_MARGIN_FLOOR_S``.
    """
    def cell(entry):
        return (entry["benchmark"], entry.get("jobs"),
                entry.get("executor"))

    fixed: dict[tuple, tuple[float, str]] = {}
    for entry in results:
        if entry["backend"] == "auto":
            continue
        key = cell(entry)
        best = fixed.get(key)
        if best is None or entry["seconds"] < best[0]:
            fixed[key] = (entry["seconds"], entry["backend"])
    margins = []
    for entry in results:
        if entry["backend"] != "auto":
            continue
        best = fixed.get(cell(entry))
        if best is None or best[0] < AUTO_MARGIN_FLOOR_S:
            continue
        label = entry["benchmark"]
        if entry.get("jobs"):
            label += f":j{entry['jobs']}"
        if entry.get("executor"):
            label += f":{entry['executor'][:4]}"
        margins.append((label, entry["seconds"], best[1], best[0],
                        entry["seconds"] / best[0]))
    return margins


def print_auto_margins(results: list[dict]) -> None:
    margins = auto_margins(results)
    if not margins:
        return
    print("auto vs best fixed backend per cell "
          f"(target <= {AUTO_MARGIN:.2f}x):")
    for label, auto_s, best_backend, best_s, ratio in margins:
        flag = "" if ratio <= AUTO_MARGIN else "  <-- over margin"
        print(f"  {label:40s} auto {auto_s:7.3f}s vs "
              f"{best_backend:9s} {best_s:7.3f}s  x{ratio:4.2f}{flag}")


# ----------------------------------------------------------------------
# Kernel microbenchmarks (--kernels)
# ----------------------------------------------------------------------
#: Clock counts and batch widths the cost table is sampled at (must
#: match repro/zones/costmodel.py's grids).
KERNEL_CLOCKS = (3, 6, 12)
KERNEL_WIDTHS = (1, 4, 16, 64)


def _median_ns(fn, *, number: int, repeat: int = 5) -> float:
    """Median ns/call of ``fn`` over ``repeat`` loops of ``number``."""
    samples = []
    for _ in range(repeat):
        start = time.perf_counter()
        for _ in range(number):
            fn()
        samples.append((time.perf_counter() - start) / number)
    samples.sort()
    return samples[len(samples) // 2] * 1e9


def _kernel_zone(dbm_cls, n):
    """A closed, non-empty, mildly constrained zone of dimension n."""
    from repro.zones.bounds import encode

    zone = dbm_cls.zero(n).up()
    for clock in range(1, n):
        zone.constrain(clock, 0, encode(20 + clock, True))
    zone.close()
    assert not zone.is_empty()
    return zone


def _scalar_kernel_row(dbm_cls, n) -> dict:
    """ns/call for each scalar kernel at dimension ``n``.

    ``close``/``up``/``reset``/``extrapolate`` are measured on a
    stable matrix (re-running them is idempotent, so each call does
    the full kernel's work without per-call setup); ``constrain`` is
    measured as copy+tighten minus the measured copy cost so the
    re-closure path is included.
    """
    from repro.zones.bounds import encode

    zone = _kernel_zone(dbm_cls, n)
    other = _kernel_zone(dbm_cls, n)
    maxes = [0] + [10] * (n - 1)
    tight = encode(5, True)
    number = max(200, 20000 // (n * n))
    row = {
        "close": _median_ns(zone.close, number=number),
        "up": _median_ns(zone.up, number=number),
        "reset": _median_ns(lambda: zone.reset(1, 3), number=number),
        "includes": _median_ns(lambda: zone.includes(other),
                               number=number),
        "extrapolate": _median_ns(lambda: zone.extrapolate_max(maxes),
                                  number=number),
    }
    copy_ns = _median_ns(zone.copy, number=number)
    tighten_ns = _median_ns(lambda: zone.copy().constrain(1, 0, tight),
                            number=number)
    row["constrain"] = max(tighten_ns - copy_ns, 1.0)
    return row


def _batched_kernel_row(expander_cls, dbm_cls, n, width) -> float:
    """ns/element for one full successor plan at batch ``width``."""
    import numpy
    from types import SimpleNamespace

    from repro.zones.bounds import encode

    zone = _kernel_zone(dbm_cls, n)
    src = numpy.stack([zone._m] * width)
    plan = SimpleNamespace(
        guard_ops=((1, 0, encode(15, True)),) if n > 1 else (),
        error=None,
        zone_ops=(("reset", 1, 0),) if n > 1 else (),
        free_clocks=(),
        invariant_ops=((0, 1, encode(0, True)),) if n > 1 else (),
        delay=True,
        lu=None)
    expander = expander_cls(n, tuple([0] + [10] * (n - 1)))
    number = max(20, 2000 // width)
    per_call = _median_ns(lambda: expander.run_plan(src, plan),
                          number=number)
    return per_call / width


def run_kernels(out_dir: Path) -> int:
    """Measure the per-op cost table behind `auto` backend selection.

    Writes ``benchmarks/KERNEL_COSTS_<date>.json``; the digested
    medians are committed into ``repro/zones/costmodel.py`` (only the
    *ordering* of backends per region matters there, so re-running on
    different hardware rarely changes the selection).
    """
    from repro.zones.backend import resolve_backend

    backends = available_backends()
    scalar: dict = {}
    for backend in backends:
        dbm_cls = resolve_backend(backend).dbm
        scalar[backend] = {}
        for n in KERNEL_CLOCKS:
            row = _scalar_kernel_row(dbm_cls, n)
            scalar[backend][n] = {op: round(ns, 1)
                                  for op, ns in row.items()}
            ops = "  ".join(f"{op}={ns:9.0f}"
                            for op, ns in scalar[backend][n].items())
            print(f"  scalar  [{backend:9s}] n={n:<3d} {ops}")

    batched: dict = {}
    for backend in backends:
        if backend == "reference":
            continue  # no batched pipeline
        if backend == "native":
            from repro.zones.dbm_native import NativeBatchExpander
            expander_cls = NativeBatchExpander
        else:
            from repro.zones.batch import BatchExpander
            expander_cls = BatchExpander
        dbm_cls = resolve_backend(backend).dbm
        batched[backend] = {}
        for n in KERNEL_CLOCKS:
            batched[backend][n] = {}
            for width in KERNEL_WIDTHS:
                ns = _batched_kernel_row(expander_cls, dbm_cls, n,
                                         width)
                batched[backend][n][width] = round(ns, 1)
            cells = "  ".join(f"B{w}={ns:9.0f}"
                              for w, ns in batched[backend][n].items())
            print(f"  batched [{backend:9s}] n={n:<3d} {cells}")

    payload = {
        "schema": 1,
        "generated": _dt.date.today().isoformat(),
        "python": platform.python_version(),
        "unit": "ns per call (scalar) / ns per element (batched)",
        "scalar": scalar,
        "batched": batched,
    }
    out_dir.mkdir(parents=True, exist_ok=True)
    out_path = (out_dir / "benchmarks" if (out_dir / "benchmarks").
                is_dir() else out_dir) / (
        f"KERNEL_COSTS_{_dt.date.today().isoformat()}.json")
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0


# ----------------------------------------------------------------------
# Scaling summary (--summary)
# ----------------------------------------------------------------------
def render_scaling_summary(results: list[dict]) -> str:
    """The jobs × executor scaling grid as GitHub-flavored markdown.

    The CI ``scaling`` job appends this to ``$GITHUB_STEP_SUMMARY``;
    speedups are relative to each backend's ``thread``/``jobs=1``
    cell (falling back to the backend's first row).
    """
    rows = [entry for entry in results
            if entry["benchmark"] == SCALING_BENCH]
    if not rows:
        return ""
    lines = ["## Portfolio scaling — tiny PSM "
             f"({rows[0].get('schemes', '?')} schemes)", ""]
    for backend in dict.fromkeys(entry["backend"] for entry in rows):
        cells = [entry for entry in rows
                 if entry["backend"] == backend]
        base = next((entry for entry in cells
                     if entry.get("executor") == "thread"
                     and entry.get("jobs") == 1), cells[0])
        base_label = (f"{base.get('executor', 'thread')} / "
                      f"jobs={base.get('jobs', 1)}")
        lines += [f"### backend: `{backend}`", "",
                  f"| executor | jobs | wall (s) | speedup vs "
                  f"{base_label} |",
                  "|---|---:|---:|---:|"]
        for entry in cells:
            speedup = base["seconds"] / entry["seconds"] \
                if entry["seconds"] else float("inf")
            lines.append(
                f"| {entry.get('executor', 'thread')} "
                f"| {entry.get('jobs', 1)} "
                f"| {entry['seconds']:.3f} | {speedup:.2f}× |")
        lines.append("")
    reuse_rows = [entry for entry in results
                  if "memo_hits" in entry]
    if reuse_rows:
        lines += ["## Cross-scheme reuse — 16-scheme sweep", "",
                  "| benchmark | backend | explored | memoized | "
                  "pruned | wall (s) |",
                  "|---|---|---:|---:|---:|---:|"]
        for entry in reuse_rows:
            lines.append(
                f"| {entry['benchmark']} | {entry['backend']} "
                f"| {entry['explored']} | {entry['memo_hits']} "
                f"| {entry['pruned']} | {entry['seconds']:.3f} |")
        lines.append("")
    return "\n".join(lines)


def write_summary(results: list[dict], target: str) -> None:
    text = render_scaling_summary(results)
    if not text:
        return
    if target == "-":
        print(text)
        return
    with open(target, "a", encoding="utf-8") as handle:
        handle.write(text + "\n")


# ----------------------------------------------------------------------
# Regression gate (--check)
# ----------------------------------------------------------------------
def _check_memo_parity() -> list[str]:
    """Blocking quick-gate: memo-on rows == memo-off rows, bit for
    bit, on a tiny 3-buffers × 2-periods grid — with at least one
    actual memo hit so the gate cannot pass vacuously."""
    pim = build_tiny_pim()
    schemes = GridSpec.of("tests.conftest:build_tiny_scheme",
                          buffer_size=(1, 2, 3),
                          period=(4, 5)).build()

    def sweep(reuse):
        verifier = PortfolioVerifier(max_states=500_000, reuse=reuse)
        return verifier.run(portfolio_jobs(
            pim, schemes, input_channel="m_Req",
            output_channel="c_Ack", deadline_ms=10,
            measure_suprema=True))

    off, on = sweep(False), sweep(True)
    failures = []
    for a, b in zip(off, on):
        key_a = (a.name, a.status, a.relaxed_deadline_ms,
                 a.constraints_hold, a.original_holds, a.relaxed_holds,
                 a.guarantee, a.states, a.transitions,
                 sorted((k, v.bounded, v.sup, v.attained)
                        for k, v in a.sups.items()))
        key_b = (b.name, b.status, b.relaxed_deadline_ms,
                 b.constraints_hold, b.original_holds, b.relaxed_holds,
                 b.guarantee, b.states, b.transitions,
                 sorted((k, v.bounded, v.sup, v.attained)
                        for k, v in b.sups.items()))
        if key_a != key_b:
            failures.append(
                f"memo parity: row {a.name!r} differs with reuse on "
                f"({key_a} != {key_b})")
    if on.memoized == 0:
        failures.append(
            "memo parity: the verdict memo never fired on the "
            "buffer-axis grid (expected >= 1 hit)")
    print(f"  memo parity                        "
          f"{'ok' if not failures else 'FAIL'} "
          f"({on.explored} explored, {on.memoized} memoized)")
    return failures



def run_check(baseline_path: Path, repeats: int = 3,
              quick: bool = False) -> int:
    """Re-run the headline workloads; fail on a >25% regression.

    Each workload runs ``repeats`` times and the best wall time
    counts — single runs on shared CI boxes jitter by far more than
    the 25% tolerance the gate is meant to catch.

    ``quick`` swaps the case-study workload for the tiny PSM: wall
    times are then jitter-dominated (milliseconds), so the gate only
    enforces bit-identical states/transitions and reports timing
    informationally — the mode CI runs on every push, with the full
    gate reserved for perf-minded runs.
    """
    baseline = json.loads(baseline_path.read_text())
    target_name = "s1_zone_graph_tiny" if quick else HEADLINE
    targets = [entry for entry in baseline["results"]
               if entry["benchmark"] == target_name
               and entry["backend"] in available_backends()
               and (quick or entry["backend"] in ("numpy", "native"))]
    if not targets:
        print(f"error: {baseline_path} has no "
              f"{target_name!r} rows to check against", file=sys.stderr)
        return 2

    network = (transform(build_tiny_pim(), build_tiny_scheme()).network
               if quick else _case_study_network())
    failures = []
    for entry in targets:
        jobs = entry.get("jobs")
        backend = entry["backend"]
        seconds = None
        for _ in range(repeats):
            stats, elapsed = _timed(lambda: zone_graph_stats(
                network, zone_backend=backend, jobs=jobs))
            seconds = elapsed if seconds is None \
                else min(seconds, elapsed)
        tag = f"{backend}:j{jobs}" if jobs else backend
        ratio = seconds / entry["seconds"]
        timed_gate = not quick
        status = "ok" if (ratio <= REGRESSION_TOLERANCE
                          or not timed_gate) else "REGRESSED"
        print(f"  {target_name:32s} [{tag:11s}] {seconds:7.3f}s vs "
              f"{entry['seconds']:7.3f}s  x{ratio:4.2f}  {status}")
        if (stats.states, stats.transitions) != \
                (entry["states"], entry["transitions"]):
            failures.append(
                f"{tag}: states/transitions "
                f"{stats.states}/{stats.transitions} != recorded "
                f"{entry['states']}/{entry['transitions']}")
        if timed_gate and ratio > REGRESSION_TOLERANCE:
            failures.append(
                f"{tag}: {seconds:.3f}s is {ratio:.2f}x the recorded "
                f"{entry['seconds']:.3f}s "
                f"(tolerance {REGRESSION_TOLERANCE}x)")
    if not quick:
        # Monitor throughput (advisory like the rest of this mode):
        # re-run the batched conformance workload against the
        # committed record — the floor is absolute, the slowdown
        # tolerance relative to the recorded figure.
        monitor_rows = [entry for entry in baseline["results"]
                        if entry["benchmark"] == MONITOR_BENCH
                        and entry["backend"] in available_backends()]
        if monitor_rows:
            from repro.monitor import BatchMonitor, MonitorModel

            psm, streams = _monitor_workload()
            total_events = sum(map(len, streams))
            for entry in monitor_rows:
                backend = entry["backend"]
                model = MonitorModel(psm, zone_backend=backend,
                                     max_states=5_000)
                model.precompile()
                BatchMonitor(model, MONITOR_SESSIONS).feed(streams)
                seconds = None
                for _ in range(repeats):
                    runner = BatchMonitor(model, MONITOR_SESSIONS)
                    _, elapsed = _timed(lambda: runner.feed(streams))
                    assert runner.conforming
                    seconds = elapsed if seconds is None \
                        else min(seconds, elapsed)
                events_per_s = total_events / seconds
                floor = max(MONITOR_FLOOR_EVENTS_PER_S,
                            entry["events_per_s"]
                            / REGRESSION_TOLERANCE)
                status = "ok" if events_per_s >= floor else "REGRESSED"
                print(f"  {MONITOR_BENCH:32s} [{backend:11s}] "
                      f"{events_per_s:>11,.0f} ev/s vs recorded "
                      f"{entry['events_per_s']:>11,} "
                      f"(floor {floor:,.0f})  {status}")
                if events_per_s < floor:
                    failures.append(
                        f"{backend}: monitor throughput "
                        f"{events_per_s:,.0f} ev/s under the floor "
                        f"{floor:,.0f} (recorded "
                        f"{entry['events_per_s']:,}, absolute floor "
                        f"{MONITOR_FLOOR_EVENTS_PER_S:,})")

    if quick:
        # Abstraction parity gate: Extra+_LU must agree with Extra_M
        # on verdicts and suprema while never growing the zone graph.
        from repro.mc.observers import max_response_delay

        # Both sides pinned explicitly: a REPRO_ABSTRACTION override
        # must not turn this into a vacuous LU-vs-LU comparison.
        verdict_m = check_bounded_response(
            network, "m_Req", "c_Ack", 10, abstraction="extra_m")
        verdict_lu = check_bounded_response(
            network, "m_Req", "c_Ack", 10, abstraction="extra_lu")
        sup_m = max_response_delay(network, "m_Req", "c_Ack",
                                   abstraction="extra_m")
        sup_lu = max_response_delay(network, "m_Req", "c_Ack",
                                    abstraction="extra_lu")
        stats_m = zone_graph_stats(network, abstraction="extra_m")
        stats_lu = zone_graph_stats(network, abstraction="extra_lu")
        if verdict_m.holds != verdict_lu.holds:
            failures.append(
                f"abstraction parity: P(10) verdict differs "
                f"(extra_m={verdict_m.holds}, "
                f"extra_lu={verdict_lu.holds})")
        if (sup_m.bounded, sup_m.sup, sup_m.attained) != \
                (sup_lu.bounded, sup_lu.sup, sup_lu.attained):
            failures.append(
                f"abstraction parity: M-C sup differs "
                f"(extra_m={sup_m}, extra_lu={sup_lu})")
        if stats_lu.states > stats_m.states:
            failures.append(
                f"abstraction parity: extra_lu grew the zone graph "
                f"({stats_lu.states} > {stats_m.states} states)")
        print(f"  abstraction parity                 P(10) "
              f"{'ok' if verdict_m.holds == verdict_lu.holds else 'FAIL'}"
              f", sup {sup_m} vs {sup_lu}, states "
              f"{stats_m.states} -> {stats_lu.states}")

        # Memo parity gate: the verdict memo must be semantically
        # invisible — a 6-scheme tiny grid (the buffer axis collapses
        # under the canonical hash) produces bit-identical rows with
        # reuse on and off, and the memo must actually fire.
        failures += _check_memo_parity()

    # `auto` margin gate, on the committed record itself (no re-run,
    # so it is deterministic): every `auto` row must sit within
    # AUTO_MARGIN of the best fixed-backend row of its cell.
    for label, auto_s, best_backend, best_s, ratio in \
            auto_margins(baseline["results"]):
        status = "ok" if ratio <= AUTO_MARGIN else "FAIL"
        print(f"  auto margin {label:28s} x{ratio:4.2f} vs "
              f"{best_backend}  {status}")
        if ratio > AUTO_MARGIN:
            failures.append(
                f"auto margin: {label} recorded {auto_s:.3f}s is "
                f"{ratio:.2f}x the best fixed backend "
                f"({best_backend} {best_s:.3f}s; "
                f"tolerance {AUTO_MARGIN}x)")
    if failures:
        print("\nperf regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("perf regression gate passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="skip the case-study workloads")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="directory for BENCH_<date>.json")
    parser.add_argument("--backends", nargs="+", default=None,
                        help="zone backends to run "
                             "(default: all available)")
    parser.add_argument("--jobs", nargs="+", type=int, default=[1, 4],
                        help="sharded-explorer worker counts to "
                             "benchmark on the numpy/native backends "
                             "(default: 1 4)")
    parser.add_argument("--executors", nargs="+",
                        choices=["thread", "process"],
                        default=["thread"],
                        help="portfolio job-level executors to sweep "
                             "(default: thread; add process for the "
                             "true multi-core reference-backend mode)")
    parser.add_argument("--summary", metavar="FILE",
                        help="append the jobs x executor scaling "
                             "table as markdown to FILE ('-' prints "
                             "it; CI passes $GITHUB_STEP_SUMMARY)")
    parser.add_argument("--check", type=Path, metavar="BENCH.json",
                        help="regression-gate mode: re-run the "
                             "headline workloads and fail on a >25%% "
                             "slowdown vs this record (with --quick: "
                             "tiny workload, bit-identity gate only)")
    parser.add_argument("--kernels", action="store_true",
                        help="run the per-op kernel microbenchmarks "
                             "(close/constrain/includes/extrapolate at "
                             f"{'/'.join(map(str, KERNEL_CLOCKS))} "
                             "clocks x batch widths "
                             f"{'/'.join(map(str, KERNEL_WIDTHS))}) "
                             "and write KERNEL_COSTS_<date>.json — "
                             "the data behind the auto cost table")
    args = parser.parse_args(argv)

    if args.check is not None:
        return run_check(args.check, quick=args.quick)
    if args.kernels:
        return run_kernels(args.out)

    # `auto` rides along as a pseudo-backend so every committed record
    # carries the data for its within-5%-of-best margin gate.
    backends = args.backends or [*available_backends(), "auto"]
    print(f"zone backends: {', '.join(backends)}")
    results = run_suite(backends, quick=args.quick, jobs_list=args.jobs,
                        executors=args.executors)
    print_auto_margins(results)

    try:
        import numpy
        numpy_version = numpy.__version__
    except ImportError:
        numpy_version = None
    payload = {
        "schema": 2,
        "generated": _dt.date.today().isoformat(),
        "python": platform.python_version(),
        "numpy": numpy_version,
        "quick": args.quick,
        "results": results,
    }
    # Quick runs get their own file: a fast iteration must never
    # clobber the committed full record for the same date.
    suffix = "-quick" if args.quick else ""
    args.out.mkdir(parents=True, exist_ok=True)
    out_path = (args.out
                / f"BENCH_{_dt.date.today().strftime('%Y%m%d')}"
                  f"{suffix}.json")
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    if args.summary:
        write_summary(results, args.summary)
    return 0


if __name__ == "__main__":
    sys.exit(main())
