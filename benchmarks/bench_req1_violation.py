"""Experiment R2 — the REQ1 violation results.

The paper's in-text numbers: ``PSM ⊭ P(500)`` (the platform's delays
break the requirement that held on the PIM), with 53 of 60 measured
scenarios violating the 500 ms deadline.  We assert the violation is
found by model checking (with a counterexample trace) and that the
simulated campaign shows a comparable violation majority.
"""

from repro.analysis.table1 import simulate_trials
from repro.apps.infusion import REQ1_DEADLINE_MS
from repro.mc import check_bounded_response
from repro.mc.traces import format_trace


def bench_req1_psm_violation(benchmark, psm):
    result = benchmark.pedantic(
        lambda: check_bounded_response(
            psm.network, "m_BolusReq", "c_StartInfusion",
            REQ1_DEADLINE_MS),
        rounds=1, iterations=1)
    assert not result.holds
    assert result.trace is not None
    print()
    print("Counterexample to P(500) on the PSM:")
    print(format_trace(result.trace, max_steps=25))


def bench_req1_measured_violations(benchmark, pim, scheme):
    measured = benchmark.pedantic(
        lambda: simulate_trials(pim, scheme, trials=60, seed=2015),
        rounds=1, iterations=1)
    violations = measured.req_violations(REQ1_DEADLINE_MS)
    total = len(measured.timings)
    print(f"\nREQ1 violations: {violations}/{total} "
          f"(paper: 53/60)")
    assert total == 60
    assert violations >= 45  # "the large majority", as in the paper


def bench_req1_satisfied_at_relaxed_bound(benchmark, pim, scheme):
    """A slow enough deadline (Δ'=1430) is satisfied in every trial."""
    measured = simulate_trials(pim, scheme, trials=60, seed=2015)
    violations = benchmark(lambda: measured.req_violations(1430))
    assert violations == 0
