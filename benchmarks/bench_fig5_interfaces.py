"""Experiment F5 — Fig. 5: the interface automata.

Constructs ``IFMI_BolusReq`` and ``IFOC_StartInfusion`` via the
transformation and asserts the figure's structure: an Idle/Processing
two-state shape with the processed input ready within
``[delay_min, delay_max]`` and the two buffer-insertion cases
(space available / full).
"""

from repro.ta.render import automaton_to_dot


def bench_fig5_ifmi(benchmark, psm):
    ifmi_name = psm.ifmi["m_BolusReq"]
    automaton = benchmark(
        lambda: psm.network.automaton(ifmi_name))
    # Case-study variant: the bolus input is polled, so the automaton
    # adds the Wait/latch structure around the Fig. 5 core.
    names = set(automaton.location_names())
    assert "Processing" in names
    guards = [str(e.guard) for e in automaton.edges]
    # The two insertion cases of Fig. 5-(1).
    assert any("cnt_i_BolusReq < 5" in g for g in guards)
    assert any("cnt_i_BolusReq == 5" in g for g in guards)
    print()
    print(automaton_to_dot(automaton))


def bench_fig5_ifmi_interrupt(benchmark, psm):
    """The empty-syringe input uses the verbatim Fig. 5-(1) shape."""
    automaton = psm.network.automaton(psm.ifmi["m_EmptySyringe"])
    dot = benchmark(lambda: automaton_to_dot(automaton))
    assert automaton.location_names() == ["Idle", "Processing"]
    assert len(automaton.edges) == 3
    assert "m_EmptySyringe?" in dot


def bench_fig5_ifoc(benchmark, psm):
    automaton = psm.network.automaton(psm.ifoc["c_StartInfusion"])
    dot = benchmark(lambda: automaton_to_dot(automaton))
    assert "c_StartInfusion!" in dot
    # Processing window from the output spec (15..430 ms).
    invariants = [str(c) for loc in automaton.locations
                  for c in loc.invariant]
    assert any("<= 430" in inv for inv in invariants)
    guards = [str(e.guard) for e in automaton.edges]
    assert any(">= 15" in g for g in guards)
