"""Experiment A2 — ablation: buffer size vs overflow (Constraint 2).

A bursty environment (two presses in quick succession) against a slow
invocation period: model checking finds the input-buffer overflow for
size 1 and proves its absence from size 2 up — and the discrete-event
simulation agrees on both sides of the threshold.
"""

from repro.codegen import build_controller
from repro.core.constraints import check_constraint2
from repro.core.transform import transform
from repro.platforms import ImplementedSystem

from tests.conftest import build_tiny_scheme
from tests.test_core_constraints import double_press_pim


def _simulated_overflows(pim, scheme, *, seed=9) -> int:
    controller = build_controller(pim.m,
                                  constants=pim.network.constants)
    system = ImplementedSystem(controller, scheme,
                               pim.input_channels(),
                               pim.output_channels(), seed=seed)
    system.start()
    # The double-press pattern: two requests 2 ms apart.
    system.signal_input("m_Req", 1)
    system.sim.run_until(system.sim.now + 2_000)
    system.signal_input("m_Req", 2)
    system.run_for(200)
    return system.stats().input_buffer_overflows


def bench_a2_overflow_threshold_model(benchmark):
    def sweep():
        verdicts = {}
        pim = double_press_pim(gap=2)
        for size in (1, 2, 3):
            scheme = build_tiny_scheme(buffer_size=size, period=50)
            verdicts[size] = check_constraint2(
                transform(pim, scheme)).holds
        return verdicts

    verdicts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nConstraint 2 by buffer size: {verdicts}")
    assert verdicts == {1: False, 2: True, 3: True}


def bench_a2_overflow_threshold_simulation(benchmark):
    def sweep():
        counts = {}
        pim = double_press_pim(gap=2)
        for size in (1, 2):
            scheme = build_tiny_scheme(buffer_size=size, period=50)
            counts[size] = _simulated_overflows(pim, scheme)
        return counts

    counts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nsimulated overflows by buffer size: {counts}")
    # The simulation agrees with the model checker on both sides.
    assert counts[1] >= 1
    assert counts[2] == 0
