"""Experiment R3 — the four boundedness constraints (Section V).

The paper: "We verified that PSM does satisfy the four conditions for
bounded delay."  We benchmark the single-pass verification of all four
on the case-study PSM and assert they hold; a second benchmark runs
the progress (no deadlock/timelock) sanity scan.
"""

from repro.core.constraints import check_all_constraints, check_progress


def bench_constraints_all_four(benchmark, psm):
    report = benchmark.pedantic(
        lambda: check_all_constraints(psm, min_interarrival_ms=2000),
        rounds=1, iterations=1)
    print()
    print(report.summary())
    assert report.all_hold
    assert len(report.results) == 4


def bench_constraints_progress(benchmark, psm):
    result = benchmark.pedantic(
        lambda: check_progress(psm),
        rounds=1, iterations=1)
    assert result.holds, result.detail
