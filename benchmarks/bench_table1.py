"""Experiment T1 — Table I (the paper's headline experiment).

Regenerates both halves of Table I and asserts the paper's shape:

* verified bounds are exactly 1430 / 490 / 440 ms (Lemmas 1–2 with the
  case-study parameters);
* every measured delay over 60 simulated bolus trials is bounded by
  its verified bound;
* buffer overflow occurs in neither the model nor the measurement;
* REQ1 is violated in the large majority of measured trials
  (the paper reports 53 of 60).

The full pipeline (PIM check, transformation, constraint pass, bound
derivation, two PSM checks, 60 simulated trials) runs once under the
benchmark timer.
"""

import pathlib

from repro.analysis.table1 import Table1, run_case_study
from repro.apps.infusion import REQ1_DEADLINE_MS

_ARTIFACTS = pathlib.Path(__file__).resolve().parent.parent / "artifacts"


def bench_table1_full_pipeline(benchmark):
    table: Table1 = benchmark.pedantic(
        lambda: run_case_study(trials=60, seed=2015),
        rounds=1, iterations=1)

    print()
    print(table.render())
    _ARTIFACTS.mkdir(exist_ok=True)
    (_ARTIFACTS / "table1.txt").write_text(
        table.render() + "\n\n" + table.report.summary() + "\n")

    # --- verified column (paper: 1430 / 490 / 440, no overflow) -----
    assert table.verified_mc == 1430
    assert table.verified_input == 490
    assert table.verified_output == 440
    assert table.report.constraints_hold

    # --- measured column bounded by the verified column --------------
    assert table.shape_holds
    assert table.measured.responses == 60
    assert table.measured.timeouts == 0

    # --- in-text claims ----------------------------------------------
    assert table.report.pim_holds                       # PIM ⊨ P(500)
    assert not table.report.psm_original_result.holds   # PSM ⊭ P(500)
    assert table.report.psm_relaxed_result.holds        # PSM ⊨ P(1430)
    violations = table.measured.req_violations(REQ1_DEADLINE_MS)
    assert violations >= 45, \
        f"expected the large majority of 60 trials above 500ms, " \
        f"got {violations}"


def bench_table1_measured_half(benchmark, pim, scheme):
    """Only the measurement campaign (the oscilloscope half)."""
    from repro.analysis.table1 import simulate_trials

    measured = benchmark.pedantic(
        lambda: simulate_trials(pim, scheme, trials=60, seed=2015),
        rounds=1, iterations=1)
    assert measured.responses == 60
    assert not measured.buffer_overflow
    assert measured.mc.max <= 1430
    assert measured.input.max <= 490
    assert measured.output.max <= 440
