"""Experiments F1 + R1 — Fig. 1 (the PIM) and ``PIM ⊨ P(500)``.

Rebuilds the platform-independent model of the infusion pump, renders
it (the Fig. 1 artifact) and benchmarks the REQ1 model-checking query,
asserting the paper's result: REQ1 holds on the PIM, and 500 ms is
tight.
"""

from repro.apps.infusion import REQ1_DEADLINE_MS
from repro.mc import check_bounded_response, max_response_delay
from repro.ta.render import automaton_to_dot, network_summary


def bench_fig1_verify_req1(benchmark, pim):
    result = benchmark(
        lambda: check_bounded_response(
            pim.network, "m_BolusReq", "c_StartInfusion",
            REQ1_DEADLINE_MS, trace=False))
    assert result.holds


def bench_fig1_req1_is_tight(benchmark, pim):
    result = benchmark.pedantic(
        lambda: max_response_delay(pim.network, "m_BolusReq",
                                   "c_StartInfusion"),
        rounds=1, iterations=1)
    assert result.bounded and result.sup == REQ1_DEADLINE_MS


def bench_fig1_render(benchmark, pim):
    dot = benchmark(lambda: automaton_to_dot(pim.m))
    # The Fig. 1 content: both automata with their synchronizations.
    assert "m_BolusReq?" in dot
    assert "c_StartInfusion!" in dot
    print()
    print(network_summary(pim.network))
