"""Experiment F4 — Fig. 4: PIM vs PSM timed behavior.

The figure contrasts the PIM's direct ``mk!/mk?`` synchronization with
the PSM's indirect flow (read → enqueue → dequeue/deliver → output →
actuate).  We regenerate both as symbolic traces: the shortest PIM run
reaching ``c_StartInfusion`` synchronizes M with ENV directly, while
the corresponding PSM run must pass through IFMI, EXEIO and IFOC in
between — asserted on the trace's automaton sequence.
"""

from repro.mc.reachability import StateFormula, check_reachable
from repro.mc.traces import format_trace


def _trace_to(network, automaton, location):
    result = check_reachable(
        network, StateFormula(locations={automaton: location}),
        trace=True)
    assert result.reachable
    assert result.trace is not None
    return result.trace


def bench_fig4_pim_trace(benchmark, pim):
    trace = benchmark.pedantic(
        lambda: _trace_to(pim.network, "M", "Infusing"),
        rounds=1, iterations=1)
    text = "\n".join(trace)
    # Direct synchronization: environment and M on the same labels.
    assert "m_BolusReq" in text and "c_StartInfusion" in text
    assert "IFMI" not in text and "EXEIO" not in text
    print()
    print("Fig. 4-(a): PIM behavior (M directly synchronized with ENV)")
    print(format_trace(trace))


def bench_fig4_psm_trace(benchmark, psm):
    trace = benchmark.pedantic(
        lambda: _trace_to(psm.network, "MIO", "Infusing"),
        rounds=1, iterations=1)
    text = "\n".join(trace)
    # Indirect flow (Fig. 4-(b)): the platform sits between the
    # environment's m and MIO's i — and the i/o twins appear.  Match
    # the emit markers ("ch!") to avoid hits inside variable names
    # like cnt_i_BolusReq.
    position_m = text.index("m_BolusReq!")
    position_i = text.index("i_BolusReq!")
    assert position_m < position_i, \
        "the processed input must follow the environmental input"
    assert "IFMI_i_BolusReq" in text
    assert "EXEIO" in text
    assert "o_StartInfusion" in text
    print()
    print("Fig. 4-(b): PSM behavior (desynchronized via the platform)")
    print(format_trace(trace, max_steps=30))
