"""Experiment S1 — engineering: model-checker scaling.

Zone-graph size and wall time as the PSM grows (buffer capacity and
invocation period granularity).  No paper counterpart — this
characterizes the verification substrate itself, as a real release
would.
"""

from repro.core.transform import transform
from repro.mc.queries import zone_graph_stats

from tests.conftest import build_tiny_pim, build_tiny_scheme


def bench_s1_zone_graph_tiny(benchmark):
    psm = transform(build_tiny_pim(), build_tiny_scheme())
    stats = benchmark(lambda: zone_graph_stats(psm.network))
    assert stats.states > 0
    print(f"\ntiny PSM: {stats}")


def bench_s1_buffer_size_scaling(benchmark):
    def sweep():
        sizes = {}
        for capacity in (1, 2, 4):
            psm = transform(build_tiny_pim(),
                            build_tiny_scheme(buffer_size=capacity))
            sizes[capacity] = zone_graph_stats(psm.network).states
        return sizes

    sizes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nzone-graph states by buffer capacity: {sizes}")
    # With a single-outstanding-request environment the graph should
    # not blow up with capacity (occupancy never exceeds one).
    assert sizes[4] <= 2 * sizes[1]


def bench_s1_case_study_psm(benchmark, psm):
    stats = benchmark.pedantic(
        lambda: zone_graph_stats(psm.network),
        rounds=1, iterations=1)
    print(f"\ncase-study PSM: {stats}")
    assert stats.states > 1_000
