#!/usr/bin/env python3
"""Scheme explorer: how platform choices shape the timing bound.

For one PIM, sweeps the implementation-scheme dimensions the paper's
Section III taxonomizes — input mechanism, invocation period, read
policy — and reports, per scheme:

* the Lemma-1/2 analytic bound Δ',
* the exact model-checked M-C supremum on the PSM,
* whether the four boundedness constraints hold.

Run:  python examples/scheme_explorer.py
"""

from repro.core.constraints import check_all_constraints
from repro.core.delays import derive_bounds, symbolic_mc_delay
from repro.core.pim import PIM
from repro.core.scheme import (
    DeliveryMechanism,
    ImplementationScheme,
    InputSpec,
    InvocationKind,
    InvocationSpec,
    IOSpec,
    OutputSpec,
    ReadMechanism,
    ReadPolicy,
    SignalType,
)
from repro.core.transform import transform
from repro.ta.builder import NetworkBuilder


def build_pim() -> PIM:
    net = NetworkBuilder("explorer", constants={
        "PRIME": 4, "DEADLINE": 10, "THINK": 30})
    net.channel("m_Req")
    net.channel("c_Ack")
    m = net.automaton("M", clocks=["x"])
    m.location("Idle", initial=True)
    m.location("Busy", invariant="x <= DEADLINE")
    m.edge("Idle", "Busy", sync="m_Req?", update="x = 0")
    m.edge("Busy", "Idle", guard="x >= PRIME", sync="c_Ack!",
           update="x = 0")
    env = net.automaton("ENV", clocks=["ex"])
    env.location("Rest", initial=True)
    env.location("Wait")
    env.edge("Rest", "Wait", guard="ex >= THINK", sync="m_Req!",
             update="ex = 0")
    env.edge("Wait", "Rest", sync="c_Ack?", update="ex = 0")
    return PIM(network=net.build(), controller="M", environment="ENV")


def make_scheme(name: str, *, mechanism=ReadMechanism.INTERRUPT,
                polling_interval=None, period=5,
                kind=InvocationKind.PERIODIC,
                read_policy=ReadPolicy.READ_ALL) -> ImplementationScheme:
    signal = SignalType.LATCHED if mechanism is ReadMechanism.POLLING \
        else SignalType.PULSE
    if kind is InvocationKind.PERIODIC:
        invocation = InvocationSpec(kind=kind, period=period, bcet=0,
                                    wcet=1)
    else:
        invocation = InvocationSpec(kind=kind, period=None, bcet=0,
                                    wcet=1, latency_min=0,
                                    latency_max=2, min_separation=1)
    return ImplementationScheme(
        name=name,
        inputs={"m_Req": InputSpec(signal=signal, mechanism=mechanism,
                                   delay_min=1, delay_max=2,
                                   polling_interval=polling_interval)},
        outputs={"c_Ack": OutputSpec(delay_min=1, delay_max=2)},
        io_inputs={"m_Req": IOSpec(delivery=DeliveryMechanism.BUFFER,
                                   buffer_size=2,
                                   read_policy=read_policy)},
        io_outputs={"c_Ack": IOSpec(delivery=DeliveryMechanism.BUFFER,
                                    buffer_size=2)},
        invocation=invocation,
    ).validate()


SCHEMES = [
    make_scheme("interrupt+period5"),
    make_scheme("interrupt+period9", period=9),
    make_scheme("interrupt+read-one",
                read_policy=ReadPolicy.READ_ONE),
    make_scheme("polling6+period5",
                mechanism=ReadMechanism.POLLING, polling_interval=6),
    make_scheme("polling12+period5",
                mechanism=ReadMechanism.POLLING, polling_interval=12),
]


def main() -> None:
    pim = build_pim()
    print(f"{'scheme':<22} {'Δ_bound':>8} {'MC sup':>8} "
          f"{'constraints':>12}")
    print("-" * 54)
    for scheme in SCHEMES:
        psm = transform(pim, scheme)
        bounds = derive_bounds(pim, scheme, "m_Req", "c_Ack")
        sup = symbolic_mc_delay(psm, "m_Req", "c_Ack")
        constraints = check_all_constraints(psm)
        verdict = "all hold" if constraints.all_hold else "VIOLATED"
        sup_text = f"{sup.sup}ms" if sup.bounded else "unbounded"
        print(f"{scheme.name:<22} {bounds.relaxed:>6}ms {sup_text:>8} "
              f"{verdict:>12}")
        assert not sup.bounded or sup.sup <= bounds.relaxed
    # Also demonstrate aperiodic invocation on an immediate-response
    # controller (timed continuations need periodic ticks; see docs).
    print()
    print("aperiodic invocation (immediate-response controller):")
    net = NetworkBuilder("imm", constants={"THINK": 30})
    net.channel("m_Req")
    net.channel("c_Ack")
    m = net.automaton("M", clocks=["x"])
    m.location("Idle", initial=True)
    m.location("Busy", invariant="x <= 1")
    m.edge("Idle", "Busy", sync="m_Req?", update="x = 0")
    m.edge("Busy", "Idle", sync="c_Ack!")
    env = net.automaton("ENV", clocks=["ex"])
    env.location("Rest", initial=True)
    env.location("Wait")
    env.edge("Rest", "Wait", guard="ex >= THINK", sync="m_Req!",
             update="ex = 0")
    env.edge("Wait", "Rest", sync="c_Ack?", update="ex = 0")
    pim_immediate = PIM(network=net.build(), controller="M",
                        environment="ENV")
    scheme = make_scheme("aperiodic", kind=InvocationKind.APERIODIC)
    psm = transform(pim_immediate, scheme)
    sup = symbolic_mc_delay(psm, "m_Req", "c_Ack")
    bounds = derive_bounds(pim_immediate, scheme, "m_Req", "c_Ack")
    print(f"{scheme.name:<22} {bounds.relaxed:>6}ms "
          f"{sup.sup if sup.bounded else 'unbounded':>6}ms")


if __name__ == "__main__":
    main()
