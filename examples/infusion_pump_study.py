#!/usr/bin/env python3
"""The full Section-VI case study: regenerate Table I.

Verifies REQ1 on the infusion-pump PIM, transforms it against the
case-study platform (IS1 with a polled bolus input), checks the four
boundedness constraints, derives the relaxed bound Δ'_mc = 1430 ms,
and measures 60 simulated bolus-request trials — printing the
reproduced Table I at the end.

Run:  python examples/infusion_pump_study.py [--trials N] [--seed S]

Expect a few minutes: the PSM's zone graph has tens of thousands of
symbolic states and is explored several times.
"""

import argparse
import time

from repro.analysis.table1 import run_case_study


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Infusion-pump case study (Table I)")
    parser.add_argument("--trials", type=int, default=60,
                        help="number of bolus-request scenarios")
    parser.add_argument("--seed", type=int, default=2015,
                        help="simulation seed")
    parser.add_argument("--suprema", action="store_true",
                        help="also model-check the exact PSM delay "
                             "suprema (slower)")
    args = parser.parse_args()

    started = time.time()
    table = run_case_study(trials=args.trials, seed=args.seed,
                           measure_suprema=args.suprema)
    elapsed = time.time() - started

    print(table.render())
    print()
    print(table.report.summary())
    print(f"\ncompleted in {elapsed:.0f}s")

    if not table.shape_holds:
        raise SystemExit(
            "reproduction FAILED: a measured delay exceeded its "
            "verified bound")
    print("\nreproduction OK: every measured delay is bounded by the "
          "verified bound, as in the paper.")


if __name__ == "__main__":
    main()
