#!/usr/bin/env python3
"""GPCA requirement catalog: the framework beyond a single deadline.

The paper's case-study platform is the GPCA reference pump; its safety
requirements document lists many bounded-response properties.  This
example runs the framework once per requirement on the extended GPCA
model:

* verify each requirement on the PIM,
* transform against an IS1-style platform,
* derive each requirement's own relaxed bound Δ' (the internal delay
  differs per input/output pair!),
* show each PIM deadline breaks on the platform while its relaxed
  bound verifies.

Run:  python examples/gpca_requirements.py
"""

from repro.apps.gpca import (
    GPCA_INPUTS,
    GPCA_OUTPUTS,
    GPCA_REQUIREMENTS,
    build_gpca_pim,
)
from repro.core.constraints import check_all_constraints
from repro.core.delays import derive_bounds
from repro.core.scheme import example_is1
from repro.core.transform import transform
from repro.mc import BoundedResponseQuery, check_many


def main() -> None:
    pim = build_gpca_pim()
    scheme = example_is1(GPCA_INPUTS, GPCA_OUTPUTS, buffer_size=3,
                         period=50)
    psm = transform(pim, scheme)

    print("constraints on the GPCA PSM:")
    report = check_all_constraints(psm)
    for result in report.results:
        print(f"  {result.summary()[:76]}")
    assert report.all_hold

    print()
    print(f"{'requirement':<26} {'PIM':>5} {'Δ':>6} {'Δ_mi':>5} "
          f"{'Δ_oc':>5} {'Δ_int':>6} {'Δ_rel':>6} {'PSM@Δ':>6} "
          f"{'PSM@Δ_rel':>9}")
    print("-" * 82)
    for req in GPCA_REQUIREMENTS:
        pim_result = req.check(pim.network)
        bounds = derive_bounds(pim, scheme, req.trigger, req.response)
        # One shared sweep answers both PSM deadlines for this pair.
        on_platform, relaxed = check_many(
            psm.network,
            [BoundedResponseQuery(req.trigger, req.response,
                                  req.deadline_ms),
             BoundedResponseQuery(req.trigger, req.response,
                                  bounds.relaxed)],
            trace=False).results
        print(f"{req.name:<26} "
              f"{'ok' if pim_result.holds else 'FAIL':>5} "
              f"{req.deadline_ms:>4}ms {bounds.input_bound:>4} "
              f"{bounds.output_bound:>4} {bounds.internal_bound:>5} "
              f"{bounds.relaxed:>5} "
              f"{'ok' if on_platform.holds else 'no':>6} "
              f"{'ok' if relaxed.holds else 'FAIL':>9}")

    print()
    print("Reading: every requirement holds on the PIM, none survives "
          "the platform at its original deadline,")
    print("and each one's Lemma-2 relaxed bound verifies on the PSM — "
          "Theorem 1, per requirement.")


if __name__ == "__main__":
    main()
