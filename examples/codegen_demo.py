#!/usr/bin/env python3
"""Code generation demo: from verified model to running platform.

Shows the model-based implementation flow end to end:

1. build the infusion-pump controller model ``M``,
2. generate executable Python source from it (the TIMES role) and
   print an excerpt,
3. run the generated controller on the simulated platform under the
   case-study scheme,
4. print the oscilloscope trace of one bolus request — the same event
   flow as the paper's Fig. 3 — and the per-request delays.

Run:  python examples/codegen_demo.py
"""

from repro.analysis.delays import pair_requests
from repro.analysis.timeline import render_timeline
from repro.apps.infusion import build_infusion_pim
from repro.apps.schemes import case_study_scheme
from repro.codegen import compile_controller, generate_source
from repro.envs import ClosedLoopRequester
from repro.platforms import ImplementedSystem


def main() -> None:
    pim = build_infusion_pim()

    # ---- 2. generate the controller source --------------------------
    source = generate_source(pim.m, constants=pim.network.constants,
                             class_name="MController")
    print("generated controller source (first 40 lines):")
    print("-" * 60)
    for line in source.splitlines()[:40]:
        print(line)
    print(f"... ({len(source.splitlines())} lines total)")
    print("-" * 60)

    controller_cls = compile_controller(source, "MController")
    controller = controller_cls()

    # ---- 3. compose with the platform -------------------------------
    scheme = case_study_scheme()
    system = ImplementedSystem(
        controller, scheme, pim.input_channels(),
        pim.output_channels(), seed=7)
    requester = ClosedLoopRequester(
        system, "m_BolusReq", "c_StartInfusion", count=2,
        think_ms=(2000, 3000))
    system.start()
    requester.start()
    system.run_for(15_000)

    # ---- 4. show the interaction timeline ---------------------------
    print("\nplatform trace of the first bolus request (Fig. 3 style):")
    print(render_timeline(system.trace, until_ms=1500.0))

    print("\nper-request delays:")
    for timing in pair_requests(system.trace, "m_BolusReq",
                                "c_StartInfusion"):
        print(f"  {timing}")
    print(f"\nplatform stats: {system.stats().summary()}")


if __name__ == "__main__":
    main()
