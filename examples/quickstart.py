#!/usr/bin/env python3
"""Quickstart: verify a platform's effect on a small timed model.

Walks the paper's whole story on a request/ack controller small enough
to read in one sitting:

1. build a PIM (``M ‖ ENV``) and verify its timing requirement,
2. describe the execution platform as an implementation scheme,
3. transform PIM → PSM and check the four boundedness constraints,
4. derive the relaxed bound ``Δ' = Δ̄_mi + Δ̄_oc + Δ_internal``,
5. show the original requirement breaks on the platform while the
   relaxed one verifies — Theorem 1 then carries it to the
   implementation,
6. simulate the implementation and live-check the run for timed
   conformance against the verified PSM.

Everything runs through one :class:`repro.api.Session` — the unified
front door that resolves the backend/abstraction/jobs knobs once.

Run:  python examples/quickstart.py
"""

from repro.api import Session
from repro.core.pim import PIM
from repro.core.scheme import (
    DeliveryMechanism,
    ImplementationScheme,
    InputSpec,
    InvocationKind,
    InvocationSpec,
    IOSpec,
    OutputSpec,
    ReadMechanism,
    ReadPolicy,
    SignalType,
)
from repro.ta.builder import NetworkBuilder


def build_pim() -> PIM:
    """A controller that acknowledges requests within 10 ms."""
    net = NetworkBuilder("quickstart", constants={
        "PRIME": 4,      # minimum processing before the ack
        "DEADLINE": 10,  # the requirement: ack within 10 ms
        "THINK": 25,     # environment pause between requests
    })
    net.channel("m_Req")
    net.channel("c_Ack")

    m = net.automaton("M", clocks=["x"])
    m.location("Idle", initial=True)
    m.location("Busy", invariant="x <= DEADLINE")
    m.edge("Idle", "Busy", sync="m_Req?", update="x = 0")
    m.edge("Busy", "Idle", guard="x >= PRIME", sync="c_Ack!",
           update="x = 0")

    env = net.automaton("ENV", clocks=["ex"])
    env.location("Rest", initial=True)
    env.location("Wait")
    env.edge("Rest", "Wait", guard="ex >= THINK", sync="m_Req!",
             update="ex = 0")
    env.edge("Wait", "Rest", sync="c_Ack?", update="ex = 0")

    return PIM(network=net.build(), controller="M", environment="ENV")


def build_scheme() -> ImplementationScheme:
    """The platform: interrupt input, buffered io, 5 ms periodic task."""
    return ImplementationScheme(
        name="quickstart-platform",
        inputs={"m_Req": InputSpec(signal=SignalType.PULSE,
                                   mechanism=ReadMechanism.INTERRUPT,
                                   delay_min=1, delay_max=2)},
        outputs={"c_Ack": OutputSpec(mechanism=ReadMechanism.INTERRUPT,
                                     delay_min=1, delay_max=2)},
        io_inputs={"m_Req": IOSpec(delivery=DeliveryMechanism.BUFFER,
                                   buffer_size=2,
                                   read_policy=ReadPolicy.READ_ALL)},
        io_outputs={"c_Ack": IOSpec(delivery=DeliveryMechanism.BUFFER,
                                    buffer_size=2)},
        invocation=InvocationSpec(kind=InvocationKind.PERIODIC,
                                  period=5, bcet=0, wcet=1),
    ).validate()


def simulate(pim: PIM, scheme: ImplementationScheme) -> list:
    """One closed-loop run of the platform; returns the event trace."""
    from repro.codegen import build_controller
    from repro.envs import ClosedLoopRequester
    from repro.platforms import ImplementedSystem

    controller = build_controller(pim.m,
                                  constants=pim.network.constants)
    system = ImplementedSystem(controller, scheme,
                               pim.input_channels(),
                               pim.output_channels(), seed=0)
    requester = ClosedLoopRequester(system, "m_Req", "c_Ack", count=5,
                                    think_ms=(25, 40), timeout_ms=500,
                                    first_press_ms=5)
    system.start()
    requester.start()
    system.run_for(5 * 600 + 1000)
    return list(system.trace)


def main() -> None:
    pim = build_pim()
    scheme = build_scheme()
    print(pim.describe())
    print()
    print(scheme.describe())
    print()

    session = Session()  # knobs resolve once: flags > env > defaults
    report = session.verify(
        pim, scheme,
        input_channel="m_Req",
        output_channel="c_Ack",
        deadline_ms=10,
        measure_suprema=True,
        include_progress=True,
    )
    print(report.summary())
    print()
    if report.implementation_guarantee:
        print(f"✓ The implementation is guaranteed to respond within "
              f"{report.relaxed_deadline_ms} ms (Theorem 1).")
    if not report.psm_original_result.holds:
        print(f"✗ The original {report.deadline_ms} ms requirement "
              f"does NOT survive this platform — the timing gap the "
              f"paper is about.")

    # Close the loop: simulate the implementation and check the run's
    # boundary events for timed conformance against the same PSM.
    trace = simulate(pim, scheme)
    verdict, = session.monitor([trace], pim=pim, scheme=scheme,
                               requirement=("m_Req", "c_Ack", 10))
    state = "conforms to" if verdict["conforming"] else "DEVIATES from"
    print(f"\nsimulated run ({verdict['observed']} boundary events) "
          f"{state} the verified PSM")


if __name__ == "__main__":
    main()
