"""Tests for the platform components: signals, transports, devices,
invocation and the composed implemented system."""

import pytest

from repro.codegen import build_controller
from repro.core.scheme import (
    DeliveryMechanism,
    InputSpec,
    InvocationKind,
    InvocationSpec,
    IOSpec,
    OutputSpec,
    ReadMechanism,
    ReadPolicy,
    SignalType,
)
from repro.platforms.buffers import EventBuffer, SharedSlot
from repro.platforms.devices import (
    InterruptInputDevice,
    OutputDevice,
    PollingInputDevice,
)
from repro.platforms.signals import SignalLine
from repro.platforms.system import ImplementedSystem
from repro.sim.engine import Simulator, ms_to_us
from repro.sim.rng import RandomStreams
from repro.sim.trace import TraceRecorder
from repro.ta.builder import AutomatonBuilder

from tests.conftest import build_tiny_pim, build_tiny_scheme


def make_env():
    sim = Simulator()
    return sim, RandomStreams(1), TraceRecorder()


class TestSignalLine:
    def test_pulse_always_missed_by_polling(self):
        sim, _, _ = make_env()
        line = SignalLine(sim, "ch", SignalType.PULSE)
        line.raise_signal(1)
        assert line.sample() is None
        assert line.missed == 1

    def test_latched_until_read(self):
        sim, _, _ = make_env()
        line = SignalLine(sim, "ch", SignalType.LATCHED)
        line.raise_signal(1)
        sim.schedule(ms_to_us(500), lambda: None)
        sim.run()
        assert line.sample() == 1
        assert line.sample() is None  # read cleared the latch

    def test_latched_overwrite_counts_missed(self):
        sim, _, _ = make_env()
        line = SignalLine(sim, "ch", SignalType.LATCHED)
        line.raise_signal(1)
        line.raise_signal(2)
        assert line.missed_tags == [1]
        assert line.sample() == 2

    def test_sustained_visible_inside_window(self):
        sim, _, _ = make_env()
        line = SignalLine(sim, "ch", SignalType.SUSTAINED,
                          sustain_us=ms_to_us(10))
        line.raise_signal(1)
        sim.schedule(ms_to_us(5), lambda: None)
        sim.run()
        assert line.sample() == 1

    def test_sustained_reported_once(self):
        sim, _, _ = make_env()
        line = SignalLine(sim, "ch", SignalType.SUSTAINED,
                          sustain_us=ms_to_us(10))
        line.raise_signal(1)
        assert line.sample() == 1
        assert line.sample() is None

    def test_sustained_expires(self):
        sim, _, _ = make_env()
        line = SignalLine(sim, "ch", SignalType.SUSTAINED,
                          sustain_us=ms_to_us(10))
        line.raise_signal(1)
        sim.schedule(ms_to_us(20), lambda: None)
        sim.run()
        assert line.sample() is None
        assert line.missed == 1


class TestTransports:
    def test_buffer_fifo(self):
        sim, _, trace = make_env()
        buffer = EventBuffer(sim, trace, "ch", capacity=3)
        for tag in (1, 2, 3):
            assert buffer.push(tag)
        assert buffer.pop_one() == 1
        assert buffer.pop_all() == [2, 3]

    def test_buffer_overflow(self):
        sim, _, trace = make_env()
        buffer = EventBuffer(sim, trace, "ch", capacity=2)
        assert buffer.push(1) and buffer.push(2)
        assert not buffer.push(3)
        assert buffer.overflow_count == 1
        assert trace.count("drop") == 1
        assert buffer.pop_all() == [1, 2]

    def test_buffer_high_watermark(self):
        sim, _, trace = make_env()
        buffer = EventBuffer(sim, trace, "ch", capacity=5)
        buffer.push(1)
        buffer.push(2)
        buffer.pop_one()
        buffer.push(3)
        assert buffer.high_watermark == 2

    def test_buffer_capacity_validation(self):
        sim, _, trace = make_env()
        with pytest.raises(ValueError):
            EventBuffer(sim, trace, "ch", capacity=0)

    def test_shared_slot_overwrites(self):
        sim, _, trace = make_env()
        slot = SharedSlot(sim, trace, "ch")
        slot.push(1)
        slot.push(2)
        assert slot.overwrite_count == 1
        assert slot.pop_one() == 2
        assert slot.pop_one() is None

    def test_shared_slot_len(self):
        sim, _, trace = make_env()
        slot = SharedSlot(sim, trace, "ch")
        assert len(slot) == 0
        slot.push(1)
        assert len(slot) == 1


class TestInputDevices:
    def test_interrupt_latency_within_bounds(self):
        sim, rng, trace = make_env()
        spec = InputSpec(signal=SignalType.PULSE,
                         mechanism=ReadMechanism.INTERRUPT,
                         delay_min=2, delay_max=4)
        buffer = EventBuffer(sim, trace, "ch", capacity=5)
        device = InterruptInputDevice(sim, rng, trace, "ch", spec, buffer)
        device.on_signal(1)
        sim.run()
        ready = trace.first("i_ready", "ch")
        assert ready is not None
        assert ms_to_us(2) <= ready.time_us <= ms_to_us(4)
        assert buffer.pop_one() == 1

    def test_polling_waits_for_next_poll(self):
        sim, rng, trace = make_env()
        spec = InputSpec(signal=SignalType.LATCHED,
                         mechanism=ReadMechanism.POLLING,
                         delay_min=1, delay_max=1, polling_interval=10)
        buffer = EventBuffer(sim, trace, "ch", capacity=5)
        line = SignalLine(sim, "ch", SignalType.LATCHED)
        device = PollingInputDevice(sim, rng, trace, "ch", spec, buffer,
                                    line)
        device.start()
        sim.schedule(ms_to_us(3), lambda: line.raise_signal(1))
        sim.run_until(ms_to_us(25))
        sensed = trace.first("sensed", "ch")
        assert sensed is not None
        assert sensed.time_us == ms_to_us(10)  # the poll after t=3

    def test_device_start_idempotence_guard(self):
        sim, rng, trace = make_env()
        spec = InputSpec(signal=SignalType.LATCHED,
                         mechanism=ReadMechanism.POLLING,
                         delay_min=1, delay_max=1, polling_interval=10)
        line = SignalLine(sim, "ch", SignalType.LATCHED)
        device = PollingInputDevice(
            sim, rng, trace, "ch", spec,
            EventBuffer(sim, trace, "ch", 1), line)
        device.start()
        with pytest.raises(RuntimeError):
            device.start()

    def test_wrong_spec_rejected(self):
        sim, rng, trace = make_env()
        spec = InputSpec(mechanism=ReadMechanism.POLLING,
                         signal=SignalType.LATCHED, polling_interval=5)
        with pytest.raises(ValueError):
            InterruptInputDevice(sim, rng, trace, "ch", spec,
                                 EventBuffer(sim, trace, "ch", 1))


class TestOutputDevice:
    def test_event_driven_pickup(self):
        sim, rng, trace = make_env()
        spec = OutputSpec(mechanism=ReadMechanism.INTERRUPT,
                          delay_min=1, delay_max=2)
        buffer = EventBuffer(sim, trace, "ch", capacity=5)
        actuated = []
        device = OutputDevice(sim, rng, trace, "ch", spec, buffer,
                              actuate=actuated.append)
        device.start()
        buffer.push(1)
        device.notify()
        sim.run()
        assert actuated == [1]
        assert ms_to_us(1) <= sim.now <= ms_to_us(2)

    def test_event_driven_drains_backlog(self):
        sim, rng, trace = make_env()
        spec = OutputSpec(mechanism=ReadMechanism.INTERRUPT,
                          delay_min=1, delay_max=1)
        buffer = EventBuffer(sim, trace, "ch", capacity=5)
        actuated = []
        device = OutputDevice(sim, rng, trace, "ch", spec, buffer,
                              actuate=actuated.append)
        device.start()
        buffer.push(1)
        buffer.push(2)
        device.notify()
        sim.run()
        assert actuated == [1, 2]

    def test_polling_pickup_at_poll_instants(self):
        sim, rng, trace = make_env()
        spec = OutputSpec(mechanism=ReadMechanism.POLLING,
                          delay_min=1, delay_max=1, polling_interval=10)
        buffer = EventBuffer(sim, trace, "ch", capacity=5)
        actuated = []
        device = OutputDevice(sim, rng, trace, "ch", spec, buffer,
                              actuate=lambda t: actuated.append(
                                  (t, sim.now)))
        device.start()
        sim.schedule(ms_to_us(3), lambda: buffer.push(1))
        sim.run_until(ms_to_us(30))
        assert actuated
        tag, when = actuated[0]
        assert tag == 1 and when == ms_to_us(11)  # poll@10 + 1ms proc


class TestImplementedSystem:
    def _system(self, **scheme_kw):
        pim = build_tiny_pim()
        scheme = build_tiny_scheme(**scheme_kw)
        ctrl = build_controller(pim.m, constants=pim.network.constants)
        return ImplementedSystem(ctrl, scheme, pim.input_channels(),
                                 pim.output_channels(), seed=3), pim

    def test_round_trip(self):
        system, _pim = self._system()
        system.start()
        system.signal_input("m_Req", 1)
        system.run_for(100)
        assert system.trace.count("c", "c_Ack") == 1
        stats = system.stats()
        assert stats.invocations > 0
        assert not stats.any_buffer_overflow

    def test_m_before_c_ordering(self):
        system, _pim = self._system()
        system.start()
        system.signal_input("m_Req", 1)
        system.run_for(100)
        t_m = system.trace.first("m", "m_Req").time_us
        t_c = system.trace.first("c", "c_Ack").time_us
        assert t_m < t_c

    def test_buffer_overflow_counted(self):
        system, _pim = self._system(buffer_size=1, period=50)
        system.start()
        # Burst of 4 requests before the first invocation drains any.
        for tag in range(1, 5):
            system.signal_input("m_Req", tag)
        system.run_for(200)
        assert system.stats().input_buffer_overflows >= 1

    def test_aperiodic_invocation_responds(self):
        # Aperiodic invocation suits immediate-response controllers
        # (prime=0): the single triggered invocation consumes the
        # input and emits the ack in the same run-to-completion pass.
        pim = build_tiny_pim(prime=0)
        scheme = build_tiny_scheme(
            invocation_kind=InvocationKind.APERIODIC)
        ctrl = build_controller(pim.m, constants=pim.network.constants)
        system = ImplementedSystem(ctrl, scheme, pim.input_channels(),
                                   pim.output_channels(), seed=3)
        system.start()
        system.signal_input("m_Req", 1)
        system.run_for(100)
        assert system.trace.count("c", "c_Ack") == 1
        assert system.stats().invocations == 1

    def test_aperiodic_stalls_on_timed_continuation(self):
        # With a timed output guard (prime=4) the event-triggered code
        # is never re-invoked, so the ack never appears — the platform
        # pitfall the PSM exposes as a timelock (see the transform
        # tests).  Periodic invocation is the correct scheme here.
        system, _pim = self._system(
            invocation_kind=InvocationKind.APERIODIC)
        system.start()
        system.signal_input("m_Req", 1)
        system.run_for(100)
        assert system.trace.count("c", "c_Ack") == 0
        assert system.stats().invocations == 1

    def test_shared_variable_delivery(self):
        system, _pim = self._system(
            delivery=DeliveryMechanism.SHARED_VARIABLE)
        system.start()
        system.signal_input("m_Req", 1)
        system.run_for(100)
        assert system.trace.count("c", "c_Ack") == 1

    def test_double_start_rejected(self):
        system, _pim = self._system()
        system.start()
        with pytest.raises(RuntimeError):
            system.start()

    def test_scheme_coverage_enforced(self):
        pim = build_tiny_pim()
        scheme = build_tiny_scheme()
        ctrl = build_controller(pim.m, constants=pim.network.constants)
        from repro.core.scheme import SchemeError
        with pytest.raises(SchemeError):
            ImplementedSystem(ctrl, scheme, ["m_Req", "m_Other"],
                              ["c_Ack"])

    def test_seed_reproducibility(self):
        results = []
        for _ in range(2):
            system, _ = self._system()
            system.start()
            system.signal_input("m_Req", 1)
            system.run_for(100)
            results.append(system.trace.first("c", "c_Ack").time_us)
        assert results[0] == results[1]
