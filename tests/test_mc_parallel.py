"""Differential tests: sharded parallel exploration ≡ sequential.

The satellite contract of the sharding PR: for every benchmark model
(the tiny PSM and the case-study PSM), sharded exploration with
``jobs ∈ {1, 2, 4}`` on both zone backends yields **bit-identical**
states, transitions, traces and sup-clock results vs the sequential
:class:`ZoneGraphExplorer` — regardless of worker mode (batched
threads for numpy, multiprocessing for the reference backend).

``lazy_subsumption`` is the one documented divergence: the sharded
wave structure prunes slightly less than the sequential lazy
explorer, so only the reduced zone graph and the verdicts are pinned
there, not the tallies.
"""

from __future__ import annotations

import pytest

from repro.core.transform import transform
from repro.mc.explorer import ExplorationLimit, ZoneGraphExplorer
from repro.mc.observers import check_bounded_response, max_response_delay
from repro.mc.parallel import (
    ShardedZoneGraphExplorer,
    make_explorer,
    resolve_jobs,
    set_default_jobs,
)
from repro.mc.queries import zone_graph_stats
from repro.mc.reachability import StateFormula, check_reachable
from repro.ta.model import ModelError
from repro.zones.backend import available_backends

from tests.conftest import build_tiny_pim, build_tiny_scheme

BACKENDS = available_backends()
JOBS = (1, 2, 4)


@pytest.fixture(scope="module")
def tiny_network():
    return transform(build_tiny_pim(), build_tiny_scheme()).network


def _state_sequence(explorer):
    """Full visit order as (discrete key, frozen zone) pairs."""
    out = []
    explorer.explore(visit=lambda s: out.append(
        (s.key(), s.zone.frozen())))
    return out


# ----------------------------------------------------------------------
# Tiny PSM: the full jobs × backend matrix, bit-exact
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("jobs", JOBS)
class TestTinyMatrix:
    def test_state_sequence_identical(self, tiny_network, backend,
                                      jobs):
        expected = _state_sequence(
            ZoneGraphExplorer(tiny_network, zone_backend=backend))
        actual = _state_sequence(ShardedZoneGraphExplorer(
            tiny_network, jobs=jobs, zone_backend=backend))
        assert actual == expected

    def test_counts_identical(self, tiny_network, backend, jobs):
        sequential = ZoneGraphExplorer(
            tiny_network, zone_backend=backend).explore()
        sharded = ShardedZoneGraphExplorer(
            tiny_network, jobs=jobs, zone_backend=backend).explore()
        assert (sharded.visited, sharded.transitions, sharded.complete) \
            == (sequential.visited, sequential.transitions, True)

    def test_bounded_response_trace_identical(self, tiny_network,
                                              backend, jobs):
        sequential = check_bounded_response(
            tiny_network, "m_Req", "c_Ack", 3, zone_backend=backend)
        sharded = check_bounded_response(
            tiny_network, "m_Req", "c_Ack", 3, zone_backend=backend,
            jobs=jobs)
        assert sharded.holds == sequential.holds
        assert sharded.visited == sequential.visited
        assert sharded.transitions == sequential.transitions
        assert sharded.counterexample == sequential.counterexample
        assert sharded.trace == sequential.trace

    def test_sup_clock_identical(self, tiny_network, backend, jobs):
        sequential = max_response_delay(tiny_network, "m_Req", "c_Ack",
                                        zone_backend=backend)
        sharded = max_response_delay(tiny_network, "m_Req", "c_Ack",
                                     zone_backend=backend, jobs=jobs)
        assert (sharded.bounded, sharded.sup, sharded.attained,
                sharded.visited) == \
            (sequential.bounded, sequential.sup, sequential.attained,
             sequential.visited)

    def test_early_stop_identical(self, tiny_network, backend, jobs):
        formula = StateFormula(data="cnt_i_Req == 1")
        sequential = check_reachable(tiny_network, formula,
                                     zone_backend=backend)
        sharded = check_reachable(tiny_network, formula,
                                  zone_backend=backend, jobs=jobs)
        assert sharded.reachable and sequential.reachable
        assert sharded.visited == sequential.visited
        assert sharded.witness == sequential.witness
        assert sharded.trace == sequential.trace


@pytest.mark.parametrize("backend", BACKENDS)
def test_max_states_limit_matches(tiny_network, backend):
    with pytest.raises(ExplorationLimit):
        ZoneGraphExplorer(tiny_network, zone_backend=backend,
                          max_states=10).explore()
    with pytest.raises(ExplorationLimit):
        ShardedZoneGraphExplorer(tiny_network, jobs=2,
                                 zone_backend=backend,
                                 max_states=10).explore()


@pytest.mark.parametrize("backend", BACKENDS)
def test_forced_worker_modes_agree(tiny_network, backend):
    """Cross modes: threads on reference, processes on numpy."""
    expected = _state_sequence(
        ZoneGraphExplorer(tiny_network, zone_backend=backend))
    for mode in ("thread", "process"):
        explorer = ShardedZoneGraphExplorer(
            tiny_network, jobs=2, mode=mode, zone_backend=backend)
        assert explorer.mode == mode
        assert _state_sequence(explorer) == expected


@pytest.mark.parametrize("backend", BACKENDS)
def test_lazy_subsumption_reduced_graph_preserved(tiny_network,
                                                  backend):
    def reduced_graph(explorer):
        per_key: dict = {}
        explorer.explore(visit=lambda s: per_key.setdefault(
            s.key(), []).append(s.zone))
        graph = set()
        for key, zones in per_key.items():
            for zone in zones:
                if any(other is not zone and other.includes(zone)
                       and not zone.includes(other) for other in zones):
                    continue
                graph.add((key, zone.frozen()))
        return graph

    eager = reduced_graph(ZoneGraphExplorer(
        tiny_network, zone_backend=backend))
    lazy = reduced_graph(ShardedZoneGraphExplorer(
        tiny_network, jobs=2, zone_backend=backend,
        lazy_subsumption=True))
    assert lazy == eager


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("jobs", (1, 2))
def test_deferred_range_error_raised(backend, jobs):
    from repro.ta.builder import NetworkBuilder

    net = NetworkBuilder("n")
    net.int_var("v", 0, 0, 2)
    a = net.automaton("A")
    a.location("L", initial=True)
    a.loop("L", update="v = v + 1")
    network = net.build()
    with pytest.raises(ModelError, match="outside"):
        ShardedZoneGraphExplorer(network, jobs=jobs,
                                 zone_backend=backend).explore()


# ----------------------------------------------------------------------
# jobs resolution / factory
# ----------------------------------------------------------------------
class TestJobsResolution:
    def test_default_is_sequential(self):
        assert resolve_jobs(None) is None

    def test_explicit_wins(self):
        assert resolve_jobs(3) == 3

    def test_set_default_jobs(self):
        set_default_jobs(2)
        try:
            assert resolve_jobs(None) == 2
        finally:
            set_default_jobs(None)
        assert resolve_jobs(None) is None

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert resolve_jobs(None) == 4

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)
        with pytest.raises(ValueError):
            set_default_jobs(-1)

    def test_factory_picks_engine(self, tiny_network):
        assert isinstance(make_explorer(tiny_network),
                          ZoneGraphExplorer)
        assert isinstance(make_explorer(tiny_network, jobs=2),
                          ShardedZoneGraphExplorer)

    def test_auto_mode_by_backend(self, tiny_network):
        if "numpy" in BACKENDS:
            assert ShardedZoneGraphExplorer(
                tiny_network, jobs=2,
                zone_backend="numpy").mode == "thread"
        assert ShardedZoneGraphExplorer(
            tiny_network, jobs=2,
            zone_backend="reference").mode == "process"


# ----------------------------------------------------------------------
# Case-study PSM: the satellite's full differential matrix
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def case_study_network():
    from repro.apps.infusion import build_infusion_pim
    from repro.apps.schemes import case_study_scheme

    return transform(build_infusion_pim(), case_study_scheme()).network


@pytest.fixture(scope="module")
def case_study_sequential(case_study_network):
    return {backend: zone_graph_stats(case_study_network,
                                      zone_backend=backend)
            for backend in BACKENDS}


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("jobs", JOBS)
def test_case_study_counts_identical(case_study_network,
                                     case_study_sequential, backend,
                                     jobs):
    sequential = case_study_sequential[backend]
    sharded = zone_graph_stats(case_study_network,
                               zone_backend=backend, jobs=jobs)
    assert (sharded.states, sharded.transitions,
            sharded.discrete_configurations) == \
        (sequential.states, sequential.transitions,
         sequential.discrete_configurations)


def test_case_study_sup_identical(case_study_network):
    """Sup-clock parity on the big model (numpy, max jobs)."""
    backend = BACKENDS[-1]
    sequential = max_response_delay(
        case_study_network, "m_BolusReq", "c_StartInfusion",
        zone_backend=backend)
    sharded = max_response_delay(
        case_study_network, "m_BolusReq", "c_StartInfusion",
        zone_backend=backend, jobs=4)
    assert (sharded.bounded, sharded.sup, sharded.attained) == \
        (sequential.bounded, sequential.sup, sequential.attained)
