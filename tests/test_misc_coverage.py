"""Edge-case tests rounding out coverage across modules."""

import pytest

from repro.core.psm import ChannelVars
from repro.core.transform import transform
from repro.mc.observers import DelayBound, max_response_delay
from repro.mc.queries import sup_clock
from repro.mc.reachability import StateFormula
from repro.ta.builder import NetworkBuilder
from repro.ta.channels import Channel
from repro.ta.clocks import ClockConstraint
from repro.zones.bounds import encode
from repro.zones.dbm import DBM

from tests.conftest import build_tiny_pim, build_tiny_scheme


class TestClockConstraintSemantics:
    def test_holds_concrete(self):
        atom = ClockConstraint(clock="x", op="<=", bound=5)
        assert atom.holds({"x": 5})
        assert not atom.holds({"x": 6})

    def test_holds_diagonal(self):
        atom = ClockConstraint(clock="x", op="<", bound=3, other="y")
        assert atom.holds({"x": 4, "y": 2})
        assert not atom.holds({"x": 5, "y": 2})

    @pytest.mark.parametrize("op,value,expected", [
        (">", 5, False), (">", 6, True),
        (">=", 5, True), ("==", 5, True), ("==", 4, False),
    ])
    def test_all_operators(self, op, value, expected):
        atom = ClockConstraint(clock="x", op=op, bound=5)
        assert atom.holds({"x": value}) is expected

    def test_bad_operator(self):
        with pytest.raises(ValueError):
            ClockConstraint(clock="x", op="~", bound=1)

    def test_str(self):
        assert str(ClockConstraint("x", "<=", 5)) == "x <= 5"
        assert str(ClockConstraint("x", "<", 2, other="y")) == \
            "x - y < 2"


class TestChannelDecl:
    def test_str_variants(self):
        assert str(Channel("a")) == "chan a"
        assert str(Channel("a", urgent=True)) == "urgent chan a"
        assert str(Channel("a", broadcast=True)) == "broadcast chan a"
        assert "urgent broadcast" in str(
            Channel("a", urgent=True, broadcast=True))


class TestDelayBoundText:
    def test_attained(self):
        assert str(DelayBound(bounded=True, sup=7)) == "max=7"

    def test_strict(self):
        assert str(DelayBound(bounded=True, sup=7,
                              attained=False)) == "sup=7"

    def test_unbounded(self):
        assert str(DelayBound(bounded=False)) == "unbounded"


class TestSupStrictness:
    def test_strict_supremum_reported(self):
        # Invariant x < 5 (strict): the sup is 5 but never attained.
        net = NetworkBuilder("n")
        a = net.automaton("A", clocks=["x"])
        a.location("L", invariant="x < 5", initial=True)
        network = net.build()
        result = sup_clock(network, "x")
        assert result.bounded
        assert result.sup == 5
        assert not result.attained

    def test_weak_supremum_attained(self):
        net = NetworkBuilder("n")
        a = net.automaton("A", clocks=["x"])
        a.location("L", invariant="x <= 5", initial=True)
        result = sup_clock(net.build(), "x")
        assert result.sup == 5 and result.attained


class TestDbmCorners:
    def test_intersects_itself(self):
        zone = DBM.zero(3)
        assert zone.intersects(zone)

    def test_constrain_after_emptiness_stays_empty(self):
        zone = DBM.universal(2)
        zone.constrain(1, 0, encode(1, True))
        zone.constrain(0, 1, encode(-2, True))
        assert zone.is_empty()
        zone.constrain(1, 0, encode(100, True))
        assert zone.is_empty()

    def test_contains_point_length_checked(self):
        with pytest.raises(ValueError):
            DBM.zero(2).contains_point([0])

    def test_up_idempotent(self):
        zone = DBM.zero(3).up()
        again = zone.copy().up()
        assert zone == again

    def test_free_then_reset_recovers_point(self):
        zone = DBM.zero(2)
        zone.free(1)
        zone.reset(1, 4)
        assert zone.contains_point([0, 4])
        assert not zone.contains_point([0, 5])


class TestPsmIntrospection:
    def test_describe_lists_components(self):
        psm = transform(build_tiny_pim(), build_tiny_scheme())
        text = psm.describe()
        for name in ("MIO", "ENVMC", "EXEIO", "IFMI_i_Req",
                     "IFOC_o_Ack"):
            assert name in text

    def test_overflow_and_miss_flags(self):
        psm = transform(build_tiny_pim(), build_tiny_scheme())
        assert set(psm.overflow_flags()) == {"ovf_i_Req", "ovf_o_Ack"}
        assert psm.miss_flags() == []  # interrupt input: no latch

    def test_channel_vars_defaults(self):
        vars_ = ChannelVars(count="cnt", overflow="ovf")
        assert vars_.staged == "" and vars_.latch == ""


class TestObserversOnPsm:
    def test_input_delay_observer_unperturbed(self):
        # Measuring must not change what is reachable: constraints
        # still hold on the instrumented network's underlying behavior.
        psm = transform(build_tiny_pim(), build_tiny_scheme())
        before = max_response_delay(psm.network, "m_Req", "c_Ack")
        again = max_response_delay(psm.network, "m_Req", "c_Ack")
        assert before.sup == again.sup

    def test_formula_describe(self):
        formula = StateFormula(locations={"M": "Busy"},
                               data="cnt > 0", clocks="x <= 5")
        text = formula.describe()
        assert "M.Busy" in text and "cnt > 0" in text and "x <= 5" in text
