"""Tests for the implementation-scheme taxonomy (Definition 1)."""

import pytest

from repro.core.scheme import (
    DeliveryMechanism,
    ImplementationScheme,
    InputSpec,
    InvocationKind,
    InvocationSpec,
    IOSpec,
    OutputSpec,
    ReadMechanism,
    ReadPolicy,
    SchemeError,
    SignalType,
    example_is1,
)


class TestInputSpec:
    def test_polling_requires_interval(self):
        spec = InputSpec(signal=SignalType.LATCHED,
                         mechanism=ReadMechanism.POLLING)
        with pytest.raises(SchemeError, match="polling_interval"):
            spec.validate("m_X")

    def test_pulse_with_polling_rejected(self):
        spec = InputSpec(signal=SignalType.PULSE,
                         mechanism=ReadMechanism.POLLING,
                         polling_interval=10)
        with pytest.raises(SchemeError, match="pulse"):
            spec.validate("m_X")

    def test_sustained_needs_duration(self):
        spec = InputSpec(signal=SignalType.SUSTAINED,
                         mechanism=ReadMechanism.INTERRUPT)
        with pytest.raises(SchemeError, match="sustain"):
            spec.validate("m_X")

    def test_delay_order(self):
        spec = InputSpec(delay_min=5, delay_max=2)
        with pytest.raises(SchemeError, match="delay_min"):
            spec.validate("m_X")

    def test_worst_case_detection(self):
        interrupt = InputSpec(delay_min=1, delay_max=3)
        assert interrupt.worst_case_detection() == 3
        polled = InputSpec(signal=SignalType.LATCHED,
                           mechanism=ReadMechanism.POLLING,
                           delay_min=5, delay_max=10,
                           polling_interval=380)
        assert polled.worst_case_detection() == 390


class TestOutputSpec:
    def test_polling_requires_interval(self):
        spec = OutputSpec(mechanism=ReadMechanism.POLLING)
        with pytest.raises(SchemeError):
            spec.validate("c_Y")

    def test_worst_case_pickup(self):
        assert OutputSpec(delay_min=15, delay_max=430) \
            .worst_case_pickup() == 430
        assert OutputSpec(mechanism=ReadMechanism.POLLING,
                          delay_min=20, delay_max=40,
                          polling_interval=400) \
            .worst_case_pickup() == 440


class TestInvocationSpec:
    def test_periodic_requires_period(self):
        with pytest.raises(SchemeError, match="period"):
            InvocationSpec(kind=InvocationKind.PERIODIC,
                           period=None).validate()

    def test_wcet_within_period(self):
        with pytest.raises(SchemeError, match="wcet"):
            InvocationSpec(period=10, wcet=20).validate()

    def test_aperiodic_separation_covers_wcet(self):
        with pytest.raises(SchemeError, match="min_separation"):
            InvocationSpec(kind=InvocationKind.APERIODIC, wcet=5,
                           min_separation=2).validate()

    def test_worst_case_start_delay(self):
        periodic = InvocationSpec(period=100)
        assert periodic.worst_case_start_delay() == 100
        aperiodic = InvocationSpec(kind=InvocationKind.APERIODIC,
                                   wcet=1, latency_min=0, latency_max=5,
                                   min_separation=2)
        assert aperiodic.worst_case_start_delay() == 7


class TestScheme:
    def test_example_is1_matches_paper(self):
        scheme = example_is1(["m_A"], ["c_B"])
        spec = scheme.input_spec("m_A")
        assert spec.signal is SignalType.PULSE
        assert spec.mechanism is ReadMechanism.INTERRUPT
        assert (spec.delay_min, spec.delay_max) == (1, 3)
        io = scheme.io_input_spec("m_A")
        assert io.buffer_size == 5
        assert io.read_policy is ReadPolicy.READ_ALL
        assert scheme.invocation.period == 100

    def test_io_spec_must_cover_mc_channels(self):
        with pytest.raises(SchemeError, match="io-boundary"):
            ImplementationScheme(
                name="bad",
                inputs={"m_A": InputSpec()},
                outputs={},
                io_inputs={},
                io_outputs={},
            ).validate()

    def test_covers_detects_missing_channels(self):
        scheme = example_is1(["m_A"], ["c_B"])
        scheme.covers(["m_A"], ["c_B"])
        with pytest.raises(SchemeError, match="does not cover"):
            scheme.covers(["m_A", "m_Z"], ["c_B"])

    def test_missing_spec_lookup_raises(self):
        scheme = example_is1(["m_A"], ["c_B"])
        with pytest.raises(SchemeError):
            scheme.input_spec("m_Z")
        with pytest.raises(SchemeError):
            scheme.output_spec("c_Z")
        with pytest.raises(SchemeError):
            scheme.io_input_spec("m_Z")
        with pytest.raises(SchemeError):
            scheme.io_output_spec("c_Z")

    def test_describe_mentions_all_parts(self):
        scheme = example_is1(["m_A"], ["c_B"])
        text = scheme.describe()
        assert "MC(m_A)" in text
        assert "IO(m_A)" in text
        assert "IO(invoke)" in text
        assert "period=100" in text

    def test_buffer_size_validated(self):
        with pytest.raises(SchemeError, match="buffer_size"):
            IOSpec(delivery=DeliveryMechanism.BUFFER,
                   buffer_size=0).validate("m_A")

    def test_with_invocation(self):
        scheme = example_is1(["m_A"], ["c_B"])
        faster = scheme.with_invocation(InvocationSpec(period=50))
        assert faster.invocation.period == 50
        assert scheme.invocation.period == 100
