"""Explorer regression pins: counts, traces and subsumption invariants.

The perf overhaul (memoized successor plans, fused zone ops, batched
passed-list subsumption) must be observationally invisible: these
tests pin the exact ``visited``/``transitions`` tallies the seed
implementation produced for the tiny PSM and the REQ1-style bounded
response query, on every available zone backend.

``lazy_subsumption`` legitimately shrinks the tallies (dead waiting
entries are skipped instead of expanded), so for it the pinned
property is the *reduced zone graph*: the antichain of maximal zones
per discrete configuration must be identical to the eager one.
"""

from __future__ import annotations

import pytest

from repro.core.transform import transform
from repro.mc.explorer import ZoneGraphExplorer
from repro.mc.observers import check_bounded_response
from repro.mc.queries import zone_graph_stats
from repro.ta.model import ModelError
from repro.zones.backend import available_backends

from tests.conftest import build_tiny_pim, build_tiny_scheme

BACKENDS = available_backends()

# Values produced by the seed implementation (pre-overhaul) for the
# tiny PSM of tests/conftest.py — the contract is bit-identical counts.
TINY_VISITED = 68
TINY_TRANSITIONS = 85
TINY_REQ1_DEADLINE = 10
TINY_REQ1_VISITED = 43
TINY_REQ1_TIGHT_DEADLINE = 3
TINY_REQ1_TIGHT_VISITED = 24


@pytest.fixture(scope="module")
def tiny_network():
    return transform(build_tiny_pim(), build_tiny_scheme()).network


@pytest.mark.parametrize("backend", BACKENDS)
class TestSeedParity:
    def test_tiny_psm_counts_pinned(self, tiny_network, backend):
        result = ZoneGraphExplorer(
            tiny_network, zone_backend=backend).explore()
        assert result.complete
        assert result.visited == TINY_VISITED
        assert result.transitions == TINY_TRANSITIONS

    def test_tiny_psm_stats_pinned(self, tiny_network, backend):
        stats = zone_graph_stats(tiny_network, zone_backend=backend)
        assert stats.states == TINY_VISITED
        assert stats.transitions == TINY_TRANSITIONS

    def test_req1_query_counts_pinned(self, tiny_network, backend):
        result = check_bounded_response(
            tiny_network, "m_Req", "c_Ack", TINY_REQ1_DEADLINE,
            zone_backend=backend)
        assert not result.holds
        assert result.visited == TINY_REQ1_VISITED
        assert result.trace is not None

    def test_req1_tight_deadline_counts_pinned(self, tiny_network,
                                               backend):
        result = check_bounded_response(
            tiny_network, "m_Req", "c_Ack", TINY_REQ1_TIGHT_DEADLINE,
            zone_backend=backend)
        assert not result.holds
        assert result.visited == TINY_REQ1_TIGHT_VISITED

    def test_req1_witness_identical_across_backends(self, tiny_network,
                                                    backend):
        result = check_bounded_response(
            tiny_network, "m_Req", "c_Ack", TINY_REQ1_TIGHT_DEADLINE,
            zone_backend=backend)
        reference = check_bounded_response(
            tiny_network, "m_Req", "c_Ack", TINY_REQ1_TIGHT_DEADLINE,
            zone_backend="reference")
        assert result.counterexample == reference.counterexample
        assert result.trace == reference.trace


def _reduced_zone_graph(network, backend, lazy):
    """Antichain of maximal stored zones per discrete configuration."""
    explorer = ZoneGraphExplorer(
        network, zone_backend=backend, lazy_subsumption=lazy)
    per_key: dict = {}
    result = explorer.explore(
        visit=lambda s: per_key.setdefault(s.key(), []).append(s.zone))
    graph = set()
    for key, zones in per_key.items():
        for zone in zones:
            if any(other is not zone and other.includes(zone)
                   and not zone.includes(other) for other in zones):
                continue
            graph.add((key, zone.frozen()))
    return result, graph


@pytest.mark.parametrize("backend", BACKENDS)
def test_lazy_subsumption_preserves_reduced_graph(tiny_network, backend):
    eager, eager_graph = _reduced_zone_graph(
        tiny_network, backend, lazy=False)
    lazy, lazy_graph = _reduced_zone_graph(
        tiny_network, backend, lazy=True)
    assert eager.visited == TINY_VISITED
    assert lazy.visited <= eager.visited
    assert lazy.transitions <= eager.transitions
    assert lazy_graph == eager_graph


@pytest.mark.parametrize("backend", BACKENDS)
def test_lazy_subsumption_same_verdicts(tiny_network, backend):
    eager = check_bounded_response(
        tiny_network, "m_Req", "c_Ack", TINY_REQ1_DEADLINE,
        zone_backend=backend)
    lazy = check_bounded_response(
        tiny_network, "m_Req", "c_Ack", TINY_REQ1_DEADLINE,
        zone_backend=backend, lazy_subsumption=True)
    assert eager.holds == lazy.holds


@pytest.mark.parametrize("backend", BACKENDS)
def test_repeated_explore_uses_cached_plans(tiny_network, backend):
    explorer = ZoneGraphExplorer(tiny_network, zone_backend=backend)
    first = explorer.explore()
    assert explorer._plans  # plans memoized during the first run
    second = explorer.explore()
    assert (first.visited, first.transitions) == \
        (second.visited, second.transitions)


@pytest.mark.parametrize("backend", BACKENDS)
def test_deferred_range_error_still_raised(backend):
    from repro.ta.builder import NetworkBuilder

    net = NetworkBuilder("n")
    net.int_var("v", 0, 0, 2)
    a = net.automaton("A")
    a.location("L", initial=True)
    a.loop("L", update="v = v + 1")
    network = net.build()
    with pytest.raises(ModelError, match="outside"):
        ZoneGraphExplorer(network, zone_backend=backend).explore()
