"""Shared fixtures: miniature PIMs and schemes for fast verification.

The full infusion-pump case study takes minutes to model-check, so
unit and integration tests use *tiny* models with single-digit
constants — same structure, 100× smaller zone graphs.  The heavyweight
paper numbers live in ``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.core.pim import PIM
from repro.core.scheme import (
    DeliveryMechanism,
    FaultSpec,
    ImplementationScheme,
    InputSpec,
    InvocationKind,
    InvocationSpec,
    IOSpec,
    OutputSpec,
    ReadMechanism,
    ReadPolicy,
    SignalType,
)
from repro.ta.builder import NetworkBuilder
from repro.ta.model import Network


def build_tiny_network(*, prime: int = 4, deadline: int = 10,
                       think: int = 15) -> Network:
    """One-input/one-output request-ack PIM with tiny constants."""
    net = NetworkBuilder("tiny_pim", constants={
        "PRIME": prime, "DEADLINE": deadline, "THINK": think})
    net.channel("m_Req")
    net.channel("c_Ack")
    m = net.automaton("M", clocks=["x"])
    m.location("Idle", initial=True)
    m.location("Busy", invariant="x <= DEADLINE")
    m.edge("Idle", "Busy", sync="m_Req?", update="x = 0")
    m.edge("Busy", "Idle", guard="x >= PRIME", sync="c_Ack!",
           update="x = 0")
    env = net.automaton("ENV", clocks=["ex"])
    env.location("Rest", initial=True)
    env.location("Wait")
    env.edge("Rest", "Wait", guard="ex >= THINK", sync="m_Req!",
             update="ex = 0")
    env.edge("Wait", "Rest", sync="c_Ack?", update="ex = 0")
    return net.build()


def build_tiny_pim(**kwargs) -> PIM:
    return PIM(network=build_tiny_network(**kwargs), controller="M",
               environment="ENV")


def build_tiny_scheme(*, buffer_size: int = 2, period: int = 5,
                      wcet: int = 1,
                      read_policy: ReadPolicy = ReadPolicy.READ_ALL,
                      input_mechanism: ReadMechanism =
                      ReadMechanism.INTERRUPT,
                      polling_interval: int | None = None,
                      delivery: DeliveryMechanism =
                      DeliveryMechanism.BUFFER,
                      invocation_kind: InvocationKind =
                      InvocationKind.PERIODIC,
                      fault_k: int = 0,
                      fault_r: int = 1,
                      fault_eps: int = 0,
                      preemptions: int = 0,
                      preempt_min: int = 0,
                      preempt_max: int = 0,
                      ) -> ImplementationScheme:
    """A scheme sized to keep the tiny PSM's zone graph small."""
    signal = SignalType.LATCHED \
        if input_mechanism is ReadMechanism.POLLING else SignalType.PULSE
    if invocation_kind is InvocationKind.PREEMPTIVE:
        invocation = InvocationSpec(
            kind=invocation_kind, period=period, bcet=0, wcet=wcet,
            preemptions=preemptions, preempt_min=preempt_min,
            preempt_max=preempt_max)
    elif invocation_kind is InvocationKind.PERIODIC:
        invocation = InvocationSpec(kind=invocation_kind, period=period,
                                    bcet=0, wcet=wcet)
    else:
        invocation = InvocationSpec(
            kind=invocation_kind, period=None, bcet=0, wcet=wcet,
            latency_min=0, latency_max=2, min_separation=max(wcet, 1))
    return ImplementationScheme(
        name="tiny-scheme",
        inputs={"m_Req": InputSpec(
            signal=signal, mechanism=input_mechanism,
            delay_min=1, delay_max=2,
            polling_interval=polling_interval)},
        outputs={"c_Ack": OutputSpec(
            mechanism=ReadMechanism.INTERRUPT, delay_min=1,
            delay_max=2)},
        io_inputs={"m_Req": IOSpec(delivery=delivery,
                                   buffer_size=buffer_size,
                                   read_policy=read_policy)},
        io_outputs={"c_Ack": IOSpec(delivery=delivery,
                                    buffer_size=buffer_size)},
        invocation=invocation,
        faults=FaultSpec(max_losses=fault_k, replicas=fault_r,
                         jitter=fault_eps),
    ).validate()


@pytest.fixture
def tiny_pim() -> PIM:
    return build_tiny_pim()


@pytest.fixture
def tiny_scheme() -> ImplementationScheme:
    return build_tiny_scheme()
