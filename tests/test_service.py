"""Tests for the verification daemon (``repro serve``) and its parts.

Unit layers first — the framed wire protocol, the bounded LRU verdict
cache, the warm pre-forked worker pool — then in-process integration
tests that boot a real :class:`VerificationServer` on an ephemeral
port (or a unix socket) and drive it through
:class:`~repro.service.client.ServiceClient`:

* the acceptance criterion: a repeated portfolio submission is served
  entirely from the verdict cache on the second run, with rows
  **bit-identical** to a local :class:`PortfolioVerifier` run;
* concurrent clients submitting the same job resolve to exactly one
  exploration plus N cache hits (the memo's in-flight claim);
* graceful drain: jobs queued at shutdown come back as explicit
  ``cancelled`` rows, never dropped frames;
* a worker killed mid-job yields a structured error row and a
  recycled worker — not a hung server;
* clients reconnect after a restart on the same unix socket path.
"""

from __future__ import annotations

import contextlib
import json
import os
import signal
import socket
import struct
import threading
import time

import pytest

from repro.apps.schemes import scheme_grid
from repro.core.framework import TimingVerificationFramework
from repro.mc.memo import MemoEntry
from repro.mc.parallel import EngineConfig
from repro.mc.portfolio import (
    PortfolioJob,
    PortfolioVerifier,
    _compute_obligation,
    _ProcessConfig,
    _ProcessJobSpec,
    portfolio_jobs,
)
from repro.service.cache import BoundedVerdictMemo
from repro.service.client import ServiceClient, ServiceError, parse_address
from repro.service.protocol import (
    MAX_FRAME,
    ProtocolError,
    decode_jobs,
    encode_frame,
    encode_jobs,
    recv_frame,
    send_frame,
)
from repro.service.scheduler import JobScheduler
from repro.service.server import (
    VerificationServer,
    decode_submission,
    resolve_callable,
)
from repro.service.workers import WarmWorker, WarmWorkerPool, WorkerDied

from tests.conftest import build_tiny_pim, build_tiny_scheme

DEADLINE = 10
CHANNELS = dict(input_channel="m_Req", output_channel="c_Ack")

#: Keys legitimately differing between a memoized and an explored row.
VOLATILE = ("seconds", "memo_hit", "derived_from")


def tiny_jobs(schemes=None):
    if schemes is None:
        schemes = scheme_grid(build_tiny_scheme,
                              buffer_size=(1, 2, 3), period=(4, 5))
    return portfolio_jobs(build_tiny_pim(), schemes,
                          deadline_ms=DEADLINE, measure_suprema=True,
                          **CHANNELS)


def stripped(row: dict) -> dict:
    return {k: v for k, v in row.items() if k not in VOLATILE}


def local_rows(jobs) -> list[dict]:
    """The daemon's ground truth: a local run's rows, JSON-round-
    tripped exactly like the wire does, volatile keys stripped."""
    rows = [r.row() for r in PortfolioVerifier(jobs=1).run(jobs)]
    return [stripped(json.loads(json.dumps(row, default=str)))
            for row in rows]


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_frame_roundtrip(self):
        a, b = socket.socketpair()
        with a, b:
            message = {"op": "ping", "nested": {"n": [1, 2, 3]}}
            send_frame(a, message)
            assert recv_frame(b) == message

    def test_clean_eof_is_none(self):
        a, b = socket.socketpair()
        with b:
            a.close()
            assert recv_frame(b) is None

    def test_eof_mid_header_is_protocol_error(self):
        a, b = socket.socketpair()
        with b:
            a.sendall(b"\x00\x00")
            a.close()
            with pytest.raises(ProtocolError):
                recv_frame(b)

    def test_eof_mid_payload_is_protocol_error(self):
        a, b = socket.socketpair()
        with b:
            a.sendall(struct.pack("!I", 100) + b"short")
            a.close()
            with pytest.raises(ProtocolError):
                recv_frame(b)

    def test_oversized_length_rejected_before_allocation(self):
        a, b = socket.socketpair()
        with a, b:
            a.sendall(struct.pack("!I", MAX_FRAME + 1))
            with pytest.raises(ProtocolError, match="MAX_FRAME"):
                recv_frame(b)

    def test_payload_must_be_a_json_object(self):
        a, b = socket.socketpair()
        with a, b:
            payload = b"[1, 2]"
            a.sendall(struct.pack("!I", len(payload)) + payload)
            with pytest.raises(ProtocolError, match="JSON object"):
                recv_frame(b)
            payload = b"not json"
            a.sendall(struct.pack("!I", len(payload)) + payload)
            with pytest.raises(ProtocolError, match="not JSON"):
                recv_frame(b)

    def test_encode_frame_shape(self):
        frame = encode_frame({"a": 1})
        (length,) = struct.unpack("!I", frame[:4])
        assert length == len(frame) - 4
        assert json.loads(frame[4:]) == {"a": 1}

    def test_jobs_pickle_roundtrip(self):
        jobs = tiny_jobs([build_tiny_scheme()])
        decoded = decode_jobs(encode_jobs(jobs))
        assert len(decoded) == 1
        assert decoded[0].name == jobs[0].name
        assert decoded[0].deadline_ms == jobs[0].deadline_ms

    def test_jobs_pickle_rejects_garbage(self):
        import base64
        import pickle

        with pytest.raises(ProtocolError, match="base64"):
            decode_jobs(42)
        with pytest.raises(ProtocolError, match="base64"):
            decode_jobs("@@not-base64@@")
        not_a_list = base64.b64encode(
            pickle.dumps({"a": 1})).decode("ascii")
        with pytest.raises(ProtocolError, match="list"):
            decode_jobs(not_a_list)

    def test_parse_address(self):
        assert parse_address("localhost:99") == \
            (socket.AF_INET, ("localhost", 99))
        assert parse_address(":7315") == \
            (socket.AF_INET, ("127.0.0.1", 7315))
        assert parse_address("unix:/tmp/x.sock") == \
            (socket.AF_UNIX, "/tmp/x.sock")
        assert parse_address("/tmp/x.sock") == \
            (socket.AF_UNIX, "/tmp/x.sock")
        assert parse_address(("10.0.0.1", 5)) == \
            (socket.AF_INET, ("10.0.0.1", 5))
        with pytest.raises(ValueError):
            parse_address("nonsense")


# ----------------------------------------------------------------------
# Bounded verdict cache
# ----------------------------------------------------------------------
class _AnyModel:
    """Covers-everything stand-in (no erased sites)."""

    erased = ()


def _entry(name: str) -> MemoEntry:
    return MemoEntry(donor=name, erased=(), maxima={},
                     constraints=None, original=None, relaxed=None)


class TestBoundedVerdictMemo:
    def test_evicts_least_recently_used_key(self):
        memo = BoundedVerdictMemo(max_entries=2)
        memo.record(("k1",), _entry("a"))
        memo.record(("k2",), _entry("b"))
        memo.record(("k3",), _entry("c"))
        assert memo.evictions == 1
        assert memo.find(("k1",), _AnyModel()) is None
        assert memo.find(("k2",), _AnyModel()) is not None
        assert memo.find(("k3",), _AnyModel()) is not None
        assert len(memo) == 2

    def test_find_refreshes_recency(self):
        memo = BoundedVerdictMemo(max_entries=2)
        memo.record(("k1",), _entry("a"))
        memo.record(("k2",), _entry("b"))
        assert memo.find(("k1",), _AnyModel()) is not None  # refresh
        memo.record(("k3",), _entry("c"))
        # k2, not k1, was the least recently used.
        assert memo.find(("k1",), _AnyModel()) is not None
        assert memo.find(("k2",), _AnyModel()) is None

    def test_eviction_drops_every_entry_of_the_key(self):
        memo = BoundedVerdictMemo(max_entries=1)
        memo.record(("k1",), _entry("a"))
        memo.record(("k1",), _entry("a2"))
        assert len(memo) == 2
        memo.record(("k2",), _entry("b"))
        assert len(memo) == 1
        assert memo.evictions == 1

    def test_stats_and_validation(self):
        memo = BoundedVerdictMemo(max_entries=4)
        memo.record(("k",), _entry("a"))
        memo.find(("k",), _AnyModel())
        stats = memo.stats()
        assert stats["keys"] == 1
        assert stats["max_entries"] == 4
        assert stats["evictions"] == 0
        assert stats["hits"] == 1
        with pytest.raises(ValueError):
            BoundedVerdictMemo(max_entries=0)

    def test_inflight_protocol_survives_subclassing(self):
        memo = BoundedVerdictMemo(max_entries=2)
        assert memo.claim(("k",)) is None
        waiter = memo.claim(("k",))
        assert waiter is not None and not waiter.event.is_set()
        memo.commit(("k",), _entry("a"))
        assert waiter.event.is_set() and not waiter.failed
        assert memo.find(("k",), _AnyModel()) is not None


# ----------------------------------------------------------------------
# Warm worker pool
# ----------------------------------------------------------------------
def _job_payload():
    """A real (config, spec) pair runnable on a warm worker."""
    job = PortfolioJob(name="tiny", pim=build_tiny_pim(),
                       scheme=build_tiny_scheme(),
                       deadline_ms=DEADLINE, **CHANNELS)
    obligation = _compute_obligation(job, TimingVerificationFramework())
    config = _ProcessConfig(
        engine=EngineConfig.capture(jobs=None), max_states=2_000_000,
        fused=False, obligations=(obligation,), reuse=True)
    return config, _ProcessJobSpec(index=0, job=job, obligation=0)


class TestWarmWorkerPool:
    def test_preforks_min_idle_and_runs_jobs(self):
        with WarmWorkerPool(2) as pool:
            stats = pool.stats()
            assert stats["idle"] == 2 and stats["spawned"] == 2
            config, spec = _job_payload()
            row = pool.run(config, spec)
            assert row.status == "ok"
            assert pool.stats()["executions"] == 1

    def test_recycles_after_execution_limit(self):
        with WarmWorkerPool(1, recycle_after_executions=1) as pool:
            config, spec = _job_payload()
            assert pool.run(config, spec).status == "ok"
            assert pool.run(config, spec).status == "ok"
            stats = pool.stats()
            assert stats["recycled"] >= 1
            assert stats["spawned"] >= 2

    def test_health_check_replaces_dead_idle_workers(self):
        with WarmWorkerPool(2) as pool:
            victim = pool._idle[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.process.join(5)
            assert pool.health_check(timeout=5.0) == 1
            stats = pool.stats()
            assert stats["idle"] == 2
            assert all(w.ping() for w in pool._idle)

    def test_killed_mid_job_raises_workerdied_and_recovers(
            self, monkeypatch):
        original = WarmWorker.request
        state: dict = {}

        def killing(self, message, timeout=None):
            if message[0] == "run" and "killed" not in state:
                state["killed"] = self.pid
                os.kill(self.pid, signal.SIGKILL)
                self.process.join(5)
            return original(self, message, timeout)

        monkeypatch.setattr(WarmWorker, "request", killing)
        with WarmWorkerPool(1) as pool:
            config, spec = _job_payload()
            with pytest.raises(WorkerDied):
                pool.run(config, spec)
            assert pool.stats()["recycled"] >= 1
            # The replacement worker serves the next job fine.
            assert pool.run(config, spec).status == "ok"

    def test_failed_report_keeps_the_worker(self, monkeypatch):
        monkeypatch.setattr(
            WarmWorker, "request",
            lambda self, message, timeout=None: ("failed", "boom"))
        with WarmWorkerPool(1) as pool:
            with pytest.raises(WorkerDied, match="boom"):
                pool.run(object(), object())
            # A "failed" report means the worker itself is healthy.
            assert pool.stats()["recycled"] == 0
            assert pool.stats()["idle"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            WarmWorkerPool(0)
        with pytest.raises(ValueError):
            WarmWorkerPool(1, min_idle=2)
        with pytest.raises(ValueError):
            WarmWorkerPool(1, recycle_after_executions=0)

    def test_shutdown_refuses_new_work(self):
        pool = WarmWorkerPool(1)
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.acquire()


# ----------------------------------------------------------------------
# In-process daemon harness
# ----------------------------------------------------------------------
class Daemon:
    """A real server on an ephemeral port, run on a thread's loop."""

    def __init__(self, *, path=None, **scheduler_kwargs):
        scheduler_kwargs.setdefault("jobs", 2)
        self.scheduler = JobScheduler(**scheduler_kwargs)
        where = {"path": path} if path else {"port": 0}
        self.server = VerificationServer(
            self.scheduler, install_signals=False, **where)
        self._started = threading.Event()
        self._boot_error: BaseException | None = None
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        if not self._started.wait(30) or self._boot_error:
            raise RuntimeError(
                f"server failed to start: {self._boot_error}")

    def _run(self) -> None:
        import asyncio

        async def main():
            await self.server.start()
            self._started.set()
            await self.server.serve()

        try:
            asyncio.run(main())
        except BaseException as exc:  # surface boot/serve failures
            self._boot_error = exc
            self._started.set()

    def client(self) -> ServiceClient:
        return ServiceClient(self.server.address, timeout=120.0)

    def stop(self, timeout: float = 60.0) -> None:
        with contextlib.suppress(RuntimeError):
            self.server.request_shutdown()
        self.thread.join(timeout)
        assert not self.thread.is_alive(), \
            "server thread failed to drain"
        if self._boot_error is not None:
            raise self._boot_error


@contextlib.contextmanager
def daemon(**kwargs):
    d = Daemon(**kwargs)
    try:
        yield d
    finally:
        d.stop()


# ----------------------------------------------------------------------
# Daemon integration
# ----------------------------------------------------------------------
class TestDaemon:
    def test_ping_stats_and_unknown_op(self):
        with daemon() as d, d.client() as client:
            pong = client.ping()
            assert pong["type"] == "pong"
            assert pong["pid"] == os.getpid()
            assert pong["draining"] is False
            stats = client.stats()
            assert stats["executor"] == "thread"
            assert set(stats["jobs"]) >= {"submitted", "completed",
                                          "cancelled", "errors"}
            with pytest.raises(ServiceError, match="unknown op"):
                client._roundtrip({"op": "frobnicate"})

    def test_second_run_served_entirely_from_cache(self):
        """The acceptance criterion: repeated portfolio → 100%
        cache-hit second run, rows bit-identical to a local
        PortfolioVerifier run."""
        jobs = tiny_jobs()
        expected = local_rows(jobs)
        with daemon(jobs=2, dispatch_threads=4) as d:
            with d.client() as client:
                first = client.run_jobs(jobs)
                second = client.run_jobs(jobs)
            hits = d.scheduler.memo.hits
        assert [stripped(r) for r in first.ordered_rows()] == expected
        assert [stripped(r) for r in second.ordered_rows()] == expected
        assert "explored" in first.origins()
        assert second.origins() == ["memo"] * len(jobs)
        assert (second.stats or {})["cache"]["hits"] >= len(jobs)
        assert hits >= len(jobs)

    def test_concurrent_clients_one_exploration_n_hits(self):
        jobs = tiny_jobs([build_tiny_scheme()])
        with daemon(jobs=4, dispatch_threads=4) as d:
            outcomes: list = [None] * 4
            errors: list = []

            def submit(i: int) -> None:
                try:
                    with d.client() as client:
                        outcomes[i] = client.run_jobs(jobs)
                except BaseException as exc:
                    errors.append(exc)

            threads = [threading.Thread(target=submit, args=(i,))
                       for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(120)
            assert not errors
        origins = [out.origins()[0] for out in outcomes]
        assert origins.count("explored") == 1
        assert origins.count("memo") == 3
        rows = [stripped(out.ordered_rows()[0]) for out in outcomes]
        assert all(row == rows[0] for row in rows)

    def test_declarative_submission_over_the_wire(self):
        with daemon(jobs=2) as d, d.client() as client:
            outcome = client.run({
                "op": "portfolio",
                "pim_factory": "tests.conftest:build_tiny_pim",
                "scheme_factory": "tests.conftest:build_tiny_scheme",
                "axes": {"buffer_size": [1, 2]},
                "deadline_ms": DEADLINE,
                **CHANNELS,
            })
        assert outcome.jobs == 2
        assert [r["status"] for r in outcome.ordered_rows()] == \
            ["ok", "ok"]

    def test_bad_submission_is_an_error_frame_not_a_crash(self):
        with daemon() as d, d.client() as client:
            with pytest.raises(ServiceError, match="jobs_pickle"):
                client.run({"op": "submit", "jobs_pickle": "@@@"})
            with pytest.raises(ServiceError, match="missing"):
                client.run({"op": "verify"})
            # The connection and server both survive.
            assert client.ping()["type"] == "pong"

    def test_drain_cancels_queued_jobs_explicitly(self):
        """Graceful-drain semantics (what SIGTERM triggers): the
        running job finishes, queued jobs come back as ``cancelled``
        rows, and the client still gets every frame plus ``done``."""
        jobs = tiny_jobs()
        d = Daemon(jobs=1, dispatch_threads=1)
        try:
            started = threading.Event()
            release = threading.Event()
            original = d.scheduler._execute_job

            def blocking(index, job):
                row = original(index, job)
                if index == 0:
                    started.set()
                    release.wait(60)
                return row

            d.scheduler._execute_job = blocking
            box: dict = {}

            def submit() -> None:
                with d.client() as client:
                    box["out"] = client.run_jobs(jobs)

            t = threading.Thread(target=submit)
            t.start()
            assert started.wait(60)
            d.server.request_shutdown()
            deadline = time.monotonic() + 30
            while not d.scheduler.draining:
                assert time.monotonic() < deadline
                time.sleep(0.02)
            release.set()
            t.join(120)
            assert not t.is_alive()
        finally:
            release.set()
            d.stop()
        out = box["out"]
        statuses = [r["status"] for r in out.ordered_rows()]
        assert statuses[0] == "ok"
        assert statuses[1:] == ["cancelled"] * 5
        cancelled = out.ordered_rows()[1]
        assert "shutdown" in cancelled["error"]
        assert out.origins()[1:] == ["cancelled"] * 5

    def test_shutdown_op_drains_the_server(self):
        with daemon() as d:
            with d.client() as client:
                client.shutdown_server()
            d.thread.join(60)
            assert not d.thread.is_alive()

    def test_reconnect_after_restart_on_same_unix_path(self, tmp_path):
        path = str(tmp_path / "repro.sock")
        jobs = tiny_jobs([build_tiny_scheme()])
        first = Daemon(path=path, jobs=1)
        try:
            with first.client() as client:
                before = client.run_jobs(jobs)
        finally:
            first.stop()
        second = Daemon(path=path, jobs=1)
        try:
            with second.client() as client:
                after = client.run_jobs(jobs)
        finally:
            second.stop()
        # Fresh server, fresh cache: explored again, same row.
        assert before.origins() == ["explored"]
        assert after.origins() == ["explored"]
        assert stripped(after.ordered_rows()[0]) == \
            stripped(before.ordered_rows()[0])

    def test_killed_worker_mid_job_error_row_not_hung_server(
            self, monkeypatch):
        original = WarmWorker.request
        state: dict = {}

        def killing(self, message, timeout=None):
            if message[0] == "run" and "killed" not in state:
                state["killed"] = self.pid
                os.kill(self.pid, signal.SIGKILL)
                self.process.join(5)
            return original(self, message, timeout)

        monkeypatch.setattr(WarmWorker, "request", killing)
        jobs = tiny_jobs([build_tiny_scheme()])
        with daemon(jobs=1, executor="process", workers=1) as d:
            with d.client() as client:
                bad = client.run_jobs(jobs)
                good = client.run_jobs(jobs)
                assert client.ping()["type"] == "pong"
            assert d.scheduler.workers.stats()["recycled"] >= 1
            assert d.scheduler.memo.failures == 1
        row = bad.ordered_rows()[0]
        assert row["status"] == "error"
        assert "WorkerDied" in row["error"]
        # The recycled worker serves the retry; the failed commit left
        # no cache entry, so it explores.
        assert good.origins() == ["explored"]
        assert good.ordered_rows()[0]["status"] == "ok"

    def test_worker_recycle_across_requests(self):
        schemes = scheme_grid(build_tiny_scheme, period=(4, 5))
        jobs = tiny_jobs(schemes)
        with daemon(jobs=1, executor="process", workers=1,
                    recycle_after_executions=1) as d:
            with d.client() as client:
                outcome = client.run_jobs(jobs)
            stats = d.scheduler.workers.stats()
        assert [r["status"] for r in outcome.ordered_rows()] == \
            ["ok", "ok"]
        assert stats["executions"] == 2
        assert stats["recycled"] >= 1
        assert stats["spawned"] >= 2


# ----------------------------------------------------------------------
# Submission decoding (no server needed)
# ----------------------------------------------------------------------
class TestDecodeSubmission:
    def test_by_value(self):
        jobs = tiny_jobs([build_tiny_scheme()])
        decoded = decode_submission(
            {"op": "submit", "jobs_pickle": encode_jobs(jobs)})
        assert [j.name for j in decoded] == [jobs[0].name]

    def test_declarative_grid(self):
        jobs = decode_submission({
            "op": "portfolio",
            "pim_factory": "tests.conftest:build_tiny_pim",
            "scheme_factory": "tests.conftest:build_tiny_scheme",
            "axes": {"buffer_size": [1, 2], "period": [4, 5]},
            "deadline_ms": DEADLINE,
            **CHANNELS,
        })
        assert len(jobs) == 4
        assert all(j.deadline_ms == DEADLINE for j in jobs)

    def test_missing_fields(self):
        with pytest.raises(ProtocolError, match="missing"):
            decode_submission({"op": "verify",
                               "pim_factory": "x:y"})

    def test_resolve_callable(self):
        assert resolve_callable(
            "tests.conftest:build_tiny_pim") is build_tiny_pim
        with pytest.raises(ValueError):
            resolve_callable("no-colon")
        with pytest.raises(ValueError):
            resolve_callable("json:__version__")  # not callable


# ----------------------------------------------------------------------
# The monitor op
# ----------------------------------------------------------------------
def simulated_trace(seed=0, trials=3):
    """One closed-loop run of the tiny platform, as trace events."""
    from repro.codegen import build_controller
    from repro.envs import ClosedLoopRequester
    from repro.platforms import ImplementedSystem

    pim, scheme = build_tiny_pim(), build_tiny_scheme()
    controller = build_controller(pim.m,
                                  constants=pim.network.constants)
    system = ImplementedSystem(controller, scheme,
                               pim.input_channels(),
                               pim.output_channels(), seed=seed)
    requester = ClosedLoopRequester(system, "m_Req", "c_Ack",
                                    count=trials, think_ms=(20, 40),
                                    timeout_ms=500, first_press_ms=5)
    system.start()
    requester.start()
    system.run_for(trials * 600 + 1000)
    return list(system.trace)


class TestMonitorOp:
    FACTORIES = dict(pim_factory="tests.conftest:build_tiny_pim",
                     scheme_factory="tests.conftest:build_tiny_scheme")

    def test_conforming_trace_over_the_wire(self):
        trace = simulated_trace()
        with daemon() as d, d.client() as client:
            outcome = client.monitor(
                [trace], requirement=["m_Req", "c_Ack", 30],
                **self.FACTORIES)
        rows = outcome.ordered_rows()
        assert outcome.origins() == ["monitor"]
        assert rows[0]["status"] == "ok"
        assert rows[0]["conforming"] is True
        assert rows[0]["observed"] > 0

    def test_deviation_row_names_the_bound(self):
        import dataclasses
        trace = simulated_trace()
        bad = list(trace)
        for i, event in enumerate(bad):
            if event.kind == "c":
                bad[i] = dataclasses.replace(
                    event, time_us=event.time_us + 400_000)
                break
        with daemon() as d, d.client() as client:
            outcome = client.monitor(
                [trace, bad], requirement=["m_Req", "c_Ack", 30],
                **self.FACTORIES)
        good_row, bad_row = outcome.ordered_rows()
        assert good_row["conforming"] is True
        assert bad_row["conforming"] is False
        deviation = bad_row["deviation"]
        assert deviation["channel"] == "c_Ack"
        assert deviation["delta_us"] > 0

    def test_model_cached_across_requests(self):
        trace = simulated_trace()
        with daemon() as d, d.client() as client:
            client.monitor([trace], **self.FACTORIES)
            client.monitor([trace], **self.FACTORIES)
            stats = client.stats()
            models = len(d.scheduler._monitor_models)
        assert models == 1
        assert stats["monitor"] == {"models": 1, "traces": 2}

    def test_missing_fields_rejected(self):
        with daemon() as d, d.client() as client:
            with pytest.raises(ServiceError, match="missing"):
                client._roundtrip({"op": "monitor",
                                   "traces": [[]]})


class TestDecodeMonitor:
    def test_roundtrip(self):
        from repro.monitor import event_to_dict
        from repro.service.server import decode_monitor

        trace = simulated_trace(trials=2)
        psm, traces, requirement = decode_monitor({
            "op": "monitor",
            "pim_factory": "tests.conftest:build_tiny_pim",
            "scheme_factory": "tests.conftest:build_tiny_scheme",
            "traces": [[event_to_dict(e) for e in trace]],
            "requirement": ["m_Req", "c_Ack", 30],
        })
        assert traces == [trace]
        assert requirement == ("m_Req", "c_Ack", 30)
        assert psm.network is not None

    def test_empty_traces_rejected(self):
        from repro.service.server import decode_monitor

        with pytest.raises(ProtocolError, match="non-empty"):
            decode_monitor({"op": "monitor",
                            "pim_factory": "tests.conftest:build_tiny_pim",
                            "traces": []})
