"""Fail-fast validation of the ``REPRO_*`` environment variables.

Each variable gets the same three checks: an invalid value raises
:class:`~repro.envvars.EnvVarError` whose one-line message names the
variable, a valid value resolves, and unset/blank falls back to the
default.  The point of the satellite bugfix is the *where*: the error
fires at the resolution entry point (CLI startup, daemon boot), not as
a deep traceback at first use inside a worker.
"""

from __future__ import annotations

import pytest

from repro.envvars import EnvVarError, env_choice, env_int
from repro.mc.parallel import ENV_JOBS, resolve_jobs
from repro.mc.portfolio import ENV_EXECUTOR, resolve_executor
from repro.ta.bounds import ENV_ABSTRACTION, EXTRA_M, resolve_abstraction
from repro.zones.backend import ENV_VAR as ENV_ZONE_BACKEND
from repro.zones.backend import requested_backend


class TestHelpers:
    def test_env_choice_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_CHOICE", raising=False)
        assert env_choice("REPRO_TEST_CHOICE", ("a", "b"),
                          default="a") == "a"

    def test_env_choice_blank_returns_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_CHOICE", "   ")
        assert env_choice("REPRO_TEST_CHOICE", ("a", "b"),
                          default="b") == "b"

    def test_env_choice_valid_passes_through(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_CHOICE", "b")
        assert env_choice("REPRO_TEST_CHOICE", ("a", "b")) == "b"

    def test_env_choice_invalid_is_one_line_and_named(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_CHOICE", "zzz")
        with pytest.raises(EnvVarError) as err:
            env_choice("REPRO_TEST_CHOICE", ("a", "b"))
        message = str(err.value)
        assert "\n" not in message
        assert "REPRO_TEST_CHOICE" in message
        assert "'zzz'" in message
        assert "a" in message and "b" in message

    def test_env_int_valid(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_INT", " 7 ")
        assert env_int("REPRO_TEST_INT", minimum=1) == 7

    def test_env_int_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_INT", raising=False)
        assert env_int("REPRO_TEST_INT", default=3) == 3

    @pytest.mark.parametrize("raw", ["two", "1.5", "", " "])
    def test_env_int_non_integer(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TEST_INT", raw)
        if not raw.strip():
            assert env_int("REPRO_TEST_INT", default=None) is None
            return
        with pytest.raises(EnvVarError) as err:
            env_int("REPRO_TEST_INT", minimum=1)
        assert "REPRO_TEST_INT" in str(err.value)

    def test_env_int_below_minimum(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_INT", "0")
        with pytest.raises(EnvVarError) as err:
            env_int("REPRO_TEST_INT", minimum=1)
        assert ">= 1" in str(err.value)


class TestReproJobs:
    @pytest.fixture(autouse=True)
    def _no_default_jobs(self, monkeypatch):
        # set_default_jobs overrides the env; clear it for these tests
        import repro.mc.parallel as parallel
        monkeypatch.setattr(parallel, "_default_jobs", None)

    def test_valid(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "3")
        assert resolve_jobs(None) == 3

    def test_invalid_names_variable(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "two")
        with pytest.raises(EnvVarError) as err:
            resolve_jobs(None)
        assert ENV_JOBS in str(err.value)
        assert "\n" not in str(err.value)

    def test_zero_rejected(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "0")
        with pytest.raises(EnvVarError):
            resolve_jobs(None)

    def test_unset_falls_back(self, monkeypatch):
        monkeypatch.delenv(ENV_JOBS, raising=False)
        assert resolve_jobs(None) is None  # sequential engine


class TestReproExecutor:
    def test_valid(self, monkeypatch):
        monkeypatch.setenv(ENV_EXECUTOR, "process")
        assert resolve_executor(None) == "process"

    def test_invalid_names_variable(self, monkeypatch):
        monkeypatch.setenv(ENV_EXECUTOR, "fork-bomb")
        with pytest.raises(EnvVarError) as err:
            resolve_executor(None)
        message = str(err.value)
        assert ENV_EXECUTOR in message
        assert "thread" in message and "process" in message
        assert "\n" not in message

    def test_unset_defaults_to_thread(self, monkeypatch):
        monkeypatch.delenv(ENV_EXECUTOR, raising=False)
        assert resolve_executor(None) == "thread"

    def test_explicit_argument_still_validated(self):
        with pytest.raises(ValueError):
            resolve_executor("bogus")


class TestReproZoneBackend:
    @pytest.fixture(autouse=True)
    def _no_forced_backend(self, monkeypatch):
        import repro.zones.backend as backend
        monkeypatch.setattr(backend, "_forced", None)

    def test_valid_alias(self, monkeypatch):
        monkeypatch.setenv(ENV_ZONE_BACKEND, "python")
        assert requested_backend() == "reference"

    def test_invalid_names_variable(self, monkeypatch):
        monkeypatch.setenv(ENV_ZONE_BACKEND, "cuda")
        with pytest.raises(EnvVarError) as err:
            requested_backend()
        message = str(err.value)
        assert ENV_ZONE_BACKEND in message
        assert "reference" in message
        assert "\n" not in message

    def test_unset_is_auto(self, monkeypatch):
        monkeypatch.delenv(ENV_ZONE_BACKEND, raising=False)
        assert requested_backend() == "auto"


class TestReproAbstraction:
    @pytest.fixture(autouse=True)
    def _no_forced_abstraction(self, monkeypatch):
        import repro.ta.bounds as bounds
        monkeypatch.setattr(bounds, "_forced", None)

    def test_valid(self, monkeypatch):
        monkeypatch.setenv(ENV_ABSTRACTION, "lu")
        assert resolve_abstraction(None).name == "extra_lu"

    def test_invalid_names_variable(self, monkeypatch):
        monkeypatch.setenv(ENV_ABSTRACTION, "none")
        with pytest.raises(EnvVarError) as err:
            resolve_abstraction(None)
        message = str(err.value)
        assert ENV_ABSTRACTION in message
        assert "extra_m" in message
        assert "\n" not in message

    def test_unset_defaults_to_extra_m(self, monkeypatch):
        monkeypatch.delenv(ENV_ABSTRACTION, raising=False)
        assert resolve_abstraction(None).name == EXTRA_M
