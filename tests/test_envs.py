"""Tests for environment patterns and closed-loop actors."""

import random

import pytest

from repro.codegen import build_controller
from repro.envs import (
    ClosedLoopRequester,
    PatternEnvironment,
    PeriodicPattern,
    RandomPattern,
    ScriptedPattern,
)
from repro.platforms import ImplementedSystem

from tests.conftest import build_tiny_pim, build_tiny_scheme


class TestPatterns:
    def test_scripted_in_order(self):
        pattern = ScriptedPattern([(0, "a"), (5, "b"), (5, "a")])
        arrivals = list(pattern)
        assert [(a.time_ms, a.channel) for a in arrivals] == \
            [(0, "a"), (5, "b"), (5, "a")]
        assert len(pattern) == 3

    def test_scripted_rejects_disorder(self):
        with pytest.raises(ValueError, match="time-ordered"):
            ScriptedPattern([(5, "a"), (0, "b")])

    def test_periodic(self):
        pattern = PeriodicPattern("ch", count=3, period_ms=10,
                                  offset_ms=2)
        times = [a.time_ms for a in pattern]
        assert times == [2, 12, 22]

    def test_periodic_validation(self):
        with pytest.raises(ValueError):
            PeriodicPattern("ch", count=1, period_ms=0)

    def test_random_respects_gaps(self):
        rng = random.Random(1)
        pattern = RandomPattern("ch", count=20, gap_min_ms=3,
                                gap_max_ms=7, rng=rng)
        times = [a.time_ms for a in pattern]
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(3 <= g <= 7 for g in gaps)

    def test_random_validation(self):
        with pytest.raises(ValueError):
            RandomPattern("ch", 1, 5, 3, random.Random(0))


def _system(**kw):
    pim = build_tiny_pim(**kw)
    scheme = build_tiny_scheme()
    ctrl = build_controller(pim.m, constants=pim.network.constants)
    return ImplementedSystem(ctrl, scheme, pim.input_channels(),
                             pim.output_channels(), seed=4)


class TestPatternEnvironment:
    def test_schedules_and_observes(self):
        system = _system()
        env = PatternEnvironment(system)
        tags = env.schedule(ScriptedPattern([(5, "m_Req")]))
        assert tags == [1]
        system.start()
        system.run_for(100)
        assert len(env.observations) == 1
        assert env.observations[0].channel == "c_Ack"

    def test_tags_increment(self):
        system = _system()
        env = PatternEnvironment(system)
        tags = env.schedule(ScriptedPattern(
            [(5, "m_Req"), (60, "m_Req")]))
        assert tags == [1, 2]

    def test_single_observer_slot(self):
        system = _system()
        PatternEnvironment(system)
        with pytest.raises(RuntimeError, match="observer"):
            PatternEnvironment(system)


class TestClosedLoopRequester:
    def test_runs_all_trials(self):
        system = _system()
        requester = ClosedLoopRequester(system, "m_Req", "c_Ack",
                                        count=4, think_ms=(10, 20),
                                        first_press_ms=2)
        system.start()
        requester.start()
        system.run_for(2_000)
        assert requester.requests_made == 4
        assert requester.responses_seen == 4
        assert requester.timeouts == 0
        assert requester.finished

    def test_timeout_path_keeps_going(self):
        # A deaf system (wrong response channel awaited) times out per
        # request but the loop still completes all presses.
        system = _system()
        requester = ClosedLoopRequester(system, "m_Req", "c_Never",
                                        count=2, think_ms=(5, 5),
                                        timeout_ms=50, first_press_ms=2)
        system.start()
        requester.start()
        system.run_for(1_000)
        assert requester.requests_made == 2
        assert requester.timeouts == 2

    def test_single_outstanding_request(self):
        system = _system()
        requester = ClosedLoopRequester(system, "m_Req", "c_Ack",
                                        count=5, think_ms=(10, 15),
                                        first_press_ms=1)
        system.start()
        requester.start()
        system.run_for(2_000)
        presses = system.trace.events(kind="m", channel="m_Req")
        acks = system.trace.events(kind="c", channel="c_Ack")
        # Every press happens after the previous ack (closed loop).
        for press, ack in zip(presses[1:], acks):
            assert press.time_us > ack.time_us
