"""Portfolio scheduler regression pins (cf. test_mc_explorer_regression).

A fixed 2×2 scheme grid over the tiny PIM pins the *exact* per-job
exploration tallies the portfolio verifier produces today — the PIM
obligation sweep, the step-5/6 deadline sweep, the Lemma bounds and
the measured suprema.  Future performance work on the scheduler, the
shared pool or the zone engine must keep these rows bit-identical (or
update the pins in the same commit that proves why they changed), on
every backend and for every worker count.
"""

from __future__ import annotations

import pytest

from repro.apps.schemes import scheme_grid
from repro.mc.portfolio import PortfolioVerifier, portfolio_jobs
from repro.zones.backend import available_backends, set_backend

from tests.conftest import build_tiny_pim, build_tiny_scheme

BACKENDS = available_backends()
DEADLINE = 10

#: name -> (relaxed Δ'_mc, deadline-sweep states, deadline-sweep
#: transitions, {sup name: (value, attained)}) — values produced by
#: the PR-3 implementation, identical on both backends and for every
#: jobs count.
PINS = {
    "tiny-scheme[buffer_size=1,period=4]":
        (19, 148, 170, {"Input-Delay": (6, True),
                        "Output-Delay": (3, True),
                        "M-C delay": (17, True)}),
    "tiny-scheme[buffer_size=1,period=5]":
        (20, 93, 111, {"Input-Delay": (7, True),
                       "Output-Delay": (3, True),
                       "M-C delay": (20, True)}),
    "tiny-scheme[buffer_size=2,period=4]":
        (19, 148, 170, {"Input-Delay": (6, True),
                        "Output-Delay": (3, True),
                        "M-C delay": (17, True)}),
    "tiny-scheme[buffer_size=2,period=5]":
        (20, 93, 111, {"Input-Delay": (7, True),
                       "Output-Delay": (3, True),
                       "M-C delay": (20, True)}),
}
#: Instrumented-PIM sweep size (shared obligation, scheme-independent).
PIM_SWEEP_VISITED = 2


@pytest.fixture(params=BACKENDS)
def backend(request):
    set_backend(request.param)
    yield request.param
    set_backend(None)


@pytest.mark.parametrize("jobs", (1, 4))
def test_portfolio_counts_pinned(backend, jobs):
    schemes = scheme_grid(build_tiny_scheme,
                          buffer_size=(1, 2), period=(4, 5))
    outcome = PortfolioVerifier(jobs=jobs).run(portfolio_jobs(
        build_tiny_pim(), schemes, input_channel="m_Req",
        output_channel="c_Ack", deadline_ms=DEADLINE,
        measure_suprema=True))
    assert outcome.all_ok
    assert [row.name for row in outcome] == list(PINS)
    for row in outcome:
        relaxed, states, transitions, sups = PINS[row.name]
        assert row.report.pim_result.visited == PIM_SWEEP_VISITED
        assert row.constraints_hold is True
        assert row.relaxed_deadline_ms == relaxed
        assert (row.states, row.transitions) == (states, transitions)
        assert row.original_holds is False  # P(10) fails on the PSM
        assert row.relaxed_holds is True    # P(Δ'_mc) holds — Thm 1
        assert row.guarantee
        assert {name: (bound.sup, bound.attained)
                for name, bound in row.sups.items()} == sups
        # Lemma-1 soundness on the pinned rows: measured ≤ verified.
        assert row.sups["Input-Delay"].sup <= \
            row.report.bounds.input_bound
        assert row.sups["Output-Delay"].sup <= \
            row.report.bounds.output_bound
        assert row.sups["M-C delay"].sup <= relaxed
