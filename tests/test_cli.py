"""Tests for the command-line interface (fast commands only; the
heavyweight verify/table1 paths are covered by the benchmarks)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.trials == 60
        assert args.seed == 2015

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])


class TestCommands:
    def test_scheme(self, capsys):
        assert main(["scheme"]) == 0
        out = capsys.readouterr().out
        assert "MC(m_BolusReq)" in out
        assert "poll=380" in out

    def test_render_pim_summary(self, capsys):
        assert main(["render", "--model", "pim"]) == 0
        out = capsys.readouterr().out
        assert "network infusion_pim" in out
        assert "M:" in out

    def test_render_pim_dot(self, capsys):
        assert main(["render", "--model", "pim", "--format",
                     "dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "m_BolusReq" in out

    def test_render_psm_blocks(self, capsys):
        assert main(["render", "--model", "psm", "--format",
                     "blocks"]) == 0
        out = capsys.readouterr().out
        assert "Input-Device" in out

    def test_render_blocks_needs_psm(self, capsys):
        assert main(["render", "--model", "pim", "--format",
                     "blocks"]) == 2

    def test_timeline_read_all(self, capsys):
        assert main(["timeline", "--policy", "read-all"]) == 0
        out = capsys.readouterr().out
        assert "invocation 4: i2, i3" in out

    def test_timeline_read_one(self, capsys):
        assert main(["timeline", "--policy", "read-one"]) == 0
        out = capsys.readouterr().out
        assert "invocation 4: i2" in out
        assert "invocation 5: i3" in out

    def test_simulate_small(self, capsys):
        assert main(["simulate", "--trials", "3", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "M-C delay" in out
        assert "REQ1 violations" in out
