"""Tests for the command-line interface (fast commands only; the
heavyweight verify/table1 paths are covered by the benchmarks)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.trials == 60
        assert args.seed == 2015

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_portfolio_defaults_are_the_16_scheme_grid(self):
        from repro.apps.schemes import case_study_grid_16, scheme_grid
        from repro.cli import _INVOCATION_KINDS, _READ_POLICIES

        args = build_parser().parse_args(["portfolio"])
        grid = (len(args.buffer_sizes) * len(args.periods)
                * len(args.bolus_polls) * len(args.read_policies)
                * len(args.invocation_kinds))
        assert grid == 16
        assert args.deadline == 500
        assert not args.fused
        # The default CLI grid is *the* benchmarked sweep — scheme
        # names must match the committed BENCH record's rows exactly.
        from repro.apps.schemes import case_study_scheme
        cli_schemes = scheme_grid(
            case_study_scheme,
            buffer_size=args.buffer_sizes,
            period=args.periods,
            bolus_poll=args.bolus_polls,
            read_policy=[_READ_POLICIES[v]
                         for v in args.read_policies],
            invocation_kind=[_INVOCATION_KINDS[v]
                             for v in args.invocation_kinds])
        assert [s.name for s in cli_schemes] == \
            [s.name for s in case_study_grid_16()]

    def test_portfolio_grid_syntax(self):
        args = build_parser().parse_args(
            ["portfolio", "--buffer-sizes", "1", "3",
             "--periods", "100", "--read-policies", "read-one",
             "--invocation-kinds", "aperiodic", "--fused"])
        assert args.buffer_sizes == [1, 3]
        assert args.periods == [100]
        assert args.read_policies == ["read-one"]
        assert args.invocation_kinds == ["aperiodic"]
        assert args.fused

    def test_portfolio_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["portfolio", "--read-policies", "sometimes"])


class TestCommands:
    def test_scheme(self, capsys):
        assert main(["scheme"]) == 0
        out = capsys.readouterr().out
        assert "MC(m_BolusReq)" in out
        assert "poll=380" in out

    def test_render_pim_summary(self, capsys):
        assert main(["render", "--model", "pim"]) == 0
        out = capsys.readouterr().out
        assert "network infusion_pim" in out
        assert "M:" in out

    def test_render_pim_dot(self, capsys):
        assert main(["render", "--model", "pim", "--format",
                     "dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "m_BolusReq" in out

    def test_render_psm_blocks(self, capsys):
        assert main(["render", "--model", "psm", "--format",
                     "blocks"]) == 0
        out = capsys.readouterr().out
        assert "Input-Device" in out

    def test_render_blocks_needs_psm(self, capsys):
        assert main(["render", "--model", "pim", "--format",
                     "blocks"]) == 2

    def test_timeline_read_all(self, capsys):
        assert main(["timeline", "--policy", "read-all"]) == 0
        out = capsys.readouterr().out
        assert "invocation 4: i2, i3" in out

    def test_timeline_read_one(self, capsys):
        assert main(["timeline", "--policy", "read-one"]) == 0
        out = capsys.readouterr().out
        assert "invocation 4: i2" in out
        assert "invocation 5: i3" in out

    def test_simulate_small(self, capsys):
        assert main(["simulate", "--trials", "3", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "M-C delay" in out
        assert "REQ1 violations" in out


class TestMonitorCommand:
    def test_parser_defaults(self):
        from repro.apps.infusion import REQ1_DEADLINE_MS

        args = build_parser().parse_args(["monitor"])
        assert args.files == []
        assert args.deadline == REQ1_DEADLINE_MS
        assert args.max_states == 20_000
        assert args.server is None

    def test_simulate_with_live_monitor(self, capsys):
        assert main(["simulate", "--trials", "2", "--seed", "1",
                     "--monitor"]) == 0
        out = capsys.readouterr().out
        assert "monitor: conforming" in out

    def test_monitor_trace_files(self, tmp_path, capsys):
        """A simulated case-study run conforms; a perturbed copy is
        flagged (exit 2) with the deviation in the JSON row."""
        import dataclasses
        import json

        from repro.analysis.table1 import simulate_trials
        from repro.apps.infusion import build_infusion_pim
        from repro.apps.schemes import case_study_scheme
        from repro.monitor import events_to_jsonl

        events = []
        simulate_trials(build_infusion_pim(), case_study_scheme(),
                        trials=2, seed=1,
                        trace_listener=events.append)
        good = tmp_path / "good.jsonl"
        good.write_text(events_to_jsonl(events))
        assert main(["monitor", str(good)]) == 0
        rows = [json.loads(line) for line
                in capsys.readouterr().out.splitlines()]
        assert rows[0]["trace"] == str(good)
        assert rows[0]["conforming"] is True

        late = [dataclasses.replace(e, time_us=e.time_us + 900_000)
                if e.kind == "c" else e for e in events]
        bad = tmp_path / "bad.jsonl"
        bad.write_text(events_to_jsonl(late))
        assert main(["monitor", str(bad)]) == 2
        row = json.loads(capsys.readouterr().out.splitlines()[0])
        assert row["conforming"] is False
        assert row["deviation"]["channel"] == "c_StartInfusion"
