"""Unit and property tests for DBM zones.

The property tests validate the symbolic operations against brute
force: a zone's operations must agree with what they do to every
concrete integer valuation in a bounded box.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.zones.bounds import INF, encode
from repro.zones.dbm import DBM


def box_points(size: int, limit: int):
    """All integer valuations (0, v1, .., v_{size-1}) with vi ≤ limit."""
    for combo in itertools.product(range(limit + 1), repeat=size - 1):
        yield [0, *combo]


# A random constraint: (i, j, value, weak) over `size` clocks.
def constraint_strategy(size: int, max_const: int = 6):
    return st.tuples(
        st.integers(min_value=0, max_value=size - 1),
        st.integers(min_value=0, max_value=size - 1),
        st.integers(min_value=-max_const, max_value=max_const),
        st.booleans(),
    ).filter(lambda t: t[0] != t[1])


class TestConstructors:
    def test_universal_contains_everything(self):
        zone = DBM.universal(3)
        assert zone.contains_point([0, 0, 0])
        assert zone.contains_point([0, 100, 3])
        assert not zone.is_empty()

    def test_zero_contains_only_origin(self):
        zone = DBM.zero(3)
        assert zone.contains_point([0, 0, 0])
        assert not zone.contains_point([0, 1, 0])
        assert not zone.is_empty()

    def test_needs_reference_clock(self):
        with pytest.raises(ValueError):
            DBM(0)

    def test_copy_is_independent(self):
        zone = DBM.zero(2)
        copy = zone.copy()
        copy.up()
        assert zone != copy
        assert not zone.contains_point([0, 5])
        assert copy.contains_point([0, 5])


class TestBasicOperations:
    def test_constrain_upper(self):
        zone = DBM.universal(2)
        zone.constrain(1, 0, encode(5, True))  # x1 <= 5
        assert zone.contains_point([0, 5])
        assert not zone.contains_point([0, 6])

    def test_constrain_lower(self):
        zone = DBM.universal(2)
        zone.constrain(0, 1, encode(-3, True))  # x1 >= 3
        assert zone.contains_point([0, 3])
        assert not zone.contains_point([0, 2])

    def test_constrain_contradiction_empties(self):
        zone = DBM.universal(2)
        zone.constrain(1, 0, encode(2, True))
        zone.constrain(0, 1, encode(-5, True))  # x1 >= 5 ∧ x1 <= 2
        assert zone.is_empty()

    def test_strict_bound_excludes_boundary(self):
        zone = DBM.universal(2)
        zone.constrain(1, 0, encode(5, False))  # x1 < 5
        assert zone.contains_point([0, 4])
        assert not zone.contains_point([0, 5])

    def test_up_removes_upper_bounds_only(self):
        zone = DBM.zero(3)
        zone.up()
        assert zone.contains_point([0, 7, 7])
        # Delay moves all clocks together: differences stay fixed.
        assert not zone.contains_point([0, 7, 6])

    def test_reset_to_zero(self):
        zone = DBM.zero(3)
        zone.up()
        zone.constrain(1, 0, encode(10, True))
        zone.reset(1, 0)
        assert zone.lower_bound(1) == 0
        assert zone.upper_bound(1) == encode(0, True)

    def test_reset_to_value(self):
        zone = DBM.zero(2)
        zone.reset(1, 7)
        assert zone.contains_point([0, 7])
        assert not zone.contains_point([0, 0])

    def test_assign_clock_copies(self):
        zone = DBM.zero(3)
        zone.up()
        zone.constrain(1, 0, encode(4, True))
        zone.constrain(0, 1, encode(-4, True))  # x1 == 4 (+x2 == x1)
        zone.assign_clock(2, 1)
        assert zone.contains_point([0, 4, 4])
        assert not zone.contains_point([0, 4, 3])

    def test_free_removes_all_constraints_on_clock(self):
        zone = DBM.zero(3)
        zone.free(1)
        assert zone.contains_point([0, 42, 0])
        assert not zone.contains_point([0, 42, 1])


class TestComparisons:
    def test_includes_reflexive(self):
        zone = DBM.zero(3)
        assert zone.includes(zone)

    def test_universal_includes_zero(self):
        assert DBM.universal(3).includes(DBM.zero(3))
        assert not DBM.zero(3).includes(DBM.universal(3))

    def test_intersects(self):
        a = DBM.universal(2)
        a.constrain(1, 0, encode(5, True))
        b = DBM.universal(2)
        b.constrain(0, 1, encode(-5, True))
        assert a.intersects(b)  # meet exactly at x1 == 5
        c = DBM.universal(2)
        c.constrain(0, 1, encode(-6, True))
        assert not a.intersects(c)

    def test_hash_eq_consistent(self):
        a, b = DBM.zero(3), DBM.zero(3)
        assert a == b and hash(a) == hash(b)
        b.up()
        assert a != b


class TestSamplePoint:
    def test_sample_in_zone(self):
        zone = DBM.universal(3)
        zone.constrain(1, 0, encode(10, True))
        zone.constrain(0, 1, encode(-3, True))
        zone.constrain(2, 1, encode(1, True))
        point = zone.sample_point()
        assert point is not None
        assert zone.contains_point(point)

    def test_sample_empty_returns_none(self):
        zone = DBM.universal(2)
        zone.constrain(1, 0, encode(1, True))
        zone.constrain(0, 1, encode(-2, True))
        assert zone.sample_point() is None

    def test_sample_strict_lower_bound(self):
        zone = DBM.universal(2)
        zone.constrain(0, 1, encode(-3, False))  # x1 > 3
        point = zone.sample_point()
        assert point is not None and point[1] >= 4


class TestExtrapolation:
    def test_widens_beyond_max_constant(self):
        zone = DBM.zero(2)
        zone.reset(1, 9)  # x1 == 9, beyond the max constant 5
        zone.extrapolate_max([0, 5])
        # Everything above 5 becomes indistinguishable.
        assert zone.contains_point([0, 9])
        assert zone.contains_point([0, 100])
        assert not zone.contains_point([0, 5])

    def test_preserves_small_zones(self):
        zone = DBM.universal(3)
        zone.constrain(1, 0, encode(4, True))
        zone.constrain(2, 0, encode(3, True))
        before = zone.copy()
        zone.extrapolate_max([0, 5, 5])
        assert zone == before

    def test_requires_matching_length(self):
        with pytest.raises(ValueError):
            DBM.zero(3).extrapolate_max([0, 5])


class TestTextRendering:
    def test_zero_zone_text(self):
        text = DBM.zero(2).as_text(["0", "x"])
        assert "x<=0" in text

    def test_universal_is_true(self):
        assert DBM.universal(1).as_text() == "true"

    def test_frozen_roundtrip(self):
        zone = DBM.zero(3)
        zone.up()
        again = DBM.from_frozen(3, zone.frozen())
        assert again == zone


# ----------------------------------------------------------------------
# Property tests against brute-force point semantics
# ----------------------------------------------------------------------
SIZE = 3
LIMIT = 7


def apply_constraints(zone: DBM, constraints) -> DBM:
    for i, j, value, weak in constraints:
        zone.constrain(i, j, encode(value, weak))
    return zone


def satisfies(point, constraints) -> bool:
    for i, j, value, weak in constraints:
        diff = point[i] - point[j]
        if diff > value or (diff == value and not weak):
            return False
    return True


@settings(max_examples=60, deadline=None)
@given(st.lists(constraint_strategy(SIZE), min_size=0, max_size=6))
def test_constrain_agrees_with_pointwise_semantics(constraints):
    zone = apply_constraints(DBM.universal(SIZE), constraints)
    for point in box_points(SIZE, LIMIT):
        assert zone.contains_point(point) == satisfies(point, constraints)


@settings(max_examples=60, deadline=None)
@given(st.lists(constraint_strategy(SIZE), min_size=0, max_size=6))
def test_emptiness_agrees_with_point_search(constraints):
    zone = apply_constraints(DBM.universal(SIZE), constraints)
    has_small_point = any(satisfies(p, constraints)
                          for p in box_points(SIZE, LIMIT * 3))
    if zone.is_empty():
        assert not has_small_point
    # Non-empty zones may only contain huge points; only check one way
    # unless a point exists.
    if has_small_point:
        assert not zone.is_empty()


@settings(max_examples=60, deadline=None)
@given(st.lists(constraint_strategy(SIZE), min_size=1, max_size=5))
def test_up_is_time_elapse(constraints):
    zone = apply_constraints(DBM.universal(SIZE), constraints)
    elapsed = zone.copy().up()
    for point in box_points(SIZE, LIMIT):
        if zone.contains_point(point):
            for d in range(4):
                assert elapsed.contains_point([0] + [
                    v + d for v in point[1:]])


@settings(max_examples=60, deadline=None)
@given(st.lists(constraint_strategy(SIZE), min_size=0, max_size=5),
       st.lists(constraint_strategy(SIZE), min_size=0, max_size=5))
def test_inclusion_agrees_with_pointwise(c1, c2):
    a = apply_constraints(DBM.universal(SIZE), c1)
    b = apply_constraints(DBM.universal(SIZE), c2)
    if a.is_empty() or b.is_empty():
        return
    if a.includes(b):
        for point in box_points(SIZE, LIMIT):
            if b.contains_point(point):
                assert a.contains_point(point)


@settings(max_examples=60, deadline=None)
@given(st.lists(constraint_strategy(SIZE), min_size=0, max_size=5),
       st.integers(min_value=1, max_value=SIZE - 1))
def test_reset_projects_clock(constraints, clock):
    zone = apply_constraints(DBM.universal(SIZE), constraints)
    if zone.is_empty():
        return
    reset = zone.copy().reset(clock, 0)
    if reset.is_empty():
        return
    for point in box_points(SIZE, LIMIT):
        if reset.contains_point(point):
            assert point[clock] == 0
