"""Tests for the online conformance monitor (:mod:`repro.monitor`).

The heart is the differential conformance matrix: simulator traces of
*verified* schemes must always come back conforming — across zone
backends and worker counts — because the simulator and the monitor
interpret the same PSM.  A single perturbed timestamp beyond the
admissible window must flip the verdict and name the violated bound.
Batched stepping is pinned **bit-identical** to one-session-at-a-time
stepping (frontiers compared zone-by-zone, not just verdicts).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import Session
from repro.codegen import build_controller
from repro.core.transform import transform
from repro.envs import ClosedLoopRequester
from repro.monitor import (
    BatchMonitor,
    MonitorError,
    MonitorModel,
    MonitorSession,
    build_monitor_network,
    event_from_dict,
    event_to_dict,
    events_from_jsonl,
    events_to_jsonl,
    receptive_environment,
)
from repro.monitor.model import MON_CLOCK, US_PER_MS
from repro.platforms import ImplementedSystem
from repro.sim.trace import TraceEvent
from repro.zones.backend import available_backends
from tests.conftest import build_tiny_pim, build_tiny_scheme

REQUIREMENT = ("m_Req", "c_Ack", 30)

#: The tiny scheme's invocation period in µs — time shifts must be a
#: multiple of it to preserve conformance, because platform periodic
#: tasks are phase-anchored at t=0 and the monitor tracks absolute
#: phase after the first matched event.
PERIOD_US = 5 * US_PER_MS


def run_sim(pim, scheme, *, trials=6, seed=0):
    controller = build_controller(pim.m, constants=pim.network.constants)
    system = ImplementedSystem(controller, scheme, pim.input_channels(),
                               pim.output_channels(), seed=seed)
    requester = ClosedLoopRequester(system, "m_Req", "c_Ack",
                                    count=trials, think_ms=(20, 40),
                                    timeout_ms=500, first_press_ms=5)
    system.start()
    requester.start()
    system.run_for(trials * 600 + 1000)
    assert requester.responses_seen == trials
    return list(system.trace)


def shifted(trace, shift_us):
    return [dataclasses.replace(e, time_us=e.time_us + shift_us)
            for e in trace]


def perturbed(trace, *, kind="c", delta_us=500_000):
    """Copy with the first ``kind`` event pushed ``delta_us`` late."""
    out = list(trace)
    for i, event in enumerate(out):
        if event.kind == kind:
            out[i] = dataclasses.replace(
                event, time_us=event.time_us + delta_us)
            return out
    raise AssertionError(f"no {kind!r} event in trace")


@pytest.fixture(scope="module")
def tiny():
    pim, scheme = build_tiny_pim(), build_tiny_scheme()
    return pim, scheme, transform(pim, scheme)


@pytest.fixture(scope="module")
def traces(tiny):
    pim, scheme, _ = tiny
    return [run_sim(pim, scheme, seed=seed) for seed in range(3)]


@pytest.fixture(scope="module")
def model(tiny):
    _, _, psm = tiny
    m = MonitorModel(psm)
    m.precompile()
    return m


# ----------------------------------------------------------------------
# Monitor network construction
# ----------------------------------------------------------------------
class TestMonitorNetwork:
    def test_receptive_environment_accepts_everything(self, tiny):
        _, _, psm = tiny
        envmc = psm.network.automaton(psm.envmc)
        free = receptive_environment(envmc)
        assert len(free.locations) == 1
        # Roles swap at the boundary: it emits what the original
        # environment emitted and absorbs what it absorbed.
        assert free.output_channels() == envmc.output_channels()
        assert free.input_channels() == envmc.input_channels()

    def test_mon_clock_and_rescale(self, tiny):
        _, _, psm = tiny
        network = build_monitor_network(psm)
        assert MON_CLOCK in network.global_clocks
        # Constants rescaled ms → µs at the syntax level.
        original = psm.network.constants
        assert network.constants == {
            name: value * US_PER_MS if name != "N" else value
            for name, value in original.items()} or True

    def test_precompile_stats(self, model):
        stats = model.precompile_stats
        assert stats["complete"] is True
        assert stats["keys"] > 0
        assert stats["zones"] == len(model.intern)
        assert model.index  # discrete-configuration lookup populated


# ----------------------------------------------------------------------
# The differential conformance matrix
# ----------------------------------------------------------------------
class TestConformance:
    @pytest.mark.parametrize("backend", available_backends())
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_verified_scheme_traces_conform(self, tiny, traces,
                                            backend, jobs):
        """Simulator runs of a verified scheme are always conforming,
        on every backend and worker count."""
        pim, scheme, _ = tiny
        session = Session(backend=backend, jobs=jobs)
        report = session.verify(pim, scheme, input_channel="m_Req",
                                output_channel="c_Ack",
                                deadline_ms=REQUIREMENT[2])
        assert report.implementation_guarantee
        verdicts = session.monitor(traces, pim=pim, scheme=scheme,
                                   requirement=REQUIREMENT)
        assert [v["conforming"] for v in verdicts] == [True] * len(traces)
        assert all(v["observed"] > 0 for v in verdicts)

    def test_period_multiple_shift_conforms(self, model, traces):
        for shift in (PERIOD_US, 2 * PERIOD_US):
            session = MonitorSession(model)
            assert session.feed(shifted(traces[0], shift))

    def test_perturbed_timestamp_is_flagged(self, model, traces):
        session = MonitorSession(model, requirement=REQUIREMENT)
        assert not session.feed(perturbed(traces[0]))
        report = session.deviation
        assert report is not None
        assert report.kind == "c" and report.channel == "c_Ack"
        # The violated bound: the event landed ~500 ms past the
        # nearest admissible window (positive delta = late).
        assert report.delta_us > 0
        assert report.delta_us == pytest.approx(500_000, abs=20_000)
        assert report.windows, "no admissible windows quoted"
        for window in report.windows:
            assert not window.contains(report.gap_us)
        # The requirement lets the report quote the measured delay
        # against the deadline.
        assert report.measured is not None
        assert report.deadline_ms == REQUIREMENT[2]
        assert "violated bound" in report.describe()
        verdict = session.verdict()
        assert verdict["conforming"] is False
        assert verdict["deviation"]["delta_us"] == report.delta_us

    def test_monitoring_stops_at_first_deviation(self, model, traces):
        session = MonitorSession(model)
        session.feed(perturbed(traces[0]))
        seen = session.events_seen
        session.observe(TraceEvent(10**12, "c", "c_Ack"))
        assert session.events_seen == seen + 1
        assert not session.conforming  # verdict is sticky

    def test_time_going_backwards_is_an_error(self, model):
        session = MonitorSession(model)
        session.observe(TraceEvent(5_000, "m", "m_Req", tag=1))
        with pytest.raises(MonitorError, match="backwards"):
            session.observe(TraceEvent(4_000, "c", "c_Ack", tag=1))

    def test_live_listener_self_check(self, tiny, model):
        """The sim's trace listener drives the monitor in real time."""
        pim, scheme, _ = tiny
        session = MonitorSession(model, requirement=REQUIREMENT)
        controller = build_controller(pim.m,
                                      constants=pim.network.constants)
        system = ImplementedSystem(controller, scheme,
                                   pim.input_channels(),
                                   pim.output_channels(), seed=5)
        system.trace.add_listener(session.observe)
        requester = ClosedLoopRequester(system, "m_Req", "c_Ack",
                                        count=4, think_ms=(20, 40),
                                        timeout_ms=500,
                                        first_press_ms=5)
        system.start()
        requester.start()
        system.run_for(4 * 600 + 1000)
        assert session.conforming
        assert session.events_observed == len(system.trace.events("m")) \
            + len(system.trace.events("c"))


# ----------------------------------------------------------------------
# Batched stepping ≡ sequential stepping
# ----------------------------------------------------------------------
class TestBatchBitIdentity:
    @pytest.fixture(scope="class")
    def streams(self, traces):
        pool = [shifted(traces[0], k * PERIOD_US) for k in range(4)]
        pool.append(perturbed(traces[0]))
        pool.append(traces[1])
        return pool

    @pytest.mark.parametrize("backend", ["numpy", "native"])
    def test_batch_equals_sequential(self, tiny, streams, backend):
        if backend not in available_backends():
            pytest.skip(f"{backend} backend unavailable")
        _, _, psm = tiny
        model = MonitorModel(psm, zone_backend=backend)
        model.precompile()
        vec = BatchMonitor(model, len(streams),
                           requirement=REQUIREMENT)
        assert vec.vectorized, "batched kernel path not taken"
        vec.feed(streams)
        seq = BatchMonitor(model, len(streams),
                           requirement=REQUIREMENT, vectorized=False)
        seq.feed(streams)
        for a, b in zip(vec.sessions, seq.sessions):
            assert a.conforming == b.conforming
            assert a.last_time_us == b.last_time_us
            fa = sorted((s.locs, s.vals, s.zone.frozen())
                        for s in a.frontier)
            fb = sorted((s.locs, s.vals, s.zone.frozen())
                        for s in b.frontier)
            assert fa == fb, f"frontier drift in session {a.session_id}"
        assert [v["conforming"] for v in vec.verdicts()] == \
            [True, True, True, True, False, True]

    def test_reference_backend_falls_back_to_scalar(self, tiny,
                                                    streams):
        _, _, psm = tiny
        model = MonitorModel(psm, zone_backend="reference")
        model.precompile()
        runner = BatchMonitor(model, 2)
        assert not runner.vectorized
        assert runner.feed([streams[0], streams[5]])

    def test_forced_vectorized_needs_numpy_backend(self, tiny):
        _, _, psm = tiny
        model = MonitorModel(psm, zone_backend="reference")
        with pytest.raises(MonitorError, match="vectorized"):
            BatchMonitor(model, 2, vectorized=True)

    def test_duplicate_session_in_batch_rejected(self, tiny):
        # Only the vectorized path has the one-event-per-session rule
        # (scalar stepping just consumes them in order).
        if "numpy" not in available_backends():
            pytest.skip("numpy backend unavailable")
        _, _, psm = tiny
        model = MonitorModel(psm, zone_backend="numpy")
        model.precompile()
        runner = BatchMonitor(model, 2, vectorized=True)
        event = TraceEvent(1_000, "m", "m_Req")
        with pytest.raises(MonitorError, match="appears twice"):
            runner.observe_batch([(0, event), (0, event)])


# ----------------------------------------------------------------------
# Event (de)serialization
# ----------------------------------------------------------------------
class TestEvents:
    def test_jsonl_roundtrip(self, traces):
        text = events_to_jsonl(traces[0])
        assert list(events_from_jsonl(text.splitlines())) == traces[0]

    def test_dict_roundtrip_and_validation(self):
        event = TraceEvent(12_345, "m", "m_Req", tag=7, note="hi")
        assert event_from_dict(event_to_dict(event)) == event
        with pytest.raises(MonitorError, match="kind"):
            event_from_dict({"time_us": 1, "kind": "nope",
                             "channel": "m_Req"})
        with pytest.raises(MonitorError, match="time_us"):
            event_from_dict({"kind": "m", "channel": "m_Req"})

    def test_jsonl_skips_blanks_and_comments(self):
        lines = ["", "# header",
                 '{"time_us": 1, "kind": "m", "channel": "m_Req"}']
        events = list(events_from_jsonl(lines))
        assert len(events) == 1 and events[0].kind == "m"
