"""Fault-injection axes: identity at k=0, digest sensitivity, verified
fault sweeps on the tiny model, the duplex case-study demonstration,
memo/serve soundness across executors, concrete (simulated) injection,
and the deadlock/CLI satellites."""

from __future__ import annotations

import argparse
import json
from dataclasses import replace
from functools import lru_cache

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.infusion import build_infusion_pim
from repro.apps.schemes import (
    CASE_STUDY_FAULT_GRID_4,
    case_study_scheme,
    replicated_case_study_scheme,
    scheme_grid,
)
from repro.analysis.portfolio import (
    portfolio_rows,
    render_fault_tolerance,
    render_portfolio,
)
from repro.api import Session
from repro.cli import _parse_faults
from repro.codegen import build_controller
from repro.core.delays import (
    analytic_input_delay_bound,
    analytic_output_delay_bound,
    derive_bounds,
)
from repro.core.framework import (
    TimingVerificationFramework,
    VerificationReport,
)
from repro.core.scheme import FaultSpec, InvocationKind, SchemeError
from repro.core.transform import transform
from repro.mc.deadlock import find_deadlocks
from repro.mc.memo import psm_canonical_model
from repro.mc.observers import check_bounded_response
from repro.mc.portfolio import (
    PortfolioResult,
    PortfolioOutcome,
    PortfolioVerifier,
    portfolio_jobs,
)
from repro.platforms.system import ImplementedSystem, PlatformStats

from tests.conftest import (
    build_tiny_network,
    build_tiny_pim,
    build_tiny_scheme,
)

MAX_STATES = 500_000
DEADLINE = 10
CHANNELS = dict(input_channel="m_Req", output_channel="c_Ack")
CASE_CHANNELS = dict(input_channel="m_BolusReq",
                     output_channel="c_StartInfusion")
VOLATILE = ("seconds", "memo_hit", "derived_from")


def tiny_verify(**scheme_kw) -> VerificationReport:
    framework = TimingVerificationFramework(max_states=MAX_STATES)
    return framework.verify(build_tiny_pim(),
                            build_tiny_scheme(**scheme_kw),
                            deadline_ms=DEADLINE, **CHANNELS)


def tiny_digest(**scheme_kw) -> str:
    psm = transform(build_tiny_pim(), build_tiny_scheme(**scheme_kw))
    return psm_canonical_model(psm).digest


def stripped(row: dict) -> dict:
    return {k: v for k, v in row.items() if k not in VOLATILE}


# ----------------------------------------------------------------------
# FaultSpec semantics
# ----------------------------------------------------------------------
class TestFaultSpec:
    def test_default_is_disabled_identity(self):
        spec = FaultSpec()
        assert not spec.enabled
        assert spec.quorum() == 1
        assert spec.worst_case_rounds() == 1

    @pytest.mark.parametrize("kwargs", [
        dict(max_losses=1), dict(replicas=2), dict(jitter=1)])
    def test_any_axis_enables(self, kwargs):
        assert FaultSpec(**kwargs).enabled

    @pytest.mark.parametrize("kwargs,message", [
        (dict(max_losses=-1), "max_losses"),
        (dict(replicas=0), "replicas"),
        (dict(jitter=-1), "jitter"),
    ])
    def test_validation(self, kwargs, message):
        with pytest.raises(SchemeError, match=message):
            FaultSpec(**kwargs).validate()

    @pytest.mark.parametrize("replicas,quorum", [
        (1, 1), (2, 2), (3, 3), (4, 3), (5, 4)])
    def test_quorum(self, replicas, quorum):
        assert FaultSpec(replicas=replicas).quorum() == quorum

    @pytest.mark.parametrize("replicas,k,rounds", [
        # Duplex: quorum 2, every fault blocks a round → 1 + k.
        (2, 0, 1), (2, 1, 2), (2, 3, 4),
        # Triplex: quorum 3, one fault still blocks a round.
        (3, 2, 3),
        # 4 replicas, quorum 3: blocking a round costs 2 faults.
        (4, 3, 2),
    ])
    def test_worst_case_rounds(self, replicas, k, rounds):
        spec = FaultSpec(max_losses=k, replicas=replicas)
        assert spec.worst_case_rounds() == rounds

    def test_scheme_rejects_invalid_faults(self):
        scheme = build_tiny_scheme()
        bad = replace(scheme, faults=FaultSpec(replicas=0))
        with pytest.raises(SchemeError, match="replicas"):
            bad.validate()


# ----------------------------------------------------------------------
# k=0 identity (the acceptance criterion's bit-identity half)
# ----------------------------------------------------------------------
class TestFaultFreeIdentity:
    def test_default_fault_kwargs_build_equal_schemes(self):
        assert case_study_scheme() == case_study_scheme(
            fault_k=0, fault_r=1, fault_eps=0)
        assert build_tiny_scheme() == build_tiny_scheme(
            fault_k=0, fault_r=1, fault_eps=0)

    def test_tiny_psm_digest_identical_at_zero_faults(self):
        assert tiny_digest() == tiny_digest(fault_k=0, fault_r=1,
                                            fault_eps=0)

    def test_case_study_psm_digest_identical_at_zero_faults(self):
        pim = build_infusion_pim()
        plain = psm_canonical_model(
            transform(pim, case_study_scheme())).digest
        explicit = psm_canonical_model(transform(
            pim, case_study_scheme(fault_k=0, fault_r=1,
                                   fault_eps=0))).digest
        assert plain == explicit

    def test_fault_free_psm_has_no_fault_automata(self):
        psm = transform(build_tiny_pim(), build_tiny_scheme())
        names = {automaton.name for automaton in psm.network.automata}
        assert not any(name.startswith("REPLICA") for name in names)
        assert "VOTER" not in names and "SCHED" not in names


# ----------------------------------------------------------------------
# Digest sensitivity (memo-soundness satellite)
# ----------------------------------------------------------------------
class TestDigestSensitivity:
    def test_each_axis_changes_the_digest(self):
        digests = [
            tiny_digest(),
            tiny_digest(fault_k=1),
            tiny_digest(fault_r=2),
            tiny_digest(fault_eps=1),
            tiny_digest(invocation_kind=InvocationKind.PREEMPTIVE,
                        preemptions=1, preempt_min=1, preempt_max=2),
        ]
        assert len(set(digests)) == len(digests)

    @given(st.tuples(st.integers(0, 2), st.integers(1, 3),
                     st.integers(0, 2)),
           st.tuples(st.integers(0, 2), st.integers(1, 3),
                     st.integers(0, 2)))
    @settings(max_examples=25, deadline=None)
    def test_distinct_fault_points_never_collide(self, a, b):
        """Memo reuse across fault points would be unsound; the
        canonical digest must separate every distinct spec."""
        digest_a = _digest_for_point(a)
        digest_b = _digest_for_point(b)
        assert (digest_a == digest_b) == (a == b)


@lru_cache(maxsize=None)
def _digest_for_point(point: tuple[int, int, int]) -> str:
    k, r, eps = point
    return tiny_digest(fault_k=k, fault_r=r, fault_eps=eps)


# ----------------------------------------------------------------------
# Verified fault sweeps on the tiny model (all four axes, symbolic)
# ----------------------------------------------------------------------
class TestTinyFaultSweeps:
    @pytest.mark.parametrize("kwargs,relaxed", [
        (dict(), 20),
        (dict(fault_k=1), 22),           # +k·(delay_max 2) per loss
        (dict(fault_k=2), 24),
        (dict(fault_r=2), 20),           # voting is free at k=0
        (dict(fault_k=1, fault_r=2), 23),  # redelivery + extra round
        (dict(fault_eps=1), 21),         # ε widens the poll/tick guard
        (dict(invocation_kind=InvocationKind.PREEMPTIVE,
              preemptions=1, preempt_min=1, preempt_max=2), 22),
    ])
    def test_axis_verifies_with_expected_inflation(self, kwargs,
                                                   relaxed):
        report = tiny_verify(**kwargs)
        assert report.bounds.relaxed == relaxed
        assert report.implementation_guarantee

    def test_replicated_psm_gains_voter_automata(self):
        psm = transform(build_tiny_pim(),
                        build_tiny_scheme(fault_r=2))
        names = {automaton.name for automaton in psm.network.automata}
        assert {"REPLICA_1", "REPLICA_2", "VOTER"} <= names

    def test_preemptive_psm_gains_scheduler(self):
        psm = transform(build_tiny_pim(), build_tiny_scheme(
            invocation_kind=InvocationKind.PREEMPTIVE,
            preemptions=1, preempt_min=1, preempt_max=2))
        names = {automaton.name for automaton in psm.network.automata}
        assert "SCHED" in names


# ----------------------------------------------------------------------
# Verdicts antitone in the fault budget (hypothesis property)
# ----------------------------------------------------------------------
@lru_cache(maxsize=None)
def _tiny_sup_holds(k: int, deadline: int) -> bool:
    psm = transform(build_tiny_pim(), build_tiny_scheme(fault_k=k))
    return check_bounded_response(psm.network, "m_Req", "c_Ack",
                                  deadline,
                                  max_states=MAX_STATES).holds


class TestAntitoneInFaults:
    @given(st.integers(0, 3), st.integers(0, 3), st.integers(18, 27))
    @settings(max_examples=40, deadline=None)
    def test_fixed_deadline_verdict_antitone_in_k(self, a, b,
                                                  deadline):
        """A k-loss run is a superset of every (k-1)-loss run, so at a
        FIXED deadline a verdict that holds at higher k must hold at
        lower k.  (The relaxed deadline itself grows with k, which is
        why the property is stated against a fixed one.)"""
        k_lo, k_hi = min(a, b), max(a, b)
        if _tiny_sup_holds(k_hi, deadline):
            assert _tiny_sup_holds(k_lo, deadline)

    def test_property_is_not_vacuous(self):
        # sup = 20 + 2k on the tiny model: both verdicts occur inside
        # the deadline range the property samples.
        assert _tiny_sup_holds(0, 20)
        assert not _tiny_sup_holds(1, 20)


# ----------------------------------------------------------------------
# The duplex case study (acceptance demonstration)
# ----------------------------------------------------------------------
class TestDuplexCaseStudy:
    def test_k0_passes_the_deadline_with_exact_fault_free_bounds(self):
        """Replication machinery present but k=0: Theorem 1 holds and
        the relaxed deadline is the paper's 1430 ms on the nose."""
        framework = TimingVerificationFramework(max_states=1_000_000)
        report = framework.verify(build_infusion_pim(),
                                  replicated_case_study_scheme(),
                                  deadline_ms=500, **CASE_CHANNELS)
        assert report.implementation_guarantee
        assert report.bounds.input_bound == 490
        assert report.bounds.output_bound == 440
        assert report.bounds.relaxed == 1430

    def test_k1_inflation_is_quantified(self):
        """Each unit of fault budget costs 20 ms: one wcet re-execution
        round (compute) plus one redelivery (detection)."""
        scheme = replicated_case_study_scheme(fault_k=1)
        assert analytic_input_delay_bound(scheme, "m_BolusReq") == 500
        assert analytic_output_delay_bound(
            scheme, "c_StartInfusion") == 450
        bounds = derive_bounds(build_infusion_pim(), scheme,
                               **CASE_CHANNELS)
        assert bounds.relaxed == 1450 == 1430 + 20

    def test_fault_tolerance_report_renders_the_duplex_column(self):
        pim = build_infusion_pim()
        framework = TimingVerificationFramework(max_states=1_000_000)
        k0 = replicated_case_study_scheme()
        report_k0 = framework.verify(pim, k0, deadline_ms=500,
                                     **CASE_CHANNELS)
        # The k=1 point carries its (cheap) Lemma-1/2 analytic bounds
        # without the expensive PSM sweep — exactly the shape the
        # renderer quantifies inflation from.
        k1 = replicated_case_study_scheme(fault_k=1)
        report_k1 = VerificationReport(deadline_ms=500, **CASE_CHANNELS)
        report_k1.bounds = derive_bounds(pim, k1, **CASE_CHANNELS)
        outcome = PortfolioOutcome(results=[
            PortfolioResult(index=0, name=k0.name, scheme=k0,
                            deadline_ms=500, report=report_k0),
            PortfolioResult(index=1, name=f"{k1.name}[fault_k=1]",
                            scheme=k1, deadline_ms=500,
                            report=report_k1),
        ])
        table = render_fault_tolerance(outcome, deadline_ms=500)
        assert "IS1-case-study-duplex" in table
        assert "k=0,k=1" in table
        assert "yes@k=0" in table      # largest k whose sweep passed
        assert "1430ms" in table and "1450ms" in table
        assert "+20ms" in table        # quantified Lemma-2 inflation


# ----------------------------------------------------------------------
# Fault grids through the portfolio machinery (both executors)
# ----------------------------------------------------------------------
def tiny_fault_grid():
    return scheme_grid(build_tiny_scheme, fault_k=(0, 1),
                       fault_r=(1, 2))


def tiny_fault_jobs(schemes=None):
    return portfolio_jobs(build_tiny_pim(),
                          schemes or tiny_fault_grid(),
                          deadline_ms=DEADLINE, **CHANNELS)


class TestFaultGridPortfolio:
    def test_grid_spec_expands_the_fault_axes(self):
        names = [s.name for s in CASE_STUDY_FAULT_GRID_4.build()]
        assert names == [
            "IS1-case-study[fault_k=0,fault_r=1]",
            "IS1-case-study[fault_k=0,fault_r=2]",
            "IS1-case-study[fault_k=1,fault_r=1]",
            "IS1-case-study[fault_k=1,fault_r=2]",
        ]

    def test_thread_and_process_rows_identical(self):
        sequential = [stripped(r.row()) for r in
                      PortfolioVerifier(jobs=1).run(tiny_fault_jobs())]
        threaded = [stripped(r.row()) for r in
                    PortfolioVerifier(jobs=2).run(tiny_fault_jobs())]
        processed = [stripped(r.row()) for r in
                     PortfolioVerifier(jobs=2, executor="process").run(
                         tiny_fault_jobs())]
        assert sequential == threaded == processed
        relaxed = [row["relaxed_ms"] for row in sequential]
        assert relaxed == [20, 20, 22, 23]
        assert all(row["guarantee"] for row in sequential)

    def test_memo_never_crosses_fault_points(self):
        """Reuse answers repeated fault points from the memo but never
        lets distinct fault specs share a verdict."""
        schemes = tiny_fault_grid()
        jobs = tiny_fault_jobs(schemes + schemes)
        outcome = PortfolioVerifier(jobs=2, reuse=True).run(jobs)
        first, second = outcome[:len(schemes)], outcome[len(schemes):]
        assert all(r.memo_hit is None for r in first)
        assert all(r.memo_hit is not None for r in second)
        by_name = {r.name: r for r in first}
        for row in second:
            donor = by_name[row.memo_hit]
            assert donor.scheme.faults == row.scheme.faults
            assert stripped(donor.row()) == stripped(row.row())

    def test_fault_tolerance_report_over_the_tiny_grid(self):
        outcome = PortfolioVerifier(jobs=2).run(tiny_fault_jobs())
        table = render_fault_tolerance(outcome)
        # Two base schemes (r=1, r=2), each swept over k=0,1.
        assert "2 base scheme(s), 4 fault points" in table
        assert "yes@k=1" in table
        assert "+2ms" in table or "+3ms" in table


# ----------------------------------------------------------------------
# Fault grids through the verification service (repro serve)
# ----------------------------------------------------------------------
class TestFaultGridService:
    def test_serve_runs_fault_grid_with_sound_memo_reuse(self):
        from tests.test_service import daemon

        jobs = tiny_fault_jobs()
        expected = [stripped(json.loads(json.dumps(row, default=str)))
                    for row in (r.row() for r in
                                PortfolioVerifier(jobs=1).run(
                                    tiny_fault_jobs()))]
        with daemon(jobs=2) as d:
            with d.client() as client:
                first = client.run_jobs(jobs)
                second = client.run_jobs(jobs)
        assert [stripped(r) for r in first.ordered_rows()] == expected
        assert [stripped(r) for r in second.ordered_rows()] == expected
        assert second.origins() == ["memo"] * len(jobs)
        # Distinct fault points were each explored once — the memo
        # only collapsed the repeats.
        assert first.origins() == ["explored"] * len(jobs)


# ----------------------------------------------------------------------
# Concrete fault injection (seeded simulation)
# ----------------------------------------------------------------------
def run_system(seed=3, signals=4, horizon_ms=400, **scheme_kw):
    pim = build_tiny_pim()
    scheme = build_tiny_scheme(**scheme_kw)
    controller = build_controller(pim.m,
                                  constants=pim.network.constants)
    system = ImplementedSystem(controller, scheme,
                               pim.input_channels(),
                               pim.output_channels(), seed=seed)
    system.start()
    for tag in range(1, signals + 1):
        system.signal_input("m_Req", tag)
    system.run_for(horizon_ms)
    return system


class TestConcreteInjection:
    def test_fault_free_run_bit_identical_with_machinery_present(self):
        plain = run_system()
        explicit = run_system(fault_k=0, fault_r=1, fault_eps=0)
        assert plain.injector is None and explicit.injector is None
        assert plain.trace.events() == explicit.trace.events()
        stats = plain.stats()
        assert stats.injected_message_losses == 0
        assert "injected" not in stats.summary()

    def test_message_losses_recorded_and_budgeted(self):
        system = run_system(fault_k=2)
        stats = system.stats()
        losses = system.trace.events("fault", "m_Req")
        assert stats.injected_message_losses == len(losses) == 2
        assert all(e.note == "loss" for e in losses)
        # The retry re-executes the processing window: the response
        # still arrives despite both budgeted losses.
        assert system.trace.count("c", "c_Ack") == 1

    def test_replica_faults_counted_and_tolerated(self):
        system = run_system(fault_k=1, fault_r=2)
        assert system.stats().injected_replica_faults == 1
        assert system.trace.count("c", "c_Ack") == 1

    def test_jitter_active_and_system_still_responds(self):
        system = run_system(fault_eps=1)
        assert system.injector is not None
        assert system.trace.count("c", "c_Ack") == 1

    def test_preemption_bursts_counted_in_stats_summary(self):
        system = run_system(
            invocation_kind=InvocationKind.PREEMPTIVE,
            preemptions=1, preempt_min=1, preempt_max=2)
        stats = system.stats()
        assert stats.injected_preemption_bursts > 0
        assert "injected" in stats.summary()
        assert system.trace.count("c", "c_Ack") == 1


# ----------------------------------------------------------------------
# Portfolio report: sim counters column (satellite 1)
# ----------------------------------------------------------------------
class TestSimCountersInReport:
    def _outcome(self):
        return PortfolioVerifier(jobs=1).run(tiny_fault_jobs(
            [build_tiny_scheme()]))

    def test_rows_merge_sim_counters(self):
        outcome = self._outcome()
        stats = PlatformStats(input_buffer_overflows=3,
                              injected_message_losses=2)
        rows = portfolio_rows(outcome,
                              sim_stats={"tiny-scheme": stats})
        assert rows[0]["sim"]["input_buffer_overflows"] == 3
        assert rows[0]["sim"]["injected_message_losses"] == 2
        # Without sim stats the row shape is unchanged.
        assert "sim" not in portfolio_rows(outcome)[0]

    def test_render_appends_sim_column_only_when_asked(self):
        outcome = self._outcome()
        stats = PlatformStats(input_buffer_overflows=1,
                              dropped_by_code=2)
        with_sim = render_portfolio(outcome,
                                    sim_stats={"tiny-scheme": stats})
        assert "sim" in with_sim.splitlines()[2]
        assert "ovf=1+0 drop=2" in with_sim
        assert "sim" not in render_portfolio(outcome).splitlines()[2]


# ----------------------------------------------------------------------
# find_deadlocks abstraction guard (satellite 2)
# ----------------------------------------------------------------------
class TestDeadlockAbstractionGuard:
    def test_extra_lu_is_rejected_with_a_clear_error(self):
        with pytest.raises(ValueError,
                           match="only supports the extra_m"):
            find_deadlocks(build_tiny_network(),
                           abstraction="extra_lu")

    @pytest.mark.parametrize("abstraction", [None, "extra_m"])
    def test_supported_spellings_still_run(self, abstraction):
        report = find_deadlocks(build_tiny_network(),
                                abstraction=abstraction)
        assert report.deadlock_free


# ----------------------------------------------------------------------
# CLI --faults parsing
# ----------------------------------------------------------------------
class TestCLIFaultParsing:
    def test_parses_scalars_and_sweeps(self):
        assert _parse_faults("k=0|1,replicas=2,jitter=3") == {
            "fault_k": [0, 1], "fault_r": [2], "fault_eps": [3]}

    @pytest.mark.parametrize("spec", ["q=1", "k", "k=one", "k=1|x"])
    def test_bad_specs_fail_fast(self, spec):
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_faults(spec)

    def test_verify_shape_requires_scalars(self):
        assert Session(
            faults=_parse_faults("k=1,jitter=0")).fault_values() == {
                "fault_k": 1, "fault_eps": 0}
        with pytest.raises(ValueError,
                           match="one value per fault axis"):
            Session(faults=_parse_faults("k=0|1")).fault_values()
