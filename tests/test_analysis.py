"""Tests for the analysis layer: pairing, stats, Table 1 plumbing,
the Fig. 3 timeline and the Fig. 2 blocks rendering."""

import pytest

from repro.analysis.blocks import render_blocks
from repro.analysis.delays import pair_requests
from repro.analysis.stats import summarize
from repro.analysis.table1 import simulate_trials
from repro.analysis.timeline import fig3_scenario, render_timeline
from repro.core.scheme import ReadPolicy
from repro.core.transform import transform
from repro.sim.trace import TraceRecorder

from tests.conftest import build_tiny_pim, build_tiny_scheme


class TestStats:
    def test_summarize(self):
        stats = summarize([1.0, 3.0, 2.0])
        assert (stats.count, stats.avg, stats.max, stats.min) == \
            (3, 2.0, 3.0, 1.0)

    def test_none_values_skipped(self):
        stats = summarize([1.0, None, 3.0])
        assert stats.count == 2

    def test_empty_returns_none(self):
        assert summarize([]) is None
        assert summarize([None]) is None

    def test_within(self):
        stats = summarize([5.0, 9.0])
        assert stats.within(9.0)
        assert not stats.within(8.9)


class TestPairing:
    def _trace(self):
        trace = TraceRecorder()
        # Request 1: m@0, read@10, write@15 (oid 100), c@20.
        trace.record(0, "m", "m_Req", tag=1)
        trace.record(10_000, "i_read", "m_Req", tag=1)
        trace.record(15_000, "o_write", "c_Ack", tag=100)
        trace.record(20_000, "c", "c_Ack", tag=100)
        # Request 2: m@30, read@42, write@50 (oid 101), c@55.
        trace.record(30_000, "m", "m_Req", tag=2)
        trace.record(42_000, "i_read", "m_Req", tag=2)
        trace.record(50_000, "o_write", "c_Ack", tag=101)
        trace.record(55_000, "c", "c_Ack", tag=101)
        return trace

    def test_two_requests_paired_fifo(self):
        timings = pair_requests(self._trace(), "m_Req", "c_Ack")
        assert len(timings) == 2
        first, second = timings
        assert (first.input_delay, first.output_delay,
                first.mc_delay) == (10.0, 5.0, 20.0)
        assert (second.input_delay, second.output_delay,
                second.mc_delay) == (12.0, 5.0, 25.0)

    def test_unconsumed_request_left_open(self):
        trace = TraceRecorder()
        trace.record(0, "m", "m_Req", tag=1)
        timings = pair_requests(trace, "m_Req", "c_Ack")
        assert len(timings) == 1
        assert not timings[0].completed
        assert timings[0].input_delay is None

    def test_missing_actuation_leaves_tc_none(self):
        trace = TraceRecorder()
        trace.record(0, "m", "m_Req", tag=1)
        trace.record(5_000, "i_read", "m_Req", tag=1)
        trace.record(8_000, "o_write", "c_Ack", tag=100)
        timings = pair_requests(trace, "m_Req", "c_Ack")
        assert timings[0].t_o_write == 8.0
        assert timings[0].mc_delay is None

    def test_str_rendering(self):
        timings = pair_requests(self._trace(), "m_Req", "c_Ack")
        assert "req #1" in str(timings[0])


class TestSimulateTrials:
    def test_small_campaign(self):
        pim = build_tiny_pim()
        scheme = build_tiny_scheme()
        measured = simulate_trials(
            pim, scheme, trials=5, seed=1,
            input_channel="m_Req", output_channel="c_Ack",
            think_ms=(20, 40))
        assert measured.requests == 5
        assert measured.responses == 5
        assert measured.timeouts == 0
        assert measured.mc is not None and measured.mc.count == 5
        assert not measured.buffer_overflow
        assert measured.req_violations(10_000) == 0
        assert measured.req_violations(0) == 5


class TestFig3:
    def test_read_all_vs_read_one(self):
        read_all = fig3_scenario(ReadPolicy.READ_ALL)
        read_one = fig3_scenario(ReadPolicy.READ_ONE)
        # The figure's crux: at invocation 4 read-one uses a single
        # input while read-all uses both pending inputs.
        assert read_one.reads_per_invocation[4] == ["i2"]
        assert read_one.reads_per_invocation[5] == ["i3"]
        assert read_all.reads_per_invocation[4] == ["i2", "i3"]
        assert read_all.reads_per_invocation[5] == []
        # Both read i1 at invocation 3.
        assert read_all.reads_per_invocation[3] == ["i1"]

    def test_timeline_renders_lanes(self):
        result = fig3_scenario(ReadPolicy.READ_ALL)
        text = result.rendered()
        assert "ENV" in text and "Code(PIM)" in text
        assert "m m_Fig3#1" in text

    def test_render_timeline_horizon(self):
        result = fig3_scenario(ReadPolicy.READ_ALL)
        text = render_timeline(result.trace, until_ms=200.0)
        assert "m m_Fig3#3" not in text  # arrives at 240ms


class TestFig2Blocks:
    def test_blocks_show_component_mapping(self):
        psm = transform(build_tiny_pim(), build_tiny_scheme())
        text = render_blocks(psm)
        assert "Input-Device" in text
        assert "IFMI_i_Req" in text
        assert "EXEIO" in text
        assert "PSM = MIO" in text
