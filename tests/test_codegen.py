"""Tests for code generation: interpreter semantics and
interpreter/generated-code equivalence (the assurance argument)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen.generator import build_controller, generate_source
from repro.codegen.interpreter import AutomatonInterpreter
from repro.ta.builder import AutomatonBuilder, NetworkBuilder
from repro.ta.model import ModelError


def controller_automaton():
    """The infusion-style M automaton used across these tests."""
    b = AutomatonBuilder("M", clocks=["x"],
                         constants={"PRIME": 4, "DEADLINE": 10})
    b.location("Idle", initial=True)
    b.location("Busy", invariant="x <= DEADLINE")
    b.edge("Idle", "Busy", sync="m_Req?", update="x = 0")
    b.edge("Busy", "Idle", guard="x >= PRIME", sync="c_Ack!")
    return b.build()


class TestInterpreterSemantics:
    def test_initial_state(self):
        interp = AutomatonInterpreter(controller_automaton())
        assert interp.location == "Idle"
        assert interp.clock_value("x", 0.0) == 0.0

    def test_consume_input(self):
        interp = AutomatonInterpreter(controller_automaton())
        result = interp.step(5.0, ["m_Req"])
        assert result.consumed == ["m_Req"]
        assert interp.location == "Busy"
        assert interp.clock_value("x", 5.0) == 0.0

    def test_guard_respects_clock(self):
        interp = AutomatonInterpreter(controller_automaton())
        interp.step(0.0, ["m_Req"])
        assert interp.step(3.0, []).outputs == []  # x=3 < PRIME
        assert interp.step(4.0, []).outputs == ["c_Ack"]

    def test_unusable_input_dropped(self):
        interp = AutomatonInterpreter(controller_automaton())
        interp.step(0.0, ["m_Req"])
        result = interp.step(1.0, ["m_Req"])  # Busy: no m_Req edge
        assert result.dropped == ["m_Req"]
        assert interp.location == "Busy"

    def test_run_to_completion_chains(self):
        # Input then output in the same invocation once enough time
        # passed before the input arrived? No: x resets on input, so
        # the output needs PRIME more time; a zero-PRIME automaton
        # chains both.
        b = AutomatonBuilder("M", clocks=["x"])
        b.location("Idle", initial=True)
        b.location("Busy")
        b.edge("Idle", "Busy", sync="m_Req?", update="x = 0")
        b.edge("Busy", "Idle", sync="c_Ack!")
        interp = AutomatonInterpreter(b.build())
        result = interp.step(0.0, ["m_Req"])
        assert result.consumed == ["m_Req"]
        assert result.outputs == ["c_Ack"]
        assert result.fired == 2
        assert interp.location == "Idle"

    def test_fifo_input_consumption(self):
        b = AutomatonBuilder("M")
        b.location("L", initial=True)
        b.loop("L", sync="a?")
        interp = AutomatonInterpreter(b.build())
        result = interp.step(0.0, ["a", "a", "a"])
        assert result.consumed == ["a", "a", "a"]
        assert result.dropped == []

    def test_variables_in_guards_and_updates(self):
        b = AutomatonBuilder("M")
        b.location("L", initial=True)
        b.loop("L", guard="n < 3", sync="a?", update="n = n + 1")
        interp = AutomatonInterpreter(b.build(), variables={"n": 0})
        result = interp.step(0.0, ["a"] * 5)
        assert result.consumed == ["a"] * 3
        assert result.dropped == ["a", "a"]
        assert interp.variables["n"] == 3

    def test_livelock_detected(self):
        b = AutomatonBuilder("M")
        b.location("L", initial=True)
        b.loop("L")  # always-enabled internal loop
        interp = AutomatonInterpreter(b.build())
        with pytest.raises(ModelError, match="livelock"):
            interp.step(0.0, [])

    def test_reset_restores_everything(self):
        interp = AutomatonInterpreter(controller_automaton())
        interp.step(0.0, ["m_Req"])
        interp.reset(100.0)
        assert interp.location == "Idle"
        assert interp.clock_value("x", 100.0) == 0.0

    def test_clock_reset_to_value(self):
        b = AutomatonBuilder("M", clocks=["x"])
        b.location("L", initial=True)
        b.location("Done")
        b.edge("L", "Done", sync="a?", update="x = 7")
        interp = AutomatonInterpreter(b.build())
        interp.step(10.0, ["a"])
        assert interp.clock_value("x", 10.0) == 7.0


class TestGeneratedSource:
    def test_source_is_valid_python(self):
        source = generate_source(controller_automaton(),
                                 constants={"PRIME": 4, "DEADLINE": 10})
        compile(source, "<test>", "exec")

    def test_source_mentions_channels(self):
        source = generate_source(controller_automaton(),
                                 constants={"PRIME": 4, "DEADLINE": 10})
        assert "'m_Req'" in source and "'c_Ack'" in source
        assert "INPUT_CHANNELS" in source

    def test_missing_variable_rejected(self):
        b = AutomatonBuilder("M")
        b.location("L", initial=True)
        b.loop("L", guard="mystery > 0")
        with pytest.raises(ModelError, match="mystery"):
            generate_source(b.build())

    def test_controller_metadata(self):
        ctrl = build_controller(controller_automaton(),
                                constants={"PRIME": 4, "DEADLINE": 10})
        assert ctrl.LOCATIONS == ("Idle", "Busy")
        assert ctrl.INPUT_CHANNELS == ("m_Req",)
        assert ctrl.OUTPUT_CHANNELS == ("c_Ack",)


class TestEquivalence:
    """Generated code must agree with the reference interpreter."""

    def _both(self):
        auto = controller_automaton()
        consts = {"PRIME": 4, "DEADLINE": 10}
        return (AutomatonInterpreter(auto, constants=consts),
                build_controller(auto, constants=consts))

    def test_simple_schedule(self):
        interp, ctrl = self._both()
        for now, inputs in [(0, ["m_Req"]), (2, []), (4, []),
                            (6, ["m_Req"]), (20, [])]:
            a = interp.step(now, inputs)
            b = ctrl.step(now, inputs)
            assert (a.outputs, a.consumed, a.dropped, a.fired) == \
                (b.outputs, b.consumed, b.dropped, b.fired)
            assert interp.location == ctrl.location

    @settings(max_examples=60, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(min_value=1, max_value=8),
                  st.lists(st.sampled_from(["m_Req"]),
                           max_size=2)),
        max_size=12))
    def test_random_schedules(self, schedule):
        interp, ctrl = self._both()
        now = 0
        for gap, inputs in schedule:
            now += gap
            a = interp.step(now, list(inputs))
            b = ctrl.step(now, list(inputs))
            assert (a.outputs, a.consumed, a.dropped, a.fired) == \
                (b.outputs, b.consumed, b.dropped, b.fired)
            assert interp.location == ctrl.location

    @settings(max_examples=30, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(min_value=1, max_value=5),
                  st.lists(st.sampled_from(["a", "b"]), max_size=3)),
        max_size=10))
    def test_random_schedules_with_variables(self, schedule):
        b = AutomatonBuilder("M", clocks=["x"])
        b.location("L", initial=True)
        b.location("H", invariant="x <= 6")
        b.edge("L", "H", sync="a?", update="x = 0, n = n + 1")
        b.edge("H", "L", guard="x >= 1 && n < 4", sync="out!")
        b.edge("H", "L", guard="n >= 4", sync="b?", update="n = 0")
        auto = b.build()
        interp = AutomatonInterpreter(auto, variables={"n": 0})
        ctrl = build_controller(auto, variables={"n": 0})
        now = 0
        for gap, inputs in schedule:
            now += gap
            x = interp.step(now, list(inputs))
            y = ctrl.step(now, list(inputs))
            assert (x.outputs, x.consumed, x.dropped, x.fired) == \
                (y.outputs, y.consumed, y.dropped, y.fired)
            assert interp.location == ctrl.location
            assert interp.variables == ctrl.variables
