"""Model-checker semantics tests on small known-answer models.

Each test pins one semantic rule of the language: delay vs
invariants, binary/broadcast synchronization, committed priority,
urgent locations/channels, variable updates and range checks, and
active-clock reduction soundness.
"""

import pytest

from repro.mc.explorer import ExplorationLimit, ZoneGraphExplorer
from repro.mc.reachability import StateFormula, check_reachable, \
    check_safety
from repro.mc.queries import zone_graph_stats
from repro.ta.builder import NetworkBuilder
from repro.ta.model import ModelError


def reachable(network, **formula_kw):
    return check_reachable(network, StateFormula(**formula_kw)).reachable


class TestDelayAndInvariants:
    def test_invariant_bounds_delay(self):
        net = NetworkBuilder("n")
        a = net.automaton("A", clocks=["x"])
        a.location("L", invariant="x <= 5", initial=True)
        network = net.build()
        assert reachable(network, clocks="x == 5")
        assert not reachable(network, clocks="x > 5")

    def test_no_invariant_time_diverges(self):
        net = NetworkBuilder("n")
        a = net.automaton("A", clocks=["x"])
        a.location("L", initial=True)
        network = net.build()
        assert reachable(network, clocks="x > 1000000")

    def test_guard_window(self):
        net = NetworkBuilder("n")
        a = net.automaton("A", clocks=["x"])
        a.location("L", invariant="x <= 10", initial=True)
        a.location("Done")
        a.edge("L", "Done", guard="x >= 3 && x <= 7")
        network = net.build()
        assert reachable(network, locations={"A": "Done"})
        # In Done, x keeps the value it had on entry (no reset) and
        # then time diverges — but entry required 3 ≤ x ≤ 7.
        assert not reachable(network, locations={"A": "Done"},
                             clocks="x < 3")

    def test_reset_on_edge(self):
        net = NetworkBuilder("n")
        a = net.automaton("A", clocks=["x"])
        a.location("L", invariant="x <= 4", initial=True)
        a.location("Done", invariant="x <= 2")
        a.edge("L", "Done", guard="x == 4", update="x = 0")
        network = net.build()
        assert reachable(network, locations={"A": "Done"},
                         clocks="x == 2")
        assert not reachable(network, locations={"A": "Done"},
                             clocks="x > 2")


class TestSynchronization:
    def _pair(self, *, broadcast=False):
        net = NetworkBuilder("n")
        net.channel("ch", broadcast=broadcast)
        a = net.automaton("A")
        a.location("S", initial=True)
        a.location("Sent")
        a.edge("S", "Sent", sync="ch!")
        b = net.automaton("B")
        b.location("R", initial=True)
        b.location("Got")
        b.edge("R", "Got", sync="ch?")
        return net

    def test_binary_sync_moves_both(self):
        network = self._pair().build()
        assert reachable(network, locations={"A": "Sent", "B": "Got"})
        # Never one without the other.
        explorer = ZoneGraphExplorer(network)
        for state in explorer.iter_states():
            assert (state.locs[0] == 0) == (state.locs[1] == 0)

    def test_binary_sender_blocks_without_receiver(self):
        net = self._pair()
        network = net.build()
        # Remove the receiver's readiness by a guard that is false.
        net2 = NetworkBuilder("n")
        net2.channel("ch")
        a = net2.automaton("A")
        a.location("S", initial=True)
        a.location("Sent")
        a.edge("S", "Sent", sync="ch!")
        b = net2.automaton("B")
        b.location("R", initial=True)
        b.location("Got")
        b.edge("R", "Got", guard="false", sync="ch?")
        blocked = net2.build()
        assert reachable(network, locations={"A": "Sent"})
        assert not reachable(blocked, locations={"A": "Sent"})

    def test_broadcast_sender_never_blocks(self):
        net = NetworkBuilder("n")
        net.channel("ch", broadcast=True)
        a = net.automaton("A")
        a.location("S", initial=True)
        a.location("Sent")
        a.edge("S", "Sent", sync="ch!")
        # No receiver at all.
        b = net.automaton("B")
        b.location("R", initial=True)
        network = net.build()
        assert reachable(network, locations={"A": "Sent"})

    def test_broadcast_all_ready_receivers_participate(self):
        net = NetworkBuilder("n")
        net.channel("ch", broadcast=True)
        net.int_var("got", 0, 0, 3)
        a = net.automaton("A")
        a.location("S", initial=True)
        a.location("Sent")
        a.edge("S", "Sent", sync="ch!")
        for name in ("B", "C"):
            r = net.automaton(name)
            r.location("R", initial=True)
            r.location("Got")
            r.edge("R", "Got", sync="ch?", update="got = got + 1")
        network = net.build()
        assert reachable(network, data="got == 2")
        assert not reachable(network, data="got == 1")


class TestCommittedAndUrgent:
    def test_committed_preempts_time(self):
        net = NetworkBuilder("n")
        a = net.automaton("A", clocks=["x"])
        a.location("L", initial=True)
        a.location("Mid", committed=True)
        a.location("Done")
        a.edge("L", "Mid", guard="x >= 1", update="x = 0")
        a.edge("Mid", "Done")
        network = net.build()
        # No time may pass in Mid: x stays 0 upon reaching Done.
        assert reachable(network, locations={"A": "Done"},
                         clocks="x == 0")
        explorer = ZoneGraphExplorer(network)
        for state in explorer.iter_states():
            if state.locs[0] == 1:  # Mid
                assert not reachable(network, locations={"A": "Mid"},
                                     clocks="x > 0")
                break

    def test_committed_priority_over_other_automata(self):
        net = NetworkBuilder("n")
        net.bool_var("other_moved")
        a = net.automaton("A")
        a.location("L", initial=True)
        a.location("Mid", committed=True)
        a.location("Done")
        a.edge("L", "Mid")  # enabled immediately at t=0
        a.edge("Mid", "Done")
        b = net.automaton("B", clocks=["y"])
        b.location("L", initial=True)
        b.location("Moved")
        # B needs time to elapse first — impossible while A is
        # committed, so B can only move after A has reached Done.
        b.edge("L", "Moved", guard="y >= 1", update="other_moved = 1")
        network = net.build()
        explorer = ZoneGraphExplorer(network)
        saw_mid = False
        for state in explorer.iter_states():
            if state.locs[0] != 1:  # A not in Mid
                continue
            saw_mid = True
            for succ, _label in explorer.successors(state):
                # From a committed state, only A's own edge may fire:
                # A must reach Done and B must not have moved.
                assert succ.locs[0] == 2, \
                    "a non-committed edge fired from a committed state"
                assert succ.vals[0] == state.vals[0]
        assert saw_mid

    def test_urgent_location_freezes_time(self):
        net = NetworkBuilder("n")
        a = net.automaton("A", clocks=["x"])
        a.location("L", initial=True)
        a.location("U", urgent=True)
        a.location("Done")
        a.edge("L", "U", guard="x >= 2", update="x = 0")
        a.edge("U", "Done")
        network = net.build()
        assert not reachable(network, locations={"A": "U"},
                             clocks="x > 0")

    def test_urgent_channel_fires_without_delay(self):
        net = NetworkBuilder("n")
        net.channel("u", urgent=True)
        a = net.automaton("A", clocks=["x"])
        a.location("L", initial=True)
        a.location("Done")
        a.edge("L", "Done", sync="u!")
        b = net.automaton("B")
        b.location("R", initial=True)
        b.edge("R", "R", sync="u?")
        network = net.build()
        # The sync is enabled from t=0, so time may never elapse in L.
        assert not reachable(network, locations={"A": "L"},
                             clocks="x > 0")
        assert reachable(network, locations={"A": "Done"})


class TestVariables:
    def test_update_and_guard(self):
        net = NetworkBuilder("n")
        net.int_var("v", 0, 0, 10)
        a = net.automaton("A")
        a.location("L", initial=True)
        a.location("Done")
        a.loop("L", guard="v < 3", update="v = v + 1")
        a.edge("L", "Done", guard="v == 3")
        network = net.build()
        assert reachable(network, locations={"A": "Done"})
        assert not reachable(network, data="v > 3")

    def test_range_violation_raises(self):
        net = NetworkBuilder("n")
        net.int_var("v", 0, 0, 2)
        a = net.automaton("A")
        a.location("L", initial=True)
        a.loop("L", update="v = v + 1")
        network = net.build()
        with pytest.raises(ModelError, match="outside"):
            ZoneGraphExplorer(network).explore()

    def test_update_order_sender_then_receiver(self):
        net = NetworkBuilder("n")
        net.channel("ch")
        net.int_var("v", 0, 0, 10)
        a = net.automaton("A")
        a.location("L", initial=True)
        a.location("Done")
        a.edge("L", "Done", sync="ch!", update="v = 1")
        b = net.automaton("B")
        b.location("L", initial=True)
        b.location("Done")
        b.edge("L", "Done", sync="ch?", update="v = v * 10")
        network = net.build()
        # Sender writes first: v = 1, then receiver multiplies → 10.
        assert reachable(network, data="v == 10")
        assert not reachable(network, data="v == 0 && v == 1")


class TestExplorationMachinery:
    def test_max_states_limit(self, tiny_pim):
        with pytest.raises(ExplorationLimit):
            ZoneGraphExplorer(tiny_pim.network, max_states=1).explore()

    def test_trace_reconstruction(self):
        net = NetworkBuilder("n")
        net.channel("go")
        a = net.automaton("A", clocks=["x"])
        a.location("L", invariant="x <= 1", initial=True)
        a.location("Done")
        a.edge("L", "Done", guard="x == 1", sync="go!")
        b = net.automaton("B")
        b.location("R", initial=True)
        b.edge("R", "R", sync="go?")
        network = net.build()
        result = check_reachable(network, StateFormula(
            locations={"A": "Done"}))
        assert result.reachable
        assert result.trace is not None
        assert any("go" in step for step in result.trace)

    def test_safety_summary(self, tiny_pim):
        result = check_safety(tiny_pim.network,
                              StateFormula(locations={"M": "Busy"},
                                           clocks="M.x > 10"))
        assert result.holds
        assert "HOLDS" in result.summary()

    def test_stats_complete(self, tiny_pim):
        stats = zone_graph_stats(tiny_pim.network)
        assert stats.states >= stats.discrete_configurations > 0
        assert stats.transitions > 0

    def test_active_clock_reduction_soundness(self):
        # A dead timer must not split states: two paths resetting an
        # unused clock differently still merge.
        net = NetworkBuilder("n")
        a = net.automaton("A", clocks=["x", "dead"])
        a.location("L", invariant="x <= 10", initial=True)
        a.location("P1")
        a.location("P2")
        a.location("Join", invariant="x <= 20")
        a.edge("L", "P1", guard="x >= 1", update="dead = 0")
        a.edge("L", "P2", guard="x >= 2")
        a.edge("P1", "Join")
        a.edge("P2", "Join")
        network = net.build()
        stats = zone_graph_stats(network)
        # 'dead' never constrained → must not affect reachability.
        assert reachable(network, locations={"A": "Join"})
        explorer = ZoneGraphExplorer(network)
        join_zones = [s for s in explorer.iter_states()
                      if s.locs[0] == 3]
        assert join_zones


class TestSymbolicStateKeyMemo:
    """The discrete key and its hash are computed once per state."""

    def test_key_is_cached_object(self):
        from repro.mc.state import SymbolicState
        from repro.zones.dbm import DBM

        state = SymbolicState((0, 1), (2, 3), DBM.zero(2))
        first = state.key()
        assert first == ((0, 1), (2, 3))
        assert state.key() is first  # memoized, not rebuilt

    def test_key_hash_matches_tuple_hash(self):
        from repro.mc.state import SymbolicState
        from repro.zones.dbm import DBM

        state = SymbolicState((4,), (7, 0), DBM.zero(2))
        assert state.key_hash() == hash(state.key())
        assert state.key_hash() == state.key_hash()  # stable
