"""Shared-exploration query planner: parity with individual queries.

The contract: ``check_many`` answers a batch of queries from **one**
zone-graph sweep (asserted via the process-wide exploration counter),
and every per-query verdict, witness, sup value and trace matches the
corresponding individual ``check_reachable`` / ``check_safety`` /
``check_bounded_response`` / ``max_response_delay`` / ``sup_clock``
call.
"""

from __future__ import annotations

import pytest

from repro.core.transform import transform
from repro.mc.explorer import exploration_count
from repro.mc.observers import check_bounded_response, max_response_delay
from repro.mc.queries import (
    BoundedResponseQuery,
    ClockSupQuery,
    ReachQuery,
    ResponseSupQuery,
    SafetyQuery,
    StatsQuery,
    check_many,
    sup_clock,
    zone_graph_stats,
)
from repro.mc.reachability import StateFormula, check_reachable, check_safety
from repro.ta.builder import NetworkBuilder

from tests.conftest import build_tiny_pim, build_tiny_scheme


@pytest.fixture(scope="module")
def tiny_network():
    return transform(build_tiny_pim(), build_tiny_scheme()).network


def ping_pong(lo=2, hi=5, think=10):
    net = NetworkBuilder("pp")
    net.channel("ping")
    net.channel("pong")
    m = net.automaton("M", clocks=["x"])
    m.location("Idle", initial=True)
    m.location("Work", invariant=f"x <= {hi}")
    m.edge("Idle", "Work", sync="ping?", update="x = 0")
    m.edge("Work", "Idle", guard=f"x >= {lo}", sync="pong!")
    env = net.automaton("ENV", clocks=["ex"])
    env.location("Ready", initial=True)
    env.location("Waiting")
    env.edge("Ready", "Waiting", guard=f"ex >= {think}", sync="ping!",
             update="ex = 0")
    env.edge("Waiting", "Ready", sync="pong?", update="ex = 0")
    return net.build()


class TestSingleExploration:
    def test_paper_query_set_explores_once(self, tiny_network):
        """Stats + violation + sup — the paper's suite — in one sweep."""
        before = exploration_count()
        outcome = check_many(tiny_network, [
            StatsQuery(),
            BoundedResponseQuery("m_Req", "c_Ack", 10),
            ResponseSupQuery("m_Req", "c_Ack"),
        ])
        assert exploration_count() - before == 1
        assert outcome.explorations == 1

    def test_counter_counts_individual_runs(self, tiny_network):
        before = exploration_count()
        zone_graph_stats(tiny_network)
        check_bounded_response(tiny_network, "m_Req", "c_Ack", 10)
        assert exploration_count() - before == 2


class TestParity:
    def test_bounded_response_parity(self, tiny_network):
        individual = check_bounded_response(
            tiny_network, "m_Req", "c_Ack", 10)
        batched = check_many(tiny_network, [
            BoundedResponseQuery("m_Req", "c_Ack", 10),
            StatsQuery(),
        ]).results[0]
        assert batched.holds == individual.holds
        assert batched.counterexample is not None

    def test_single_query_is_fully_identical(self, tiny_network):
        """With one query the shared sweep IS the individual run."""
        individual = check_bounded_response(
            tiny_network, "m_Req", "c_Ack", 10)
        batched = check_many(tiny_network, [
            BoundedResponseQuery("m_Req", "c_Ack", 10)]).results[0]
        assert batched.holds == individual.holds
        assert batched.visited == individual.visited
        assert batched.transitions == individual.transitions
        assert batched.counterexample == individual.counterexample
        assert batched.trace == individual.trace

    def test_response_sup_parity(self, tiny_network):
        individual = max_response_delay(tiny_network, "m_Req", "c_Ack")
        batched = check_many(tiny_network, [
            ResponseSupQuery("m_Req", "c_Ack"),
            StatsQuery(),
        ]).results[0]
        assert (batched.bounded, batched.sup, batched.attained) == \
            (individual.bounded, individual.sup, individual.attained)

    def test_reach_and_safety_parity(self, tiny_network):
        reach_formula = StateFormula(data="cnt_i_Req == 1")
        bad_formula = StateFormula(data="ovf_i_Req == 1")
        reach = check_reachable(tiny_network, reach_formula)
        safe = check_safety(tiny_network, bad_formula)
        batched = check_many(tiny_network, [
            ReachQuery(reach_formula),
            SafetyQuery(bad_formula),
        ])
        assert batched.results[0].reachable == reach.reachable
        assert batched.results[1].holds == safe.holds

    def test_clock_sup_parity(self):
        network = ping_pong(lo=2, hi=5)
        condition = StateFormula(locations={"M": "Work"})
        individual = sup_clock(network, "x", condition)
        batched = check_many(network, [
            ClockSupQuery("x", condition),
        ]).results[0]
        assert (batched.bounded, batched.sup) == \
            (individual.bounded, individual.sup)

    def test_stats_without_instrumentation_matches(self, tiny_network):
        individual = zone_graph_stats(tiny_network)
        batched = check_many(tiny_network, [StatsQuery()]).results[0]
        assert (batched.states, batched.transitions,
                batched.discrete_configurations) == \
            (individual.states, individual.transitions,
             individual.discrete_configurations)

    @pytest.mark.parametrize("jobs", (1, 2))
    def test_jobs_variants_identical(self, tiny_network, jobs):
        base = check_many(tiny_network, [
            BoundedResponseQuery("m_Req", "c_Ack", 10),
            ResponseSupQuery("m_Req", "c_Ack"),
            StatsQuery(),
        ])
        sharded = check_many(tiny_network, [
            BoundedResponseQuery("m_Req", "c_Ack", 10),
            ResponseSupQuery("m_Req", "c_Ack"),
            StatsQuery(),
        ], jobs=jobs)
        assert sharded.results[0].holds == base.results[0].holds
        assert sharded.results[1].sup == base.results[1].sup
        assert (sharded.visited, sharded.transitions) == \
            (base.visited, base.transitions)


class TestCeilingLoop:
    def test_sup_retries_raise_exploration_count(self):
        # Sup 200 with a tiny initial ceiling forces re-sweeps; the
        # final value must still be exact.
        network = ping_pong(lo=1, hi=200, think=1)
        individual = max_response_delay(network, "ping", "pong",
                                        initial_ceiling=8)
        outcome = check_many(network, [
            ResponseSupQuery("ping", "pong", initial_ceiling=8),
        ])
        assert outcome.explorations > 1
        assert outcome.results[0].bounded
        assert outcome.results[0].sup == individual.sup == 200

    def test_unbounded_sup_detected(self):
        net = NetworkBuilder("n")
        net.channel("ping")
        net.channel("pong")
        m = net.automaton("M", clocks=["x"])
        m.location("Idle", initial=True)
        m.location("Work")  # no invariant: may stall forever
        m.edge("Idle", "Work", sync="ping?", update="x = 0")
        m.edge("Work", "Idle", guard="x >= 1", sync="pong!")
        env = net.automaton("ENV")
        env.location("Ready", initial=True)
        env.location("Waiting")
        env.edge("Ready", "Waiting", sync="ping!")
        env.edge("Waiting", "Ready", sync="pong?")
        network = net.build()
        outcome = check_many(network, [
            ResponseSupQuery("ping", "pong", cap=4096),
        ])
        assert not outcome.results[0].bounded


class TestMultiPairInstrumentation:
    def test_two_pairs_share_one_sweep(self):
        network = ping_pong(lo=2, hi=5)
        hold = check_bounded_response(network, "ping", "pong", 100)
        tight = check_bounded_response(network, "pong", "ping", 1)
        before = exploration_count()
        outcome = check_many(network, [
            BoundedResponseQuery("ping", "pong", 100),
            BoundedResponseQuery("pong", "ping", 1),
        ])
        assert outcome.results[0].holds == hold.holds
        assert outcome.results[1].holds == tight.holds
        assert outcome.explorations == 1
        assert exploration_count() - before == 1


def test_unknown_query_type_rejected(tiny_network):
    with pytest.raises(TypeError, match="unsupported query"):
        check_many(tiny_network, [object()])
