"""Differential + behavioral tests for the portfolio verifier.

The headline contract: :class:`repro.mc.portfolio.PortfolioVerifier`
over a scheme grid returns results **bit-identical** — bounds, sups,
verdicts, witnesses and per-sweep states/transitions tallies — to
running ``TimingVerificationFramework.verify`` per scheme
sequentially, across both zone backends, worker counts and *both
job-level executors* (coordinator threads over one shared pool, and
the process executor that partitions whole jobs across worker
processes).  On top of the matrix: deterministic job-ordered commit,
per-job ``max_states`` budgets, per-job fault isolation (including a
worker process that dies outright), shared PIM obligations (computed
in the parent and shipped to process workers), the fused single-sweep
mode, executor resolution via ``REPRO_EXECUTOR``, and the
concurrent-wave worker pool itself.
"""

from __future__ import annotations

import threading
from dataclasses import replace

import pytest

from repro.apps.schemes import scheme_grid
from repro.core.framework import TimingVerificationFramework
from repro.mc.portfolio import (
    ENV_EXECUTOR,
    PortfolioJob,
    PortfolioVerifier,
    portfolio_jobs,
    resolve_executor,
)
from repro.mc.parallel import WorkStealingPool
from repro.zones.backend import available_backends, set_backend
from repro.zones.intern import ZoneInternTable

from tests.conftest import build_tiny_pim, build_tiny_scheme

BACKENDS = available_backends()
JOBS = (1, 4)
EXECUTORS = ("thread", "process")
DEADLINE = 10
CHANNELS = dict(input_channel="m_Req", output_channel="c_Ack")


@pytest.fixture(params=BACKENDS)
def backend(request):
    """Force one zone backend globally (framework calls honor it)."""
    set_backend(request.param)
    yield request.param
    set_backend(None)


def grid_3x2():
    return scheme_grid(build_tiny_scheme,
                       buffer_size=(1, 2, 3), period=(4, 5))


def run_portfolio(schemes, *, jobs, **verifier_kwargs):
    pim = build_tiny_pim()
    verifier = PortfolioVerifier(jobs=jobs, **verifier_kwargs)
    return verifier.run(portfolio_jobs(
        pim, schemes, deadline_ms=DEADLINE, measure_suprema=True,
        **CHANNELS))


def sequential_reports(schemes):
    pim = build_tiny_pim()
    framework = TimingVerificationFramework()
    return [
        framework.verify(pim, scheme, deadline_ms=DEADLINE,
                         measure_suprema=True, **CHANNELS)
        for scheme in schemes
    ]


# ----------------------------------------------------------------------
# The differential matrix:
# 3×2 grid × backends × jobs ∈ {1, 4} × executor ∈ {thread, process}
# ----------------------------------------------------------------------
@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("jobs", JOBS)
def test_differential_matrix(backend, jobs, executor):
    schemes = grid_3x2()
    outcome = run_portfolio(schemes, jobs=jobs, executor=executor)
    reports = sequential_reports(schemes)

    assert outcome.executor == executor
    assert len(outcome) == 6
    assert outcome.all_ok
    assert [row.name for row in outcome] == [s.name for s in schemes]
    for row, expected in zip(outcome, reports):
        actual = row.report
        assert actual.bounds == expected.bounds
        for step in ("pim_result", "psm_original_result",
                     "psm_relaxed_result"):
            mine = getattr(actual, step)
            theirs = getattr(expected, step)
            assert mine.holds == theirs.holds
            assert mine.visited == theirs.visited
            assert mine.transitions == theirs.transitions
            assert mine.counterexample == theirs.counterexample
            assert mine.trace == theirs.trace
        assert row.constraints_hold == expected.constraints.all_hold
        assert actual.symbolic == expected.symbolic
        assert row.guarantee == expected.implementation_guarantee
        assert row.states == expected.psm_relaxed_result.visited
        assert row.transitions == expected.psm_relaxed_result.transitions


def test_sixteen_scheme_grid_bit_identical_to_sequential():
    """The acceptance-criterion grid size: 16 schemes, portfolio rows
    bit-identical to per-scheme sequential verify (default backend)."""
    schemes = scheme_grid(build_tiny_scheme,
                          buffer_size=(1, 2, 3, 4), period=(4, 5),
                          wcet=(0, 1))
    assert len(schemes) == 16
    outcome = run_portfolio(schemes, jobs=4)
    assert outcome.all_ok
    for row, expected in zip(outcome, sequential_reports(schemes)):
        assert row.report.bounds == expected.bounds
        assert row.states == expected.psm_relaxed_result.visited
        assert row.transitions == expected.psm_relaxed_result.transitions
        assert row.original_holds == expected.psm_original_result.holds
        assert row.relaxed_holds == expected.psm_relaxed_result.holds
        assert row.report.symbolic == expected.symbolic


def test_concurrent_run_matches_sequential_run(backend):
    """concurrency>1 commits the same rows as the inline scheduler."""
    schemes = grid_3x2()
    inline = run_portfolio(schemes, jobs=1)
    threaded = run_portfolio(schemes, jobs=4, concurrency=3)
    for a, b in zip(inline, threaded):
        assert a.name == b.name
        assert a.report.bounds == b.report.bounds
        assert a.states == b.states
        assert a.transitions == b.transitions
        assert a.sups == b.sups


# ----------------------------------------------------------------------
# Scheduler semantics
# ----------------------------------------------------------------------
def test_results_commit_in_job_order():
    schemes = grid_3x2()
    completion: list[str] = []
    outcome = PortfolioVerifier(jobs=4).run(
        portfolio_jobs(build_tiny_pim(), schemes,
                       deadline_ms=DEADLINE, **CHANNELS),
        on_result=lambda row: completion.append(row.name))
    assert sorted(completion) == sorted(s.name for s in schemes)
    assert [row.name for row in outcome] == [s.name for s in schemes]
    assert [row.index for row in outcome] == list(range(6))


def test_on_result_error_never_orphans_jobs():
    """A crashing observer callback must not kill coordinator threads:
    every row still completes and the first callback error re-raises
    after the run — identically for both schedulers."""
    schemes = grid_3x2()
    for workers in (1, 4):
        seen: list[str] = []

        def bad_callback(row):
            seen.append(row.name)
            raise RuntimeError("observer bug")

        verifier = PortfolioVerifier(jobs=workers)
        jobs = portfolio_jobs(build_tiny_pim(), schemes,
                              deadline_ms=DEADLINE, **CHANNELS)
        with pytest.raises(RuntimeError, match="observer bug"):
            verifier.run(jobs, on_result=bad_callback)
        assert len(seen) == len(schemes)  # no job was orphaned
        # The verifier itself is unharmed.
        assert verifier.run(jobs).all_ok


def test_per_job_max_states_budget_isolated():
    pim = build_tiny_pim()
    scheme = build_tiny_scheme()
    jobs = [
        PortfolioJob(name="starved", pim=pim, scheme=scheme,
                     deadline_ms=DEADLINE, max_states=5, **CHANNELS),
        PortfolioJob(name="fine", pim=pim, scheme=scheme,
                     deadline_ms=DEADLINE, **CHANNELS),
    ]
    outcome = PortfolioVerifier(jobs=2).run(jobs)
    assert outcome[0].status == "budget-exceeded"
    assert "5" in outcome[0].error
    assert not outcome[0].guarantee
    assert outcome[1].ok and outcome[1].guarantee
    assert not outcome.all_ok


def test_malformed_job_is_isolated_not_dropped():
    """Even a job that crashes the pipeline outright (scheme=None →
    AttributeError inside transform) must become a structured error
    row — never a dead coordinator thread leaving a None slot."""
    pim = build_tiny_pim()
    good = build_tiny_scheme()
    jobs = [
        PortfolioJob(name="ok", pim=pim, scheme=good,
                     deadline_ms=DEADLINE, **CHANNELS),
        PortfolioJob(name="malformed", pim=pim, scheme=None,
                     deadline_ms=DEADLINE, **CHANNELS),
    ]
    for workers in (1, 2):  # inline and threaded schedulers agree
        outcome = PortfolioVerifier(jobs=workers).run(jobs)
        assert [row.status for row in outcome] == ["ok", "error"]
        assert outcome[1].error and "Error" in outcome[1].error
        assert not outcome.all_ok


def test_invalid_scheme_is_isolated():
    pim = build_tiny_pim()
    good = build_tiny_scheme()
    broken = replace(good, name="broken", inputs={}, io_inputs={})
    outcome = PortfolioVerifier(jobs=2).run(portfolio_jobs(
        pim, [good, broken, good], deadline_ms=DEADLINE, **CHANNELS))
    assert [row.status for row in outcome] == ["ok", "error", "ok"]
    assert "broken" in outcome[1].error or "SchemeError" in \
        outcome[1].error
    assert outcome[0].states == outcome[2].states


def test_shared_pim_obligations_computed_once():
    schemes = grid_3x2()
    outcome = run_portfolio(schemes, jobs=2)
    first = outcome[0].report.pim_result
    assert all(row.report.pim_result is first for row in outcome)
    # Opting out re-computes per job (equal values, fresh objects).
    private = run_portfolio(schemes, jobs=2,
                            share_pim_obligations=False)
    assert private[0].report.pim_result is not \
        private[1].report.pim_result
    assert private[0].report.pim_result.visited == first.visited


def test_fused_mode_same_verdicts_one_sweep(backend):
    from repro.mc.explorer import exploration_count

    schemes = grid_3x2()
    default = run_portfolio(schemes, jobs=1)
    before = exploration_count()
    fused = run_portfolio(schemes, jobs=1, fused=True)
    fused_explorations = exploration_count() - before
    for a, b in zip(default, fused):
        assert a.report.bounds == b.report.bounds
        assert a.original_holds == b.original_holds
        assert a.relaxed_holds == b.relaxed_holds
        # Sup *values* are sweep-independent; tallies are not.
        assert {k: (v.bounded, v.sup, v.attained)
                for k, v in a.sups.items()} == \
            {k: (v.bounded, v.sup, v.attained)
             for k, v in b.sups.items()}
    # Per job: 1 shared PIM pair (first job only) + constraints +
    # the fused deadline/sup sweep — strictly fewer sweeps than the
    # default's separate deadline and suprema explorations.
    default_explorations = 2 + 6 * 3
    assert fused_explorations == 2 + 6 * 2
    assert fused_explorations < default_explorations


def test_private_intern_table_is_used():
    table = ZoneInternTable()
    assert len(table) == 0
    outcome = run_portfolio(grid_3x2(), jobs=2, intern=table)
    assert outcome.all_ok
    assert len(table) > 0


def test_intern_table_scoped_per_run_by_default():
    """A long-lived process sweeping many grids must not accumulate
    zones across portfolio runs: the default interning policy scopes
    a fresh table to each ``run`` call, leaving the process-global
    table untouched.  ``scoped_intern=False`` restores the old
    cross-run behavior."""
    from repro.zones.intern import global_intern_table

    table = global_intern_table()
    table.clear()
    assert run_portfolio(grid_3x2(), jobs=2).all_ok
    assert len(table) == 0  # nothing leaked into the global table
    # Results are identical either way (same grid, same rows).
    scoped = run_portfolio(grid_3x2(), jobs=2)
    legacy = run_portfolio(grid_3x2(), jobs=2, scoped_intern=False)
    assert len(table) > 0   # the legacy mode populates the global
    for a, b in zip(scoped, legacy):
        assert a.report.bounds == b.report.bounds
        assert a.states == b.states
        assert a.transitions == b.transitions
    table.clear()


def test_verify_portfolio_framework_step():
    schemes = grid_3x2()
    framework = TimingVerificationFramework(jobs=2)
    outcome = framework.verify_portfolio(
        build_tiny_pim(), schemes, deadline_ms=DEADLINE, **CHANNELS)
    assert outcome.all_ok
    assert len(outcome.guaranteed) == 6
    summary = outcome.summary()
    for scheme in schemes:
        assert scheme.name in summary


def test_verify_portfolio_forwards_include_progress():
    outcome = TimingVerificationFramework(jobs=1).verify_portfolio(
        build_tiny_pim(), grid_3x2()[:1], deadline_ms=DEADLINE,
        include_progress=True, **CHANNELS)
    assert outcome.all_ok
    constraints = outcome[0].report.constraints
    # The progress sanity check rides along as an extra result row.
    assert any("progress" in r.constraint.lower()
               for r in constraints.results)


def test_render_portfolio_table():
    from repro.analysis.portfolio import portfolio_rows, \
        render_portfolio

    outcome = run_portfolio(grid_3x2()[:2], jobs=1)
    table = render_portfolio(outcome)
    assert "PORTFOLIO VERIFICATION — 2 schemes" in table
    assert "Δ'_mc" in table
    assert outcome[0].name in table
    rows = portfolio_rows(outcome)
    assert rows[0]["states"] == outcome[0].states
    assert rows[0]["guarantee"] is True
    # Every line of the box renders the same *display* width — the
    # Δ̄ headers carry combining marks that len() overcounts.
    import unicodedata

    def display_width(text: str) -> int:
        return sum(0 if unicodedata.combining(c) else 1 for c in text)

    box = [line for line in table.splitlines()
           if line.startswith(("|", "+"))]
    assert len({display_width(line) for line in box}) == 1


# ----------------------------------------------------------------------
# Process executor
# ----------------------------------------------------------------------
@pytest.mark.parametrize("abstraction", ("extra_m", "extra_lu"))
def test_process_differential_both_abstractions(backend, abstraction):
    """Process rows are bit-identical to sequential per-scheme verify
    under either extrapolation operator, on either backend (workers
    replay the parent's resolved backend/abstraction)."""
    schemes = grid_3x2()
    outcome = run_portfolio(schemes, jobs=3, executor="process",
                            abstraction=abstraction)
    pim = build_tiny_pim()
    framework = TimingVerificationFramework(abstraction=abstraction)
    assert outcome.all_ok and outcome.executor == "process"
    for row, scheme in zip(outcome, schemes):
        expected = framework.verify(pim, scheme, deadline_ms=DEADLINE,
                                    measure_suprema=True, **CHANNELS)
        actual = row.report
        assert actual.bounds == expected.bounds
        for step in ("pim_result", "psm_original_result",
                     "psm_relaxed_result"):
            mine = getattr(actual, step)
            theirs = getattr(expected, step)
            assert mine.holds == theirs.holds
            assert mine.visited == theirs.visited
            assert mine.transitions == theirs.transitions
            assert mine.counterexample == theirs.counterexample
            assert mine.trace == theirs.trace
        assert actual.symbolic == expected.symbolic
        assert row.guarantee == expected.implementation_guarantee


def test_process_budget_blowup_is_isolated():
    """A worker whose job exceeds ``max_states`` yields a structured
    budget row; its siblings (including jobs that land on the *same*
    worker afterwards) complete normally."""
    pim = build_tiny_pim()
    scheme = build_tiny_scheme()
    jobs = [
        PortfolioJob(name="fine-1", pim=pim, scheme=scheme,
                     deadline_ms=DEADLINE, **CHANNELS),
        PortfolioJob(name="starved", pim=pim, scheme=scheme,
                     deadline_ms=DEADLINE, max_states=5, **CHANNELS),
        PortfolioJob(name="fine-2", pim=pim, scheme=scheme,
                     deadline_ms=DEADLINE, **CHANNELS),
    ]
    outcome = PortfolioVerifier(jobs=2, executor="process").run(jobs)
    assert [row.status for row in outcome] == \
        ["ok", "budget-exceeded", "ok"]
    assert "5" in outcome[1].error
    assert outcome[0].states == outcome[2].states
    assert not outcome.all_ok


def test_obligation_budget_blowup_same_status_both_executors():
    """A budget so small even the shared PIM obligation blows up must
    classify identically under both executors: ``budget-exceeded``,
    not a generic error row."""
    job = PortfolioJob(name="tiny-budget", pim=build_tiny_pim(),
                       scheme=build_tiny_scheme(),
                       deadline_ms=DEADLINE, max_states=1, **CHANNELS)
    threaded = PortfolioVerifier(jobs=2).run([job])
    processed = PortfolioVerifier(jobs=2, executor="process").run([job])
    assert threaded[0].status == "budget-exceeded"
    assert processed[0].status == "budget-exceeded"
    assert threaded[0].error == processed[0].error


def test_process_malformed_job_is_isolated():
    pim = build_tiny_pim()
    jobs = [
        PortfolioJob(name="ok", pim=pim, scheme=build_tiny_scheme(),
                     deadline_ms=DEADLINE, **CHANNELS),
        PortfolioJob(name="malformed", pim=pim, scheme=None,
                     deadline_ms=DEADLINE, **CHANNELS),
    ]
    for workers in (1, 2):  # inline fallback and real pool agree
        outcome = PortfolioVerifier(jobs=workers,
                                    executor="process").run(jobs)
        assert [row.status for row in outcome] == ["ok", "error"]
        assert outcome[1].error and "Error" in outcome[1].error


class _ExitBomb:
    """Pickles in the parent; unpickling kills the worker process."""

    def __reduce__(self):
        import os

        return (os._exit, (13,))


def test_process_worker_crash_yields_error_rows_not_a_dead_sweep():
    """A worker that dies outright (here: killed mid-unpickle) breaks
    the pool — every affected job must come back as a structured
    error row, never a hang, an exception or a ``None`` slot, and the
    verifier must be reusable afterwards."""
    pim = build_tiny_pim()
    scheme = build_tiny_scheme()
    jobs = [
        PortfolioJob(name="ok", pim=pim, scheme=scheme,
                     deadline_ms=DEADLINE, **CHANNELS),
        PortfolioJob(name="bomb", pim=pim, scheme=_ExitBomb(),
                     deadline_ms=DEADLINE, **CHANNELS),
    ]
    verifier = PortfolioVerifier(jobs=2, executor="process")
    outcome = verifier.run(jobs)
    assert len(outcome) == 2
    assert all(row is not None for row in outcome.results)
    assert outcome[1].status == "error"
    assert "worker failed" in outcome[1].error
    # The sweep survives the broken pool, and so does the verifier.
    healthy = verifier.run([jobs[0]])
    assert healthy.all_ok


def test_process_results_commit_in_job_order_and_stream():
    schemes = grid_3x2()
    completion: list[str] = []
    outcome = PortfolioVerifier(jobs=4, executor="process").run(
        portfolio_jobs(build_tiny_pim(), schemes,
                       deadline_ms=DEADLINE, **CHANNELS),
        on_result=lambda row: completion.append(row.name))
    assert sorted(completion) == sorted(s.name for s in schemes)
    assert [row.name for row in outcome] == [s.name for s in schemes]
    assert [row.index for row in outcome] == list(range(6))


def test_process_on_result_error_reraises_after_all_rows():
    seen: list[str] = []

    def bad_callback(row):
        seen.append(row.name)
        raise RuntimeError("observer bug")

    jobs = portfolio_jobs(build_tiny_pim(), grid_3x2(),
                          deadline_ms=DEADLINE, **CHANNELS)
    verifier = PortfolioVerifier(jobs=2, executor="process")
    with pytest.raises(RuntimeError, match="observer bug"):
        verifier.run(jobs, on_result=bad_callback)
    assert len(seen) == len(jobs)  # no job was orphaned
    assert verifier.run(jobs).all_ok


def test_process_obligations_computed_once_in_parent():
    """With sharing on, the parent runs exactly the two
    scheme-independent sweeps (step 1 + internal sup) and ships the
    values; with sharing off, *all* exploration happens in workers."""
    from repro.mc.explorer import exploration_count

    jobs = portfolio_jobs(build_tiny_pim(), grid_3x2(),
                          deadline_ms=DEADLINE, **CHANNELS)
    before = exploration_count()
    outcome = PortfolioVerifier(jobs=2, executor="process").run(jobs)
    shared_sweeps = exploration_count() - before
    assert outcome.all_ok
    assert shared_sweeps == 2
    before = exploration_count()
    private = PortfolioVerifier(jobs=2, executor="process",
                                share_pim_obligations=False).run(jobs)
    assert exploration_count() - before == 0
    assert private.all_ok
    for a, b in zip(outcome, private):
        assert a.report.bounds == b.report.bounds
        assert a.states == b.states


def test_process_fused_mode_same_verdicts():
    schemes = grid_3x2()
    default = run_portfolio(schemes, jobs=2, executor="process")
    fused = run_portfolio(schemes, jobs=2, executor="process",
                          fused=True)
    for a, b in zip(default, fused):
        assert a.report.bounds == b.report.bounds
        assert a.original_holds == b.original_holds
        assert a.relaxed_holds == b.relaxed_holds
        assert {k: (v.bounded, v.sup, v.attained)
                for k, v in a.sups.items()} == \
            {k: (v.bounded, v.sup, v.attained)
             for k, v in b.sups.items()}


def test_executor_resolution_and_validation(monkeypatch):
    monkeypatch.delenv(ENV_EXECUTOR, raising=False)
    assert resolve_executor() == "thread"
    assert resolve_executor("process") == "process"
    monkeypatch.setenv(ENV_EXECUTOR, "process")
    assert resolve_executor() == "process"
    jobs = portfolio_jobs(build_tiny_pim(), grid_3x2()[:1],
                          deadline_ms=DEADLINE, **CHANNELS)
    outcome = PortfolioVerifier(jobs=1).run(jobs)
    assert outcome.executor == "process"  # env reached the verifier
    monkeypatch.setenv(ENV_EXECUTOR, "goroutine")
    with pytest.raises(ValueError, match="goroutine"):
        resolve_executor()
    with pytest.raises(ValueError, match="REPRO_EXECUTOR"):
        PortfolioVerifier(jobs=1).run(jobs)
    with pytest.raises(ValueError, match="fiber"):
        PortfolioVerifier(executor="fiber")  # eager validation


def test_engine_config_capture_and_pickle_roundtrip():
    """The worker-replay snapshot resolves to concrete names and
    survives pickling (it crosses the process boundary)."""
    import pickle

    from repro.mc.parallel import EngineConfig
    from repro.ta.bounds import set_abstraction

    set_backend(BACKENDS[0])
    set_abstraction("extra_lu")
    try:
        config = EngineConfig.capture(jobs=None)
        assert config.backend == BACKENDS[0]
        assert config.abstraction == "extra_lu"
        assert config.jobs is None
        assert pickle.loads(pickle.dumps(config)) == config
        # Explicit arguments beat the globals, as everywhere else.
        explicit = EngineConfig.capture(abstraction="extra_m", jobs=3)
        assert explicit.abstraction == "extra_m"
        assert explicit.jobs == 3
    finally:
        set_backend(None)
        set_abstraction(None)


# ----------------------------------------------------------------------
# Cross-scheme reuse: verdict memo, dominance pruning, fallback
# ----------------------------------------------------------------------
def assert_rows_equal(baseline, candidate, *, allow_derived=False):
    """Bit-identical verdict columns; tallies compared when both rows
    ran (memoized rows keep the donor's tallies — exact by the
    occupancy-certificate bisimulation; derived rows have none)."""
    for a, b in zip(baseline, candidate):
        assert a.name == b.name
        assert a.status == b.status
        assert a.report.bounds == b.report.bounds
        assert a.constraints_hold == b.constraints_hold
        assert a.relaxed_holds == b.relaxed_holds
        assert a.guarantee == b.guarantee
        if b.derived_from is None:
            assert a.original_holds == b.original_holds
            assert a.states == b.states
            assert a.transitions == b.transitions
            assert {k: (v.bounded, v.sup, v.attained)
                    for k, v in a.sups.items()} == \
                {k: (v.bounded, v.sup, v.attained)
                 for k, v in b.sups.items()}
        else:
            assert allow_derived
            assert b.states is None and b.transitions is None


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("jobs", JOBS)
def test_reuse_differential_matrix(backend, jobs, executor):
    """Memo-on rows are bit-identical to memo-off across backends,
    executors and worker counts — and the memo actually fires (the
    3×2 grid's buffer axis collapses)."""
    schemes = grid_3x2()
    baseline = run_portfolio(schemes, jobs=jobs, executor=executor)
    reused = run_portfolio(schemes, jobs=jobs, executor=executor,
                           reuse=True)
    assert_rows_equal(baseline, reused)
    assert reused.reuse
    assert reused.memoized > 0
    assert reused.explored + reused.memoized == len(schemes)
    assert all(row.memo_hit is not None
               for row in reused if row.memo_hit), "provenance set"
    hits = [row for row in reused if row.memo_hit is not None]
    names = {row.name for row in reused}
    assert all(row.memo_hit in names for row in hits)


@pytest.mark.parametrize("abstraction", ("extra_m", "extra_lu"))
def test_reuse_differential_both_abstractions(abstraction):
    schemes = grid_3x2()
    baseline = run_portfolio(schemes, jobs=1, abstraction=abstraction)
    reused = run_portfolio(schemes, jobs=1, abstraction=abstraction,
                           reuse=True)
    assert_rows_equal(baseline, reused)
    assert reused.memoized > 0


def test_memo_off_is_the_default():
    """Library default keeps every scheme on its own sweep — the
    pinned exploration-count contracts elsewhere depend on it."""
    outcome = run_portfolio(grid_3x2(), jobs=1)
    assert not outcome.reuse
    assert outcome.memoized == 0
    assert all(row.memo_hit is None and row.derived_from is None
               for row in outcome)


def test_reuse_never_bridges_distinct_timing():
    """Schemes differing in period never share memo entries."""
    schemes = scheme_grid(build_tiny_scheme, buffer_size=(2,),
                          period=(4, 5, 6))
    outcome = run_portfolio(schemes, jobs=1, reuse=True)
    assert outcome.all_ok
    assert outcome.memoized == 0
    assert outcome.explored == 3


def test_small_grid_fallback_skips_shared_pool():
    """Satellite: on grids with at least as many jobs as workers the
    verifier runs whole jobs concurrently on inline engines instead
    of zone-level waves — the non-timing overhead proxy is the wave
    counter, which must be zero under the fallback and positive when
    the legacy shared pool is forced.  Rows agree bit-for-bit."""
    schemes = grid_3x2()
    fallback = run_portfolio(schemes, jobs=4)
    legacy = run_portfolio(schemes, jobs=4, small_grid_fallback=False)
    assert fallback.pool_width == 0
    assert fallback.pool_waves == 0
    assert legacy.pool_width == 4
    assert legacy.pool_waves > 0
    assert_rows_equal(legacy, fallback)


def test_fallback_requires_enough_jobs():
    """Fewer jobs than workers keeps the shared pool (zone-level
    parallelism is all there is)."""
    schemes = grid_3x2()[:2]
    outcome = run_portfolio(schemes, jobs=4)
    assert outcome.pool_width == 4
    assert outcome.all_ok


def test_tiny_fallback_drops_to_sequential():
    """Satellite: for tiny models the fallback goes all the way to
    the sequential scheduler — whole-job coordinator threads only
    add GIL contention at that scale.  The non-timing proxy is the
    recorded coordinator count; an explicit ``concurrency`` always
    wins over the drop.  Rows agree bit-for-bit either way."""
    schemes = grid_3x2()
    auto = run_portfolio(schemes, jobs=4)
    assert auto.pool_width == 0
    assert auto.concurrency == 1
    forced = run_portfolio(schemes, jobs=4, concurrency=4)
    assert forced.pool_width == 0
    assert forced.concurrency == 4
    assert_rows_equal(auto, forced)


def test_sequential_hint_is_static_and_size_scaled():
    """The sequential drop keys on structural size x deadline
    horizon — both knowable before exploration — so the case-study
    PSM (bigger network, 500 ms horizon) keeps its coordinators."""
    from repro.apps.infusion import REQ1_DEADLINE_MS, build_infusion_pim
    from repro.apps.schemes import case_study_scheme

    tiny = portfolio_jobs(build_tiny_pim(), grid_3x2()[:1],
                          deadline_ms=DEADLINE, **CHANNELS)[0]
    assert PortfolioVerifier._tiny_workload(tiny)
    case = portfolio_jobs(
        build_infusion_pim(), [case_study_scheme()],
        input_channel="m_BolusReq",
        output_channel="c_StartInfusion",
        deadline_ms=REQ1_DEADLINE_MS)[0]
    assert not PortfolioVerifier._tiny_workload(case)


def prune_jobs(schemes):
    """Dominance pruning never groups suprema jobs, so these run
    without ``measure_suprema``."""
    return portfolio_jobs(build_tiny_pim(), schemes,
                          deadline_ms=DEADLINE, **CHANNELS)


def test_prune_dominated_derives_from_harder_neighbor():
    """Points dominated along the period axis inherit Theorem-1
    verdicts from the verified harder neighbor, with provenance."""
    schemes = scheme_grid(build_tiny_scheme, buffer_size=(2,),
                          period=(4, 5, 6))
    baseline = PortfolioVerifier(jobs=1).run(prune_jobs(schemes))
    pruned = PortfolioVerifier(jobs=1, prune_dominated=True).run(
        prune_jobs(schemes))
    assert_rows_equal(baseline, pruned, allow_derived=True)
    assert pruned.pruned == 2  # periods 4, 5 derive from period 6
    derived = [row for row in pruned if row.derived_from is not None]
    assert len(derived) == 2
    names = {row.name for row in pruned}
    assert all(row.derived_from in names for row in derived)
    # Derived rows still carry their *own* analytic bounds.
    for a, b in zip(baseline, pruned):
        assert a.report.bounds == b.report.bounds


def test_prune_dominated_never_groups_suprema_jobs():
    schemes = scheme_grid(build_tiny_scheme, buffer_size=(2,),
                          period=(4, 5))
    outcome = run_portfolio(schemes, jobs=1, prune_dominated=True)
    assert outcome.all_ok
    assert outcome.pruned == 0  # measure_suprema=True blocks grouping
    assert all(row.derived_from is None for row in outcome)


def test_prune_and_reuse_compose(backend):
    schemes = grid_3x2()
    baseline = PortfolioVerifier(jobs=1).run(prune_jobs(schemes))
    combined = PortfolioVerifier(jobs=1, reuse=True,
                                 prune_dominated=True).run(
        prune_jobs(schemes))
    assert_rows_equal(baseline, combined, allow_derived=True)
    assert combined.pruned > 0
    assert combined.explored + combined.memoized + combined.pruned \
        == len(schemes)


def test_process_reuse_and_prune():
    schemes = grid_3x2()
    baseline = PortfolioVerifier(jobs=2, executor="process").run(
        prune_jobs(schemes))
    combined = PortfolioVerifier(jobs=2, executor="process", reuse=True,
                                 prune_dominated=True).run(
        prune_jobs(schemes))
    assert_rows_equal(baseline, combined, allow_derived=True)
    assert combined.memoized + combined.pruned > 0


def test_warm_start_keeps_rows_identical_across_runs():
    schemes = grid_3x2()
    baseline = run_portfolio(schemes, jobs=2)
    verifier = PortfolioVerifier(jobs=2, warm_start=True,
                                 small_grid_fallback=False)
    jobs = portfolio_jobs(build_tiny_pim(), schemes,
                          deadline_ms=DEADLINE, measure_suprema=True,
                          **CHANNELS)
    first = verifier.run(jobs)
    second = verifier.run(jobs)
    assert_rows_equal(baseline, first)
    assert_rows_equal(baseline, second)
    # The pinned table persists across runs and was actually used.
    assert verifier._warm_intern is not None
    assert verifier._warm_intern.hits > 0


def test_warm_start_cap_bounds_the_pinned_table():
    """``warm_start_max_zones`` turns the daemon memory leak into a
    bounded cache: the pinned table generation-resets at capacity
    (visible in the outcome counters) and rows stay identical."""
    schemes = grid_3x2()
    baseline = run_portfolio(schemes, jobs=2)
    verifier = PortfolioVerifier(jobs=2, warm_start=True,
                                 warm_start_max_zones=8,
                                 small_grid_fallback=False)
    jobs = portfolio_jobs(build_tiny_pim(), schemes,
                          deadline_ms=DEADLINE, measure_suprema=True,
                          **CHANNELS)
    for _ in range(3):
        outcome = verifier.run(jobs)
        assert_rows_equal(baseline, outcome)
        assert outcome.interned_zones <= 8
    table = verifier._warm_intern
    assert table is not None
    assert table.max_zones == 8
    assert len(table) <= 8
    # The tiny grid interns far more than 8 distinct zones per run,
    # so the cap must have evicted (generation resets > 0) — and the
    # counters surface through both reporting paths.
    assert table.resets > 0
    assert outcome.intern_resets == table.resets
    assert verifier.warm_start_stats() == {
        "zones": len(table), "resets": table.resets}


def test_warm_start_cap_validation():
    with pytest.raises(ValueError):
        PortfolioVerifier(warm_start=True, warm_start_max_zones=0)


def test_injected_memo_is_shared_across_verifiers():
    """The service hands several verifiers one server-lifetime memo:
    the second verifier answers from entries the first committed."""
    from repro.mc.memo import VerdictMemo

    schemes = grid_3x2()
    memo = VerdictMemo()
    first = PortfolioVerifier(jobs=1, reuse=True, memo=memo)
    jobs = portfolio_jobs(build_tiny_pim(), schemes,
                          deadline_ms=DEADLINE, measure_suprema=True,
                          **CHANNELS)
    outcome_a = first.run(jobs)
    hits_after_first = memo.hits
    second = PortfolioVerifier(jobs=1, reuse=True, memo=memo)
    outcome_b = second.run(jobs)
    assert_rows_equal(outcome_a.results, outcome_b.results)
    # Every second-run job is answered from the shared memo.
    assert outcome_b.memoized == len(schemes)
    assert memo.hits > hits_after_first


def test_run_job_single_job_front_door():
    """``run_job`` returns the same row :meth:`run` commits for the
    same job, and concurrent ``run_job`` callers dedupe through the
    shared memo."""
    schemes = grid_3x2()[:1]
    pim = build_tiny_pim()
    jobs = portfolio_jobs(pim, schemes, deadline_ms=DEADLINE,
                          measure_suprema=True, **CHANNELS)
    baseline = run_portfolio(schemes, jobs=1)
    verifier = PortfolioVerifier(jobs=1, reuse=True)
    row = verifier.run_job(jobs[0])
    assert row.status == "ok"
    assert_rows_equal([baseline[0]], [row])
    again = verifier.run_job(jobs[0])
    assert again.memo_hit == jobs[0].name
    assert_rows_equal([baseline[0]], [again])


def test_render_portfolio_shows_reuse_provenance():
    from repro.analysis.portfolio import render_portfolio

    outcome = run_portfolio(grid_3x2(), jobs=1, reuse=True)
    table = render_portfolio(outcome)
    assert "origin" in table
    assert "memo=" in table
    assert "reuse:" in table
    rows = [row.row() for row in outcome]
    assert any("memo_hit" in row for row in rows)


# ----------------------------------------------------------------------
# The shared worker pool itself
# ----------------------------------------------------------------------
class TestWorkStealingPool:
    def test_concurrent_waves_complete_independently(self):
        pool = WorkStealingPool(2)
        try:
            counts = {}

            def submit(tag: int) -> None:
                done = []
                pool.run_wave([lambda i=i: done.append(i)
                               for i in range(25)])
                counts[tag] = len(done)

            threads = [threading.Thread(target=submit, args=(t,))
                       for t in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert counts == {0: 25, 1: 25, 2: 25, 3: 25}
        finally:
            pool.shutdown()

    def test_error_scoped_to_its_wave(self):
        pool = WorkStealingPool(2)
        try:
            def boom() -> None:
                raise RuntimeError("wave-scoped")

            with pytest.raises(RuntimeError, match="wave-scoped"):
                pool.run_wave([boom])
            # The pool survives and the next wave is unaffected.
            done = []
            pool.run_wave([lambda: done.append(1)])
            assert done == [1]
        finally:
            pool.shutdown()

    def test_rejects_waves_after_shutdown(self):
        pool = WorkStealingPool(2)
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.run_wave([lambda: None])


# ----------------------------------------------------------------------
# Memo in-flight failure protocol: a crashed leader must not strand
# its waiters
# ----------------------------------------------------------------------
class TestMemoFailureProtocol:
    def test_failed_commit_wakes_waiters_with_sentinel(self):
        from repro.mc.memo import VerdictMemo

        memo = VerdictMemo()
        key = ("k",)
        assert memo.claim(key) is None  # this thread is the leader
        ready = threading.Semaphore(0)
        sentinels: list[bool] = []

        def follower() -> None:
            record = memo.claim(key)
            assert record is not None
            ready.release()
            assert record.event.wait(timeout=10), "waiter stranded"
            sentinels.append(record.failed)

        threads = [threading.Thread(target=follower)
                   for _ in range(4)]
        for thread in threads:
            thread.start()
        for _ in threads:
            ready.acquire()
        memo.commit(key, None)  # the leader failed
        for thread in threads:
            thread.join(timeout=10)
        assert sentinels == [True] * 4
        assert memo.failures == 1
        # Ownership is free again: the fallback explorers do not need
        # it, but a later job may claim the key afresh.
        assert memo.claim(key) is None

    def test_successful_commit_is_not_flagged(self):
        from repro.mc.memo import MemoEntry, VerdictMemo

        memo = VerdictMemo()
        key = ("k",)
        assert memo.claim(key) is None
        record = memo.claim(key)
        entry = MemoEntry(donor="a", erased=(), maxima={},
                          constraints=None, original=None,
                          relaxed=None)
        memo.commit(key, entry)
        assert record.event.is_set()
        assert record.failed is False
        assert memo.failures == 0
        assert memo.stats()["failures"] == 0

    def test_crashing_leader_followers_fall_back(self, monkeypatch):
        """The pre-fix deadlock: a leader raising mid-exploration left
        its waiters blocked (or serially re-claiming).  Now the commit
        of ``None`` carries the failed sentinel, waiting followers
        explore concurrently, and the grid finishes with exactly one
        error row — verdicts of the survivors identical to a clean
        run."""
        from repro.mc.memo import VerdictMemo

        schemes = scheme_grid(build_tiny_scheme,
                              buffer_size=(1, 2, 3), period=(4,))
        baseline = run_portfolio(schemes, jobs=1)

        follower_waiting = threading.Event()
        real_claim = VerdictMemo.claim

        def claim(self, key):
            record = real_claim(self, key)
            if record is not None:
                follower_waiting.set()
            return record

        crashed = []
        real_explore = PortfolioVerifier._explore_job

        def explore(self, *args, **kwargs):
            if not crashed:
                crashed.append(True)
                # Give a follower time to block on the claim (if the
                # schedule never overlaps, the timeout keeps the test
                # valid — just less adversarial).
                follower_waiting.wait(timeout=2)
                raise RuntimeError("leader crashed")
            return real_explore(self, *args, **kwargs)

        monkeypatch.setattr(VerdictMemo, "claim", claim)
        monkeypatch.setattr(PortfolioVerifier, "_explore_job",
                            explore)
        outcome = run_portfolio(schemes, jobs=1, reuse=True,
                                concurrency=3)
        errors = [row for row in outcome if row.status == "error"]
        assert len(errors) == 1
        assert "leader crashed" in errors[0].error
        by_name = {row.name: row for row in baseline}
        survivors = [row for row in outcome if row.status == "ok"]
        assert len(survivors) == len(schemes) - 1
        for row in survivors:
            want = by_name[row.name]
            assert row.guarantee == want.guarantee
            assert row.constraints_hold == want.constraints_hold
            assert row.relaxed_holds == want.relaxed_holds
            assert row.report.bounds == want.report.bounds
