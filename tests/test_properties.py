"""Cross-module property tests (hypothesis).

Two families:

* **Lemma-1/2 soundness over random schemes** — for randomly drawn
  platform parameters, the analytic bounds must dominate the exact
  model-checked suprema on the transformed PSM.
* **Model/implementation agreement over random scenarios** — for
  random seeds and request counts, every simulated delay stays within
  the verified envelope and the platform health counters stay clean.

Parameter ranges are kept small so each PSM's zone graph stays tiny;
examples are capped accordingly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.delays import pair_requests
from repro.codegen import build_controller
from repro.core.delays import (
    analytic_input_delay_bound,
    derive_bounds,
    symbolic_input_delay,
    symbolic_mc_delay,
)
from repro.core.scheme import ReadMechanism, ReadPolicy
from repro.core.transform import transform
from repro.envs import ClosedLoopRequester
from repro.platforms import ImplementedSystem

from tests.conftest import build_tiny_pim, build_tiny_scheme

scheme_params = st.fixed_dictionaries({
    "period": st.integers(min_value=2, max_value=7),
    "buffer_size": st.integers(min_value=1, max_value=3),
    "read_policy": st.sampled_from([ReadPolicy.READ_ALL,
                                    ReadPolicy.READ_ONE]),
})


@settings(max_examples=12, deadline=None)
@given(scheme_params)
def test_lemma1_input_bound_sound_over_random_schemes(params):
    pim = build_tiny_pim()
    scheme = build_tiny_scheme(wcet=1, **params)
    psm = transform(pim, scheme)
    analytic = analytic_input_delay_bound(scheme, "m_Req")
    symbolic = symbolic_input_delay(psm, "m_Req")
    assert symbolic.bounded
    assert symbolic.sup <= analytic


@settings(max_examples=8, deadline=None)
@given(scheme_params,
       st.integers(min_value=2, max_value=8))
def test_lemma2_relaxed_bound_sound_over_random_schemes(params,
                                                        polling):
    pim = build_tiny_pim()
    scheme = build_tiny_scheme(
        wcet=1, input_mechanism=ReadMechanism.POLLING,
        polling_interval=max(polling, 3), **params)
    psm = transform(pim, scheme)
    bounds = derive_bounds(pim, scheme, "m_Req", "c_Ack")
    sup = symbolic_mc_delay(psm, "m_Req", "c_Ack")
    assert sup.bounded
    assert sup.sup <= bounds.relaxed


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=3, max_value=8))
def test_simulation_within_verified_envelope(seed, trials):
    pim = build_tiny_pim()
    scheme = build_tiny_scheme()
    bounds = derive_bounds(pim, scheme, "m_Req", "c_Ack")
    controller = build_controller(pim.m,
                                  constants=pim.network.constants)
    system = ImplementedSystem(controller, scheme,
                               pim.input_channels(),
                               pim.output_channels(), seed=seed)
    requester = ClosedLoopRequester(system, "m_Req", "c_Ack",
                                    count=trials, think_ms=(15, 30),
                                    first_press_ms=3)
    system.start()
    requester.start()
    system.run_for(trials * 200 + 500)
    assert requester.responses_seen == trials
    stats = system.stats()
    assert not stats.any_buffer_overflow
    assert stats.missed_signals == 0
    assert stats.dropped_by_code == 0
    for timing in pair_requests(system.trace, "m_Req", "c_Ack"):
        assert timing.completed
        assert timing.input_delay <= bounds.input_bound
        assert timing.output_delay <= bounds.output_bound
        assert timing.mc_delay <= bounds.relaxed


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_simulation_deterministic_per_seed(seed):
    def run():
        pim = build_tiny_pim()
        scheme = build_tiny_scheme()
        controller = build_controller(
            pim.m, constants=pim.network.constants)
        system = ImplementedSystem(controller, scheme,
                                   pim.input_channels(),
                                   pim.output_channels(), seed=seed)
        requester = ClosedLoopRequester(system, "m_Req", "c_Ack",
                                        count=3, think_ms=(15, 30),
                                        first_press_ms=3)
        system.start()
        requester.start()
        system.run_for(1_000)
        return [(e.time_us, e.kind, e.channel, e.tag)
                for e in system.trace]

    assert run() == run()
