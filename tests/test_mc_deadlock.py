"""Tests for deadlock/timelock detection."""

from repro.mc.deadlock import find_deadlocks
from repro.ta.builder import NetworkBuilder

from tests.conftest import build_tiny_pim


class TestDeadlockFree:
    def test_tiny_pim(self, tiny_pim):
        report = find_deadlocks(tiny_pim.network)
        assert report.deadlock_free
        assert "deadlock-free" in report.summary()


class TestStuckStates:
    def test_plain_dead_end_with_bounded_time(self):
        net = NetworkBuilder("n")
        a = net.automaton("A", clocks=["x"])
        a.location("L", invariant="x <= 5", initial=True)
        a.location("Trap", invariant="x <= 9")
        a.edge("L", "Trap", guard="x >= 5")
        network = net.build()
        report = find_deadlocks(network)
        assert not report.deadlock_free
        assert any("Trap" in s for s in report.stuck_states)

    def test_dead_end_with_divergent_time_not_stuck(self):
        # A sink without invariants lets time diverge: idling forever
        # is a legal timed behavior, not a deadlock.
        net = NetworkBuilder("n")
        a = net.automaton("A", clocks=["x"])
        a.location("L", invariant="x <= 5", initial=True)
        a.location("Sink")
        a.edge("L", "Sink", guard="x >= 5")
        network = net.build()
        assert find_deadlocks(network).deadlock_free

    def test_timelock_from_blocked_sync(self):
        # A must emit before x exceeds 3 but B can never receive:
        # a classic composition timelock.
        net = NetworkBuilder("n")
        net.channel("ch")
        a = net.automaton("A", clocks=["x"])
        a.location("L", invariant="x <= 3", initial=True)
        a.location("Done")
        a.edge("L", "Done", sync="ch!")
        b = net.automaton("B")
        b.location("R", initial=True)
        b.location("Never")
        b.edge("Never", "Never", sync="ch?")
        network = net.build()
        report = find_deadlocks(network)
        assert not report.deadlock_free

    def test_limit_caps_reported_states(self):
        net = NetworkBuilder("n")
        net.int_var("k", 0, 0, 10)
        a = net.automaton("A", clocks=["x"])
        a.location("L", invariant="x <= 2", initial=True)
        a.location("Trap", invariant="x <= 2")
        a.edge("L", "Trap", guard="x >= 1", update="k = k + 1")
        network = net.build()
        report = find_deadlocks(network, limit=1)
        assert len(report.stuck_states) == 1
