"""Tests for the PIM→PSM transformation (Section IV) and the
structure of the generated interface/execution automata (Figs. 5–6)."""

import pytest

from repro.core.execution import GO_CHANNEL, accept_expression
from repro.core.interfaces import TransformError
from repro.core.scheme import (
    DeliveryMechanism,
    InputSpec,
    InvocationKind,
    IOSpec,
    OutputSpec,
    ReadMechanism,
    ReadPolicy,
    SignalType,
)
from repro.core.transform import transform
from repro.mc.deadlock import find_deadlocks
from repro.mc.queries import zone_graph_stats
from repro.ta.builder import NetworkBuilder

from tests.conftest import build_tiny_pim, build_tiny_scheme


@pytest.fixture(scope="module")
def tiny_psm():
    return transform(build_tiny_pim(), build_tiny_scheme())


class TestComposition:
    def test_definition3_components(self, tiny_psm):
        roles = dict(tiny_psm.components())
        assert roles["MIO"] == "MIO"
        assert roles["ENVMC"] == "ENVMC"
        assert roles["EXEIO"] == "EXEIO"
        assert roles["IFMI[m_Req]"] == "IFMI_i_Req"
        assert roles["IFOC[c_Ack]"] == "IFOC_o_Ack"

    def test_io_channel_twins_declared(self, tiny_psm):
        network = tiny_psm.network
        for channel in ("m_Req", "c_Ack", "i_Req", "o_Ack"):
            assert network.has_channel(channel)
        assert tiny_psm.io_name("m_Req") == "i_Req"
        assert tiny_psm.io_name("c_Ack") == "o_Ack"

    def test_mio_preserves_structure(self, tiny_psm):
        m = build_tiny_pim().m
        mio = tiny_psm.network.automaton("MIO")
        assert mio.location_names() == m.location_names()
        assert len(mio.edges) == len(m.edges)
        # Syncs renamed to the io-boundary.
        assert mio.input_channels() == {"i_Req"}
        assert mio.output_channels() == {"o_Ack"}

    def test_mio_clocks_hoisted_global(self, tiny_psm):
        assert "mio_x" in tiny_psm.network.global_clocks
        assert tiny_psm.network.automaton("MIO").clocks == ()

    def test_mio_shadow_variable_maintained(self, tiny_psm):
        mio = tiny_psm.network.automaton("MIO")
        for edge in mio.edges:
            assert "mio_loc = " in str(edge.update)

    def test_envmc_is_env_verbatim(self, tiny_psm):
        env = build_tiny_pim().env
        envmc = tiny_psm.network.automaton("ENVMC")
        assert envmc.location_names() == env.location_names()
        assert [str(e.guard) for e in envmc.edges] == \
            [str(e.guard) for e in env.edges]

    def test_bookkeeping_variables_declared(self, tiny_psm):
        names = {v.name for v in tiny_psm.network.variables}
        assert {"mio_loc", "code_drop", "cnt_i_Req", "ovf_i_Req",
                "cnt_o_Ack", "stg_o_Ack", "ovf_o_Ack"} <= names

    def test_internal_edges_rejected(self):
        net = NetworkBuilder("p")
        net.channel("m_Req")
        net.channel("c_Ack")
        m = net.automaton("M", clocks=["x"])
        m.location("L", initial=True)
        m.location("Mid")
        m.edge("L", "Mid", sync="m_Req?")
        m.edge("Mid", "L")  # internal
        env = net.automaton("ENV")
        env.location("E", initial=True)
        env.edge("E", "E", sync="m_Req!")
        env.edge("E", "E", sync="c_Ack?")
        from repro.core.pim import PIM
        pim = PIM(network=net.build(), controller="M",
                  environment="ENV")
        with pytest.raises(TransformError, match="internal"):
            transform(pim, build_tiny_scheme())


class TestFig5Interfaces:
    def test_ifmi_interrupt_shape(self, tiny_psm):
        ifmi = tiny_psm.network.automaton("IFMI_i_Req")
        assert ifmi.location_names() == ["Idle", "Processing"]
        # Receive edge plus the two enqueue cases.
        assert len(ifmi.edges) == 3
        enqueue_edges = ifmi.edges_from("Processing")
        guards = [str(e.guard) for e in enqueue_edges]
        assert any("< 2" in g for g in guards)   # space available
        assert any("== 2" in g for g in guards)  # full

    def test_ifmi_processing_window(self, tiny_psm):
        ifmi = tiny_psm.network.automaton("IFMI_i_Req")
        processing = ifmi.location("Processing")
        assert str(processing.invariant[0]) == "y <= 2"
        for edge in ifmi.edges_from("Processing"):
            assert any(a.op == ">=" and a.bound == 1
                       for a in edge.guard.clock_constraints)

    def test_ifmi_polling_shape(self):
        psm = transform(build_tiny_pim(), build_tiny_scheme(
            input_mechanism=ReadMechanism.POLLING, polling_interval=6))
        ifmi = psm.network.automaton("IFMI_i_Req")
        assert set(ifmi.location_names()) == {"Wait", "Processing"}
        # Latch edges present in both locations (device never blocks).
        latch_edges = [e for e in ifmi.edges
                       if e.sync and e.sync.channel == "m_Req"]
        assert len(latch_edges) == 4
        vars_ = psm.input_vars["m_Req"]
        assert vars_.latch and vars_.missed

    def test_polling_slower_than_processing_rejected(self):
        with pytest.raises(TransformError, match="polling interval"):
            transform(build_tiny_pim(), build_tiny_scheme(
                input_mechanism=ReadMechanism.POLLING,
                polling_interval=1))

    def test_ifoc_event_shape(self, tiny_psm):
        ifoc = tiny_psm.network.automaton("IFOC_o_Ack")
        assert ifoc.location_names() == ["Idle", "Busy"]
        pickup = ifoc.edges_from("Idle")[0]
        assert pickup.sync.channel == "upick_o_Ack"
        assert tiny_psm.network.channel("upick_o_Ack").urgent
        emit = ifoc.edges_from("Busy")[0]
        assert emit.sync.channel == "c_Ack"


class TestFig6Exeio:
    def test_stage_locations(self, tiny_psm):
        exeio = tiny_psm.network.automaton("EXEIO")
        names = exeio.location_names()
        assert names[0] == "Waiting"
        assert "Read" in names and "Compute" in names
        assert "Write_o_Ack" in names
        assert exeio.location("Read").urgent
        assert exeio.location("Write_o_Ack").committed

    def test_tick_edge_resets_clocks(self, tiny_psm):
        exeio = tiny_psm.network.automaton("EXEIO")
        tick = exeio.edges_from("Waiting")[0]
        assert "t == 5" in str(tick.guard)
        assert "t = 0" in str(tick.update)
        assert "e = 0" in str(tick.update)

    def test_complementary_transitions(self, tiny_psm):
        exeio = tiny_psm.network.automaton("EXEIO")
        read_edges = exeio.edges_from("Read")
        deliver = [e for e in read_edges
                   if e.sync and e.sync.channel == "i_Req"]
        assert len(deliver) == 1
        guard = str(deliver[0].guard)
        # (3) input buffered, (1) MIO in the accepting location.
        assert "cnt_i_Req > 0" in guard
        assert "mio_loc == 0" in guard
        drop = [e for e in read_edges
                if e.sync is None and "code_drop" in str(e.update)]
        assert len(drop) == 1
        assert "!" in str(drop[0].guard)

    def test_compute_receives_and_stages_outputs(self, tiny_psm):
        exeio = tiny_psm.network.automaton("EXEIO")
        recv = [e for e in exeio.edges_from("Compute")
                if e.sync and e.sync.channel == "o_Ack"]
        assert len(recv) == 2  # staged-ok and staged-overflow
        updates = " | ".join(str(e.update) for e in recv)
        assert "stg_o_Ack = (stg_o_Ack + 1)" in updates
        assert "ovf_o_Ack = 1" in updates

    def test_write_chain_ok_and_overflow(self, tiny_psm):
        exeio = tiny_psm.network.automaton("EXEIO")
        write_edges = exeio.edges_from("Write_o_Ack")
        assert len(write_edges) == 2
        guards = [str(e.guard) for e in write_edges]
        assert any("<= 2" in g for g in guards)
        assert any("> 2" in g for g in guards)

    def test_read_one_uses_did_flags(self):
        psm = transform(build_tiny_pim(), build_tiny_scheme(
            read_policy=ReadPolicy.READ_ONE))
        exeio = psm.network.automaton("EXEIO")
        read_edges = [e for e in exeio.edges_from("Read")
                      if e.source == "Read" and e.target == "Read"]
        for edge in read_edges:
            assert "did_i_Req == 0" in str(edge.guard)
            assert "did_i_Req = 1" in str(edge.update)

    def test_aperiodic_uses_urgent_trigger(self):
        psm = transform(build_tiny_pim(prime=0), build_tiny_scheme(
            invocation_kind=InvocationKind.APERIODIC))
        assert psm.network.has_channel(GO_CHANNEL)
        assert psm.network.channel(GO_CHANNEL).urgent
        names = [a.name for a in psm.network.automata]
        assert "EXEIO_TRIG" in names
        exeio = psm.network.automaton("EXEIO")
        assert "Sched" in exeio.location_names()

    def test_accept_expression_covers_all_sources(self):
        net = NetworkBuilder("p")
        net.channel("i_A")
        m = net.automaton("M")
        m.location("L0", initial=True)
        m.location("L1")
        m.edge("L0", "L1", sync="i_A?")
        m.edge("L1", "L0", sync="i_A?", guard="flag == 1")
        net.bool_var("flag")
        network = net.build()
        expr = accept_expression(network.automaton("M"), "i_A",
                                 "mio_loc")
        assert "mio_loc == 0" in expr
        assert "mio_loc == 1" in expr and "flag" in expr

    def test_accept_expression_rejects_clock_guards(self):
        net = NetworkBuilder("p")
        net.channel("i_A")
        m = net.automaton("M", clocks=["x"])
        m.location("L0", initial=True)
        m.edge("L0", "L0", sync="i_A?", guard="x >= 1")
        network = net.build()
        with pytest.raises(TransformError, match="clock guard"):
            accept_expression(network.automaton("M"), "i_A", "mio_loc")

    def test_accept_expression_false_when_never_read(self):
        net = NetworkBuilder("p")
        net.channel("i_A")
        m = net.automaton("M")
        m.location("L0", initial=True)
        m.edge("L0", "L0", sync="i_A!")
        network = net.build()
        assert accept_expression(network.automaton("M"), "i_A",
                                 "mio_loc") == "false"


class TestPsmBehavior:
    def test_psm_deadlock_free(self, tiny_psm):
        report = find_deadlocks(tiny_psm.network)
        assert report.deadlock_free, report.summary()

    def test_zone_graph_finite_and_modest(self, tiny_psm):
        stats = zone_graph_stats(tiny_psm.network)
        assert 0 < stats.states < 20_000

    def test_shared_variable_transform(self):
        psm = transform(build_tiny_pim(), build_tiny_scheme(
            delivery=DeliveryMechanism.SHARED_VARIABLE))
        names = {v.name for v in psm.network.variables}
        assert "lost_i_Req" in names
        # Capacity of a shared slot is one.
        decl = psm.network.variable("cnt_i_Req")
        assert decl.hi == 1
