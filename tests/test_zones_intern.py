"""Zone intern table: deduplication, pointer equality, explorer use."""

from __future__ import annotations

import pytest

from repro.core.transform import transform
from repro.mc.parallel import ShardedZoneGraphExplorer
from repro.zones.backend import available_backends, resolve_backend
from repro.zones.intern import ZoneInternTable, global_intern_table

from tests.conftest import build_tiny_pim, build_tiny_scheme

BACKENDS = available_backends()


@pytest.mark.parametrize("backend", BACKENDS)
class TestInternTable:
    def test_equal_zones_become_one_object(self, backend):
        dbm = resolve_backend(backend).dbm
        table = ZoneInternTable()
        a = dbm.zero(3).up().constrain(1, 0, 10)
        b = dbm.zero(3).up().constrain(1, 0, 10)
        assert a is not b and a.frozen() == b.frozen()
        assert table.intern(a) is a
        assert table.intern(b) is a  # pointer equality from now on
        assert len(table) == 1
        assert table.hits == 1 and table.misses == 1

    def test_distinct_zones_stay_distinct(self, backend):
        dbm = resolve_backend(backend).dbm
        table = ZoneInternTable()
        a = table.intern(dbm.zero(3))
        b = table.intern(dbm.universal(3))
        assert a is not b
        assert len(table) == 2

    def test_intern_frozen_materializes_once(self, backend):
        dbm = resolve_backend(backend).dbm
        table = ZoneInternTable()
        snapshot = dbm.zero(3).frozen()
        first = table.intern_frozen(dbm, 3, snapshot)
        second = table.intern_frozen(dbm, 3, snapshot)
        assert first is second
        assert first.frozen() == snapshot
        assert not first.is_empty()

    def test_clear(self, backend):
        dbm = resolve_backend(backend).dbm
        table = ZoneInternTable()
        table.intern(dbm.zero(2))
        table.clear()
        assert len(table) == 0

    def test_stats(self, backend):
        dbm = resolve_backend(backend).dbm
        table = ZoneInternTable()
        table.intern(dbm.zero(2))
        table.intern(dbm.zero(2))
        stats = table.stats()
        assert stats["zones"] == 1
        assert stats["hits"] + stats["misses"] == 2


def test_backends_do_not_alias():
    """Same snapshot, different backend classes: one entry apiece."""
    if len(BACKENDS) < 2:
        pytest.skip("needs at least two backends")
    table = ZoneInternTable()
    zones = [resolve_backend(name).dbm.zero(3) for name in BACKENDS]
    for zone in zones[1:]:
        assert zone.frozen() == zones[0].frozen()
    interned = [table.intern(zone) for zone in zones]
    for pos, zone in enumerate(interned):
        for other in interned[pos + 1:]:
            assert zone is not other
    assert len(table) == len(BACKENDS)


@pytest.mark.parametrize("backend", BACKENDS)
def test_sharded_explorer_shares_zone_storage(backend):
    """Equal zones across an exploration collapse to one instance."""
    network = transform(build_tiny_pim(), build_tiny_scheme()).network
    table = ZoneInternTable()
    states: list = []
    ShardedZoneGraphExplorer(
        network, jobs=1, zone_backend=backend,
        intern=table).explore(visit=states.append)
    by_snapshot: dict = {}
    for state in states:
        snapshot = state.zone.frozen()
        if snapshot in by_snapshot:
            assert state.zone is by_snapshot[snapshot]
        else:
            by_snapshot[snapshot] = state.zone
    assert len(table) >= len(by_snapshot)


def test_global_table_is_shared_and_default():
    assert global_intern_table() is global_intern_table()
    network = transform(build_tiny_pim(), build_tiny_scheme()).network
    explorer = ShardedZoneGraphExplorer(network, jobs=1)
    assert explorer.intern_table is global_intern_table()
    disabled = ShardedZoneGraphExplorer(network, jobs=1, intern=False)
    assert disabled.intern_table is None
    disabled.explore()  # still explores correctly without interning
