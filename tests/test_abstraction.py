"""Differential + property tests for the Extra⁺_LU abstraction.

The contract mirrors ``lazy_subsumption``'s: switching
``abstraction="extra_lu"`` must preserve every *verdict*, Lemma-2
bound, exact supremum and witness location that ``extra_m`` produces —
across both zone backends and worker counts — while the zone graphs
(states/transitions tallies) strictly shrink.  The shrunken tallies
get their own regression pins, exactly like the Extra_M seed pins in
``test_mc_explorer_regression.py``.

Property layer (hypothesis):

* the per-location LU maps derived by :mod:`repro.ta.bounds` are
  pointwise ≤ the global max-constant map ``Extra_M`` uses, and
* for any zone and any LU maps pointwise ≤ ``M``, the ``Extra⁺_LU``
  output zone includes the ``Extra_M`` output zone (the operator is
  genuinely coarser, never incomparable).
"""

from __future__ import annotations

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.schemes import scheme_grid
from repro.core.framework import TimingVerificationFramework
from repro.core.transform import transform
from repro.mc.observers import check_bounded_response, max_response_delay
from repro.mc.portfolio import PortfolioVerifier, portfolio_jobs
from repro.mc.queries import (
    BoundedResponseQuery,
    ResponseSupQuery,
    StatsQuery,
    check_many,
    zone_graph_stats,
)
from repro.mc.state import CompiledNetwork
from repro.ta.bounds import (
    NO_BOUND,
    analyze_lu_bounds,
    available_abstractions,
    resolve_abstraction,
    set_abstraction,
)
from repro.zones.backend import available_backends, set_backend
from repro.zones.bounds import encode
from repro.zones.dbm import DBM

from tests.conftest import build_tiny_pim, build_tiny_scheme

BACKENDS = available_backends()
JOBS = (1, 4)
DEADLINE = 10
CHANNELS = dict(input_channel="m_Req", output_channel="c_Ack")

# ---------------------------------------------------------------------
# Pinned Extra⁺_LU tallies (Extra_M pins live in
# test_mc_explorer_regression.py: tiny PSM 68/85, REQ1 sweep 43).
# ---------------------------------------------------------------------
TINY_LU_STATES = 45
TINY_LU_TRANSITIONS = 57
TINY_LU_REQ1_VISITED = 41


def tiny_network():
    return transform(build_tiny_pim(), build_tiny_scheme()).network


def witness_locations(witness: str | None) -> str | None:
    """The ``(Auto.Loc, ...)`` prefix of a state description."""
    if witness is None:
        return None
    return witness.split(" [")[0].split(" {")[0]


@pytest.fixture(params=BACKENDS)
def backend(request):
    set_backend(request.param)
    yield request.param
    set_backend(None)


# =====================================================================
# Query-level differential matrix: backends × jobs × abstractions
# =====================================================================
@pytest.mark.parametrize("jobs", JOBS)
def test_query_matrix_verdicts_sups_and_witness_locations(backend, jobs):
    network = tiny_network()
    m = check_bounded_response(network, "m_Req", "c_Ack", DEADLINE,
                               jobs=jobs)
    lu = check_bounded_response(network, "m_Req", "c_Ack", DEADLINE,
                                jobs=jobs, abstraction="extra_lu")
    assert m.holds == lu.holds is False
    assert witness_locations(m.counterexample) == \
        witness_locations(lu.counterexample)
    assert m.visited == 43  # the Extra_M seed pin stands untouched
    assert lu.visited == TINY_LU_REQ1_VISITED

    sup_m = max_response_delay(network, "m_Req", "c_Ack", jobs=jobs)
    sup_lu = max_response_delay(network, "m_Req", "c_Ack", jobs=jobs,
                                abstraction="extra_lu")
    assert (sup_m.bounded, sup_m.sup, sup_m.attained) == \
        (sup_lu.bounded, sup_lu.sup, sup_lu.attained)

    stats_m = zone_graph_stats(network, jobs=jobs)
    stats_lu = zone_graph_stats(network, jobs=jobs,
                                abstraction="extra_lu")
    assert (stats_m.states, stats_m.transitions) == (68, 85)
    assert (stats_lu.states, stats_lu.transitions) == \
        (TINY_LU_STATES, TINY_LU_TRANSITIONS)
    assert stats_lu.discrete_configurations == \
        stats_m.discrete_configurations


def test_sequential_engine_matches_sharded_lu(backend):
    network = tiny_network()
    seq = zone_graph_stats(network, abstraction="extra_lu")
    assert (seq.states, seq.transitions) == \
        (TINY_LU_STATES, TINY_LU_TRANSITIONS)


def test_process_mode_replays_lu_floors():
    """Reference-backend process workers must reproduce the
    coordinator's LU extrapolation (floors ship to ``_proc_init``)."""
    network = tiny_network()
    seq = check_bounded_response(network, "m_Req", "c_Ack", DEADLINE,
                                 zone_backend="reference",
                                 abstraction="extra_lu")
    par = check_bounded_response(network, "m_Req", "c_Ack", DEADLINE,
                                 zone_backend="reference", jobs=2,
                                 abstraction="extra_lu")
    assert (seq.holds, seq.visited, seq.transitions) == \
        (par.holds, par.visited, par.transitions)
    assert seq.counterexample == par.counterexample


def test_check_many_parity_across_abstractions(backend):
    network = tiny_network()
    queries = [
        StatsQuery(),
        BoundedResponseQuery("m_Req", "c_Ack", DEADLINE),
        ResponseSupQuery("m_Req", "c_Ack"),
    ]
    m = check_many(network, queries)
    lu = check_many(network, queries, abstraction="extra_lu")
    assert m.explorations == lu.explorations == 1
    assert m.results[1].holds == lu.results[1].holds
    assert (m.results[2].sup, m.results[2].attained) == \
        (lu.results[2].sup, lu.results[2].attained)
    assert lu.results[0].states < m.results[0].states


# =====================================================================
# Grid differential: whole verification pipelines over ≥ 5 schemes
# =====================================================================
def grid_schemes():
    """Six tiny schemes; period-3 columns are the blow-up corners
    (fastest invocation → most interleavings per request)."""
    return scheme_grid(build_tiny_scheme,
                       buffer_size=(1, 3), period=(3, 4, 5))


def test_grid_portfolio_rows_identical_under_lu():
    schemes = grid_schemes()
    base = PortfolioVerifier(jobs=4).run(portfolio_jobs(
        build_tiny_pim(), schemes, deadline_ms=DEADLINE,
        measure_suprema=True, **CHANNELS))
    lu = PortfolioVerifier(jobs=4, abstraction="extra_lu").run(
        portfolio_jobs(build_tiny_pim(), schemes,
                       deadline_ms=DEADLINE, measure_suprema=True,
                       **CHANNELS))
    assert base.all_ok and lu.all_ok
    for a, b in zip(base, lu):
        assert a.name == b.name
        assert a.report.bounds == b.report.bounds
        assert a.report.pim_result.holds == b.report.pim_result.holds
        assert a.constraints_hold == b.constraints_hold
        assert a.original_holds == b.original_holds
        assert a.relaxed_holds == b.relaxed_holds
        assert a.guarantee == b.guarantee
        assert {k: (v.bounded, v.sup, v.attained)
                for k, v in a.sups.items()} == \
            {k: (v.bounded, v.sup, v.attained)
             for k, v in b.sups.items()}
        assert witness_locations(
            a.report.psm_original_result.counterexample) == \
            witness_locations(
                b.report.psm_original_result.counterexample)
        assert b.states <= a.states
    # The abstraction must actually bite somewhere on the grid.
    assert sum(b.states for b in lu) < sum(a.states for a in base)


def test_framework_pipeline_identical_under_lu():
    pim, scheme = build_tiny_pim(), build_tiny_scheme()
    kwargs = dict(deadline_ms=DEADLINE, measure_suprema=True,
                  include_progress=True, **CHANNELS)
    base = TimingVerificationFramework().verify(pim, scheme, **kwargs)
    lu = TimingVerificationFramework(
        abstraction="extra_lu").verify(pim, scheme, **kwargs)
    assert base.bounds == lu.bounds
    assert base.constraints.all_hold == lu.constraints.all_hold
    assert base.psm_original_result.holds == \
        lu.psm_original_result.holds
    assert base.psm_relaxed_result.holds == lu.psm_relaxed_result.holds
    assert base.implementation_guarantee == lu.implementation_guarantee
    assert {k: str(v) for k, v in base.symbolic.items()} == \
        {k: str(v) for k, v in lu.symbolic.items()}
    assert lu.psm_relaxed_result.visited < \
        base.psm_relaxed_result.visited


# =====================================================================
# Case-study pins (numpy; the paper's S1 PSM and one blow-up corner)
# =====================================================================
CASE_M = (11902, 13500)
CASE_LU = (8908, 10246)
CASE_DEADLINE_M = 17415
CASE_DEADLINE_LU = 14421
CORNER_M = (39259, 43654)
CORNER_LU = (32011, 35853)


@pytest.fixture(scope="module")
def case_study_psm():
    pytest.importorskip("numpy")
    from repro.apps.infusion import build_infusion_pim
    from repro.apps.schemes import case_study_scheme
    return transform(build_infusion_pim(), case_study_scheme()).network


@pytest.fixture(scope="module")
def corner_psm():
    """The period-50/poll-190 blow-up corner of the 16-scheme grid."""
    pytest.importorskip("numpy")
    from repro.apps.infusion import build_infusion_pim
    from repro.apps.schemes import case_study_scheme
    return transform(build_infusion_pim(), case_study_scheme(
        buffer_size=2, period=50, bolus_poll=190)).network


def test_case_study_lu_state_counts_pinned(case_study_psm):
    m = zone_graph_stats(case_study_psm, zone_backend="numpy", jobs=1)
    lu = zone_graph_stats(case_study_psm, zone_backend="numpy", jobs=1,
                          abstraction="extra_lu")
    assert (m.states, m.transitions) == CASE_M
    assert (lu.states, lu.transitions) == CASE_LU
    assert lu.states < m.states


def test_case_study_deadline_sweep_parity_pinned(case_study_psm):
    m = check_bounded_response(case_study_psm, "m_BolusReq",
                               "c_StartInfusion", 1430,
                               zone_backend="numpy", jobs=1)
    lu = check_bounded_response(case_study_psm, "m_BolusReq",
                                "c_StartInfusion", 1430,
                                zone_backend="numpy", jobs=1,
                                abstraction="extra_lu")
    assert m.holds and lu.holds  # Table I: P(Δ'_mc=1430) holds
    assert m.visited == CASE_DEADLINE_M
    assert lu.visited == CASE_DEADLINE_LU


def test_blow_up_corner_lu_state_counts_pinned(corner_psm):
    m = zone_graph_stats(corner_psm, zone_backend="numpy", jobs=1)
    lu = zone_graph_stats(corner_psm, zone_backend="numpy", jobs=1,
                          abstraction="extra_lu")
    assert (m.states, m.transitions) == CORNER_M
    assert (lu.states, lu.transitions) == CORNER_LU
    assert lu.states < m.states


# =====================================================================
# Property layer
# =====================================================================
@settings(max_examples=15, deadline=None)
@given(buffer_size=st.integers(1, 3), period=st.integers(3, 6),
       wcet=st.integers(0, 2))
def test_lu_maps_pointwise_below_max_constants(buffer_size, period,
                                               wcet):
    network = transform(
        build_tiny_pim(),
        build_tiny_scheme(buffer_size=buffer_size, period=period,
                          wcet=wcet)).network
    compiled = CompiledNetwork(network)
    lower, upper = analyze_lu_bounds(network).global_bounds()
    for x in range(compiled.n_clocks):
        assert lower[x] <= compiled.max_constants[x]
        assert upper[x] <= compiled.max_constants[x]
    # Per-location maps are below the global map by construction.
    lu = analyze_lu_bounds(network)
    for a in range(len(network.automata)):
        for per_loc in lu.lower[a]:
            for x, value in enumerate(per_loc):
                assert value <= lower[x]
        for per_loc in lu.upper[a]:
            for x, value in enumerate(per_loc):
                assert value <= upper[x]


_ZONE_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("constrain"), st.integers(0, 3),
                  st.integers(0, 3), st.integers(-8, 8),
                  st.booleans()).filter(lambda t: t[1] != t[2]),
        st.tuples(st.just("reset"), st.integers(1, 3),
                  st.integers(0, 6)),
        st.tuples(st.just("free"), st.integers(1, 3)),
        st.sampled_from([("up",)]),
    ),
    min_size=0, max_size=12)


def _build_zone(ops) -> DBM:
    zone = DBM.zero(4)
    for op in ops:
        if op[0] == "constrain":
            zone.constrain(op[1], op[2], encode(op[3], op[4]))
        elif op[0] == "reset":
            zone.reset(op[1], op[2])
        elif op[0] == "free":
            zone.free(op[1])
        else:
            zone.up()
    return zone


@settings(max_examples=150, deadline=None)
@given(ops=_ZONE_OPS,
       max_consts=st.lists(st.integers(0, 8), min_size=3, max_size=3),
       lowers=st.lists(st.integers(-1, 8), min_size=3, max_size=3),
       uppers=st.lists(st.integers(-1, 8), min_size=3, max_size=3))
def test_extra_lu_output_includes_extra_m_output(ops, max_consts,
                                                 lowers, uppers):
    """For any LU maps pointwise ≤ M, Extra⁺_LU ⊇ Extra_M."""
    zone = _build_zone(ops)
    if zone.is_empty():
        return
    m_map = [0, *max_consts]
    lower = [0] + [min(lo, mc) for lo, mc in zip(lowers, max_consts)]
    upper = [0] + [min(up, mc) for up, mc in zip(uppers, max_consts)]
    extra_m = zone.copy().extrapolate_max(m_map)
    extra_lu = zone.copy().extrapolate_lu(lower, upper)
    assert extra_lu.includes(extra_m)
    # Both only ever widen.
    assert extra_m.includes(zone)
    assert extra_lu.includes(zone)


def test_extra_lu_equals_extra_m_when_maps_equal_is_coarser_plus():
    """With L = U = M, Extra⁺_LU is Extra⁺_M — at least as coarse as
    Extra_M (the ⁺ rules may widen strictly more)."""
    zone = DBM.zero(3)
    zone.constrain(1, 0, encode(5, True))
    zone.constrain(0, 1, encode(-5, True))  # x1 == 5, beyond M = 2
    zone.up()
    m_map = [0, 2, 2]
    extra_m = zone.copy().extrapolate_max(m_map)
    extra_lu = zone.copy().extrapolate_lu(m_map, m_map)
    assert extra_lu.includes(extra_m)


# =====================================================================
# Selection plumbing (mirrors the zone-backend registry tests)
# =====================================================================
class TestAbstractionSelection:
    def test_default_is_extra_m(self):
        assert resolve_abstraction(None).name == "extra_m"
        assert not resolve_abstraction(None).is_lu

    def test_aliases(self):
        assert resolve_abstraction("lu").is_lu
        assert resolve_abstraction("extra_lu_plus").is_lu
        assert resolve_abstraction("m").name == "extra_m"
        assert available_abstractions() == ("extra_m", "extra_lu")

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown abstraction"):
            resolve_abstraction("extra_xyz")
        with pytest.raises(ValueError, match="unknown abstraction"):
            set_abstraction("nope")

    def test_set_abstraction_override(self):
        set_abstraction("extra_lu")
        try:
            assert resolve_abstraction(None).is_lu
            # Explicit names still win over the override.
            assert resolve_abstraction("extra_m").name == "extra_m"
        finally:
            set_abstraction(None)
        assert resolve_abstraction(None).name == "extra_m"

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_ABSTRACTION", "extra_lu")
        assert resolve_abstraction(None).is_lu

    def test_cli_flag_exists(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["--abstraction", "extra_lu", "scheme"])
        assert args.abstraction == "extra_lu"

    def test_explorer_resolves_process_override(self):
        from repro.mc.explorer import ZoneGraphExplorer
        set_abstraction("extra_lu")
        try:
            explorer = ZoneGraphExplorer(tiny_network())
            assert explorer.abstraction.is_lu
        finally:
            set_abstraction(None)

    def test_deadlock_query_pins_extra_m(self):
        """Timelock detection reads zone upper bounds — it must stay
        on Extra_M even under a process-wide LU override."""
        from repro.mc.deadlock import find_deadlocks
        set_abstraction("extra_lu")
        try:
            report = find_deadlocks(tiny_network())
        finally:
            set_abstraction(None)
        assert report.deadlock_free


def test_no_bound_sentinel_widens_everything():
    """A clock with NO_BOUND on both sides keeps no constraints at
    all after extrapolation (beyond non-negativity)."""
    zone = DBM.universal(3)
    zone.constrain(1, 0, encode(4, True))   # x1 <= 4
    zone.constrain(0, 1, encode(-4, True))  # x1 >= 4
    zone.constrain(2, 0, encode(4, True))   # x2 <= 4
    assert not zone.is_empty()
    lower = [0, NO_BOUND, 4]
    upper = [0, NO_BOUND, 4]
    zone.extrapolate_lu(lower, upper)
    from repro.zones.bounds import INF
    assert zone.get(1, 0) == INF          # upper bound gone
    assert zone.get(0, 1) == encode(1, False)  # x1 > -1: no lower bound
    assert zone.get(2, 0) == encode(4, True)   # bounded clock kept
