"""Tests for the extended GPCA pump model and its requirement catalog."""

import pytest

from repro.apps.gpca import (
    GPCA_INPUTS,
    GPCA_OUTPUTS,
    GPCA_REQUIREMENTS,
    build_gpca_pim,
    verify_gpca_requirements,
)
from repro.core.constraints import check_all_constraints
from repro.core.delays import derive_bounds
from repro.core.scheme import example_is1
from repro.core.transform import transform
from repro.mc import check_bounded_response, find_deadlocks


@pytest.fixture(scope="module")
def pim():
    return build_gpca_pim()


@pytest.fixture(scope="module")
def psm(pim):
    scheme = example_is1(GPCA_INPUTS, GPCA_OUTPUTS,
                         buffer_size=3, period=50)
    return transform(pim, scheme)


class TestPimRequirements:
    def test_all_requirements_hold(self, pim):
        results = verify_gpca_requirements(pim)
        assert set(results) == {r.name for r in GPCA_REQUIREMENTS}
        for name, result in results.items():
            assert result.holds, f"{name}: {result.summary()}"

    @pytest.mark.parametrize("req", GPCA_REQUIREMENTS,
                             ids=lambda r: r.name)
    def test_each_requirement_is_tight_within_50ms(self, pim, req):
        # The deadlines are not arbitrarily loose: halving them breaks
        # each requirement on the PIM.
        result = check_bounded_response(
            pim.network, req.trigger, req.response,
            req.deadline_ms // 2, trace=False)
        assert not result.holds

    def test_pim_deadlock_free(self, pim):
        assert find_deadlocks(pim.network).deadlock_free

    def test_structure(self, pim):
        assert pim.input_channels() == tuple(sorted(GPCA_INPUTS))
        assert pim.output_channels() == tuple(sorted(GPCA_OUTPUTS))
        assert pim.internal_edges() == []

    def test_override_validation(self):
        with pytest.raises(ValueError, match="unknown"):
            build_gpca_pim({"NOPE": 3})


class TestPsmOnIs1:
    def test_constraints_hold(self, psm):
        report = check_all_constraints(psm)
        assert report.all_hold, report.summary()

    def test_platform_bounds_per_requirement(self, pim):
        scheme = example_is1(GPCA_INPUTS, GPCA_OUTPUTS,
                             buffer_size=3, period=50)
        for req in GPCA_REQUIREMENTS:
            bounds = derive_bounds(pim, scheme, req.trigger,
                                   req.response)
            # Lemma 2's relaxed bound strictly exceeds the PIM-level
            # deadline: the platform always costs something.
            assert bounds.relaxed > req.deadline_ms
            assert bounds.internal_bound <= req.deadline_ms

    def test_req1_violated_on_platform_but_relaxed_holds(self, pim, psm):
        req = GPCA_REQUIREMENTS[0]
        original = check_bounded_response(
            psm.network, req.trigger, req.response, req.deadline_ms,
            trace=False)
        assert not original.holds
        scheme = example_is1(GPCA_INPUTS, GPCA_OUTPUTS,
                             buffer_size=3, period=50)
        bounds = derive_bounds(pim, scheme, req.trigger, req.response)
        relaxed = check_bounded_response(
            psm.network, req.trigger, req.response, bounds.relaxed,
            trace=False)
        assert relaxed.holds
