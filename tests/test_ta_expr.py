"""Unit and property tests for the expression AST."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ta.expr import (
    Binary,
    Const,
    ExprError,
    Unary,
    Var,
    conjoin,
    int_div,
    int_mod,
)
from repro.ta.parser import parse_expression


class TestEval:
    def test_const(self):
        assert Const(42).eval({}) == 42

    def test_var(self):
        assert Var("a").eval({"a": 7}) == 7

    def test_unknown_var_raises(self):
        with pytest.raises(ExprError, match="unknown variable"):
            Var("nope").eval({})

    @pytest.mark.parametrize("op,left,right,expected", [
        ("+", 3, 4, 7), ("-", 3, 4, -1), ("*", 3, 4, 12),
        ("/", 7, 2, 3), ("/", -7, 2, -3), ("%", 7, 2, 1),
        ("%", -7, 2, -1),
        ("<", 1, 2, 1), ("<", 2, 2, 0),
        ("<=", 2, 2, 1), (">", 3, 2, 1), (">=", 2, 3, 0),
        ("==", 5, 5, 1), ("!=", 5, 5, 0),
    ])
    def test_binary(self, op, left, right, expected):
        assert Binary(op, Const(left), Const(right)).eval({}) == expected

    def test_division_by_zero(self):
        with pytest.raises(ExprError, match="division by zero"):
            Binary("/", Const(1), Const(0)).eval({})

    def test_unary_minus(self):
        assert Unary("-", Const(5)).eval({}) == -5

    def test_unary_not(self):
        assert Unary("!", Const(0)).eval({}) == 1
        assert Unary("!", Const(3)).eval({}) == 0

    def test_and_short_circuits(self):
        # 'b' is undefined; && must not evaluate it when left is false.
        expr = Binary("&&", Const(0), Var("b"))
        assert expr.eval({}) == 0

    def test_or_short_circuits(self):
        expr = Binary("||", Const(1), Var("b"))
        assert expr.eval({}) == 1

    def test_and_or_normalize_to_01(self):
        assert Binary("&&", Const(5), Const(7)).eval({}) == 1
        assert Binary("||", Const(0), Const(9)).eval({}) == 1

    def test_bad_operator_rejected(self):
        with pytest.raises(ExprError):
            Binary("**", Const(1), Const(2))
        with pytest.raises(ExprError):
            Unary("~", Const(1))


class TestCStyleDivision:
    @given(st.integers(-100, 100), st.integers(-10, 10).filter(bool))
    def test_div_mod_identity(self, a, b):
        assert int_div(a, b) * b + int_mod(a, b) == a

    @given(st.integers(-100, 100), st.integers(-10, 10).filter(bool))
    def test_truncation_toward_zero(self, a, b):
        assert int_div(a, b) == int(a / b)


class TestStructure:
    def test_free_vars(self):
        expr = parse_expression("a + b * (c - a)")
        assert expr.free_vars() == {"a", "b", "c"}

    def test_rename(self):
        expr = parse_expression("a + b")
        renamed = expr.rename({"a": "x"})
        assert renamed.free_vars() == {"x", "b"}
        assert expr.free_vars() == {"a", "b"}  # original untouched

    def test_fold_constants(self):
        expr = parse_expression("N + 2 * M")
        folded = expr.fold({"N": 1, "M": 3})
        assert isinstance(folded, Const)
        assert folded.value == 7

    def test_fold_partial(self):
        expr = parse_expression("N + x")
        folded = expr.fold({"N": 1})
        assert folded.free_vars() == {"x"}
        assert folded.eval({"x": 2}) == 3

    def test_fold_boolean_identities(self):
        assert str(parse_expression("1 && x").fold({})) == "x"
        assert parse_expression("0 && x").fold({}).eval({}) == 0
        assert parse_expression("0 || x").fold({}) == Var("x")
        assert parse_expression("1 || x").fold({}).eval({}) == 1

    def test_str_roundtrip_through_parser(self):
        source = "((a + 2) * b >= 5) && !(c == 0) || d - 1 < 2"
        expr = parse_expression(source)
        reparsed = parse_expression(str(expr))
        env = {"a": 1, "b": 3, "c": 0, "d": 9}
        assert expr.eval(env) == reparsed.eval(env)

    def test_eq_and_hash_by_structure(self):
        a = parse_expression("x + 1")
        b = parse_expression("x + 1")
        assert a == b and hash(a) == hash(b)

    def test_conjoin(self):
        assert conjoin([]).eval({}) == 1
        expr = conjoin([Const(1), parse_expression("x > 2")])
        assert expr.eval({"x": 3}) == 1
        assert expr.eval({"x": 1}) == 0


# ----------------------------------------------------------------------
# Random expression property: fold(env) == eval(env) for full envs.
# ----------------------------------------------------------------------
names = st.sampled_from(["a", "b", "c"])


def expr_trees(depth=3):
    leaf = st.one_of(
        st.integers(-20, 20).map(Const),
        names.map(Var),
    )
    if depth == 0:
        return leaf
    sub = expr_trees(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(st.sampled_from(["+", "-", "*", "&&", "||", "<",
                                   "<=", ">", ">=", "==", "!="]),
                  sub, sub).map(lambda t: Binary(*t)),
        st.tuples(st.sampled_from(["-", "!"]), sub).map(
            lambda t: Unary(*t)),
    )


@given(expr_trees(), st.integers(-5, 5), st.integers(-5, 5),
       st.integers(-5, 5))
def test_fold_is_evaluation_on_full_environment(expr, a, b, c):
    env = {"a": a, "b": b, "c": c}
    folded = expr.fold(env)
    assert isinstance(folded, Const)
    assert folded.value == expr.eval(env)


@given(expr_trees(), st.integers(-5, 5), st.integers(-5, 5),
       st.integers(-5, 5))
def test_str_reparse_preserves_value(expr, a, b, c):
    env = {"a": a, "b": b, "c": c}
    assert parse_expression(str(expr)).eval(env) == expr.eval(env)
