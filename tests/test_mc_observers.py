"""Tests for observer instrumentation and delay queries."""

import pytest

from repro.mc.observers import (
    OBS_CLOCK,
    OBS_FLAG,
    check_bounded_response,
    instrument_response,
    max_response_delay,
)
from repro.mc.queries import sup_clock
from repro.mc.reachability import StateFormula
from repro.ta.builder import NetworkBuilder
from repro.ta.model import ModelError


def ping_pong(lo=2, hi=5, think=10):
    """M answers ping with pong within [lo, hi]."""
    net = NetworkBuilder("pp")
    net.channel("ping")
    net.channel("pong")
    m = net.automaton("M", clocks=["x"])
    m.location("Idle", initial=True)
    m.location("Work", invariant=f"x <= {hi}")
    m.edge("Idle", "Work", sync="ping?", update="x = 0")
    m.edge("Work", "Idle", guard=f"x >= {lo}", sync="pong!")
    env = net.automaton("ENV", clocks=["ex"])
    env.location("Ready", initial=True)
    env.location("Waiting")
    env.edge("Ready", "Waiting", guard=f"ex >= {think}", sync="ping!",
             update="ex = 0")
    env.edge("Waiting", "Ready", sync="pong?", update="ex = 0")
    return net.build()


class TestInstrumentation:
    def test_adds_clock_and_flag(self):
        network = instrument_response(ping_pong(), "ping", "pong")
        assert OBS_CLOCK in network.global_clocks
        assert any(v.name == OBS_FLAG for v in network.variables)

    def test_trigger_edge_gets_reset_and_flag(self):
        network = instrument_response(ping_pong(), "ping", "pong")
        env = network.automaton("ENV")
        label = str(env.edges[0].update)
        assert f"{OBS_CLOCK} = 0" in label
        assert f"{OBS_FLAG} = 1" in label

    def test_response_edge_clears_flag(self):
        network = instrument_response(ping_pong(), "ping", "pong")
        m = network.automaton("M")
        label = str(m.edges[1].update)
        assert f"{OBS_FLAG} = 0" in label

    def test_same_channel_rejected(self):
        with pytest.raises(ModelError, match="must differ"):
            instrument_response(ping_pong(), "ping", "ping")

    def test_unknown_channel_rejected(self):
        with pytest.raises(ModelError, match="no channel"):
            instrument_response(ping_pong(), "ghost", "pong")

    def test_unemitted_channel_rejected(self):
        net = NetworkBuilder("n")
        net.channel("a")
        net.channel("b")
        auto = net.automaton("A")
        auto.location("L", initial=True)
        auto.edge("L", "L", sync="a!")
        auto.edge("L", "L", sync="b?")
        network = net.build()
        with pytest.raises(ModelError, match="emits"):
            instrument_response(network, "a", "b")


class TestBoundedResponse:
    def test_holds_at_exact_bound(self):
        network = ping_pong(lo=2, hi=5)
        assert check_bounded_response(network, "ping", "pong", 5).holds

    def test_fails_below_bound(self):
        network = ping_pong(lo=2, hi=5)
        result = check_bounded_response(network, "ping", "pong", 4)
        assert not result.holds
        assert result.counterexample is not None
        assert result.trace is not None

    def test_holds_with_slack(self):
        network = ping_pong(lo=2, hi=5)
        assert check_bounded_response(network, "ping", "pong", 100).holds


class TestMaxResponseDelay:
    @pytest.mark.parametrize("hi", [3, 5, 17])
    def test_exact_sup(self, hi):
        result = max_response_delay(ping_pong(lo=1, hi=hi), "ping",
                                    "pong")
        assert result.bounded
        assert result.sup == hi

    def test_unbounded_when_response_not_forced(self):
        net = NetworkBuilder("n")
        net.channel("ping")
        net.channel("pong")
        m = net.automaton("M", clocks=["x"])
        m.location("Idle", initial=True)
        m.location("Work")  # no invariant: may stall forever
        m.edge("Idle", "Work", sync="ping?", update="x = 0")
        m.edge("Work", "Idle", guard="x >= 1", sync="pong!")
        env = net.automaton("ENV")
        env.location("Ready", initial=True)
        env.location("Waiting")
        env.edge("Ready", "Waiting", sync="ping!")
        env.edge("Waiting", "Ready", sync="pong?")
        result = max_response_delay(net.build(), "ping", "pong",
                                    cap=4096)
        assert not result.bounded

    def test_never_triggered_is_zero(self):
        net = NetworkBuilder("n")
        net.channel("ping")
        net.channel("pong")
        m = net.automaton("M")
        m.location("Idle", initial=True)
        m.location("Dead")
        m.edge("Dead", "Dead", sync="ping!")
        m.edge("Dead", "Dead", sync="pong!")
        n = net.automaton("N")
        n.location("L", initial=True)
        n.edge("L", "L", sync="ping?")
        n.edge("L", "L", sync="pong?")
        result = max_response_delay(net.build(), "ping", "pong")
        assert result.bounded and result.sup == 0

    def test_ceiling_widening_beyond_initial(self):
        # Sup (200) far above the model's other constants forces at
        # least one ceiling doubling.
        network = ping_pong(lo=1, hi=200, think=1)
        result = max_response_delay(network, "ping", "pong",
                                    initial_ceiling=8)
        assert result.bounded and result.sup == 200
        assert result.ceiling > 8


class TestSupClock:
    def test_sup_with_condition(self):
        network = ping_pong(lo=2, hi=5)
        result = sup_clock(network, "x",
                           StateFormula(locations={"M": "Work"}))
        assert result.bounded and result.sup == 5

    def test_sup_unconditioned_unbounded(self):
        network = ping_pong()
        result = sup_clock(network, "ex", cap=2048)
        # ENV's clock diverges while resting in Ready.
        assert not result.bounded
