"""Unit tests for the model classes and builders."""

import pytest

from repro.ta.builder import AutomatonBuilder, NetworkBuilder
from repro.ta.channels import Sync
from repro.ta.model import Location, ModelError, VariableDecl
from repro.ta.validate import check


class TestSync:
    def test_parse_emit(self):
        sync = Sync.parse("ch!")
        assert sync.channel == "ch" and sync.is_emit

    def test_parse_receive(self):
        sync = Sync.parse("  m_BolusReq?  ")
        assert sync.channel == "m_BolusReq" and not sync.is_emit

    def test_parse_rejects_bare_name(self):
        with pytest.raises(ValueError):
            Sync.parse("ch")

    def test_parse_rejects_empty(self):
        with pytest.raises(ValueError):
            Sync.parse("!")


class TestLocation:
    def test_urgent_and_committed_conflict(self):
        with pytest.raises(ModelError):
            Location("L", urgent=True, committed=True)

    def test_urgent_with_invariant_rejected(self):
        from repro.ta.parser import parse_invariant
        inv = parse_invariant("x <= 5", ("x",))
        with pytest.raises(ModelError):
            Location("L", invariant=inv, urgent=True)


class TestVariableDecl:
    def test_initial_in_range(self):
        with pytest.raises(ModelError):
            VariableDecl("v", init=5, lo=0, hi=3)

    def test_check(self):
        decl = VariableDecl("v", init=0, lo=0, hi=3)
        assert decl.check(3) == 3
        with pytest.raises(ModelError):
            decl.check(4)


class TestAutomatonBuilder:
    def test_duplicate_location_rejected(self):
        b = AutomatonBuilder("A")
        b.location("L")
        with pytest.raises(ModelError, match="duplicate"):
            b.location("L")

    def test_two_initials_rejected(self):
        b = AutomatonBuilder("A")
        b.location("L1", initial=True)
        with pytest.raises(ModelError, match="two initial"):
            b.location("L2", initial=True)

    def test_default_initial_is_first(self):
        b = AutomatonBuilder("A")
        b.location("First")
        b.location("Second")
        assert b.build().initial == "First"

    def test_edge_to_unknown_location_rejected(self):
        b = AutomatonBuilder("A")
        b.location("L")
        b.edge("L", "Ghost")
        with pytest.raises(ModelError, match="unknown location"):
            b.build()

    def test_empty_automaton_rejected(self):
        with pytest.raises(ModelError, match="no locations"):
            AutomatonBuilder("A").build()

    def test_loop_helper(self):
        b = AutomatonBuilder("A")
        b.location("L")
        b.loop("L", update=None)
        auto = b.build()
        assert auto.edges[0].source == auto.edges[0].target == "L"


class TestNetworkBuilder:
    def test_duplicate_channel_rejected(self):
        net = NetworkBuilder("n")
        net.channel("ch")
        with pytest.raises(ModelError, match="duplicate"):
            net.channel("ch")

    def test_duplicate_variable_rejected(self):
        net = NetworkBuilder("n")
        net.int_var("v")
        with pytest.raises(ModelError, match="duplicate"):
            net.int_var("v")

    def test_constants_fold_into_labels(self):
        net = NetworkBuilder("n", constants={"D": 9})
        a = net.automaton("A", clocks=["x"])
        a.location("L", invariant="x <= D", initial=True)
        network = net.build()
        inv = network.automaton("A").location("L").invariant
        assert inv[0].bound == 9

    def test_constant_added_late(self):
        net = NetworkBuilder("n")
        net.constant("D", 4)
        a = net.automaton("A", clocks=["x"])
        a.location("L", invariant="x <= D", initial=True)
        assert net.build().automaton("A").location("L").invariant[0] \
            .bound == 4

    def test_global_clock_visible_to_all(self):
        net = NetworkBuilder("n")
        net.global_clock("g")
        a = net.automaton("A")
        a.location("L", initial=True)
        a.edge("L", "L", guard="g >= 3")
        network = net.build()
        assert network.global_clocks == ("g",)
        assert network.n_clocks() == 2

    def test_local_clock_shadowing_global_rejected(self):
        net = NetworkBuilder("n")
        net.global_clock("g")
        a = net.automaton("A", clocks=["g"])
        a.location("L", initial=True)
        with pytest.raises(ModelError, match="shadows"):
            net.build().clock_index()


class TestNetworkAccessors:
    def _network(self):
        net = NetworkBuilder("n")
        net.channel("ping")
        a = net.automaton("A", clocks=["x"])
        a.location("L", initial=True)
        a.edge("L", "L", sync="ping!")
        b = net.automaton("B", clocks=["x"])
        b.location("L", initial=True)
        b.edge("L", "L", sync="ping?")
        return net.build()

    def test_automaton_lookup(self):
        network = self._network()
        assert network.automaton("A").name == "A"
        with pytest.raises(ModelError):
            network.automaton("C")
        assert network.automaton_index("B") == 1

    def test_channel_lookup(self):
        network = self._network()
        assert network.channel("ping").name == "ping"
        assert network.has_channel("ping")
        assert not network.has_channel("pong")

    def test_clock_names_disambiguate(self):
        network = self._network()
        assert network.clock_names() == ["t0", "A.x", "B.x"]

    def test_io_channel_classification(self):
        network = self._network()
        assert network.automaton("A").output_channels() == {"ping"}
        assert network.automaton("B").input_channels() == {"ping"}

    def test_stats(self):
        stats = self._network().stats()
        assert stats == {"automata": 2, "locations": 2, "edges": 2,
                         "clocks": 2, "channels": 1, "variables": 0}

    def test_add_automata_for_observers(self):
        network = self._network()
        extra = AutomatonBuilder("Obs")
        extra.location("L", initial=True)
        bigger = network.add_automata([extra.build()])
        assert len(bigger.automata) == 3

    def test_with_channels_broadcast(self):
        network = self._network().with_channels_broadcast(["ping"])
        assert network.channel("ping").broadcast


class TestValidationRules:
    def test_undeclared_channel(self):
        net = NetworkBuilder("n")
        a = net.automaton("A")
        a.location("L", initial=True)
        a.edge("L", "L", sync="ghost!")
        with pytest.raises(ModelError, match="undeclared channel"):
            net.build()

    def test_unknown_guard_name(self):
        net = NetworkBuilder("n")
        a = net.automaton("A")
        a.location("L", initial=True)
        a.edge("L", "L", guard="mystery > 0")
        with pytest.raises(ModelError, match="unknown names"):
            net.build()

    def test_assignment_to_constant(self):
        net = NetworkBuilder("n", constants={"K": 1})
        a = net.automaton("A")
        a.location("L", initial=True)
        a.edge("L", "L", update="K = 2")
        with pytest.raises(ModelError, match="constant"):
            net.build()

    def test_assignment_to_undeclared_variable(self):
        net = NetworkBuilder("n")
        a = net.automaton("A")
        a.location("L", initial=True)
        a.edge("L", "L", update="v = 2")
        with pytest.raises(ModelError, match="undeclared variable"):
            net.build()

    def test_urgent_channel_clock_guard_rejected(self):
        net = NetworkBuilder("n")
        net.channel("u", urgent=True)
        a = net.automaton("A", clocks=["x"])
        a.location("L", initial=True)
        a.edge("L", "L", guard="x > 1", sync="u!")
        b = net.automaton("B")
        b.location("L", initial=True)
        b.edge("L", "L", sync="u?")
        with pytest.raises(ModelError, match="urgent"):
            net.build()

    def test_broadcast_receiver_clock_guard_rejected(self):
        net = NetworkBuilder("n")
        net.channel("b", broadcast=True)
        a = net.automaton("A")
        a.location("L", initial=True)
        a.edge("L", "L", sync="b!")
        b = net.automaton("B", clocks=["x"])
        b.location("L", initial=True)
        b.edge("L", "L", guard="x > 1", sync="b?")
        with pytest.raises(ModelError, match="broadcast receiver"):
            net.build()

    def test_dangling_binary_channel_is_warning_only(self):
        net = NetworkBuilder("n")
        net.channel("ch")
        a = net.automaton("A")
        a.location("L", initial=True)
        a.edge("L", "L", sync="ch!")
        network = net.build()  # no receiver: legal but suspicious
        problems = check(network)
        assert any(p.severity == "warning" for p in problems)

    def test_variable_constant_name_clash(self):
        net = NetworkBuilder("n", constants={"v": 1})
        net.int_var("v")
        a = net.automaton("A")
        a.location("L", initial=True)
        with pytest.raises(ModelError, match="both variable and constant"):
            net.build()
