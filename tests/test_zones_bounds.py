"""Unit tests for the encoded bound algebra."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.zones.bounds import (
    INF,
    LE_ZERO,
    LT_ZERO,
    bound_add,
    bound_as_text,
    bound_is_weak,
    bound_value,
    decode,
    encode,
    negate_weak,
)

values = st.integers(min_value=-10_000, max_value=10_000)
weaks = st.booleans()


class TestEncoding:
    def test_le_zero_is_weak_zero(self):
        assert encode(0, True) == LE_ZERO
        assert decode(LE_ZERO) == (0, True)

    def test_lt_zero_is_strict_zero(self):
        assert encode(0, False) == LT_ZERO
        assert decode(LT_ZERO) == (0, False)

    @given(values, weaks)
    def test_roundtrip(self, value, weak):
        assert decode(encode(value, weak)) == (value, weak)

    @given(values, weaks)
    def test_accessors(self, value, weak):
        bound = encode(value, weak)
        assert bound_value(bound) == value
        assert bound_is_weak(bound) is weak

    @given(values)
    def test_strict_tighter_than_weak(self, value):
        assert encode(value, False) < encode(value, True)

    @given(values, values, weaks, weaks)
    def test_order_matches_tightness(self, v1, v2, w1, w2):
        # A smaller encoded value must never allow more valuations.
        b1, b2 = encode(v1, w1), encode(v2, w2)
        if v1 < v2:
            assert b1 < b2
        elif v1 > v2:
            assert b1 > b2

    @given(values, weaks)
    def test_all_finite_below_inf(self, value, weak):
        assert encode(value, weak) < INF


class TestAddition:
    @given(values, values, weaks, weaks)
    def test_add_values_and_strictness(self, v1, v2, w1, w2):
        result = bound_add(encode(v1, w1), encode(v2, w2))
        assert bound_value(result) == v1 + v2
        assert bound_is_weak(result) is (w1 and w2)

    @given(values, weaks)
    def test_inf_absorbs(self, value, weak):
        assert bound_add(INF, encode(value, weak)) == INF
        assert bound_add(encode(value, weak), INF) == INF
        assert bound_add(INF, INF) == INF

    @given(values, weaks)
    def test_weak_zero_is_identity(self, value, weak):
        assert bound_add(encode(value, weak), LE_ZERO) == \
            encode(value, weak)

    @given(values, values, values, weaks, weaks, weaks)
    def test_associative(self, v1, v2, v3, w1, w2, w3):
        a, b, c = encode(v1, w1), encode(v2, w2), encode(v3, w3)
        assert bound_add(bound_add(a, b), c) == bound_add(a,
                                                          bound_add(b, c))


class TestNegation:
    @given(values, weaks)
    def test_negate_flips_strictness(self, value, weak):
        result = negate_weak(encode(value, weak))
        assert bound_value(result) == -value
        assert bound_is_weak(result) is (not weak)

    @given(values, weaks)
    def test_negate_involution(self, value, weak):
        bound = encode(value, weak)
        assert negate_weak(negate_weak(bound)) == bound


class TestText:
    @pytest.mark.parametrize("value,weak,expected", [
        (5, True, "<=5"),
        (3, False, "<3"),
        (-2, True, "<=-2"),
        (0, False, "<0"),
    ])
    def test_finite(self, value, weak, expected):
        assert bound_as_text(encode(value, weak)) == expected

    def test_infinity(self):
        assert bound_as_text(INF) == "<inf"
