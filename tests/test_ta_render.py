"""Tests for Graphviz/ASCII rendering and trace formatting."""

from repro.mc.traces import format_trace, trace_channels
from repro.ta.render import (
    automaton_to_dot,
    network_summary,
    network_to_dot,
)

from tests.conftest import build_tiny_pim


class TestDot:
    def test_automaton_dot_contains_all_parts(self):
        pim = build_tiny_pim()
        dot = automaton_to_dot(pim.m)
        assert dot.startswith('digraph "M"')
        for location in ("Idle", "Busy"):
            assert f'"{location}"' in dot
        assert "m_Req?" in dot and "c_Ack!" in dot
        assert "x <= 10" in dot          # invariant on Busy
        assert "__init ->" in dot        # initial marker

    def test_automaton_dot_escapes_quotes(self):
        pim = build_tiny_pim()
        dot = automaton_to_dot(pim.m)
        assert dot.count("{") == dot.count("}")

    def test_network_dot_clusters(self):
        pim = build_tiny_pim()
        dot = network_to_dot(pim.network)
        assert "subgraph cluster_0" in dot
        assert "subgraph cluster_1" in dot
        assert 'label="M"' in dot and 'label="ENV"' in dot

    def test_marks_special_locations(self):
        from repro.core.transform import transform
        from tests.conftest import build_tiny_scheme
        psm = transform(build_tiny_pim(), build_tiny_scheme())
        dot = automaton_to_dot(psm.network.automaton("EXEIO"))
        assert "(urgent)" in dot
        assert "(committed)" in dot


class TestSummary:
    def test_network_summary(self):
        pim = build_tiny_pim()
        text = network_summary(pim.network)
        assert "2 automata" in text
        assert "M: initial=Idle" in text
        assert "ENV: initial=Rest" in text


class TestTraceFormatting:
    def test_format_numbered(self):
        text = format_trace(["a", "b", "c"])
        assert "  1. a" in text and "  3. c" in text

    def test_format_handles_none(self):
        assert "disabled" in format_trace(None)

    def test_format_empty(self):
        assert "initial state" in format_trace([])

    def test_format_truncation(self):
        text = format_trace([f"step{i}" for i in range(20)],
                            max_steps=5)
        assert "15 more" in text

    def test_trace_channels_extracts_syncs(self):
        labels = [
            "ENV: Rest --m_Req! {ex = 0}--> Wait || M: Idle --m_Req?"
            "--> Busy",
            "M: Busy --[x >= 4] c_Ack!--> Idle || ENV: Wait --c_Ack?"
            "--> Rest",
            "A: L --> L2",  # internal, no channel
        ]
        assert trace_channels(labels) == ["m_Req", "c_Ack"]
