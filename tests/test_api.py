"""Tests for :mod:`repro.api` — the unified ``Session`` front door.

The contract under test: every knob resolves ONCE at construction,
with the canonical precedence *explicit argument > process override >
environment variable > default*; a mis-set environment variable fails
at ``Session(...)`` time; the deprecated module-level wrappers still
work but warn.
"""

from __future__ import annotations

import warnings

import pytest

import repro.api as api
from repro.api import FAULT_AXES, Session
from repro.envvars import EnvVarError
from repro.ta.bounds import EXTRA_LU, EXTRA_M
from repro.zones import backend as zone_backend
from tests.conftest import build_tiny_pim, build_tiny_scheme

REQ = dict(input_channel="m_Req", output_channel="c_Ack",
           deadline_ms=30)


@pytest.fixture(autouse=True)
def clean_knob_env(monkeypatch):
    for var in ("REPRO_ZONE_BACKEND", "REPRO_ABSTRACTION",
                "REPRO_JOBS", "REPRO_EXECUTOR"):
        monkeypatch.delenv(var, raising=False)


class TestResolutionOrder:
    def test_defaults(self):
        session = Session()
        assert session.backend == "auto"
        assert session.abstraction.name == EXTRA_M
        assert session.jobs is None
        assert session.executor == "thread"
        assert session.faults == {}

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ZONE_BACKEND", "reference")
        monkeypatch.setenv("REPRO_ABSTRACTION", "extra_lu")
        monkeypatch.setenv("REPRO_JOBS", "3")
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        session = Session()
        assert session.backend == "reference"
        assert session.abstraction.name == EXTRA_LU
        assert session.jobs == 3
        assert session.executor == "process"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ZONE_BACKEND", "numpy")
        monkeypatch.setenv("REPRO_JOBS", "3")
        session = Session(backend="reference", jobs=1)
        assert session.backend == "reference"
        assert session.jobs == 1

    def test_bad_env_fails_at_construction(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "banana")
        with pytest.raises(EnvVarError, match="REPRO_JOBS"):
            Session()

    def test_bad_explicit_backend(self):
        with pytest.raises(ValueError, match="unknown zone backend"):
            Session(backend="cuda")

    def test_describe_is_json_friendly(self):
        import json
        description = Session(jobs=2, faults={"k": 1}).describe()
        assert json.loads(json.dumps(description)) == description
        assert description["jobs"] == 2
        assert description["faults"] == {"fault_k": [1]}


class TestFaults:
    def test_axis_spellings(self):
        session = Session(faults={"k": 1, "replicas": 3,
                                  "jitter": [0, 2]})
        assert session.faults == {"fault_k": [1], "fault_r": [3],
                                  "fault_eps": [0, 2]}
        # Canonical names are accepted verbatim too.
        assert set(FAULT_AXES.values()) <= set(FAULT_AXES)

    def test_unknown_axis(self):
        with pytest.raises(ValueError, match="unknown fault axis"):
            Session(faults={"gamma": 1})

    def test_fault_values_rejects_sweeps(self):
        session = Session(faults={"k": [0, 1]})
        with pytest.raises(ValueError, match="portfolio"):
            session.fault_values()
        assert session.fault_axes() == {"fault_k": [0, 1]}

    def test_scalar_fault_values(self):
        session = Session(faults={"k": 1})
        assert session.fault_values() == {"fault_k": 1}


class TestVerbs:
    def test_verify_and_monitor_share_config(self):
        pim, scheme = build_tiny_pim(), build_tiny_scheme()
        session = Session(backend="reference",
                          monitor_max_states=50_000)
        report = session.verify(pim, scheme, **REQ)
        assert report.implementation_guarantee
        model = session.monitor_model(pim=pim, scheme=scheme)
        assert model is session.monitor_model(pim=pim, scheme=scheme)

    def test_backend_pin_is_scoped_to_the_call(self):
        pim, scheme = build_tiny_pim(), build_tiny_scheme()
        before = zone_backend._forced
        session = Session(backend="reference")
        session.verify(pim, scheme, **REQ)
        assert zone_backend._forced == before

    def test_portfolio_uses_session_executor(self):
        from repro.apps.schemes import scheme_grid
        pim = build_tiny_pim()
        schemes = scheme_grid(build_tiny_scheme, buffer_size=(1, 2))
        session = Session(jobs=1, executor="thread")
        results = session.portfolio(pim, schemes, **REQ)
        assert len(results) == 2
        assert all(r.report.implementation_guarantee for r in results)


class TestDeprecatedWrappers:
    def test_verify_wrapper_warns_and_works(self):
        pim, scheme = build_tiny_pim(), build_tiny_scheme()
        with pytest.warns(DeprecationWarning,
                          match="repro.api.Session"):
            report = api.verify(pim, scheme, backend="reference",
                                **REQ)
        assert report.implementation_guarantee

    def test_monitor_wrapper_warns(self):
        pim, scheme = build_tiny_pim(), build_tiny_scheme()
        with pytest.warns(DeprecationWarning):
            verdicts = api.monitor([[]], pim=pim, scheme=scheme,
                                   max_states=50_000)
        assert verdicts[0]["conforming"] is True
        assert verdicts[0]["observed"] == 0

    def test_session_itself_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            Session()
