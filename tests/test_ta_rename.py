"""Unit tests for channel and clock renaming (the MIO construction)."""

from repro.ta.builder import AutomatonBuilder
from repro.ta.rename import (
    boundary_rename_map,
    mc_to_io_name,
    rename_channels,
    rename_clocks,
)


def sample_automaton():
    b = AutomatonBuilder("M", clocks=["x", "y"])
    b.location("Idle", initial=True)
    b.location("Busy", invariant="x <= 10")
    b.edge("Idle", "Busy", sync="m_Req?", update="x = 0")
    b.edge("Busy", "Idle", guard="x >= 2 && x - y < 8", sync="c_Ack!",
           update="y = x")
    return b.build()


class TestNames:
    def test_m_prefix(self):
        assert mc_to_io_name("m_BolusReq") == "i_BolusReq"

    def test_c_prefix(self):
        assert mc_to_io_name("c_StartInfusion") == "o_StartInfusion"

    def test_unprefixed_gets_io(self):
        assert mc_to_io_name("weird") == "io_weird"

    def test_boundary_map(self):
        mapping = boundary_rename_map({"m_A"}, {"c_B"})
        assert mapping == {"m_A": "i_A", "c_B": "o_B"}


class TestRenameChannels:
    def test_syncs_renamed(self):
        auto = rename_channels(sample_automaton(),
                               {"m_Req": "i_Req", "c_Ack": "o_Ack"})
        assert auto.input_channels() == {"i_Req"}
        assert auto.output_channels() == {"o_Ack"}

    def test_structure_preserved(self):
        original = sample_automaton()
        renamed = rename_channels(original, {"m_Req": "i_Req"})
        assert renamed.location_names() == original.location_names()
        assert len(renamed.edges) == len(original.edges)
        assert renamed.clocks == original.clocks
        # Guards and updates untouched.
        assert str(renamed.edges[1].guard) == str(original.edges[1].guard)

    def test_unmapped_channels_kept(self):
        renamed = rename_channels(sample_automaton(), {"m_Req": "i_Req"})
        assert renamed.output_channels() == {"c_Ack"}

    def test_new_name(self):
        renamed = rename_channels(sample_automaton(), {}, new_name="MIO")
        assert renamed.name == "MIO"


class TestRenameClocks:
    def test_invariants_guards_updates_renamed(self):
        auto = rename_clocks(sample_automaton(),
                             {"x": "mio_x", "y": "mio_y"})
        busy = auto.location("Busy")
        assert busy.invariant[0].clock == "mio_x"
        guard = auto.edges[1].guard
        clocks = {c for atom in guard.clock_constraints
                  for c in atom.clocks()}
        assert clocks == {"mio_x", "mio_y"}
        update_text = str(auto.edges[1].update)
        assert "mio_y = mio_x" in update_text

    def test_hoisting_removes_local_clocks(self):
        auto = rename_clocks(sample_automaton(),
                             {"x": "mio_x", "y": "mio_y"})
        assert auto.clocks == ()

    def test_keep_local_renames_in_place(self):
        auto = rename_clocks(sample_automaton(), {"x": "x2"},
                             keep_local=True)
        assert auto.clocks == ("x2", "y")

    def test_partial_rename(self):
        auto = rename_clocks(sample_automaton(), {"x": "gx"})
        assert auto.clocks == ("y",)
        assert auto.location("Busy").invariant[0].clock == "gx"
