"""Unit tests for channel and clock renaming (the MIO construction)
and property tests for the canonical structural hash the portfolio's
verdict memo keys on."""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.transform import transform
from repro.mc.memo import psm_canonical_model
from repro.ta.builder import AutomatonBuilder
from repro.ta.rename import (
    boundary_rename_map,
    canonical_network,
    mc_to_io_name,
    rename_channels,
    rename_clocks,
)


def sample_automaton():
    b = AutomatonBuilder("M", clocks=["x", "y"])
    b.location("Idle", initial=True)
    b.location("Busy", invariant="x <= 10")
    b.edge("Idle", "Busy", sync="m_Req?", update="x = 0")
    b.edge("Busy", "Idle", guard="x >= 2 && x - y < 8", sync="c_Ack!",
           update="y = x")
    return b.build()


class TestNames:
    def test_m_prefix(self):
        assert mc_to_io_name("m_BolusReq") == "i_BolusReq"

    def test_c_prefix(self):
        assert mc_to_io_name("c_StartInfusion") == "o_StartInfusion"

    def test_unprefixed_gets_io(self):
        assert mc_to_io_name("weird") == "io_weird"

    def test_boundary_map(self):
        mapping = boundary_rename_map({"m_A"}, {"c_B"})
        assert mapping == {"m_A": "i_A", "c_B": "o_B"}


class TestRenameChannels:
    def test_syncs_renamed(self):
        auto = rename_channels(sample_automaton(),
                               {"m_Req": "i_Req", "c_Ack": "o_Ack"})
        assert auto.input_channels() == {"i_Req"}
        assert auto.output_channels() == {"o_Ack"}

    def test_structure_preserved(self):
        original = sample_automaton()
        renamed = rename_channels(original, {"m_Req": "i_Req"})
        assert renamed.location_names() == original.location_names()
        assert len(renamed.edges) == len(original.edges)
        assert renamed.clocks == original.clocks
        # Guards and updates untouched.
        assert str(renamed.edges[1].guard) == str(original.edges[1].guard)

    def test_unmapped_channels_kept(self):
        renamed = rename_channels(sample_automaton(), {"m_Req": "i_Req"})
        assert renamed.output_channels() == {"c_Ack"}

    def test_new_name(self):
        renamed = rename_channels(sample_automaton(), {}, new_name="MIO")
        assert renamed.name == "MIO"


from tests.conftest import build_tiny_pim, build_tiny_scheme  # noqa: E402


def _renamed_network(network, suffix: str):
    """The same network with every channel renamed (declarations and
    syncs consistently) — canonically identical by construction."""
    mapping = {ch.name: f"{ch.name}_{suffix}" for ch in network.channels}
    return dataclasses.replace(
        network,
        automata=tuple(rename_channels(auto, mapping)
                       for auto in network.automata),
        channels=tuple(dataclasses.replace(ch, name=mapping[ch.name])
                       for ch in network.channels))


def _tiny_psm(**scheme_kwargs):
    return transform(build_tiny_pim(), build_tiny_scheme(**scheme_kwargs))


class TestCanonicalHash:
    """Property tests for the memo's canonical structural hash."""

    @settings(max_examples=20, deadline=None)
    @given(suffix=st.text(alphabet="abcdefgh", min_size=1, max_size=6),
           rot=st.integers(min_value=0, max_value=7))
    def test_rename_and_reorder_invariance(self, suffix, rot):
        """Channel renaming and declaration reordering never change
        the digest (ids are assigned in traversal order, not
        declaration or lexicographic order)."""
        network = _tiny_psm().network
        renamed = _renamed_network(network, suffix)
        k = rot % max(len(renamed.channels), 1)
        v = rot % max(len(renamed.variables), 1)
        shuffled = dataclasses.replace(
            renamed,
            channels=renamed.channels[k:] + renamed.channels[:k],
            variables=renamed.variables[v:] + renamed.variables[:v])
        assert (canonical_network(shuffled).digest
                == canonical_network(network).digest)

    @settings(max_examples=15, deadline=None)
    @given(b1=st.integers(min_value=1, max_value=6),
           b2=st.integers(min_value=1, max_value=6),
           period=st.integers(min_value=3, max_value=8))
    def test_buffer_capacity_erased(self, b1, b2, period):
        """Schemes differing only in buffer capacity share a digest
        once the capacity literals are erased — the memo's Tier-1
        grouping law."""
        m1 = psm_canonical_model(_tiny_psm(buffer_size=b1, period=period))
        m2 = psm_canonical_model(_tiny_psm(buffer_size=b2, period=period))
        assert m1.digest == m2.digest
        assert len(m1.erased) == len(m2.erased)
        if b1 != b2:
            # The literals themselves still differ — coverage (not
            # hashing) decides whether reuse is exact.
            assert any(a.literal != b.literal
                       for a, b in zip(m1.erased, m2.erased))

    @settings(max_examples=15, deadline=None)
    @given(period=st.integers(min_value=3, max_value=8),
           delta=st.integers(min_value=1, max_value=5),
           axis=st.sampled_from(["period", "wcet"]))
    def test_timing_perturbation_changes_digest(self, period, delta,
                                                axis):
        """Perturbing any non-erased timing constant must change the
        digest — timing is semantics, never erased."""
        if axis == "period":
            base_kwargs = {"period": period}
            kwargs = {"period": period + delta}
        else:
            # Keep wcet < period so the scheme stays valid.
            base_kwargs = {"period": period + 6, "wcet": 1}
            kwargs = {"period": period + 6, "wcet": 1 + delta}
        base = psm_canonical_model(_tiny_psm(**base_kwargs))
        perturbed = psm_canonical_model(_tiny_psm(**kwargs))
        assert base.digest != perturbed.digest

    def test_erased_sites_expose_original_names(self):
        model = psm_canonical_model(_tiny_psm())
        assert model.erased, "tiny PSM must have capacity sites"
        for site in model.erased:
            assert site.literal >= 1
            for name in site.variables:
                # Original variable names, resolvable to canonical ids.
                assert model.variable_id(name).startswith("v")


class TestRenameClocks:
    def test_invariants_guards_updates_renamed(self):
        auto = rename_clocks(sample_automaton(),
                             {"x": "mio_x", "y": "mio_y"})
        busy = auto.location("Busy")
        assert busy.invariant[0].clock == "mio_x"
        guard = auto.edges[1].guard
        clocks = {c for atom in guard.clock_constraints
                  for c in atom.clocks()}
        assert clocks == {"mio_x", "mio_y"}
        update_text = str(auto.edges[1].update)
        assert "mio_y = mio_x" in update_text

    def test_hoisting_removes_local_clocks(self):
        auto = rename_clocks(sample_automaton(),
                             {"x": "mio_x", "y": "mio_y"})
        assert auto.clocks == ()

    def test_keep_local_renames_in_place(self):
        auto = rename_clocks(sample_automaton(), {"x": "x2"},
                             keep_local=True)
        assert auto.clocks == ("x2", "y")

    def test_partial_rename(self):
        auto = rename_clocks(sample_automaton(), {"x": "gx"})
        assert auto.clocks == ("y",)
        assert auto.location("Busy").invariant[0].clock == "gx"
