"""Passed-bucket invariants: envelopes, compaction, batched commits.

The numpy bucket's eviction path must compact the stacked comparison
array *and* recompute the min/max envelopes from the surviving rows
(stale envelope contributions from evicted rows degrade the
prefilters to always-pass).  ``commit_batch`` — the sharded
explorer's merge primitive — must be observationally identical to the
sequential ``covers``/``insert`` loop, including which waiting
entries it kills, across the int32-narrowed and int64 storage modes.
"""

from __future__ import annotations

import random

import pytest

from repro.zones.backend import available_backends, resolve_backend
from repro.zones.bounds import INF

numpy = pytest.importorskip("numpy")

BACKENDS = available_backends()


class Entry:
    __slots__ = ("alive", "tag")

    def __init__(self, tag):
        self.alive = True
        self.tag = tag


def random_zone(dbm_cls, size, rng):
    zone = dbm_cls.zero(size)
    zone.up()
    for _ in range(rng.randint(1, 4)):
        i = rng.randrange(size)
        j = rng.randrange(size)
        if i == j:
            continue
        zone.constrain(i, j, rng.randrange(2, 40) * 2 + 1)
        if zone.is_empty():
            return None
    return zone


def _bucket_rows(bucket):
    return [tuple(int(v) for v in bucket._stack[i])
            for i in range(bucket._count)]


@pytest.fixture
def numpy_backend():
    if "numpy" not in BACKENDS:
        pytest.skip("numpy backend unavailable")
    return resolve_backend("numpy")


class TestEnvelopes:
    def test_eviction_recomputes_envelopes(self, numpy_backend):
        dbm = numpy_backend.dbm
        bucket = numpy_backend.bucket()
        small = dbm.universal(3).constrain(1, 0, 11)
        other = dbm.universal(3).constrain(2, 0, 7)
        big = dbm.universal(3).constrain(1, 0, 21)
        bucket.insert(small, Entry("small"))
        bucket.insert(other, Entry("other"))
        evicted = bucket.insert(big, Entry("big"))
        assert [e.tag for e in evicted] == ["small"]
        assert len(bucket) == 2
        # Envelopes are exactly the max/min of the LIVE rows — no
        # stale contribution from the evicted one.
        live = bucket._stack[:bucket._count]
        assert (bucket._upper == live.max(axis=0)).all()
        assert (bucket._lower == live.min(axis=0)).all()

    def test_covers_after_eviction(self, numpy_backend):
        dbm = numpy_backend.dbm
        bucket = numpy_backend.bucket()
        bucket.insert(dbm.universal(3).constrain(1, 0, 11), Entry(0))
        bucket.insert(dbm.universal(3).constrain(1, 0, 21), Entry(1))
        assert bucket.covers(dbm.universal(3).constrain(1, 0, 7))
        assert not bucket.covers(dbm.universal(3))


class TestNarrowing:
    def test_narrow_roundtrip_preserves_rows(self, numpy_backend):
        dbm = numpy_backend.dbm
        bucket = numpy_backend.bucket()
        zone = dbm.zero(3).up().constrain(1, 0, 11)
        bucket.insert(zone, Entry(0))
        rows_before = _bucket_rows(bucket)
        assert bucket._try_narrow()
        assert bucket._stack.dtype == numpy.int32
        # INF maps to the order-preserving sentinel, not a wrapped int.
        assert (bucket._stack[:1] == bucket.NARROW_INF).sum() == \
            rows_before[0].count(INF)
        bucket._to_wide()
        assert bucket._stack.dtype == numpy.int64
        assert _bucket_rows(bucket) == rows_before

    def test_out_of_range_bound_forces_wide(self, numpy_backend):
        dbm = numpy_backend.dbm
        bucket = numpy_backend.bucket()
        huge = dbm.zero(2).up().constrain(1, 0, (1 << 31) + 7)
        row = huge._m.reshape(1, -1)
        flags = bucket.commit_batch(row.copy(), [Entry(0)])
        assert flags == [True]
        assert bucket._stack.dtype == numpy.int64
        assert bucket._mode == bucket._WIDE_FORCED


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", range(4))
def test_commit_batch_matches_sequential(backend, seed):
    """Random zone batches: batched commit ≡ ordered covers/insert."""
    spec = resolve_backend(backend)
    rng = random.Random(seed)
    size = 4
    zones = []
    while len(zones) < 24:
        zone = random_zone(spec.dbm, size, rng)
        if zone is not None:
            zones.append(zone)

    sequential = spec.bucket()
    expected_flags = []
    seq_entries = [Entry(i) for i in range(len(zones))]
    for zone, entry in zip(zones, seq_entries):
        if sequential.covers(zone):
            expected_flags.append(False)
            continue
        for evicted in sequential.insert(zone, entry):
            evicted.alive = False
        expected_flags.append(True)

    batched = spec.bucket()
    batch_entries = [Entry(i) for i in range(len(zones))]
    # Split the stream into a few waves, as the explorer would.
    flags = []
    for start in (0, 7, 15):
        end = {0: 7, 7: 15, 15: len(zones)}[start]
        chunk = zones[start:end]
        entries = batch_entries[start:end]
        if backend in ("numpy", "native"):
            # Both ride the row-stack bucket (native stores the same
            # int64 matrix as numpy).
            rows = numpy.stack([z._m.reshape(-1) for z in chunk])
            flags.extend(batched.commit_batch(rows, entries))
        else:
            flags.extend(batched.commit_batch(chunk, entries))

    assert flags == expected_flags
    assert [e.alive for e in batch_entries] == \
        [e.alive for e in seq_entries]
    if backend in ("numpy", "native"):
        batched._to_wide()
        assert _bucket_rows(batched) == [
            tuple(row) for row in sequential._stack[:len(sequential)]
            .tolist()]
    else:
        assert batched._rows == sequential._rows


def test_commit_batch_trusted_narrow_skips_validation(numpy_backend):
    bucket = numpy_backend.bucket()
    bucket.trusted_narrow = True
    dbm = numpy_backend.dbm
    zone = dbm.zero(3).up().constrain(1, 0, 11)
    rows = zone._m.reshape(1, -1)
    assert bucket.commit_batch(rows.copy(), [Entry(0)]) == [True]
    assert bucket._stack.dtype == numpy.int32
