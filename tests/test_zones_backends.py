"""Differential tests: every zone backend against the reference.

Random operation sequences are driven through the reference, numpy and
(when built) native backends in lockstep; after every step all
matrices must agree bit for bit — same ``frozen()`` snapshot, same
emptiness verdict, same hash.  Once a zone turns empty only the
verdict is compared (the incremental-closure order on inconsistent
matrices is implementation-defined; emptiness is sticky in every
backend).

Also covers the batched wave pipeline (``BatchExpander`` vs the
compiled ``NativeBatchExpander``), the backend registry (selection
rules, env var, aliases, hint-driven ``auto``) and the passed-list
buckets that pair with each backend.  The native backend is optional:
everything here skips or adapts cleanly when the C extension is not
built.
"""

from __future__ import annotations

import random
from types import SimpleNamespace

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.zones.backend as backend_mod
from repro.zones.backend import (
    available_backends,
    requested_backend,
    resolve_backend,
    set_backend,
)
from repro.zones.bounds import encode
from repro.zones.costmodel import BackendHint, choose_backend
from repro.zones.dbm import DBM
from repro.zones.dbm_numpy import NumpyDBM
from repro.zones.store import NumpyPassedBucket, ReferencePassedBucket

try:
    from repro.zones.dbm_native import NativeBatchExpander, NativeDBM
except ImportError:  # extension not built in this checkout
    NativeBatchExpander = NativeDBM = None

HAVE_NATIVE = NativeDBM is not None
BACKEND_CLASSES = [DBM, NumpyDBM] + ([NativeDBM] if HAVE_NATIVE else [])

needs_native = pytest.mark.skipif(
    not HAVE_NATIVE, reason="native zone backend not built")

SIZE = 4
MAX_CONST = 8


def _op_strategy():
    constrain = st.tuples(
        st.just("constrain"),
        st.integers(0, SIZE - 1),
        st.integers(0, SIZE - 1),
        st.integers(-MAX_CONST, MAX_CONST),
        st.booleans(),
    ).filter(lambda t: t[1] != t[2])
    constrain_all = st.tuples(
        st.just("constrain_all"),
        st.lists(
            st.tuples(st.integers(0, SIZE - 1), st.integers(0, SIZE - 1),
                      st.integers(-MAX_CONST, MAX_CONST), st.booleans())
            .filter(lambda t: t[0] != t[1]),
            max_size=4))
    reset = st.tuples(st.just("reset"), st.integers(1, SIZE - 1),
                      st.integers(0, MAX_CONST))
    assign = st.tuples(st.just("assign"), st.integers(1, SIZE - 1),
                       st.integers(1, SIZE - 1))
    free = st.tuples(st.just("free"), st.integers(1, SIZE - 1))
    free_many = st.tuples(
        st.just("free_many"),
        st.lists(st.integers(1, SIZE - 1), min_size=1, max_size=SIZE - 1,
                 unique=True))
    extrapolate = st.tuples(
        st.just("extrapolate"),
        st.lists(st.integers(0, MAX_CONST), min_size=SIZE - 1,
                 max_size=SIZE - 1))
    # NO_BOUND (-1) is a legal LU entry: "this clock is never compared
    # that way here" — the coarsest, most widening-happy value.
    extrapolate_lu = st.tuples(
        st.just("extrapolate_lu"),
        st.lists(st.integers(-1, MAX_CONST), min_size=SIZE - 1,
                 max_size=SIZE - 1),
        st.lists(st.integers(-1, MAX_CONST), min_size=SIZE - 1,
                 max_size=SIZE - 1))
    simple = st.sampled_from([("up",), ("close",)])
    return st.one_of(constrain, constrain_all, reset, assign, free,
                     free_many, extrapolate, extrapolate_lu, simple)


def _apply(zone, op):
    kind = op[0]
    if kind == "constrain":
        zone.constrain(op[1], op[2], encode(op[3], op[4]))
    elif kind == "constrain_all":
        zone.constrain_all(tuple(
            (i, j, encode(value, weak)) for i, j, value, weak in op[1]))
    elif kind == "reset":
        zone.reset(op[1], op[2])
    elif kind == "assign":
        zone.assign_clock(op[1], op[2])
    elif kind == "free":
        zone.free(op[1])
    elif kind == "free_many":
        zone.free_many(tuple(op[1]))
    elif kind == "extrapolate":
        zone.extrapolate_max([0, *op[1]])
    elif kind == "extrapolate_lu":
        zone.extrapolate_lu([0, *op[1]], [0, *op[2]])
    elif kind == "up":
        zone.up()
    else:
        zone.close()


def _assert_lockstep(ops, start):
    reference = start(DBM)
    others = [start(cls) for cls in BACKEND_CLASSES[1:]]
    for op in ops:
        _apply(reference, op)
        for other in others:
            _apply(other, op)
            assert reference.is_empty() == other.is_empty(), op
        if reference.is_empty():
            return
        for other in others:
            assert reference.frozen() == other.frozen(), op
            assert hash(reference) == hash(other)
            assert reference == other
            assert reference.includes(other)
            assert other.includes(reference)


@settings(max_examples=120, deadline=None)
@given(st.lists(_op_strategy(), min_size=1, max_size=24))
def test_backends_agree_from_zero(ops):
    _assert_lockstep(ops, lambda cls: cls.zero(SIZE))


@settings(max_examples=120, deadline=None)
@given(st.lists(_op_strategy(), min_size=1, max_size=24))
def test_backends_agree_from_universal(ops):
    _assert_lockstep(ops, lambda cls: cls.universal(SIZE))


def test_backends_agree_long_random_walk():
    """Seeded high-volume sweep complementing the hypothesis runs."""
    rng = random.Random(2015)
    for _ in range(300):
        n = rng.randint(2, 7)
        zones = [cls.zero(n) for cls in BACKEND_CLASSES]
        a = zones[0]
        for _ in range(rng.randint(1, 30)):
            kind = rng.choice(
                ["constrain", "up", "reset", "assign", "free",
                 "free_many", "extrapolate", "extrapolate_lu",
                 "close"])
            if kind == "constrain":
                i, j = rng.sample(range(n), 2)
                op = ("constrain", i, j, rng.randint(-8, 8),
                      rng.random() < 0.5)
            elif kind == "reset":
                op = ("reset", rng.randint(1, n - 1), rng.randint(0, 6))
            elif kind == "assign":
                op = ("assign", rng.randint(1, n - 1),
                      rng.randint(1, n - 1))
            elif kind == "free":
                op = ("free", rng.randint(1, n - 1))
            elif kind == "free_many":
                op = ("free_many",
                      rng.sample(range(1, n), rng.randint(1, n - 1)))
            elif kind == "extrapolate":
                op = ("extrapolate",
                      [rng.randint(0, 8) for _ in range(n - 1)])
            elif kind == "extrapolate_lu":
                op = ("extrapolate_lu",
                      [rng.randint(-1, 8) for _ in range(n - 1)],
                      [rng.randint(-1, 8) for _ in range(n - 1)])
            else:
                op = (kind,)
            for zone in zones:
                _apply(zone, op)
            assert all(zone.is_empty() == a.is_empty()
                       for zone in zones), op
            if a.is_empty():
                break
            for zone in zones[1:]:
                assert a.frozen() == zone.frozen(), op
                assert hash(a) == hash(zone)


def test_cross_backend_comparisons():
    zones = []
    for cls in BACKEND_CLASSES:
        zone = cls.universal(3)
        zone.constrain(1, 0, encode(5, True))
        zones.append(zone)
    for a in zones:
        for b in zones:
            assert a == b and b == a
            assert a.includes(b) and b.includes(a)
            assert a.intersects(b) and b.intersects(a)
    wider = NumpyDBM.universal(3)
    for a in zones:
        assert wider.includes(a)
        assert not a.includes(wider)


def test_numpy_roundtrip_and_sampling():
    zone = NumpyDBM.universal(3)
    zone.constrain(1, 0, encode(10, True))
    zone.constrain(0, 1, encode(-3, True))
    again = NumpyDBM.from_frozen(3, zone.frozen())
    assert again == zone
    point = zone.sample_point()
    assert point is not None and zone.contains_point(point)
    assert DBM.from_frozen(3, zone.frozen()) == zone


@needs_native
def test_native_copy_and_roundtrip_stay_native():
    zone = NativeDBM.universal(3)
    zone.constrain(1, 0, encode(10, True))
    clone = zone.copy()
    assert type(clone) is NativeDBM
    assert clone == zone
    again = NativeDBM.from_frozen(3, zone.frozen())
    assert type(again) is NativeDBM and again == zone
    point = zone.sample_point()
    assert point is not None and zone.contains_point(point)


# ----------------------------------------------------------------------
# Batched wave pipeline
# ----------------------------------------------------------------------
def _random_plan(rng, n, max_const):
    """A random successor plan in the explorer's plan shape."""
    def some_ops(count):
        ops = []
        for _ in range(count):
            i, j = rng.sample(range(n), 2)
            ops.append((i, j, encode(rng.randint(-max_const, max_const),
                                     rng.random() < 0.5)))
        return tuple(ops)

    zone_ops = []
    for _ in range(rng.randint(0, 2)):
        if rng.random() < 0.7:
            zone_ops.append(("reset", rng.randint(1, n - 1),
                             rng.randint(0, max_const)))
        else:
            zone_ops.append(("copy", rng.randint(1, n - 1),
                             rng.randint(1, n - 1)))
    lu = None
    if rng.random() < 0.5:
        lu = (tuple([0] + [rng.randint(-1, max_const)
                           for _ in range(n - 1)]),
              tuple([0] + [rng.randint(-1, max_const)
                           for _ in range(n - 1)]))
    return SimpleNamespace(
        guard_ops=some_ops(rng.randint(0, 3)),
        error="boom" if rng.random() < 0.1 else None,
        zone_ops=tuple(zone_ops),
        free_clocks=tuple(rng.sample(range(1, n),
                                     rng.randint(0, n - 1))),
        invariant_ops=some_ops(rng.randint(0, 2)),
        delay=rng.random() < 0.7,
        lu=lu)


@needs_native
def test_batched_wave_lockstep():
    """BatchExpander and NativeBatchExpander agree element for element.

    Dead elements may hold garbage (both pipelines stop writing them at
    different points by design), so only the alive mask and the live
    rows are compared — exactly the contract the sharded explorer
    consumes.
    """
    from repro.zones.batch import BatchExpander

    rng = random.Random(20150309)
    for trial in range(150):
        n = rng.randint(2, 6)
        max_consts = tuple(rng.randint(0, 6) for _ in range(n))
        batch = rng.randint(1, 9)
        stack = []
        for _ in range(batch):
            zone = NumpyDBM.zero(n)
            for _ in range(rng.randint(0, 6)):
                i, j = rng.sample(range(n), 2)
                zone.constrain(i, j, encode(rng.randint(0, 8), True))
                if zone.is_empty():
                    zone = NumpyDBM.zero(n)
            zone.up()
            stack.append(zone._m)
        src = np.stack(stack)
        plan = _random_plan(rng, n, 6)
        ref = BatchExpander(n, max_consts)
        nat = NativeBatchExpander(n, max_consts)
        ref_work, ref_alive = ref.run_plan(src, plan)
        nat_work, nat_alive = nat.run_plan(src, plan)
        assert (ref_alive == nat_alive).all(), (trial, plan)
        if plan.error is not None:
            # Error plans stop at the guard; the consumer only reads
            # ``alive`` (the numpy pipeline may return the partially
            # guarded stack instead of None when every element died
            # before the error check — contractually equivalent).
            continue
        live = np.flatnonzero(ref_alive)
        assert (ref_work[live] == nat_work[live]).all(), (trial, plan)


# ----------------------------------------------------------------------
# Passed-list buckets
# ----------------------------------------------------------------------
def _random_zone(cls, rng, n):
    zone = cls.universal(n)
    for _ in range(rng.randint(0, 5)):
        i, j = rng.sample(range(n), 2)
        zone.constrain(i, j, encode(rng.randint(0, 8), True))
        if zone.is_empty():
            return _random_zone(cls, rng, n)
    return zone


def test_buckets_agree_with_reference():
    rng = random.Random(7)
    n = 4
    for _ in range(60):
        ref_bucket = ReferencePassedBucket()
        np_bucket = NumpyPassedBucket()
        for step in range(rng.randint(1, 20)):
            seed_state = rng.getstate()
            ref_zone = _random_zone(DBM, rng, n)
            rng.setstate(seed_state)
            np_zone = _random_zone(NumpyDBM, rng, n)
            assert ref_zone == np_zone
            assert ref_bucket.covers(ref_zone) == \
                np_bucket.covers(np_zone)
            if ref_bucket.covers(ref_zone):
                continue
            ref_evicted = ref_bucket.insert(ref_zone, f"e{step}")
            np_evicted = np_bucket.insert(np_zone, f"e{step}")
            assert ref_evicted == np_evicted
            assert len(ref_bucket) == len(np_bucket)
            assert ref_bucket.entries == np_bucket.entries


@needs_native
def test_buckets_accept_native_zones():
    """The numpy bucket treats native zones exactly like numpy ones."""
    rng = random.Random(11)
    n = 4
    for _ in range(20):
        np_bucket = NumpyPassedBucket()
        nat_bucket = NumpyPassedBucket()
        for step in range(rng.randint(1, 15)):
            seed_state = rng.getstate()
            np_zone = _random_zone(NumpyDBM, rng, n)
            rng.setstate(seed_state)
            nat_zone = _random_zone(NativeDBM, rng, n)
            assert np_zone == nat_zone
            assert np_bucket.covers(np_zone) == \
                nat_bucket.covers(nat_zone)
            if np_bucket.covers(np_zone):
                continue
            assert np_bucket.insert(np_zone, f"e{step}") == \
                nat_bucket.insert(nat_zone, f"e{step}")
            assert np_bucket.entries == nat_bucket.entries


# ----------------------------------------------------------------------
# Backend registry
# ----------------------------------------------------------------------
def test_available_backends_reference_first():
    backends = available_backends()
    assert backends[:2] == ("reference", "numpy")
    # The native backend is optional (requires the built C extension);
    # whichever way this checkout was built, the registry must agree
    # with what is actually importable.
    assert set(backends) - {"reference", "numpy"} <= {"native"}
    assert ("native" in backends) == HAVE_NATIVE


def test_resolve_names_and_aliases():
    assert resolve_backend("numpy").dbm is NumpyDBM
    for alias in ("reference", "python", "list"):
        assert resolve_backend(alias).dbm is DBM
    # No-hint auto prefers native > numpy > reference.
    expected = NativeDBM if HAVE_NATIVE else NumpyDBM
    assert resolve_backend("auto").dbm is expected
    assert requested_backend("c") == "native"
    assert requested_backend("python") == "reference"
    assert requested_backend("auto") == "auto"
    with pytest.raises(ValueError, match="unknown zone backend"):
        resolve_backend("fortran")
    with pytest.raises(ValueError, match="unknown zone backend"):
        requested_backend("fortran")


@needs_native
def test_resolve_native():
    assert resolve_backend("native").dbm is NativeDBM
    assert resolve_backend("c").dbm is NativeDBM
    assert resolve_backend("native").bucket is NumpyPassedBucket


def test_native_unbuilt_fallback(monkeypatch):
    """Without the compiled extension, native drops out gracefully."""
    def boom():
        raise ImportError("extension not built")

    monkeypatch.setattr(backend_mod, "_load_native", boom)
    assert "native" not in available_backends()
    assert resolve_backend("auto").dbm is NumpyDBM
    with pytest.raises(RuntimeError, match="build_ext"):
        resolve_backend("native")


def test_env_var_and_forced_selection(monkeypatch):
    auto_dbm = resolve_backend("auto").dbm
    monkeypatch.setenv("REPRO_ZONE_BACKEND", "reference")
    assert resolve_backend().dbm is DBM
    set_backend("numpy")
    try:
        # A forced backend wins over the environment variable.
        assert resolve_backend().dbm is NumpyDBM
    finally:
        set_backend(None)
    assert resolve_backend().dbm is DBM
    monkeypatch.delenv("REPRO_ZONE_BACKEND")
    assert resolve_backend().dbm is auto_dbm
    with pytest.raises(ValueError):
        set_backend("no-such-backend")


# ----------------------------------------------------------------------
# auto: hint-driven selection (the wrong-default regression guard)
# ----------------------------------------------------------------------
def test_auto_hints_pick_cheap_backend_for_tiny_models(monkeypatch):
    """Structural-size guard: without native, tiny models must run on
    the reference backend (BENCH_20260808: numpy was 2.4x slower on
    `bench_portfolio_tiny` at jobs=1) while case-study-scale models
    stay on numpy."""
    from repro.core.transform import transform
    from repro.mc.explorer import ZoneGraphExplorer
    from tests.conftest import build_tiny_pim, build_tiny_scheme

    tiny = transform(build_tiny_pim(), build_tiny_scheme()).network
    structural = sum(len(a.locations) + len(a.edges)
                     for a in tiny.automata)
    tiny_hint = BackendHint(n_clocks=7, structural_size=structural,
                            wave_width=1)
    case_hint = BackendHint(n_clocks=11, structural_size=80,
                            wave_width=1)
    # Pure cost-model level, native absent:
    assert choose_backend(("reference", "numpy"), tiny_hint) == \
        "reference"
    assert choose_backend(("reference", "numpy"), case_hint) == "numpy"
    # Native available: it wins everywhere.
    assert choose_backend(("reference", "numpy", "native"),
                          tiny_hint) == "native"
    assert choose_backend(("reference", "numpy", "native"),
                          case_hint) == "native"

    # End to end through the explorer, with native masked out:
    def boom():
        raise ImportError("extension not built")

    monkeypatch.setattr(backend_mod, "_load_native", boom)
    explorer = ZoneGraphExplorer(tiny, zone_backend="auto")
    assert explorer.backend.name == "reference"


@needs_native
def test_auto_resolves_to_native_when_built():
    from repro.core.transform import transform
    from repro.mc.explorer import ZoneGraphExplorer
    from tests.conftest import build_tiny_pim, build_tiny_scheme

    tiny = transform(build_tiny_pim(), build_tiny_scheme()).network
    explorer = ZoneGraphExplorer(tiny, zone_backend="auto")
    assert explorer.backend.name == "native"
