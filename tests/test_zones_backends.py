"""Differential tests: the numpy zone backend against the reference.

Random operation sequences are driven through both backends in
lockstep; after every step the two matrices must agree bit for bit —
same ``frozen()`` snapshot, same emptiness verdict, same hash.  Once a
zone turns empty only the verdict is compared (the incremental-closure
order on inconsistent matrices is implementation-defined; emptiness is
sticky in both backends).

Also covers the backend registry (selection rules, env var, aliases)
and the passed-list buckets that pair with each backend.
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.zones.backend import (
    available_backends,
    resolve_backend,
    set_backend,
)
from repro.zones.bounds import encode
from repro.zones.dbm import DBM
from repro.zones.dbm_numpy import NumpyDBM
from repro.zones.store import NumpyPassedBucket, ReferencePassedBucket

SIZE = 4
MAX_CONST = 8


def _op_strategy():
    constrain = st.tuples(
        st.just("constrain"),
        st.integers(0, SIZE - 1),
        st.integers(0, SIZE - 1),
        st.integers(-MAX_CONST, MAX_CONST),
        st.booleans(),
    ).filter(lambda t: t[1] != t[2])
    reset = st.tuples(st.just("reset"), st.integers(1, SIZE - 1),
                      st.integers(0, MAX_CONST))
    assign = st.tuples(st.just("assign"), st.integers(1, SIZE - 1),
                       st.integers(1, SIZE - 1))
    free = st.tuples(st.just("free"), st.integers(1, SIZE - 1))
    free_many = st.tuples(
        st.just("free_many"),
        st.lists(st.integers(1, SIZE - 1), min_size=1, max_size=SIZE - 1,
                 unique=True))
    extrapolate = st.tuples(
        st.just("extrapolate"),
        st.lists(st.integers(0, MAX_CONST), min_size=SIZE - 1,
                 max_size=SIZE - 1))
    # NO_BOUND (-1) is a legal LU entry: "this clock is never compared
    # that way here" — the coarsest, most widening-happy value.
    extrapolate_lu = st.tuples(
        st.just("extrapolate_lu"),
        st.lists(st.integers(-1, MAX_CONST), min_size=SIZE - 1,
                 max_size=SIZE - 1),
        st.lists(st.integers(-1, MAX_CONST), min_size=SIZE - 1,
                 max_size=SIZE - 1))
    simple = st.sampled_from([("up",), ("close",)])
    return st.one_of(constrain, reset, assign, free, free_many,
                     extrapolate, extrapolate_lu, simple)


def _apply(zone, op):
    kind = op[0]
    if kind == "constrain":
        zone.constrain(op[1], op[2], encode(op[3], op[4]))
    elif kind == "reset":
        zone.reset(op[1], op[2])
    elif kind == "assign":
        zone.assign_clock(op[1], op[2])
    elif kind == "free":
        zone.free(op[1])
    elif kind == "free_many":
        zone.free_many(tuple(op[1]))
    elif kind == "extrapolate":
        zone.extrapolate_max([0, *op[1]])
    elif kind == "extrapolate_lu":
        zone.extrapolate_lu([0, *op[1]], [0, *op[2]])
    elif kind == "up":
        zone.up()
    else:
        zone.close()


def _assert_lockstep(ops, start):
    reference = start(DBM)
    vectorized = start(NumpyDBM)
    for op in ops:
        _apply(reference, op)
        _apply(vectorized, op)
        assert reference.is_empty() == vectorized.is_empty(), op
        if reference.is_empty():
            return
        assert reference.frozen() == vectorized.frozen(), op
        assert hash(reference) == hash(vectorized)
        assert reference == vectorized
        assert reference.includes(vectorized)
        assert vectorized.includes(reference)


@settings(max_examples=120, deadline=None)
@given(st.lists(_op_strategy(), min_size=1, max_size=24))
def test_backends_agree_from_zero(ops):
    _assert_lockstep(ops, lambda cls: cls.zero(SIZE))


@settings(max_examples=120, deadline=None)
@given(st.lists(_op_strategy(), min_size=1, max_size=24))
def test_backends_agree_from_universal(ops):
    _assert_lockstep(ops, lambda cls: cls.universal(SIZE))


def test_backends_agree_long_random_walk():
    """Seeded high-volume sweep complementing the hypothesis runs."""
    rng = random.Random(2015)
    for _ in range(300):
        n = rng.randint(2, 7)
        a, b = DBM.zero(n), NumpyDBM.zero(n)
        for _ in range(rng.randint(1, 30)):
            kind = rng.choice(
                ["constrain", "up", "reset", "assign", "free",
                 "free_many", "extrapolate", "extrapolate_lu",
                 "close"])
            if kind == "constrain":
                i, j = rng.sample(range(n), 2)
                op = ("constrain", i, j, rng.randint(-8, 8),
                      rng.random() < 0.5)
            elif kind == "reset":
                op = ("reset", rng.randint(1, n - 1), rng.randint(0, 6))
            elif kind == "assign":
                op = ("assign", rng.randint(1, n - 1),
                      rng.randint(1, n - 1))
            elif kind == "free":
                op = ("free", rng.randint(1, n - 1))
            elif kind == "free_many":
                op = ("free_many",
                      rng.sample(range(1, n), rng.randint(1, n - 1)))
            elif kind == "extrapolate":
                op = ("extrapolate",
                      [rng.randint(0, 8) for _ in range(n - 1)])
            elif kind == "extrapolate_lu":
                op = ("extrapolate_lu",
                      [rng.randint(-1, 8) for _ in range(n - 1)],
                      [rng.randint(-1, 8) for _ in range(n - 1)])
            else:
                op = (kind,)
            _apply(a, op)
            _apply(b, op)
            assert a.is_empty() == b.is_empty(), op
            if a.is_empty():
                break
            assert a.frozen() == b.frozen(), op
            assert hash(a) == hash(b)


def test_cross_backend_comparisons():
    a = DBM.universal(3)
    a.constrain(1, 0, encode(5, True))
    b = NumpyDBM.universal(3)
    b.constrain(1, 0, encode(5, True))
    assert a == b and b == a
    assert a.includes(b) and b.includes(a)
    assert a.intersects(b) and b.intersects(a)
    wider = NumpyDBM.universal(3)
    assert wider.includes(a)
    assert not a.includes(wider)


def test_numpy_roundtrip_and_sampling():
    zone = NumpyDBM.universal(3)
    zone.constrain(1, 0, encode(10, True))
    zone.constrain(0, 1, encode(-3, True))
    again = NumpyDBM.from_frozen(3, zone.frozen())
    assert again == zone
    point = zone.sample_point()
    assert point is not None and zone.contains_point(point)
    assert DBM.from_frozen(3, zone.frozen()) == zone


# ----------------------------------------------------------------------
# Passed-list buckets
# ----------------------------------------------------------------------
def _random_zone(cls, rng, n):
    zone = cls.universal(n)
    for _ in range(rng.randint(0, 5)):
        i, j = rng.sample(range(n), 2)
        zone.constrain(i, j, encode(rng.randint(0, 8), True))
        if zone.is_empty():
            return _random_zone(cls, rng, n)
    return zone


def test_buckets_agree_with_reference():
    rng = random.Random(7)
    n = 4
    for _ in range(60):
        ref_bucket = ReferencePassedBucket()
        np_bucket = NumpyPassedBucket()
        for step in range(rng.randint(1, 20)):
            seed_state = rng.getstate()
            ref_zone = _random_zone(DBM, rng, n)
            rng.setstate(seed_state)
            np_zone = _random_zone(NumpyDBM, rng, n)
            assert ref_zone == np_zone
            assert ref_bucket.covers(ref_zone) == \
                np_bucket.covers(np_zone)
            if ref_bucket.covers(ref_zone):
                continue
            ref_evicted = ref_bucket.insert(ref_zone, f"e{step}")
            np_evicted = np_bucket.insert(np_zone, f"e{step}")
            assert ref_evicted == np_evicted
            assert len(ref_bucket) == len(np_bucket)
            assert ref_bucket.entries == np_bucket.entries


# ----------------------------------------------------------------------
# Backend registry
# ----------------------------------------------------------------------
def test_available_backends_include_both():
    assert available_backends() == ("reference", "numpy")


def test_resolve_names_and_aliases():
    assert resolve_backend("numpy").dbm is NumpyDBM
    for alias in ("reference", "python", "list"):
        assert resolve_backend(alias).dbm is DBM
    assert resolve_backend("auto").dbm is NumpyDBM  # numpy importable
    with pytest.raises(ValueError, match="unknown zone backend"):
        resolve_backend("fortran")


def test_env_var_and_forced_selection(monkeypatch):
    monkeypatch.setenv("REPRO_ZONE_BACKEND", "reference")
    assert resolve_backend().dbm is DBM
    set_backend("numpy")
    try:
        # A forced backend wins over the environment variable.
        assert resolve_backend().dbm is NumpyDBM
    finally:
        set_backend(None)
    assert resolve_backend().dbm is DBM
    monkeypatch.delenv("REPRO_ZONE_BACKEND")
    assert resolve_backend().dbm is NumpyDBM
    with pytest.raises(ValueError):
        set_backend("no-such-backend")
