"""Tests for the discrete-event engine, RNG streams and trace log."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.engine import (
    SimulationError,
    Simulator,
    ms_to_us,
    us_to_ms,
)
from repro.sim.rng import RandomStreams
from repro.sim.trace import TraceRecorder


class TestUnits:
    def test_roundtrip(self):
        assert us_to_ms(ms_to_us(12.5)) == 12.5

    @given(st.integers(min_value=0, max_value=10**9))
    def test_us_to_ms_scale(self, us):
        assert us_to_ms(us) == us / 1000.0


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(30, lambda: fired.append("c"))
        sim.schedule(10, lambda: fired.append("a"))
        sim.schedule(20, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        for name in "abc":
            sim.schedule(5, lambda n=name: fired.append(n))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_now_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(7, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [7] and sim.now == 7

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append(sim.now)
            sim.schedule(5, lambda: fired.append(sim.now))

        sim.schedule(10, first)
        sim.run()
        assert fired == [10, 15]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5, lambda: None)

    def test_cancel(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(5, lambda: fired.append("x"))
        handle.cancel()
        sim.run()
        assert fired == []
        assert sim.pending == 0

    def test_run_until_stops_at_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, lambda: fired.append(10))
        sim.schedule(30, lambda: fired.append(30))
        sim.run_until(20)
        assert fired == [10]
        assert sim.now == 20
        sim.run_until(40)
        assert fired == [10, 30]

    def test_runaway_guard(self):
        sim = Simulator()

        def rearm():
            sim.schedule(1, rearm)

        sim.schedule(1, rearm)
        with pytest.raises(SimulationError, match="runaway"):
            sim.run(max_events=100)

    def test_events_fired_counter(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(1, lambda: None)
        sim.run()
        assert sim.events_fired == 4


class TestRandomStreams:
    def test_same_seed_same_draws(self):
        a = RandomStreams(42)
        b = RandomStreams(42)
        assert [a.uniform_int("s", 0, 100) for _ in range(5)] == \
            [b.uniform_int("s", 0, 100) for _ in range(5)]

    def test_streams_independent_of_creation_order(self):
        a = RandomStreams(1)
        first = a.uniform_int("x", 0, 1000)
        b = RandomStreams(1)
        b.uniform_int("y", 0, 1000)  # touch another stream first
        assert b.uniform_int("x", 0, 1000) == first

    def test_different_names_differ(self):
        streams = RandomStreams(7)
        draws_x = [streams.uniform_int("x", 0, 10**6) for _ in range(4)]
        draws_y = [streams.uniform_int("y", 0, 10**6) for _ in range(4)]
        assert draws_x != draws_y

    def test_bounds_respected(self):
        streams = RandomStreams(0)
        for _ in range(100):
            assert 3 <= streams.uniform_int("s", 3, 5) <= 5

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams(0).uniform_int("s", 5, 3)


class TestTraceRecorder:
    def test_record_and_filter(self):
        trace = TraceRecorder()
        trace.record(1000, "m", "m_Req", tag=1)
        trace.record(2000, "invoke", "code")
        trace.record(3000, "c", "c_Ack", tag=1)
        assert len(trace) == 3
        assert [e.kind for e in trace.events(channel="m_Req")] == ["m"]
        assert trace.count("invoke") == 1
        assert trace.first("c").time_ms == 3.0

    def test_unknown_kind_rejected(self):
        trace = TraceRecorder()
        with pytest.raises(ValueError, match="unknown trace kind"):
            trace.record(0, "bogus", "ch")

    def test_tags_in_order(self):
        trace = TraceRecorder()
        for k in (3, 1, 2):
            trace.record(k * 100, "m", "ch", tag=k)
        assert trace.tags("m") == [3, 1, 2]

    def test_render_truncates(self):
        trace = TraceRecorder()
        for k in range(10):
            trace.record(k, "m", "ch", tag=k)
        text = trace.render(max_events=3)
        assert "7 more" in text
