"""Tests for the infusion-pump case-study models (Section VI)."""

import pytest

from repro.apps.infusion import (
    INPUT_CHANNELS,
    INTERNAL_DELAY_MS,
    OUTPUT_CHANNELS,
    REQ1_DEADLINE_MS,
    build_infusion_network,
    build_infusion_pim,
)
from repro.apps.schemes import case_study_scheme, example_is1_scheme
from repro.codegen import build_controller
from repro.core.delays import (
    analytic_input_delay_bound,
    analytic_output_delay_bound,
    internal_delay,
)
from repro.mc import check_bounded_response, find_deadlocks


@pytest.fixture(scope="module")
def pim():
    return build_infusion_pim()


class TestModelStructure:
    def test_channels_match_paper(self, pim):
        assert pim.input_channels() == tuple(sorted(INPUT_CHANNELS))
        assert pim.output_channels() == tuple(sorted(OUTPUT_CHANNELS))

    def test_m_has_single_clock(self, pim):
        assert pim.m.clocks == ("x",)

    def test_no_internal_edges(self, pim):
        assert pim.internal_edges() == []

    def test_unknown_override_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            build_infusion_network({"BOGUS": 1})

    def test_override_applies(self):
        network = build_infusion_network({"PRIME_MS": 100})
        m = network.automaton("M")
        start_edges = [e for e in m.edges
                       if e.sync and e.sync.channel == "c_StartInfusion"]
        assert start_edges[0].guard.clock_constraints[0].bound == 100


class TestReq1OnPim:
    def test_req1_holds_at_500(self, pim):
        result = check_bounded_response(
            pim.network, "m_BolusReq", "c_StartInfusion",
            REQ1_DEADLINE_MS)
        assert result.holds

    def test_req1_tight(self, pim):
        result = check_bounded_response(
            pim.network, "m_BolusReq", "c_StartInfusion",
            REQ1_DEADLINE_MS - 1)
        assert not result.holds

    def test_internal_delay_is_500(self, pim):
        bound = internal_delay(pim, "m_BolusReq", "c_StartInfusion")
        assert bound.bounded and bound.sup == INTERNAL_DELAY_MS

    def test_pim_deadlock_free(self, pim):
        assert find_deadlocks(pim.network).deadlock_free

    def test_alarm_responds_to_empty_syringe(self, pim):
        result = check_bounded_response(
            pim.network, "m_EmptySyringe", "c_Alarm", 100)
        assert result.holds


class TestCaseStudyScheme:
    def test_lemma1_bounds_reproduce_table1(self):
        scheme = case_study_scheme()
        assert analytic_input_delay_bound(scheme, "m_BolusReq") == 490
        assert analytic_output_delay_bound(scheme,
                                           "c_StartInfusion") == 440

    def test_is1_example_scheme(self):
        scheme = example_is1_scheme()
        assert scheme.invocation.period == 100
        assert scheme.io_input_spec("m_BolusReq").buffer_size == 5

    def test_controller_generates(self, pim):
        controller = build_controller(pim.m,
                                      constants=pim.network.constants)
        assert controller.location == "Idle"
        result = controller.step(0.0, ["m_BolusReq"])
        assert result.consumed == ["m_BolusReq"]
        assert controller.location == "BolusRequested"
        # Priming takes at least 250ms.
        assert controller.step(100.0, []).outputs == []
        assert controller.step(300.0, []).outputs == ["c_StartInfusion"]

    def test_controller_full_cycle_with_empty_syringe(self, pim):
        controller = build_controller(pim.m,
                                      constants=pim.network.constants)
        controller.step(0.0, ["m_BolusReq"])
        controller.step(300.0, [])              # start infusion
        result = controller.step(700.0, ["m_EmptySyringe"])
        assert result.consumed == ["m_EmptySyringe"]
        # Stop and alarm chain within the same run-to-completion pass
        # (neither edge carries a lower clock bound).
        assert result.outputs == ["c_StopInfusion", "c_Alarm"]
        assert controller.location == "Idle"
