"""Tests for the UPPAAL XML export."""

import xml.etree.ElementTree as ET

from repro.apps.infusion import build_infusion_pim
from repro.core.transform import transform
from repro.ta.uppaal import network_to_uppaal_xml

from tests.conftest import build_tiny_pim, build_tiny_scheme


def parse(xml_text: str) -> ET.Element:
    # Strip the DOCTYPE for ElementTree.
    body = xml_text.split("?>", 1)[1]
    body = body.split(">", 1)[1] if body.startswith("<!DOCTYPE") else body
    return ET.fromstring(body)


class TestExport:
    def test_well_formed_xml(self):
        xml_text = network_to_uppaal_xml(build_tiny_pim().network)
        root = parse(xml_text)
        assert root.tag == "nta"

    def test_templates_locations_transitions(self):
        pim = build_tiny_pim()
        root = parse(network_to_uppaal_xml(pim.network))
        templates = root.findall("template")
        assert [t.findtext("name") for t in templates] == ["M", "ENV"]
        m = templates[0]
        names = [loc.findtext("name") for loc in m.findall("location")]
        assert names == ["Idle", "Busy"]
        assert len(m.findall("transition")) == 2

    def test_labels_present(self):
        pim = build_tiny_pim()
        root = parse(network_to_uppaal_xml(pim.network))
        m = root.findall("template")[0]
        labels = {label.get("kind"): label.text
                  for transition in m.findall("transition")
                  for label in transition.findall("label")}
        assert labels["synchronisation"] in ("m_Req?", "c_Ack!")
        assert "x" in labels["guard"]
        invariants = [label.text for loc in m.findall("location")
                      for label in loc.findall("label")
                      if label.get("kind") == "invariant"]
        assert invariants == ["x <= 10"]

    def test_declarations_cover_everything(self):
        psm = transform(build_tiny_pim(), build_tiny_scheme())
        root = parse(network_to_uppaal_xml(psm.network))
        decl = root.findtext("declaration")
        assert "chan m_Req;" in decl
        assert "urgent chan upick_o_Ack;" in decl
        assert "int[0,2] cnt_i_Req = 0;" in decl
        assert "clock mio_x;" in decl
        assert "const int PRIME = 4;" in decl

    def test_urgent_committed_flags(self):
        psm = transform(build_tiny_pim(), build_tiny_scheme())
        root = parse(network_to_uppaal_xml(psm.network))
        exeio = next(t for t in root.findall("template")
                     if t.findtext("name") == "EXEIO")
        flags = set()
        for loc in exeio.findall("location"):
            if loc.find("urgent") is not None:
                flags.add("urgent")
            if loc.find("committed") is not None:
                flags.add("committed")
        assert flags == {"urgent", "committed"}

    def test_system_line(self):
        pim = build_infusion_pim()
        xml_text = network_to_uppaal_xml(pim.network)
        assert "system M, ENV;" in xml_text

    def test_initial_marked(self):
        root = parse(network_to_uppaal_xml(build_tiny_pim().network))
        m = root.findall("template")[0]
        init_ref = m.find("init").get("ref")
        idle_id = next(loc.get("id") for loc in m.findall("location")
                       if loc.findtext("name") == "Idle")
        assert init_ref == idle_id
