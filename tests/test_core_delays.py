"""Tests for the Section-V delay analysis (Lemmas 1 and 2).

The central soundness property: the analytic Lemma-1 bounds must
dominate the exact suprema measured by model checking the PSM, for
every mechanism combination.
"""

import pytest

from repro.core.delays import (
    analytic_input_delay_bound,
    analytic_output_delay_bound,
    derive_bounds,
    internal_delay,
    relaxed_deadline,
    symbolic_input_delay,
    symbolic_mc_delay,
    symbolic_output_delay,
)
from repro.core.scheme import InvocationKind, ReadMechanism
from repro.core.transform import transform

from tests.conftest import build_tiny_pim, build_tiny_scheme


class TestLemma1Analytic:
    def test_interrupt_periodic(self):
        scheme = build_tiny_scheme(period=5)
        # detection delay_max 2 + period 5
        assert analytic_input_delay_bound(scheme, "m_Req") == 7

    def test_polling_periodic(self):
        scheme = build_tiny_scheme(
            input_mechanism=ReadMechanism.POLLING, polling_interval=6)
        # poll 6 + delay_max 2 + period 5
        assert analytic_input_delay_bound(scheme, "m_Req") == 13

    def test_output_event_driven(self):
        scheme = build_tiny_scheme(wcet=1)
        # wcet 1 + pickup delay_max 2
        assert analytic_output_delay_bound(scheme, "c_Ack") == 3

    def test_aperiodic_input(self):
        scheme = build_tiny_scheme(
            invocation_kind=InvocationKind.APERIODIC)
        # delay_max 2 + latency_max 2 + min_separation 1
        assert analytic_input_delay_bound(scheme, "m_Req") == 5

    def test_lemma2_sum(self):
        assert relaxed_deadline(490, 440, 500) == 1430


class TestInternalDelay:
    def test_tiny_pim_internal_is_deadline(self):
        bound = internal_delay(build_tiny_pim(), "m_Req", "c_Ack")
        assert bound.bounded and bound.sup == 10

    def test_derive_bounds_packages_lemma2(self):
        pim = build_tiny_pim()
        scheme = build_tiny_scheme()
        bounds = derive_bounds(pim, scheme, "m_Req", "c_Ack")
        assert bounds.input_bound == 7
        assert bounds.output_bound == 3
        assert bounds.internal_bound == 10
        assert bounds.relaxed == 20
        assert "Δ'_mc=20ms" in bounds.summary()


class TestLemma1Soundness:
    """Analytic bound ≥ model-checked supremum, per mechanism."""

    @pytest.mark.parametrize("kwargs", [
        {},                                                # base
        {"period": 3},                                     # fast ticks
        {"buffer_size": 1},                                # tight buffer
        {"input_mechanism": ReadMechanism.POLLING,
         "polling_interval": 6},                           # polled input
    ], ids=["base", "fast-period", "buffer-1", "polled"])
    def test_input_delay(self, kwargs):
        pim = build_tiny_pim()
        scheme = build_tiny_scheme(**kwargs)
        psm = transform(pim, scheme)
        analytic = analytic_input_delay_bound(scheme, "m_Req")
        symbolic = symbolic_input_delay(psm, "m_Req")
        assert symbolic.bounded
        assert symbolic.sup <= analytic, \
            f"Lemma 1 unsound: sup {symbolic.sup} > bound {analytic}"

    def test_output_delay(self):
        pim = build_tiny_pim()
        scheme = build_tiny_scheme()
        psm = transform(pim, scheme)
        analytic = analytic_output_delay_bound(scheme, "c_Ack")
        symbolic = symbolic_output_delay(psm, "c_Ack")
        assert symbolic.bounded
        assert symbolic.sup <= analytic

    def test_lemma2_end_to_end(self):
        pim = build_tiny_pim()
        scheme = build_tiny_scheme()
        psm = transform(pim, scheme)
        bounds = derive_bounds(pim, scheme, "m_Req", "c_Ack")
        mc = symbolic_mc_delay(psm, "m_Req", "c_Ack")
        assert mc.bounded
        assert mc.sup <= bounds.relaxed, \
            f"Lemma 2 unsound: sup {mc.sup} > Δ' {bounds.relaxed}"

    def test_symbolic_tightness(self):
        # The sup should not be wildly below the analytic bound either
        # (sanity that the query measures the right thing): within the
        # tiny model the M-C sup reaches at least the internal bound.
        pim = build_tiny_pim()
        scheme = build_tiny_scheme()
        psm = transform(pim, scheme)
        mc = symbolic_mc_delay(psm, "m_Req", "c_Ack")
        assert mc.sup >= 10
