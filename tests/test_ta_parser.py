"""Unit tests for the label parser (guards, invariants, updates)."""

import pytest

from repro.ta.clocks import Assignment, ClockCopy, ClockReset
from repro.ta.parser import (
    ParseError,
    parse_expression,
    parse_guard,
    parse_invariant,
    parse_update,
    tokenize,
)

CLOCKS = ("x", "y")
CONSTS = {"N": 5, "CAP": 3}


class TestTokenizer:
    def test_basic(self):
        assert tokenize("x >= 250 && cnt < N") == \
            ["x", ">=", "250", "&&", "cnt", "<", "N"]

    def test_two_char_operators(self):
        assert tokenize("a<=b>=c==d!=e&&f||g") == \
            ["a", "<=", "b", ">=", "c", "==", "d", "!=", "e", "&&",
             "f", "||", "g"]

    def test_dotted_identifiers(self):
        assert tokenize("M.x + env.ex") == ["M.x", "+", "env.ex"]

    def test_rejects_junk(self):
        with pytest.raises(ParseError, match="unexpected character"):
            tokenize("a @ b")


class TestExpressions:
    def test_precedence(self):
        assert parse_expression("2 + 3 * 4").eval({}) == 14
        assert parse_expression("(2 + 3) * 4").eval({}) == 20

    def test_comparison_binds_tighter_than_and(self):
        expr = parse_expression("1 < 2 && 3 < 4")
        assert expr.eval({}) == 1

    def test_unary_minus(self):
        assert parse_expression("-3 + 5").eval({}) == 2

    def test_true_false_literals(self):
        assert parse_expression("true").eval({}) == 1
        assert parse_expression("false").eval({}) == 0

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_expression("1 + 2 3")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("(1 + 2")


class TestGuards:
    def test_empty_guard_is_trivial(self):
        assert parse_guard(None).is_trivial()
        assert parse_guard("   ").is_trivial()

    def test_single_clock_atom(self):
        guard = parse_guard("x >= 250", CLOCKS)
        assert len(guard.clock_constraints) == 1
        atom = guard.clock_constraints[0]
        assert (atom.clock, atom.op, atom.bound) == ("x", ">=", 250)

    def test_flipped_atom(self):
        guard = parse_guard("250 <= x", CLOCKS)
        atom = guard.clock_constraints[0]
        assert (atom.clock, atom.op, atom.bound) == ("x", ">=", 250)

    def test_diagonal_atom(self):
        guard = parse_guard("x - y < 7", CLOCKS)
        atom = guard.clock_constraints[0]
        assert (atom.clock, atom.other, atom.op, atom.bound) == \
            ("x", "y", "<", 7)

    def test_constant_folded_bound(self):
        guard = parse_guard("x <= N + 2", CLOCKS, CONSTS)
        assert guard.clock_constraints[0].bound == 7

    def test_mixed_guard_splits(self):
        guard = parse_guard("x >= 1 && cnt < CAP && y <= N",
                            CLOCKS, CONSTS)
        assert len(guard.clock_constraints) == 2
        assert guard.data_holds({"cnt": 2})
        assert not guard.data_holds({"cnt": 3})

    def test_equality_atom(self):
        guard = parse_guard("x == 5", CLOCKS)
        assert guard.clock_constraints[0].op == "=="

    def test_unfoldable_bound_rejected(self):
        with pytest.raises(ParseError, match="does not fold"):
            parse_guard("x <= cnt", CLOCKS)

    def test_clock_disequality_rejected(self):
        with pytest.raises(ParseError, match="not allowed on clocks"):
            parse_guard("x != 3", CLOCKS)

    def test_clock_in_disjunction_rejected(self):
        with pytest.raises(ParseError):
            parse_guard("x > 1 || cnt > 0", CLOCKS)

    def test_clock_arithmetic_rejected(self):
        with pytest.raises(ParseError, match="unsupported clock atom"):
            parse_guard("x + y < 5", CLOCKS)

    def test_pure_data_guard(self):
        guard = parse_guard("cnt > 0 && flag == 1")
        assert not guard.clock_constraints
        assert guard.data_holds({"cnt": 1, "flag": 1})


class TestInvariants:
    def test_upper_bound(self):
        atoms = parse_invariant("x <= 500", CLOCKS)
        assert atoms[0].op == "<="
        assert atoms[0].bound == 500

    def test_conjunction(self):
        atoms = parse_invariant("x <= 500 && y <= N", CLOCKS, CONSTS)
        assert len(atoms) == 2

    def test_empty(self):
        assert parse_invariant(None, CLOCKS) == ()

    def test_data_conjunct_rejected(self):
        with pytest.raises(ParseError, match="non-clock"):
            parse_invariant("x <= 5 && cnt > 0", CLOCKS)


class TestUpdates:
    def test_clock_reset(self):
        update = parse_update("x = 0", CLOCKS)
        assert update.actions == (ClockReset(clock="x", value=0),)

    def test_clock_reset_to_constant(self):
        update = parse_update("x = N", CLOCKS, CONSTS)
        assert update.actions == (ClockReset(clock="x", value=5),)

    def test_clock_copy(self):
        update = parse_update("x = y", CLOCKS)
        assert update.actions == (ClockCopy(clock="x", source="y"),)

    def test_variable_assignment(self):
        update = parse_update("cnt = cnt + 1", CLOCKS)
        action = update.actions[0]
        assert isinstance(action, Assignment)
        assert action.expr.eval({"cnt": 2}) == 3

    def test_mixed_sequence_order(self):
        update = parse_update("x = 0, cnt = cnt + 1; flag = 0", CLOCKS)
        kinds = [type(a).__name__ for a in update.actions]
        assert kinds == ["ClockReset", "Assignment", "Assignment"]

    def test_sequential_semantics(self):
        update = parse_update("a = 1, b = a + 1", CLOCKS)
        env = {"a": 0, "b": 0}
        update.apply_data(env)
        assert env == {"a": 1, "b": 2}

    def test_walrus_style_assign(self):
        update = parse_update("cnt := 2", CLOCKS)
        assert isinstance(update.actions[0], Assignment)

    def test_negative_clock_value_rejected(self):
        with pytest.raises(ParseError, match="negative"):
            parse_update("x = 0 - 5", CLOCKS)

    def test_malformed_statement_rejected(self):
        with pytest.raises(ParseError, match="form"):
            parse_update("x + 1", CLOCKS)

    def test_empty(self):
        assert parse_update(None, CLOCKS).is_empty()
        assert parse_update(" ", CLOCKS).is_empty()

    def test_parenthesized_commas_not_split(self):
        update = parse_update("a = (1 + 2), b = 3", CLOCKS)
        assert len(update.actions) == 2
