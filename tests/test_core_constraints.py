"""Tests for the four Section-V constraints: each must pass on a sane
scheme and fail on a scheme engineered to violate exactly it."""

import pytest

from repro.core.constraints import (
    check_all_constraints,
    check_constraint1,
    check_constraint2,
    check_constraint3,
    check_constraint4,
    check_progress,
)
from repro.core.pim import PIM
from repro.core.scheme import ReadMechanism, ReadPolicy
from repro.core.transform import transform
from repro.ta.builder import NetworkBuilder

from tests.conftest import build_tiny_pim, build_tiny_scheme



def double_press_pim(gap: int = 2) -> PIM:
    """Environment that presses twice, ``gap`` apart, without awaiting
    the ack — the stressor for Constraints 1, 2 and 4."""
    net = NetworkBuilder("double", constants={"PRIME": 4,
                                              "DEADLINE": 10})
    net.channel("m_Req")
    net.channel("c_Ack")
    m = net.automaton("M", clocks=["x"])
    m.location("Idle", initial=True)
    m.location("Busy", invariant="x <= DEADLINE")
    m.edge("Idle", "Busy", sync="m_Req?", update="x = 0")
    m.edge("Busy", "Idle", guard="x >= PRIME", sync="c_Ack!",
           update="x = 0")
    env = net.automaton("ENV", clocks=["ex"])
    env.location("Go", initial=True)
    env.location("Go2")
    env.location("Quiet")
    env.edge("Go", "Go2", guard=f"ex >= {gap}", sync="m_Req!",
             update="ex = 0")
    env.edge("Go2", "Quiet", guard=f"ex >= {gap}", sync="m_Req!",
             update="ex = 0")
    env.edge("Quiet", "Quiet", sync="c_Ack?")
    return PIM(network=net.build(), controller="M", environment="ENV")


@pytest.fixture(scope="module")
def good_psm():
    return transform(build_tiny_pim(), build_tiny_scheme())


class TestHappyPath:
    def test_all_constraints_hold(self, good_psm):
        report = check_all_constraints(good_psm)
        assert report.all_hold, report.summary()
        assert len(report.results) == 4
        assert "bounded" in report.summary()

    def test_progress_holds(self, good_psm):
        assert check_progress(good_psm).holds

    def test_individual_checks_agree_with_single_pass(self, good_psm):
        assert check_constraint1(good_psm).holds
        assert check_constraint2(good_psm).holds
        assert check_constraint3(good_psm).holds
        assert check_constraint4(good_psm).holds

    def test_multi_pass_mode(self, good_psm):
        report = check_all_constraints(good_psm, single_pass=False)
        assert report.all_hold


class TestConstraint1Violation:
    def test_slow_polling_misses_signals(self):
        # Two presses 2ms apart against a 12ms poll: the second press
        # overwrites the latch before the first sample — a miss.
        pim = double_press_pim(gap=2)
        scheme = build_tiny_scheme(
            input_mechanism=ReadMechanism.POLLING, polling_interval=12)
        psm = transform(pim, scheme)
        result = check_constraint1(psm)
        assert not result.holds

    def test_fast_polling_catches_both(self):
        # Presses 20ms apart against a 4ms poll: both sampled.
        pim = double_press_pim(gap=20)
        scheme = build_tiny_scheme(
            input_mechanism=ReadMechanism.POLLING, polling_interval=4)
        psm = transform(pim, scheme)
        assert check_constraint1(psm).holds

    def test_analytic_interarrival_check(self, good_psm):
        # Device worst case (2ms) vs claimed min inter-arrival 1ms.
        result = check_constraint1(good_psm, min_interarrival_ms=1)
        assert not result.holds
        assert "slower" in result.detail
        # Generous inter-arrival passes.
        assert check_constraint1(good_psm,
                                 min_interarrival_ms=1000).holds

    def test_single_pass_analytic_half(self):
        psm = transform(build_tiny_pim(), build_tiny_scheme())
        report = check_all_constraints(psm, min_interarrival_ms=1)
        assert not report.results[0].holds


class TestConstraint2Violation:
    def test_tiny_buffer_with_slow_invocation(self):
        # Requests every ~15ms; invocation drains only every 50ms with
        # a buffer of one: the second request of a cycle overflows.
        pim = build_tiny_pim(think=2, deadline=30)
        scheme = build_tiny_scheme(buffer_size=1, period=50, wcet=1)
        psm = transform(pim, scheme)
        result = check_constraint2(psm)
        # The env waits for the ack before re-pressing, so a single
        # outstanding request cannot overflow even a size-1 buffer —
        # constraint holds here...
        assert result.holds

    def test_overflow_with_bursty_environment(self):
        # ...but an environment that can press twice without awaiting
        # the ack does overflow a size-1 buffer.
        pim = double_press_pim(gap=2)
        scheme = build_tiny_scheme(buffer_size=1, period=50)
        psm = transform(pim, scheme)
        assert not check_constraint2(psm).holds


class TestConstraint3Violation:
    def test_output_burst_overflows(self):
        # M emits three outputs back-to-back per request into a
        # size-1 output buffer; the write stage overflows.
        net = NetworkBuilder("chatty")
        net.channel("m_Req")
        net.channel("c_Ack")
        m = net.automaton("M")
        m.location("Idle", initial=True)
        m.location("S1")
        m.location("S2")
        m.location("S3")
        m.edge("Idle", "S1", sync="m_Req?")
        m.edge("S1", "S2", sync="c_Ack!")
        m.edge("S2", "S3", sync="c_Ack!")
        m.edge("S3", "Idle", sync="c_Ack!")
        env = net.automaton("ENV", clocks=["ex"])
        env.location("Go", initial=True)
        env.location("Wait")
        env.edge("Go", "Wait", guard="ex >= 10", sync="m_Req!",
                 update="ex = 0")
        env.edge("Wait", "Go", sync="c_Ack?", update="ex = 0")
        env.edge("Wait", "Wait", sync="c_Ack?")
        pim = PIM(network=net.build(), controller="M",
                  environment="ENV")
        scheme = build_tiny_scheme(buffer_size=1)
        psm = transform(pim, scheme)
        result = check_constraint3(psm)
        assert not result.holds


class TestConstraint4Violation:
    def test_read_all_drops_unconsumable_second_request(self):
        # Environment presses twice before the ack; M consumes one
        # (Idle→Busy) — the second pops under read-all while MIO is
        # Busy and is dropped by the code.
        pim = double_press_pim(gap=1)
        psm = transform(pim, build_tiny_scheme(buffer_size=3))
        result = check_constraint4(psm)
        assert not result.holds

    def test_case_report_summary_mentions_remark1(self):
        pim = double_press_pim(gap=2)
        scheme = build_tiny_scheme(
            input_mechanism=ReadMechanism.POLLING, polling_interval=12)
        psm = transform(pim, scheme)
        report = check_all_constraints(psm)
        assert not report.all_hold
        assert "Remark 1" in report.summary()
