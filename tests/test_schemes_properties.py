"""Property-based tests (hypothesis) for scheme grids and Lemma 1.

Two families:

* **Grid algebra** — :func:`repro.apps.schemes.scheme_grid` over
  random axis sets always yields the full cartesian product of
  *validated* schemes with unique, self-describing names, in a
  deterministic order (the portfolio's job order).
* **Bound monotonicity** — the Lemma-1 derived bounds are monotone in
  the platform's slack parameters: a longer polling interval or a
  longer period (or aperiodic scheduling latency) can only increase
  the verified Input-Delay bound and hence the Lemma-2 relaxed
  deadline.  This is the design-space sweep's sanity law: walking a
  grid axis toward a slower platform never *shrinks* the bound the
  portfolio reports.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.schemes import GridSpec, case_study_scheme, scheme_grid
from repro.core.delays import (
    analytic_input_delay_bound,
    analytic_output_delay_bound,
    relaxed_deadline,
)
from repro.core.scheme import InvocationKind

from tests.conftest import build_tiny_scheme

# The case-study factory's validity envelope: period must cover the
# wcet of 10 ms; polling intervals just need to be positive.
periods = st.integers(min_value=10, max_value=2_000)
polls = st.integers(min_value=1, max_value=2_000)
buffers = st.integers(min_value=1, max_value=8)
kinds = st.sampled_from([InvocationKind.PERIODIC,
                         InvocationKind.APERIODIC])

axis = dict(min_size=1, max_size=3, unique=True)


# ----------------------------------------------------------------------
# scheme_grid algebra
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(st.lists(buffers, **axis), st.lists(periods, **axis),
       st.lists(polls, **axis), kinds)
def test_grid_is_full_validated_product(bufs, pers, poll_values, kind):
    grid = scheme_grid(case_study_scheme,
                       buffer_size=bufs, period=pers,
                       bolus_poll=poll_values, invocation_kind=[kind])
    assert len(grid) == len(bufs) * len(pers) * len(poll_values)
    names = [scheme.name for scheme in grid]
    assert len(set(names)) == len(names)
    for scheme in grid:
        # The factory validates; re-validating must be a no-op.
        assert scheme.validate() is scheme
        assert scheme.name.startswith("IS1-case-study[")
        assert f"invocation_kind={kind.value}" in scheme.name


@settings(max_examples=25, deadline=None)
@given(st.lists(buffers, **axis), st.lists(periods, **axis))
def test_grid_order_is_deterministic(bufs, pers):
    once = scheme_grid(case_study_scheme, buffer_size=bufs,
                       period=pers)
    again = scheme_grid(case_study_scheme, buffer_size=bufs,
                        period=pers)
    assert [s.name for s in once] == [s.name for s in again]
    # Last axis varies fastest (itertools.product order).
    assert [s.name for s in once] == [
        f"IS1-case-study[buffer_size={b},period={p}]"
        for b in bufs for p in pers
    ]


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=4), **axis),
       st.lists(st.integers(min_value=2, max_value=9), **axis))
def test_grid_works_with_any_factory(bufs, pers):
    grid = scheme_grid(build_tiny_scheme, buffer_size=bufs,
                       period=pers)
    assert len(grid) == len(bufs) * len(pers)
    for scheme in grid:
        assert scheme.name.startswith("tiny-scheme[")
        assert scheme.validate() is scheme


# ----------------------------------------------------------------------
# Lemma-1 bound monotonicity along grid axes
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(polls, polls, periods, kinds)
def test_input_bound_monotone_in_polling_interval(poll_a, poll_b,
                                                  period, kind):
    lo, hi = sorted((poll_a, poll_b))
    bound = {
        poll: analytic_input_delay_bound(
            case_study_scheme(bolus_poll=poll, period=period,
                              invocation_kind=kind),
            "m_BolusReq")
        for poll in (lo, hi)
    }
    assert bound[lo] <= bound[hi]
    # The polling term enters the Lemma-1 sum exactly linearly.
    assert bound[hi] - bound[lo] == hi - lo


@settings(max_examples=60, deadline=None)
@given(periods, periods, polls, kinds)
def test_input_bound_monotone_in_period(period_a, period_b, poll,
                                        kind):
    lo, hi = sorted((period_a, period_b))
    bound = {
        period: analytic_input_delay_bound(
            case_study_scheme(period=period, bolus_poll=poll,
                              invocation_kind=kind),
            "m_BolusReq")
        for period in (lo, hi)
    }
    assert bound[lo] <= bound[hi]


@settings(max_examples=40, deadline=None)
@given(periods, periods, polls, polls,
       st.integers(min_value=0, max_value=1_000), kinds)
def test_relaxed_deadline_monotone_along_both_axes(
        period_a, period_b, poll_a, poll_b, internal, kind):
    """Lemma 2 inherits monotonicity from its Lemma-1 summands."""
    period_lo, period_hi = sorted((period_a, period_b))
    poll_lo, poll_hi = sorted((poll_a, poll_b))

    def relaxed(period: int, poll: int) -> int:
        scheme = case_study_scheme(period=period, bolus_poll=poll,
                                   invocation_kind=kind)
        return relaxed_deadline(
            analytic_input_delay_bound(scheme, "m_BolusReq"),
            analytic_output_delay_bound(scheme, "c_StartInfusion"),
            internal)

    assert relaxed(period_lo, poll_lo) <= relaxed(period_lo, poll_hi)
    assert relaxed(period_lo, poll_lo) <= relaxed(period_hi, poll_lo)
    assert relaxed(period_lo, poll_lo) <= relaxed(period_hi, poll_hi)


@settings(max_examples=40, deadline=None)
@given(st.lists(polls, min_size=2, max_size=4, unique=True), periods)
def test_grid_rows_sorted_by_poll_sort_by_input_bound(poll_values,
                                                      period):
    """Along a grid's polling axis the bound sequence is co-monotone."""
    grid = scheme_grid(case_study_scheme, period=[period],
                       bolus_poll=sorted(poll_values))
    bounds = [analytic_input_delay_bound(scheme, "m_BolusReq")
              for scheme in grid]
    assert bounds == sorted(bounds)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=6), min_size=1,
                max_size=3, unique=True),
       st.lists(st.integers(min_value=3, max_value=8), min_size=1,
                max_size=3, unique=True))
def test_grid_spec_roundtrips_through_pickle(bufs, pers):
    """A GridSpec expands to the same named schemes before and after
    crossing a (simulated) process boundary — the property the
    portfolio's process executor and the CI scaling job rely on."""
    import pickle

    spec = GridSpec.of(build_tiny_scheme, buffer_size=bufs,
                       period=pers)
    assert len(spec) == len(bufs) * len(pers)
    shipped = pickle.loads(pickle.dumps(spec))
    assert shipped == spec
    local = [s.name for s in spec.build()]
    remote = [s.name for s in shipped.build()]
    direct = [s.name for s in scheme_grid(build_tiny_scheme,
                                          buffer_size=bufs,
                                          period=pers)]
    assert local == remote == direct
