"""Cross-stack integration: the framework's verified bounds must
dominate the simulated implementation's measured delays (Theorem 1's
empirical face), across schemes and seeds."""

import pytest

from repro.analysis.delays import pair_requests
from repro.analysis.stats import summarize
from repro.codegen import build_controller
from repro.core.delays import derive_bounds, symbolic_mc_delay
from repro.core.framework import TimingVerificationFramework
from repro.core.scheme import ReadMechanism, ReadPolicy
from repro.core.transform import transform
from repro.envs import ClosedLoopRequester
from repro.platforms import ImplementedSystem

from tests.conftest import build_tiny_pim, build_tiny_scheme


def run_trials(pim, scheme, *, trials=15, seed=0,
               think=(20, 40)) -> list:
    controller = build_controller(pim.m, constants=pim.network.constants)
    system = ImplementedSystem(controller, scheme, pim.input_channels(),
                               pim.output_channels(), seed=seed)
    requester = ClosedLoopRequester(system, "m_Req", "c_Ack",
                                    count=trials, think_ms=think,
                                    timeout_ms=500, first_press_ms=5)
    system.start()
    requester.start()
    system.run_for(trials * 600 + 1000)
    assert requester.responses_seen == trials
    return pair_requests(system.trace, "m_Req", "c_Ack")


class TestMeasuredBelowVerified:
    """The headline of Table I, on the tiny model."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_interrupt_scheme(self, seed):
        pim = build_tiny_pim()
        scheme = build_tiny_scheme()
        bounds = derive_bounds(pim, scheme, "m_Req", "c_Ack")
        timings = run_trials(pim, scheme, seed=seed)
        for timing in timings:
            assert timing.completed
            assert timing.input_delay <= bounds.input_bound
            assert timing.output_delay <= bounds.output_bound
            assert timing.mc_delay <= bounds.relaxed

    def test_polling_scheme(self):
        pim = build_tiny_pim(think=30)
        scheme = build_tiny_scheme(
            input_mechanism=ReadMechanism.POLLING, polling_interval=6)
        bounds = derive_bounds(pim, scheme, "m_Req", "c_Ack")
        timings = run_trials(pim, scheme, seed=7, think=(30, 60))
        for timing in timings:
            assert timing.completed
            assert timing.input_delay <= bounds.input_bound
            assert timing.mc_delay <= bounds.relaxed

    def test_read_one_scheme(self):
        pim = build_tiny_pim()
        scheme = build_tiny_scheme(read_policy=ReadPolicy.READ_ONE)
        bounds = derive_bounds(pim, scheme, "m_Req", "c_Ack")
        timings = run_trials(pim, scheme, seed=11)
        for timing in timings:
            assert timing.mc_delay <= bounds.relaxed

    def test_symbolic_sup_also_dominates_measurements(self):
        # The PSM's model-checked M-C sup is itself an upper envelope
        # of the simulation (the stronger, non-analytic form).
        pim = build_tiny_pim()
        scheme = build_tiny_scheme()
        psm = transform(pim, scheme)
        sup = symbolic_mc_delay(psm, "m_Req", "c_Ack")
        assert sup.bounded
        timings = run_trials(pim, scheme, seed=5)
        measured_max = max(t.mc_delay for t in timings)
        assert measured_max <= sup.sup


class TestFrameworkPipeline:
    def test_full_verify_on_tiny_model(self):
        pim = build_tiny_pim()
        scheme = build_tiny_scheme()
        framework = TimingVerificationFramework()
        report = framework.verify(
            pim, scheme, input_channel="m_Req", output_channel="c_Ack",
            deadline_ms=10, measure_suprema=True,
            include_progress=True)
        # PIM meets the 10ms deadline; the platform breaks it.
        assert report.pim_holds
        assert not report.psm_original_result.holds
        # Constraints hold, so Δ' = 7 + 3 + 10 = 20 and PSM meets it.
        assert report.constraints_hold
        assert report.relaxed_deadline_ms == 20
        assert report.psm_relaxed_result.holds
        assert report.implementation_guarantee
        # The suprema validate the Lemma-1 bounds.
        assert report.symbolic["Input-Delay"].sup <= 7
        assert report.symbolic["Output-Delay"].sup <= 3
        assert report.symbolic["M-C delay"].sup <= 20
        text = report.summary()
        assert "Theorem 1" in text

    def test_report_degrades_gracefully_on_violation(self):
        from tests.test_core_constraints import double_press_pim
        pim = double_press_pim(gap=2)
        scheme = build_tiny_scheme(buffer_size=1, period=50)
        framework = TimingVerificationFramework()
        report = framework.verify(
            pim, scheme, input_channel="m_Req", output_channel="c_Ack",
            deadline_ms=10)
        assert not report.constraints_hold
        assert not report.implementation_guarantee

    def test_measured_trace_statistics(self):
        pim = build_tiny_pim()
        scheme = build_tiny_scheme()
        timings = run_trials(pim, scheme, trials=10, seed=3)
        stats = summarize(t.mc_delay for t in timings)
        assert stats is not None and stats.count == 10
        assert stats.min <= stats.avg <= stats.max
