"""Setup for ``pip install -e .`` (no pyproject in this environment).

Core install is dependency-free.  Extras:

* ``test`` — the unit/property suite's stack: pytest plus hypothesis
  (``tests/test_properties.py``, ``tests/test_schemes_properties.py``).
  The suite also runs straight from a checkout with no install at all
  (the repo-root ``conftest.py`` wires up the ``src/`` layout).
* ``bench`` — the optional performance stack: numpy (vectorized zone
  backend, see ``repro.zones.backend``) and pytest-benchmark (the
  ``benchmarks/`` suite; ``benchmarks/conftest.py`` skips collection
  cleanly when the plugin is absent).
"""

from setuptools import find_packages, setup

setup(
    name="repro-timing",
    version="0.2.0",
    description="Platform-specific timing verification framework "
                "(DATE 2015 reproduction)",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    entry_points={
        "console_scripts": ["repro-timing = repro.cli:main"],
    },
    extras_require={
        "test": ["pytest", "hypothesis"],
        "bench": ["numpy", "pytest-benchmark"],
    },
)
