"""Legacy setup shim.

Metadata lives in pyproject.toml; this file only enables
``pip install -e .`` on environments whose setuptools predates
PEP 660 editable installs (no ``wheel`` package available).
"""

from setuptools import setup

setup()
