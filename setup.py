"""Setup for ``pip install -e .`` (no pyproject in this environment).

Core install is dependency-free.  Extras:

* ``test`` — the unit/property suite's stack: pytest plus hypothesis
  (``tests/test_properties.py``, ``tests/test_schemes_properties.py``).
  The suite also runs straight from a checkout with no install at all
  (the repo-root ``conftest.py`` wires up the ``src/`` layout).
* ``bench`` — the optional performance stack: numpy (vectorized zone
  backend, see ``repro.zones.backend``) and pytest-benchmark (the
  ``benchmarks/`` suite; ``benchmarks/conftest.py`` skips collection
  cleanly when the plugin is absent).
* ``native`` — the compiled DBM kernel's runtime dependency (numpy:
  :class:`repro.zones.dbm_native.NativeDBM` stores its matrix as an
  int64 array).  The C extension itself is built by this setup script.

The ``repro.zones._dbmkernel`` extension is marked ``optional``: a
missing C toolchain degrades the build to a warning and the package
falls back to the reference/numpy backends at runtime (the ``native``
backend simply drops out of ``available_backends()``).  Build it in
place for a source checkout with::

    python setup.py build_ext --inplace
"""

from setuptools import Extension, find_packages, setup

setup(
    name="repro-timing",
    version="0.3.0",
    description="Platform-specific timing verification framework "
                "(DATE 2015 reproduction)",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    ext_modules=[
        Extension(
            "repro.zones._dbmkernel",
            sources=["src/repro/zones/_dbmkernel.c"],
            optional=True,
        ),
    ],
    entry_points={
        "console_scripts": ["repro-timing = repro.cli:main"],
    },
    extras_require={
        "test": ["pytest", "hypothesis"],
        "bench": ["numpy", "pytest-benchmark"],
        "native": ["numpy"],
    },
)
