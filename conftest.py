"""Repo-root pytest bootstrap: make a clean checkout testable.

The package lives in a ``src/`` layout, so test runs used to need
``PYTHONPATH=src`` (and ``python -m pytest`` rather than ``pytest``,
for the ``tests.conftest`` helper imports).  This hook makes plain

    pytest -x -q

work from a fresh clone with no installation and no environment
setup: it prepends ``src/`` (the ``repro`` package) and the repo root
(the ``tests`` helper package) to ``sys.path`` before collection.
An installed ``repro`` distribution still wins only if it shadows the
checkout *after* these entries — i.e. the checkout is authoritative,
which is what a test run of this repository should mean.
"""

from __future__ import annotations

import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent

for _entry in (str(_ROOT), str(_ROOT / "src")):
    if _entry not in sys.path:
        sys.path.insert(0, _entry)
