"""Deterministic named random streams.

Every stochastic element of the platform simulation (ISR latency,
execution time, environment inter-arrival times, …) draws from its own
named stream, derived from one experiment seed.  Adding a new source
of randomness therefore never perturbs the draws of existing sources
— re-running an experiment with the same seed reproduces the paper's
"measured" rows bit-for-bit.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["RandomStreams"]


class RandomStreams:
    """A family of independent ``random.Random`` streams keyed by name."""

    def __init__(self, seed: int):
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name`` (created on first use)."""
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(
                int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def uniform_int(self, name: str, lo: int, hi: int) -> int:
        """One integer draw from U[lo, hi] on the named stream."""
        if hi < lo:
            raise ValueError(f"empty range [{lo}, {hi}]")
        return self.stream(name).randint(lo, hi)
