"""Discrete-event simulation engine.

A minimal, deterministic DES kernel: a priority queue of timestamped
callbacks with a monotone simulated clock.  Time is integer
**microseconds** so device jitter can be expressed exactly while the
model layer keeps thinking in milliseconds
(:func:`ms_to_us`/:func:`us_to_ms` convert at the boundary).

Determinism matters for reproducible "measured" rows in the paper's
Table I: events at the same instant fire in scheduling order (a
monotone sequence number breaks ties), and all randomness comes from
named, seeded streams (:mod:`repro.sim.rng`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "EventHandle",
    "Simulator",
    "SimulationError",
    "ms_to_us",
    "us_to_ms",
]


def ms_to_us(ms: float) -> int:
    """Milliseconds → integer microseconds."""
    return int(round(ms * 1000))


def us_to_ms(us: int) -> float:
    """Integer microseconds → float milliseconds."""
    return us / 1000.0


class SimulationError(Exception):
    """Raised on scheduling into the past or a corrupted event queue."""


@dataclass(order=True)
class _QueueEntry:
    time: int
    seq: int
    handle: "EventHandle" = field(compare=False)


class EventHandle:
    """Cancelable reference to a scheduled event."""

    __slots__ = ("callback", "label", "cancelled", "time")

    def __init__(self, callback: Callable[[], None], label: str,
                 time: int):
        self.callback = callback
        self.label = label
        self.cancelled = False
        self.time = time

    def cancel(self) -> None:
        self.cancelled = True


class Simulator:
    """Event queue + simulated clock.

    Typical use::

        sim = Simulator()
        sim.schedule(ms_to_us(5), lambda: print("fired at", sim.now))
        sim.run_until(ms_to_us(1000))
    """

    def __init__(self):
        self.now: int = 0
        self._queue: list[_QueueEntry] = []
        self._seq = 0
        self._events_fired = 0

    # ------------------------------------------------------------------
    def schedule(self, delay_us: int, callback: Callable[[], None],
                 label: str = "") -> EventHandle:
        """Schedule ``callback`` to fire ``delay_us`` from now."""
        if delay_us < 0:
            raise SimulationError(
                f"cannot schedule into the past (delay {delay_us})")
        return self.schedule_at(self.now + delay_us, callback, label)

    def schedule_at(self, time_us: int, callback: Callable[[], None],
                    label: str = "") -> EventHandle:
        """Schedule ``callback`` at the absolute instant ``time_us``."""
        if time_us < self.now:
            raise SimulationError(
                f"cannot schedule at {time_us} (now {self.now})")
        handle = EventHandle(callback, label, time_us)
        self._seq += 1
        heapq.heappush(self._queue, _QueueEntry(time_us, self._seq, handle))
        return handle

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event; False when the queue is empty."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            if entry.handle.cancelled:
                continue
            self.now = entry.time
            self._events_fired += 1
            entry.handle.callback()
            return True
        return False

    def run_until(self, t_end_us: int) -> None:
        """Fire all events up to and including ``t_end_us``."""
        while self._queue:
            entry = self._queue[0]
            if entry.time > t_end_us:
                break
            self.step()
        self.now = max(self.now, t_end_us)

    def run(self, max_events: int = 10_000_000) -> None:
        """Fire everything; guard against runaway self-scheduling."""
        fired = 0
        while self.step():
            fired += 1
            if fired >= max_events:
                raise SimulationError(
                    f"exceeded {max_events} events — runaway simulation?")

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        return sum(1 for e in self._queue if not e.handle.cancelled)

    @property
    def events_fired(self) -> int:
        return self._events_fired
