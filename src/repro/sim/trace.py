"""Timestamped event traces — the simulated oscilloscope.

The paper measures its implementation with an oscilloscope attached to
the pump's I/O pins.  The simulation equivalent is a
:class:`TraceRecorder` that components call at every boundary
crossing.  Event *kinds* name the probe points of Fig. 2-(a):

===========  ===========================================================
kind         meaning
===========  ===========================================================
``m``        environment raises a monitored variable (signal edge)
``sensed``   Input-Device notices the signal (ISR entry / poll hit)
``i_ready``  Input-Device finished processing; value crosses into i
``enq``      event enqueued into an io-boundary buffer
``deq``      event dequeued from an io-boundary buffer
``drop``     event lost (buffer overflow / shared-variable overwrite
             / missed poll)
``fault``    injected platform fault fired (message loss, replica
             vote, clock jitter, preemption)
``invoke``   Code(PIM) invocation starts
``i_read``   Code(PIM) consumed a processed input
``o_write``  Code(PIM) produced an output (written to the o side)
``o_pickup`` Output-Device picked the output up
``c``        environment observes the controlled variable (actuation)
===========  ===========================================================

Every record carries the channel, a correlation ``tag`` (request id;
``None`` for anonymous events like invocations) and free-form ``note``
text.  :mod:`repro.analysis.delays` pairs records into the paper's
M-C / Input / Output delays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.sim.engine import us_to_ms

__all__ = ["TraceEvent", "TraceRecorder", "EVENT_KINDS"]

EVENT_KINDS = (
    "m", "sensed", "i_ready", "enq", "deq", "drop", "fault",
    "invoke", "i_read", "o_write", "o_pickup", "c",
)


@dataclass(frozen=True)
class TraceEvent:
    """One probe record."""

    time_us: int
    kind: str
    channel: str
    tag: int | None = None
    note: str = ""

    @property
    def time_ms(self) -> float:
        return us_to_ms(self.time_us)

    def __str__(self) -> str:
        tag = f" #{self.tag}" if self.tag is not None else ""
        note = f" ({self.note})" if self.note else ""
        return f"{self.time_ms:10.3f}ms  {self.kind:<8} " \
               f"{self.channel}{tag}{note}"


class TraceRecorder:
    """Append-only event log with simple query helpers.

    Listeners registered with :meth:`add_listener` see every event as
    it is recorded — that is how a live conformance monitor
    (:mod:`repro.monitor`) rides along with a simulation run instead
    of replaying the log afterwards.
    """

    def __init__(self):
        self._events: list[TraceEvent] = []
        self._listeners: list = []

    def add_listener(self, listener) -> None:
        """Call ``listener(event)`` for every future record."""
        self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        self._listeners.remove(listener)

    def record(self, time_us: int, kind: str, channel: str,
               tag: int | None = None, note: str = "") -> None:
        if kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown trace kind {kind!r}; expected one of "
                f"{EVENT_KINDS}")
        event = TraceEvent(time_us, kind, channel, tag, note)
        self._events.append(event)
        for listener in self._listeners:
            listener(event)

    # ------------------------------------------------------------------
    def events(self, kind: str | None = None,
               channel: str | None = None,
               tag: int | None = None) -> list[TraceEvent]:
        """Filtered view (any combination of kind/channel/tag)."""
        found: Iterable[TraceEvent] = self._events
        if kind is not None:
            found = (e for e in found if e.kind == kind)
        if channel is not None:
            found = (e for e in found if e.channel == channel)
        if tag is not None:
            found = (e for e in found if e.tag == tag)
        return list(found)

    def first(self, kind: str, channel: str | None = None,
              tag: int | None = None) -> TraceEvent | None:
        for event in self._events:
            if event.kind != kind:
                continue
            if channel is not None and event.channel != channel:
                continue
            if tag is not None and event.tag != tag:
                continue
            return event
        return None

    def count(self, kind: str, channel: str | None = None) -> int:
        return len(self.events(kind=kind, channel=channel))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def tags(self, kind: str, channel: str | None = None) -> list[int]:
        """Correlation tags seen for a kind, in time order."""
        return [e.tag for e in self.events(kind=kind, channel=channel)
                if e.tag is not None]

    def render(self, *, max_events: int | None = None) -> str:
        """Oscilloscope-style text dump."""
        shown = self._events if max_events is None \
            else self._events[:max_events]
        lines = [str(e) for e in shown]
        if max_events is not None and len(self._events) > max_events:
            lines.append(f"... {len(self._events) - max_events} more")
        return "\n".join(lines)
