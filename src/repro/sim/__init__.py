"""Discrete-event simulation substrate (engine, RNG streams, traces)."""

from repro.sim.engine import (
    EventHandle,
    SimulationError,
    Simulator,
    ms_to_us,
    us_to_ms,
)
from repro.sim.rng import RandomStreams
from repro.sim.trace import EVENT_KINDS, TraceEvent, TraceRecorder

__all__ = [
    "EVENT_KINDS",
    "EventHandle",
    "RandomStreams",
    "SimulationError",
    "Simulator",
    "TraceEvent",
    "TraceRecorder",
    "ms_to_us",
    "us_to_ms",
]
