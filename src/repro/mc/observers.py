"""Response-time observers: bounded leads-to and maximum-delay queries.

The paper's properties all have the shape *"after input* ``m`` *fires,
output* ``c`` *follows within Δ"* (``P(Δ_mc)``).  We check them by
*instrumenting* the network rather than composing a separate observer
automaton: a fresh global clock ``w`` is reset on every edge that
**emits** the trigger channel, and a fresh flag ``tracking`` is set
there and cleared on every edge that emits the response channel.
Because the added clock and flag are never read by the original model,
the instrumentation is behavior-preserving — unlike the common
broadcast-tap encoding, it cannot accidentally unblock a binary
synchronization.

Semantics note: ``w`` measures the delay since the *most recent*
trigger.  For environments with one outstanding request (the paper's
REQ1 setting, and the paper's Constraint 1/4 assumptions) this equals
the per-request delay exactly.

Queries:

* :func:`check_bounded_response` — does ``trigger ⤳≤Δ response`` hold?
  (``E<> tracking ∧ w > Δ`` must be unreachable.)
* :func:`max_response_delay` — the exact supremum of the delay, found
  by iteratively raising the extrapolation ceiling until the sup lies
  strictly below it (then Extra_M is exact), or declaring the delay
  unbounded past ``cap``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.mc.parallel import make_explorer
from repro.mc.reachability import (
    ReachabilityResult,
    StateFormula,
    check_reachable,
)
from repro.mc.state import SymbolicState
from repro.ta.clocks import Assignment, ClockReset, Update
from repro.ta.expr import Const
from repro.ta.model import Automaton, ModelError, Network
from repro.ta.validate import validate
from repro.zones.bounds import INF, bound_value

__all__ = [
    "OBS_CLOCK",
    "OBS_FLAG",
    "instrument_response",
    "check_bounded_response",
    "max_response_delay",
    "DelayBound",
    "BoundedResponseResult",
]

OBS_CLOCK = "obs_w"
OBS_FLAG = "obs_tracking"


def instrument_response(
    network: Network,
    trigger: str,
    response: str,
    *,
    clock: str = OBS_CLOCK,
    flag: str = OBS_FLAG,
) -> Network:
    """A copy of ``network`` instrumented for trigger→response timing.

    Every ``trigger!`` edge additionally performs ``clock := 0,
    flag := 1``; every ``response!`` edge additionally performs
    ``flag := 0``.  The pair ``(clock, flag)`` must be fresh names.
    """
    if trigger == response:
        raise ModelError("trigger and response channels must differ")
    if not network.has_channel(trigger):
        raise ModelError(f"no channel {trigger!r} in {network.name!r}")
    if not network.has_channel(response):
        raise ModelError(f"no channel {response!r} in {network.name!r}")
    if clock in network.global_clocks:
        raise ModelError(f"observer clock {clock!r} already declared")
    if any(v.name == flag for v in network.variables):
        raise ModelError(f"observer flag {flag!r} already declared")

    trigger_seen = False
    response_seen = False
    new_automata: list[Automaton] = []
    for auto in network.automata:
        new_edges = []
        for edge in auto.edges:
            if edge.sync is not None and edge.sync.is_emit:
                if edge.sync.channel == trigger:
                    trigger_seen = True
                    extra = (ClockReset(clock=clock, value=0),
                             Assignment(var=flag, expr=Const(1)))
                    new_edges.append(replace(edge, update=Update(
                        actions=edge.update.actions + extra)))
                    continue
                if edge.sync.channel == response:
                    response_seen = True
                    extra = (Assignment(var=flag, expr=Const(0)),)
                    new_edges.append(replace(edge, update=Update(
                        actions=edge.update.actions + extra)))
                    continue
            new_edges.append(edge)
        new_automata.append(replace(auto, edges=tuple(new_edges)))

    if not trigger_seen:
        raise ModelError(
            f"no automaton emits trigger channel {trigger!r}")
    if not response_seen:
        raise ModelError(
            f"no automaton emits response channel {response!r}")

    from repro.ta.model import VariableDecl  # local to avoid cycle noise

    instrumented = Network(
        name=f"{network.name}+obs({trigger}->{response})",
        automata=tuple(new_automata),
        channels=network.channels,
        variables=network.variables + (
            VariableDecl(flag, init=0, lo=0, hi=1),),
        constants=dict(network.constants),
        global_clocks=network.global_clocks + (clock,),
    )
    return validate(instrumented)


@dataclass
class BoundedResponseResult:
    """Outcome of a ``P(Δ)`` bounded-response check."""

    holds: bool
    trigger: str
    response: str
    deadline: int
    visited: int
    counterexample: str | None = None
    trace: list[str] | None = None
    #: Successor computations performed before the verdict.
    transitions: int = 0

    def __bool__(self) -> bool:
        return self.holds

    def summary(self) -> str:
        status = "HOLDS" if self.holds else "VIOLATED"
        return (f"P({self.deadline}): {self.trigger} leads to "
                f"{self.response} within {self.deadline}: {status} "
                f"({self.visited} states)")


def check_bounded_response(
    network: Network,
    trigger: str,
    response: str,
    deadline: int,
    *,
    trace: bool = True,
    max_states: int = 1_000_000,
    zone_backend: str | None = None,
    lazy_subsumption: bool = False,
    jobs: int | None = None,
    abstraction: str | None = None,
) -> BoundedResponseResult:
    """Check ``P(Δ)``: after ``trigger``, ``response`` within ``deadline``.

    The property is violated exactly when a state with the tracking
    flag set and ``w > deadline`` is reachable (zones are delay-closed,
    so "time can pass the deadline while still awaiting the response"
    shows up directly).
    """
    instrumented = instrument_response(network, trigger, response)
    bad = StateFormula(
        data=f"{OBS_FLAG} == 1",
        clocks=f"{OBS_CLOCK} > {deadline}",
    )
    reach: ReachabilityResult = check_reachable(
        instrumented, bad, trace=trace,
        extra_max_constants={OBS_CLOCK: deadline + 1},
        free_clock_when_zero={OBS_FLAG: OBS_CLOCK},
        max_states=max_states,
        zone_backend=zone_backend,
        lazy_subsumption=lazy_subsumption,
        jobs=jobs, abstraction=abstraction)
    return BoundedResponseResult(
        holds=not reach.reachable,
        trigger=trigger,
        response=response,
        deadline=deadline,
        visited=reach.visited,
        counterexample=reach.witness,
        trace=reach.trace,
        transitions=reach.transitions,
    )


@dataclass
class DelayBound:
    """Result of a maximum-delay (sup) query."""

    bounded: bool
    #: Supremum of the delay in model time units (valid when bounded).
    sup: int = 0
    #: True when the supremum is attained (weak bound), False when it
    #: is a strict limit.
    attained: bool = True
    visited: int = 0
    #: Ceiling that proved the bound exact (diagnostics).
    ceiling: int = 0

    def __str__(self) -> str:
        if not self.bounded:
            return "unbounded"
        op = "max" if self.attained else "sup"
        return f"{op}={self.sup}"


def resolve_sup_step(best: int | None, ceiling: int, cap: int,
                     visited: int) -> tuple[DelayBound | None, int]:
    """One resolution step of the iterative-ceiling sup scheme.

    ``best`` is the largest encoded upper bound observed during a
    sweep run with extrapolation ceiling ``ceiling``.  Returns
    ``(result, next_ceiling)``: a final :class:`DelayBound` when the
    measurement is conclusive — never triggered (sup 0), exact
    (strictly below the ceiling, so Extra_M did not widen it), or
    unbounded past ``cap`` — else ``(None, 4 * ceiling)`` asking for
    a re-sweep.  The single implementation shared by
    :func:`max_response_delay`, :func:`repro.mc.queries.sup_clock`
    and :func:`repro.mc.queries.check_many`, so the three can never
    drift apart on cap/growth semantics.
    """
    if best is None:
        return DelayBound(bounded=True, sup=0, attained=True,
                          visited=visited, ceiling=ceiling), ceiling
    if best >= INF or bound_value(best) >= ceiling:
        if ceiling > cap:
            return DelayBound(bounded=False, visited=visited,
                              ceiling=ceiling), ceiling
        return None, ceiling * 4
    return DelayBound(
        bounded=True,
        sup=bound_value(best),
        attained=bool(best & 1),
        visited=visited,
        ceiling=ceiling,
    ), ceiling


def max_response_delay(
    network: Network,
    trigger: str,
    response: str,
    *,
    cap: int = 1 << 22,
    initial_ceiling: int | None = None,
    max_states: int = 1_000_000,
    zone_backend: str | None = None,
    jobs: int | None = None,
    abstraction: str | None = None,
) -> DelayBound:
    """Exact supremum of the trigger→response delay.

    Runs full exploration with the observer clock's extrapolation
    ceiling raised geometrically: when the measured sup lies strictly
    below the ceiling, extrapolation did not widen it and the value is
    exact.  Under Extra⁺_LU the ceiling floors only the observer
    clock's *lower* map — that is the side whose widening rule could
    invent values above the ceiling, so it alone keeps the
    upper-bound reading exact, while leaving the upper map free to
    erase the clock's lower-bound residue (see
    ``CompiledNetwork.__init__``).
    Returns ``bounded=False`` when the sup exceeds ``cap`` (the delay
    is unbounded or practically so — Remark 1 of the paper).
    """
    instrumented = instrument_response(network, trigger, response)
    ceiling = initial_ceiling or _default_ceiling(network)

    while True:
        explorer = make_explorer(
            instrumented, jobs=jobs,
            extra_max_constants={OBS_CLOCK: ceiling},
            free_clock_when_zero={OBS_FLAG: OBS_CLOCK},
            max_states=max_states,
            zone_backend=zone_backend,
            abstraction=abstraction)
        compiled = explorer.compiled
        flag_pos = compiled.var_pos(OBS_FLAG)
        clock_idx = compiled.clock_id_by_name(OBS_CLOCK)

        best = {"bound": None}  # encoded upper bound or None

        def visit(state: SymbolicState) -> None:
            if state.vals[flag_pos] != 1:
                return
            upper = state.zone.upper_bound(clock_idx)
            if best["bound"] is None or upper > best["bound"]:
                best["bound"] = upper

        result = explorer.explore(visit=visit)
        done, ceiling = resolve_sup_step(best["bound"], ceiling, cap,
                                         result.visited)
        if done is not None:
            return done


def _default_ceiling(network: Network) -> int:
    """Initial sup-query ceiling: above any single model constant."""
    largest = 64
    for value in network.constants.values():
        largest = max(largest, abs(int(value)))
    explorer_consts = []
    for auto in network.automata:
        for loc in auto.locations:
            explorer_consts.extend(c.bound for c in loc.invariant)
        for edge in auto.edges:
            explorer_consts.extend(
                c.bound for c in edge.guard.clock_constraints)
    for value in explorer_consts:
        largest = max(largest, abs(value))
    return 4 * largest
