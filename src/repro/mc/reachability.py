"""Reachability and safety checking (``E<> φ`` / ``A[] ¬φ``).

State formulas are conjunctions of three optional parts:

* ``locations`` — automaton → location name constraints,
* ``data`` — a boolean expression over variables/constants,
* ``clocks`` — a clock-constraint string over *display* clock names
  (see ``Network.clock_names``), satisfied when the state's zone
  intersects it.

This covers every property the paper needs: buffer-overflow safety
(location/flag reachability) and deadline violations (zone ∧ ``w > Δ``
non-empty at an observer location).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.mc.explorer import ExplorationResult
from repro.mc.parallel import make_explorer
from repro.mc.state import CompiledNetwork, SymbolicState, encode_constraint
from repro.ta.expr import Expr
from repro.ta.model import Network
from repro.ta.parser import parse_expression, parse_guard

__all__ = [
    "StateFormula",
    "ReachabilityResult",
    "check_reachable",
    "check_safety",
]


@dataclass(frozen=True)
class StateFormula:
    """Conjunction of location, data and clock conditions."""

    locations: Mapping[str, str] = field(default_factory=dict)
    data: str | Expr | None = None
    clocks: str | None = None

    def compile(self, compiled: CompiledNetwork) \
            -> Callable[[SymbolicState], bool]:
        """Build a fast predicate over symbolic states."""
        loc_tests: list[tuple[int, int]] = []
        for auto_name, loc_name in self.locations.items():
            a_idx = compiled.network.automaton_index(auto_name)
            loc_idx = compiled.loc_ids[a_idx][loc_name]
            loc_tests.append((a_idx, loc_idx))

        data_expr: Expr | None = None
        if self.data is not None:
            data_expr = (parse_expression(self.data)
                         if isinstance(self.data, str) else self.data)

        clock_ops: list[tuple[int, int, int]] = []
        if self.clocks is not None:
            name_ids = dict(compiled._name_to_clock)
            guard = parse_guard(self.clocks, tuple(name_ids),
                                compiled.constants)
            if not (guard.data.is_const() and guard.data.eval({}) == 1):
                raise ValueError(
                    f"clock condition {self.clocks!r} contains non-clock "
                    f"conjuncts")
            for atom in guard.clock_constraints:
                clock_ops.extend(encode_constraint(atom, name_ids))
                # Under Extra⁺_LU the formula's constants must floor
                # the bound maps — the constraint lives outside the
                # network, so the static analysis cannot see it.  Only
                # the side the atom tests is needed: ``x > c`` fails
                # spuriously only if the L-guarded rule invents larger
                # values, ``x < c`` only if the U-guarded rule invents
                # smaller ones (``==`` and difference atoms take both).
                sides = {"<": (False, True), "<=": (False, True),
                         ">": (True, False), ">=": (True, False),
                         "==": (True, True)}[atom.op]
                both = atom.other is not None
                for clock in atom.clocks():
                    compiled.raise_lu_floor(
                        name_ids[clock], abs(atom.bound),
                        lower=sides[0] or both,
                        upper=sides[1] or both)
            # Clocks the query reads must survive active-clock
            # reduction everywhere.
            compiled.protect_clocks(
                idx for op in clock_ops for idx in op[:2] if idx)

        # One reusable probe zone per compiled predicate: the zone part
        # of the formula is checked by constraining a scratch copy in
        # place (fused ops, no per-state allocation).
        probe_scratch: list = []

        def predicate(state: SymbolicState) -> bool:
            for a_idx, loc_idx in loc_tests:
                if state.locs[a_idx] != loc_idx:
                    return False
            if data_expr is not None:
                env = compiled.data_env(state.vals)
                if not data_expr.eval(env):
                    return False
            if clock_ops:
                if probe_scratch:
                    probe = probe_scratch[0].copy_from(state.zone)
                else:
                    probe = state.zone.copy()
                    probe_scratch.append(probe)
                if not probe.constrain_all(clock_ops):
                    return False
            return True

        return predicate

    def describe(self) -> str:
        parts = [f"{a}.{l}" for a, l in self.locations.items()]
        if self.data is not None:
            parts.append(str(self.data))
        if self.clocks is not None:
            parts.append(self.clocks)
        return " && ".join(parts) if parts else "true"


@dataclass
class ReachabilityResult:
    """Outcome of an ``E<> φ`` query."""

    reachable: bool
    formula: str
    visited: int
    witness: str | None = None
    trace: list[str] | None = None
    #: Successor computations performed before the verdict.
    transitions: int = 0

    def __bool__(self) -> bool:
        return self.reachable

    def summary(self) -> str:
        status = "REACHABLE" if self.reachable else "UNREACHABLE"
        return f"E<> {self.formula}: {status} ({self.visited} states)"


def check_reachable(
    network: Network,
    formula: StateFormula,
    *,
    trace: bool = True,
    extra_max_constants: Mapping[str, int] | None = None,
    max_states: int = 1_000_000,
    free_clock_when_zero: Mapping[str, str] | None = None,
    zone_backend: str | None = None,
    lazy_subsumption: bool = False,
    jobs: int | None = None,
    abstraction: str | None = None,
) -> ReachabilityResult:
    """Decide ``E<> formula`` by forward zone exploration.

    ``jobs`` routes the search through the sharded parallel explorer
    (identical states, tallies and traces — see
    :mod:`repro.mc.parallel`); ``abstraction`` selects the
    extrapolation operator (verdict-identical — see
    :mod:`repro.ta.bounds`).
    """
    explorer = make_explorer(
        network, jobs=jobs, trace=trace,
        extra_max_constants=extra_max_constants,
        max_states=max_states,
        free_clock_when_zero=free_clock_when_zero,
        zone_backend=zone_backend,
        lazy_subsumption=lazy_subsumption,
        abstraction=abstraction)
    predicate = formula.compile(explorer.compiled)
    result: ExplorationResult = explorer.explore(stop=predicate)
    if result.found:
        assert result.stopped is not None
        return ReachabilityResult(
            reachable=True,
            formula=formula.describe(),
            visited=result.visited,
            witness=explorer.compiled.state_description(result.stopped),
            trace=result.trace,
            transitions=result.transitions,
        )
    return ReachabilityResult(
        reachable=False, formula=formula.describe(),
        visited=result.visited, transitions=result.transitions)


@dataclass
class SafetyResult:
    """Outcome of an ``A[] ¬bad`` query."""

    holds: bool
    formula: str
    visited: int
    counterexample: str | None = None
    trace: list[str] | None = None
    #: Successor computations performed before the verdict.
    transitions: int = 0

    def __bool__(self) -> bool:
        return self.holds

    def summary(self) -> str:
        status = "HOLDS" if self.holds else "VIOLATED"
        return f"A[] not({self.formula}): {status} ({self.visited} states)"


def check_safety(
    network: Network,
    bad: StateFormula,
    *,
    trace: bool = True,
    extra_max_constants: Mapping[str, int] | None = None,
    max_states: int = 1_000_000,
    zone_backend: str | None = None,
    lazy_subsumption: bool = False,
    jobs: int | None = None,
    abstraction: str | None = None,
) -> SafetyResult:
    """Decide ``A[] ¬bad`` (safety) via the dual reachability query."""
    reach = check_reachable(
        network, bad, trace=trace,
        extra_max_constants=extra_max_constants, max_states=max_states,
        zone_backend=zone_backend, lazy_subsumption=lazy_subsumption,
        jobs=jobs, abstraction=abstraction)
    return SafetyResult(
        holds=not reach.reachable,
        formula=bad.describe(),
        visited=reach.visited,
        counterexample=reach.witness,
        trace=reach.trace,
        transitions=reach.transitions,
    )
