"""Sharded parallel zone-graph exploration.

:class:`ShardedZoneGraphExplorer` runs the same breadth-first
fixpoint as :class:`~repro.mc.explorer.ZoneGraphExplorer` but
restructures each BFS wave into three phases:

1. **Expand** — the frontier is partitioned by discrete-configuration
   key (the same bucket key the passed store shards on).  All states
   of a group share one memoized plan list, so the numpy backend
   expands a whole group through the batched broadcast pipeline
   (:class:`repro.zones.batch.BatchExpander`) instead of state by
   state; the reference backend expands scalarly.  Groups are
   distributed over a worker pool — threads with work-stealing deques
   (numpy kernels release the GIL while a batch is in C code) or a
   ``multiprocessing`` pool for the pure-Python reference backend,
   whose expansion never leaves the interpreter.  A
   termination-detection barrier ends the phase when every group of
   the wave has been expanded.
2. **Commit** — candidate successors are merged into the per-key
   passed buckets *in the exact global order the sequential explorer
   would produce them* (frontier order × plan order).  Per shard the
   merge is one batched antichain update
   (:meth:`~repro.zones.store.NumpyPassedBucket.commit_batch`); the
   proof that batching preserves sequential outcomes rests on coverage
   monotonicity (evictions replace zones by supersets).
3. **Scan** — one ordered pass over the wave's candidates replays the
   sequential explorer's observable effects: ``transitions``/``stored``
   tallies, ``max_states`` enforcement, deferred-error raising, trace
   parent links, ``visit``/``stop`` callbacks and the next frontier.

Because successor computation reads nothing from the passed store,
phases 1 and 2+3 commute with the sequential interleaving — the
states, transitions, traces, witnesses and sup values are **bit
identical** to the sequential engine for every ``jobs`` count and
backend (the differential tests in ``tests/test_mc_parallel.py`` pin
this).  The one documented divergence: with ``lazy_subsumption`` the
wave structure prunes slightly *less* than the sequential lazy
explorer (kills discovered mid-wave arrive after the wave was already
expanded), so lazy tallies sit between the eager and sequential-lazy
counts while the reduced zone graph stays identical.

Stored zones are routed through the global zone intern table
(:mod:`repro.zones.intern`), so identical zones recurring across
discrete configurations — and across the queries of a
:func:`repro.mc.queries.check_many` batch — share one matrix and one
``frozen()`` snapshot, and the cross-process merge only materializes
snapshots it has never seen.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

from repro.mc.explorer import (
    ExplorationLimit,
    ExplorationResult,
    ZoneGraphExplorer,
    _WaitEntry,
    _count_exploration,
)
from repro.mc.state import SymbolicState
from repro.ta.model import ModelError, Network
from repro.zones.backend import resolve_backend
from repro.zones.costmodel import BackendHint
from repro.zones.intern import ZoneInternTable, global_intern_table

__all__ = [
    "ENV_JOBS",
    "EngineConfig",
    "ExplorerSpec",
    "ShardedZoneGraphExplorer",
    "WorkStealingPool",
    "current_exploration_context",
    "exploration_context",
    "make_explorer",
    "resolve_jobs",
    "set_default_jobs",
]

#: Environment override for the default worker count (like
#: ``REPRO_ZONE_BACKEND`` for the kernel choice).
ENV_JOBS = "REPRO_JOBS"

_default_jobs: int | None = None


def set_default_jobs(jobs: int | None) -> None:
    """Process-wide default for ``jobs`` (the CLI ``--jobs`` flag)."""
    global _default_jobs
    if jobs is not None and jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    _default_jobs = jobs


def resolve_jobs(jobs: int | None = None) -> int | None:
    """Resolve a ``jobs`` spec: explicit > ``set_default_jobs`` > env.

    ``None`` means "sequential engine"; any integer >= 1 selects the
    sharded explorer (``jobs=1`` runs its wave pipeline inline — on
    the numpy backend that alone buys the batched-kernel speedup).
    """
    if jobs is None:
        if _default_jobs is not None:
            jobs = _default_jobs
        else:
            from repro.envvars import env_int
            jobs = env_int(ENV_JOBS, minimum=1)
    if jobs is None:
        return None
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def make_explorer(network: Network, *, jobs: int | None = None,
                  parallel_mode: str = "auto", **kwargs):
    """Explorer factory honoring the resolved ``jobs`` setting."""
    resolved = resolve_jobs(jobs)
    if resolved is None:
        return ZoneGraphExplorer(network, **kwargs)
    return ShardedZoneGraphExplorer(network, jobs=resolved,
                                    mode=parallel_mode, **kwargs)


# ----------------------------------------------------------------------
# Work-stealing thread pool with a termination-detection barrier
# ----------------------------------------------------------------------
class _Wave:
    """Barrier state for one ``run_wave`` call (supports concurrency)."""

    __slots__ = ("pending", "error", "cv")

    def __init__(self, cv: threading.Condition, pending: int):
        self.cv = cv
        self.pending = pending
        self.error: BaseException | None = None


class WorkStealingPool:
    """Per-worker deques + stealing; one barrier per submitted wave.

    Owners pop from the bottom of their own deque (LIFO keeps a
    worker's cache hot on its shard), idle workers steal from the top
    of a victim's deque (FIFO steals take the oldest, largest-grained
    work).  ``run_wave`` blocks on a termination-detection barrier: a
    per-wave pending counter that the last finishing worker drives to
    zero before notifying that wave's submitter.

    Waves are independent, so *multiple* coordinating threads may call
    :meth:`run_wave` concurrently — the portfolio scheduler
    (:mod:`repro.mc.portfolio`) runs many explorations over one pool,
    and their waves interleave freely across the workers.  Errors stay
    scoped to the wave whose task raised them.
    """

    def __init__(self, workers: int):
        self.width = workers
        #: Waves submitted over the pool's lifetime — the non-timing
        #: proxy for barrier/steal scheduling overhead (each wave is
        #: one submit + one termination-detection barrier).
        self.waves = 0
        self._deques: list[deque] = [deque() for _ in range(workers)]
        self._lock = threading.Lock()
        self._work_cv = threading.Condition(self._lock)
        self._rr = 0  # rotating placement offset across waves
        self._shutdown = False
        self._threads = [
            threading.Thread(target=self._worker_loop, args=(i,),
                             name=f"shard-worker-{i}", daemon=True)
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    def run_wave(self, tasks: list[Callable[[], None]]) -> None:
        """Run all tasks; return when every one finished (the barrier)."""
        if not tasks:
            return
        wave = _Wave(threading.Condition(self._lock), len(tasks))
        with self._lock:
            if self._shutdown:
                raise RuntimeError("pool is shut down")
            self.waves += 1
            offset = self._rr
            self._rr = (offset + len(tasks)) % self.width
            for i, task in enumerate(tasks):
                self._deques[(offset + i) % self.width].append(
                    (wave, task))
            self._work_cv.notify_all()
            while wave.pending:
                wave.cv.wait()
            if wave.error is not None:
                raise wave.error

    def shutdown(self) -> None:
        with self._lock:
            self._shutdown = True
            self._work_cv.notify_all()
        for thread in self._threads:
            thread.join()

    # -- worker side ---------------------------------------------------
    def _steal(self, me: int):
        own = self._deques[me]
        if own:
            return own.pop()
        for offset in range(1, self.width):
            victim = self._deques[(me + offset) % self.width]
            if victim:
                return victim.popleft()
        return None

    def _worker_loop(self, me: int) -> None:
        while True:
            with self._lock:
                item = self._steal(me)
                while item is None:
                    if self._shutdown:
                        return
                    self._work_cv.wait()
                    item = self._steal(me)
            wave, task = item
            try:
                task()
            except BaseException as exc:  # propagated via run_wave
                with self._lock:
                    if wave.error is None:
                        wave.error = exc
            finally:
                with self._lock:
                    wave.pending -= 1
                    if wave.pending == 0:
                        wave.cv.notify_all()


# Backwards-compatible private alias (pre-portfolio name).
_WorkStealingPool = WorkStealingPool


# ----------------------------------------------------------------------
# Thread-local exploration context (shared pool / intern table)
# ----------------------------------------------------------------------
class _ExplorationContext:
    """Defaults injected into every explorer built on this thread."""

    __slots__ = ("pool", "intern")

    def __init__(self, pool: WorkStealingPool | None,
                 intern: bool | ZoneInternTable | None):
        self.pool = pool
        self.intern = intern


_context = threading.local()


def current_exploration_context() -> _ExplorationContext | None:
    """The context installed on this thread, if any."""
    return getattr(_context, "value", None)


@contextmanager
def exploration_context(*, pool: WorkStealingPool | None = None,
                        intern: bool | ZoneInternTable | None = None):
    """Route every exploration started on this thread through shared
    infrastructure.

    While active, :class:`ShardedZoneGraphExplorer` instances built on
    the current thread default to ``pool``/``intern`` instead of
    creating a private worker pool or using the global intern table.
    The query helpers and the verification framework build their
    explorers deep inside their call chains, so the context is how the
    portfolio scheduler threads one shared pool through a whole
    pipeline without widening every signature.  Contexts nest; the
    previous one is restored on exit.  The context is thread-local by
    design — concurrent portfolio jobs each install their own view.
    """
    previous = current_exploration_context()
    _context.value = _ExplorationContext(pool, intern)
    try:
        yield
    finally:
        _context.value = previous


# ----------------------------------------------------------------------
# Worker-replay plumbing (shared by the sharded explorer's
# multiprocessing fallback and the portfolio's process executor)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EngineConfig:
    """Picklable snapshot of the process-global engine knobs.

    A fresh worker process must see the *same* zone backend,
    extrapolation operator and worker-count default the coordinator
    resolved — regardless of start method (``fork`` inherits globals,
    ``spawn`` does not) and regardless of environment overrides that
    may differ by the time the worker imports the library.
    :meth:`capture` resolves the coordinator's view down to concrete
    names (keeping an ``auto`` backend request symbolic — see the
    field note); :meth:`apply` replays them in the worker and scrubs
    the
    corresponding environment variables so nothing re-resolves
    differently underneath.
    """

    #: Concrete backend name (``"reference"``/``"numpy"``/``"native"``)
    #: — or the literal ``"auto"`` when that is what the coordinator
    #: was asked for: workers then re-resolve per model, which is safe
    #: because every backend is bit-identical, and necessary so a
    #: portfolio mixing tiny and large models never pins all workers
    #: to one frozen choice.
    backend: str
    #: Concrete abstraction name (``"extra_m"``/``"extra_lu"``).
    abstraction: str
    #: Worker-count default to install (``None`` = sequential engine).
    jobs: int | None = None

    @classmethod
    def capture(cls, *, backend: str | None = None,
                abstraction: str | None = None,
                jobs: int | None = None) -> "EngineConfig":
        """Resolve the coordinator's effective configuration.

        ``backend``/``abstraction`` follow the library-wide resolution
        order (explicit > ``set_*`` override > environment > default);
        ``jobs`` is stored verbatim — the caller decides what engine
        its workers run internally.
        """
        from repro.ta.bounds import resolve_abstraction
        from repro.zones.backend import requested_backend

        spec = requested_backend(backend)
        if spec != "auto":
            # Availability check now, not in the worker.
            spec = resolve_backend(spec).name
        return cls(backend=spec,
                   abstraction=resolve_abstraction(abstraction).name,
                   jobs=jobs)

    def apply(self) -> None:
        """Replay this configuration in the current (worker) process."""
        from repro.ta.bounds import ENV_ABSTRACTION, set_abstraction
        from repro.zones.backend import ENV_VAR as ENV_BACKEND
        from repro.zones.backend import set_backend

        set_backend(self.backend)
        set_abstraction(self.abstraction)
        set_default_jobs(self.jobs)
        for var in (ENV_BACKEND, ENV_ABSTRACTION, ENV_JOBS):
            os.environ.pop(var, None)


@dataclass(frozen=True)
class ExplorerSpec:
    """Picklable recipe rebuilding one exploration's sequential
    explorer in a fresh process.

    Ships the *model* (the :class:`Network`) plus every knob the
    coordinator's compiled network carries — never the live
    ``CompiledNetwork``/DBM objects, which hold backend workspaces and
    interned zones a foreign process cannot share.  The worker
    compiles its own network and replays the protected clocks and the
    query-formula LU floors so extrapolation matches bit for bit
    (``raise_lu_floor`` max-merges, so the replay is idempotent).
    """

    network: Network
    backend: str
    extra_max_constants: tuple[tuple[str, int], ...]
    free_clock_when_zero: tuple[tuple[str, str], ...]
    max_states: int
    abstraction: str
    protected_clocks: tuple[str, ...] = ()
    lu_lower_floors: tuple[tuple[int, int], ...] = ()
    lu_upper_floors: tuple[tuple[int, int], ...] = ()

    @classmethod
    def of(cls, explorer: ZoneGraphExplorer, *,
           extra_max_constants: Mapping[str, int] | None,
           free_clock_when_zero: Mapping[str, str] | None,
           ) -> "ExplorerSpec":
        """Snapshot a coordinator explorer's rebuild recipe."""
        compiled = explorer.compiled
        return cls(
            network=explorer.network,
            backend=explorer.backend.name,
            extra_max_constants=tuple(sorted(
                (extra_max_constants or {}).items())),
            free_clock_when_zero=tuple(sorted(
                (free_clock_when_zero or {}).items())),
            max_states=explorer.max_states,
            abstraction=explorer.abstraction.name,
            protected_clocks=tuple(sorted(compiled.protected_clocks)),
            lu_lower_floors=tuple(sorted(
                compiled.lu_lower_floors.items())),
            lu_upper_floors=tuple(sorted(
                compiled.lu_upper_floors.items())))

    def build(self) -> ZoneGraphExplorer:
        """Compile this worker process's private explorer."""
        explorer = ZoneGraphExplorer(
            self.network,
            extra_max_constants=dict(self.extra_max_constants),
            max_states=self.max_states,
            free_clock_when_zero=dict(self.free_clock_when_zero),
            zone_backend=self.backend,
            abstraction=self.abstraction)
        if self.protected_clocks:
            explorer.compiled.protect_clocks(
                list(self.protected_clocks))
        for clock_idx, value in self.lu_lower_floors:
            explorer.compiled.raise_lu_floor(clock_idx, value,
                                             upper=False)
        for clock_idx, value in self.lu_upper_floors:
            explorer.compiled.raise_lu_floor(clock_idx, value,
                                             lower=False)
        return explorer


# ----------------------------------------------------------------------
# Multiprocessing fallback (reference backend)
# ----------------------------------------------------------------------
_PROC_EXPLORER: ZoneGraphExplorer | None = None


def _proc_init(spec: ExplorerSpec) -> None:
    """Build this worker process's private explorer."""
    global _PROC_EXPLORER
    _PROC_EXPLORER = spec.build()


def _proc_expand(chunk):
    """Expand a chunk of ``(pos, locs, vals, snapshot)`` states.

    Returns ``(pos, items)`` pairs where each item is either a
    successor tuple ``(locs, vals, snapshot, label)`` or the deferred
    :class:`ModelError` raised at that point of the plan sequence.
    """
    explorer = _PROC_EXPLORER
    dbm_cls = explorer._dbm
    n = explorer.compiled.n_clocks
    out = []
    for pos, locs, vals, snapshot in chunk:
        zone = dbm_cls.from_frozen(n, snapshot)
        zone._empty = False
        zone._frozen = snapshot
        state = SymbolicState(locs, vals, zone)
        items: list = []
        try:
            for succ, label in explorer.successors(state):
                items.append((succ.locs, succ.vals, succ.zone.frozen(),
                              label))
        except ModelError as exc:
            items.append(exc)
        out.append((pos, items))
    return out


# ----------------------------------------------------------------------
# Wave bookkeeping
# ----------------------------------------------------------------------
class _Cand:
    """One candidate successor awaiting its ordered commit."""

    __slots__ = ("key", "locs", "vals", "label", "zone", "row", "src",
                 "entry", "inserted")

    def __init__(self, key, locs, vals, label, zone, row, src):
        self.key = key
        self.locs = locs
        self.vals = vals
        self.label = label
        self.zone = zone   # materialized DBM (scalar / process paths)
        self.row = row     # (n, n) int64 view (batched numpy path)
        self.src = src
        self.entry = _WaitEntry()
        self.inserted = False


class _Err:
    """A deferred range-check error positioned in the commit order."""

    __slots__ = ("error", "label", "src")

    def __init__(self, error, label, src):
        self.error = error
        self.label = label
        self.src = src


class ShardedZoneGraphExplorer:
    """Wave-synchronized parallel twin of :class:`ZoneGraphExplorer`.

    Accepts the sequential explorer's parameters plus:

    jobs:
        Worker count (>= 1).  ``jobs=1`` runs the wave pipeline inline
        — still worthwhile on the numpy backend, whose groups expand
        through the batched kernels.
    mode:
        ``"thread"``, ``"process"`` or ``"auto"`` (threads for the
        batched numpy/native backends, processes for the reference
        backend).  Thread
        workers share the compiled network and plan cache; process
        workers rebuild them once per worker and exchange ``frozen()``
        zone snapshots.
    intern:
        Zone interning policy: ``True`` (the global table), ``False``
        (no interning) or a private :class:`ZoneInternTable`.
    pool:
        An external :class:`WorkStealingPool` to run expansion waves
        on instead of a private per-exploration pool.  Shared pools
        are never shut down by :meth:`explore` and force thread mode
        (a cross-job process pool cannot share compiled networks).
        When omitted, the thread-local :func:`exploration_context`
        supplies the default — that is how portfolio jobs all land on
        one pool.
    """

    def __init__(self, network: Network, *,
                 jobs: int = 1,
                 mode: str = "auto",
                 extra_max_constants: Mapping[str, int] | None = None,
                 trace: bool = False,
                 max_states: int = 1_000_000,
                 free_clock_when_zero: Mapping[str, str] | None = None,
                 zone_backend: str | None = None,
                 lazy_subsumption: bool = False,
                 abstraction: str | None = None,
                 intern: bool | ZoneInternTable = True,
                 pool: WorkStealingPool | None = None):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if mode not in ("auto", "thread", "process"):
            raise ValueError(f"unknown parallel mode {mode!r}")
        context = current_exploration_context()
        if context is not None:
            if pool is None:
                pool = context.pool
            if intern is True and context.intern is not None:
                intern = context.intern
        self.core = ZoneGraphExplorer(
            network, extra_max_constants=extra_max_constants,
            trace=trace, max_states=max_states,
            free_clock_when_zero=free_clock_when_zero,
            zone_backend=zone_backend,
            lazy_subsumption=lazy_subsumption,
            abstraction=abstraction)
        self.abstraction = self.core.abstraction
        self.network = network
        self.compiled = self.core.compiled
        # The wave pipeline expands whole discrete-configuration
        # groups per kernel call, so ``auto`` re-resolves here with a
        # batched hint: the expected wave width grows with model size
        # (structural size / 8 is a coarse states-per-wave proxy,
        # clamped to the cost table's measured width grid).  Concrete
        # backend names ignore the hint, and no zones exist yet, so
        # swapping the core's backend classes before the first
        # ``initial_state()`` is safe.
        structural = sum(len(a.locations) + len(a.edges)
                         for a in network.automata)
        backend = resolve_backend(zone_backend, hint=BackendHint(
            n_clocks=self.compiled.n_clocks,
            structural_size=structural,
            wave_width=min(64, max(1, structural // 8))))
        if backend is not self.core.backend:
            self.core.backend = backend
            self.core._dbm = backend.dbm
            self.core._bucket_cls = backend.bucket
        self.backend = backend
        self.jobs = jobs
        self.shared_pool = pool
        if pool is not None:
            # External pools are thread pools; its width caps useful
            # parallelism regardless of the requested job count.
            self.mode = "thread"
            self.jobs = max(jobs, 2) if pool.width > 1 else 1
        else:
            self.mode = mode if mode != "auto" else (
                "thread" if self.backend.name in ("numpy", "native")
                else "process")
        self.trace_enabled = trace
        self.max_states = max_states
        self.lazy_subsumption = lazy_subsumption
        self.batched = self.backend.name in ("numpy", "native")
        if intern is True:
            self.intern_table: ZoneInternTable | None = \
                global_intern_table()
        elif intern is False:
            self.intern_table = None
        else:
            self.intern_table = intern
        # Captured for process-worker initialization (floors are
        # snapshotted at pool-creation time — query compilation can
        # raise them after construction).
        self._worker_maps = (dict(extra_max_constants or {}),
                             dict(free_clock_when_zero or {}))
        self.parents: dict = {}
        #: Per-key passed buckets of the most recent exploration
        #: (diagnostics/benchmarks only).
        self.passed_store: dict | None = None
        self._trust_narrow = False

    def _compute_trust_narrow(self) -> bool:
        """Stored zones are post-extrapolation, so every finite bound
        is at most 2·ceiling + 1 in the packed encoding — when that
        provably fits int32 the buckets may skip per-batch range
        validation before narrowing.  Resolved at explore() time: LU
        floors raised by query-formula compilation can lift the
        ceiling after construction."""
        if not self.batched:
            return False
        from repro.zones.store import NumpyPassedBucket
        ceiling = max(self.compiled.max_constants, default=0)
        for floors in (self.compiled.lu_lower_floors,
                       self.compiled.lu_upper_floors):
            if floors:
                ceiling = max(ceiling, max(floors.values()))
        return 2 * ceiling + 1 < NumpyPassedBucket.NARROW_LIMIT

    def _new_bucket(self):
        bucket = self.core._bucket_cls()
        if self._trust_narrow:
            bucket.trusted_narrow = True
        return bucket

    # -- API parity with the sequential explorer ------------------------
    def initial_state(self) -> SymbolicState:
        return self.core.initial_state()

    def successors(self, state: SymbolicState):
        return self.core.successors(state)

    def rebuild_trace(self, node_id) -> list[str] | None:
        return self.core._rebuild(self.parents, node_id)

    def iter_states(self) -> Iterator[SymbolicState]:
        """Materialize every reachable symbolic state (full search)."""
        states: list[SymbolicState] = []
        self.explore(visit=states.append)
        return iter(states)

    # -- expansion phases -----------------------------------------------
    def _expand_group_batched(self, expander, key, members, slots):
        """Batched numpy expansion of one discrete-configuration group."""
        import numpy as np

        plans = self.core.plans_for(key)
        if not plans:
            return
        src_stack = np.stack([state.zone._m for _, state in members])
        positions = [pos for pos, _ in members]
        sources = [state for _, state in members]
        for plan in plans:
            work, alive = expander.run_plan(src_stack, plan)
            if plan.error is not None:
                for b in np.flatnonzero(alive):
                    slots[positions[b]].append(
                        _Err(plan.error, plan.label, sources[b]))
                continue
            target_key = (plan.locs, plan.vals)
            for b in np.flatnonzero(alive):
                slots[positions[b]].append(_Cand(
                    target_key, plan.locs, plan.vals, plan.label,
                    None, work[b], sources[b]))

    def _expand_group_scalar(self, key, members, slots):
        """Scalar expansion (reference backend / forced thread mode)."""
        for pos, state in members:
            out = slots[pos]
            try:
                for succ, label in self.core.successors(state):
                    out.append(_Cand(succ.key(), succ.locs, succ.vals,
                                     label, succ.zone, None, state))
            except ModelError as exc:
                out.append(_Err(exc, None, state))

    def _expand_wave_processes(self, pool, active, slots):
        """Ship the wave to the process pool as frozen snapshots."""
        jobs = self.jobs
        payload = [(pos, state.locs, state.vals, state.zone.frozen())
                   for pos, state in enumerate(active)]
        chunk = max(1, (len(payload) + jobs - 1) // jobs)
        chunks = [payload[i:i + chunk]
                  for i in range(0, len(payload), chunk)]
        dbm_cls = self.core._dbm
        n = self.compiled.n_clocks
        table = self.intern_table
        for result in pool.imap(_proc_expand, chunks):
            for pos, items in result:
                src = active[pos]
                out = slots[pos]
                for item in items:
                    if isinstance(item, ModelError):
                        out.append(_Err(item, None, src))
                        continue
                    locs, vals, snapshot, label = item
                    if table is not None:
                        zone = table.intern_frozen(dbm_cls, n, snapshot)
                    else:
                        zone = dbm_cls.from_frozen(n, snapshot)
                        zone._empty = False
                        zone._frozen = snapshot
                    out.append(_Cand((locs, vals), locs, vals, label,
                                     zone, None, src))

    # -- the wave loop ---------------------------------------------------
    def explore(
        self,
        stop: Callable[[SymbolicState], bool] | None = None,
        visit: Callable[[SymbolicState], None] | None = None,
    ) -> ExplorationResult:
        """Sharded breadth-first exploration (sequential-identical)."""
        _count_exploration()
        core = self.core
        trace_on = self.trace_enabled
        lazy = self.lazy_subsumption
        table = self.intern_table
        np = None
        expander = None
        if self.batched:
            import numpy as np  # noqa: F811 - local alias on purpose
            if self.backend.name == "native":
                from repro.zones.dbm_native import NativeBatchExpander
                expander = NativeBatchExpander(
                    self.compiled.n_clocks, self.compiled.max_constants)
            else:
                from repro.zones.batch import BatchExpander
                expander = BatchExpander(self.compiled.n_clocks,
                                         self.compiled.max_constants)

        init = core.initial_state()
        self._trust_narrow = self._compute_trust_narrow()
        if table is not None:
            init = SymbolicState(init.locs, init.vals,
                                 table.intern(init.zone))
        init_entry = _WaitEntry(init)
        bucket = self._new_bucket()
        bucket.insert(init.zone, init_entry)
        passed: dict[tuple, object] = {init.key(): bucket}
        self.passed_store = passed
        parents = self.parents = {}
        if trace_on:
            parents[(init.key(), init.zone.frozen())] = (None, "<init>")
        stored = 1
        transitions = 0
        if visit is not None:
            visit(init)
        if stop is not None and stop(init):
            return ExplorationResult(
                visited=stored, stopped=init,
                trace=self.rebuild_trace(
                    (init.key(), init.zone.frozen())),
                complete=False, transitions=transitions)

        use_threads = self.jobs > 1 and self.mode == "thread"
        use_processes = self.jobs > 1 and self.mode == "process"
        pool = proc_pool = None
        own_pool = False
        try:
            if use_threads:
                if self.shared_pool is not None:
                    pool = self.shared_pool
                else:
                    pool = WorkStealingPool(self.jobs)
                    own_pool = True
            elif use_processes:
                import multiprocessing

                try:
                    ctx = multiprocessing.get_context("fork")
                except ValueError:  # pragma: no cover - non-POSIX
                    ctx = multiprocessing.get_context()
                extra_max, free_map = self._worker_maps
                spec = ExplorerSpec.of(
                    self.core, extra_max_constants=extra_max,
                    free_clock_when_zero=free_map)
                proc_pool = ctx.Pool(self.jobs, initializer=_proc_init,
                                     initargs=(spec,))

            frontier: list[_WaitEntry] = [init_entry]
            while frontier:
                active = [entry.state for entry in frontier
                          if not lazy or entry.alive]
                frontier = []
                if not active:
                    break
                # Phase 1: expand, sharded by discrete key.
                slots: list[list] = [[] for _ in active]
                if use_processes:
                    self._expand_wave_processes(proc_pool, active, slots)
                else:
                    groups: dict[tuple, list] = {}
                    for pos, state in enumerate(active):
                        groups.setdefault(state.key(), []).append(
                            (pos, state))
                    if self.batched:
                        def task(key, members):
                            self._expand_group_batched(
                                expander, key, members, slots)
                    else:
                        def task(key, members):
                            self._expand_group_scalar(
                                key, members, slots)
                    if pool is not None and len(groups) > 1:
                        pool.run_wave([
                            (lambda k=key, m=members: task(k, m))
                            for key, members in groups.items()])
                    else:
                        for key, members in groups.items():
                            task(key, members)

                # Phase 2: deterministic per-shard merge in global order.
                wave: list = []
                per_key: dict[tuple, list[_Cand]] = {}
                for out in slots:
                    for item in out:
                        wave.append(item)
                        if isinstance(item, _Cand):
                            per_key.setdefault(item.key, []).append(item)
                for key, cands in per_key.items():
                    bucket = passed.get(key)
                    if bucket is None:
                        bucket = passed[key] = self._new_bucket()
                    entries = [cand.entry for cand in cands]
                    if self.batched:
                        # The numpy bucket commits on a stacked row
                        # matrix (candidates arrive as pipeline rows
                        # in thread mode, as zones in process mode).
                        rows = np.stack(
                            [cand.row.reshape(-1) if cand.row is not None
                             else cand.zone._m.reshape(-1)
                             for cand in cands])
                        flags = bucket.commit_batch(rows, entries)
                    else:
                        flags = bucket.commit_batch(
                            [cand.zone for cand in cands], entries)
                    for cand, flag in zip(cands, flags):
                        cand.inserted = flag

                # Phase 3: ordered scan — sequential-observable replay.
                for item in wave:
                    if isinstance(item, _Err):
                        if item.label is None:
                            raise item.error
                        raise ModelError(
                            f"{item.error} (while firing {item.label} "
                            f"from "
                            f"{self.compiled.state_description(item.src)})"
                        ) from item.error
                    transitions += 1
                    if not item.inserted:
                        continue
                    stored += 1
                    if stored > self.max_states:
                        raise ExplorationLimit(
                            f"exceeded {self.max_states} symbolic "
                            f"states exploring {self.network.name!r}")
                    zone = item.zone
                    if zone is None:
                        zone = self._materialize(item.row)
                    if table is not None:
                        zone = table.intern(zone)
                    succ = SymbolicState(item.locs, item.vals, zone)
                    item.entry.state = succ
                    if trace_on:
                        src = item.src
                        parents[(succ.key(), zone.frozen())] = (
                            (src.key(), src.zone.frozen()), item.label)
                    if visit is not None:
                        visit(succ)
                    if stop is not None and stop(succ):
                        return ExplorationResult(
                            visited=stored, stopped=succ,
                            trace=self.rebuild_trace(
                                (succ.key(), zone.frozen())),
                            complete=False, transitions=transitions)
                    frontier.append(item.entry)
        finally:
            if pool is not None and own_pool:
                pool.shutdown()
            if proc_pool is not None:
                proc_pool.terminate()
                proc_pool.join()
        return ExplorationResult(visited=stored, complete=True,
                                 transitions=transitions)

    def _materialize(self, row):
        """A fresh backend zone from a batched-pipeline result row."""
        dbm_cls = self.core._dbm
        zone = dbm_cls.__new__(dbm_cls)
        zone.size = self.compiled.n_clocks
        zone._m = row.copy()
        zone._empty = False
        zone._frozen = None
        return zone
