"""Zone-based model checker for the timed-automata language.

Public API:

* :func:`check_reachable` / :func:`check_safety` — ``E<>`` / ``A[]``
* :func:`check_bounded_response` — the paper's ``P(Δ)`` properties
* :func:`max_response_delay` — exact sup of a trigger→response delay
* :func:`sup_clock` — generic clock suprema
* :func:`find_deadlocks` — stuck-state detection
* :class:`ZoneGraphExplorer` — the underlying engine
"""

from repro.mc.deadlock import DeadlockReport, find_deadlocks
from repro.mc.explorer import (
    ExplorationLimit,
    ExplorationResult,
    ZoneGraphExplorer,
)
from repro.mc.observers import (
    OBS_CLOCK,
    OBS_FLAG,
    BoundedResponseResult,
    DelayBound,
    check_bounded_response,
    instrument_response,
    max_response_delay,
)
from repro.mc.queries import ZoneGraphStats, sup_clock, zone_graph_stats
from repro.mc.reachability import (
    ReachabilityResult,
    SafetyResult,
    StateFormula,
    check_reachable,
    check_safety,
)
from repro.mc.state import CompiledNetwork, SymbolicState
from repro.mc.traces import format_trace, trace_channels

__all__ = [
    "OBS_CLOCK",
    "OBS_FLAG",
    "BoundedResponseResult",
    "CompiledNetwork",
    "DeadlockReport",
    "DelayBound",
    "ExplorationLimit",
    "ExplorationResult",
    "ReachabilityResult",
    "SafetyResult",
    "StateFormula",
    "SymbolicState",
    "ZoneGraphExplorer",
    "ZoneGraphStats",
    "check_bounded_response",
    "check_reachable",
    "check_safety",
    "find_deadlocks",
    "format_trace",
    "instrument_response",
    "max_response_delay",
    "sup_clock",
    "trace_channels",
    "zone_graph_stats",
]
