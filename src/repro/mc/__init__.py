"""Zone-based model checker for the timed-automata language.

Public API:

* :func:`check_reachable` / :func:`check_safety` — ``E<>`` / ``A[]``
* :func:`check_bounded_response` — the paper's ``P(Δ)`` properties
* :func:`max_response_delay` — exact sup of a trigger→response delay
* :func:`sup_clock` — generic clock suprema
* :func:`check_many` — one shared exploration answering a query batch
* :func:`find_deadlocks` — stuck-state detection
* :class:`ZoneGraphExplorer` — the underlying engine
* :class:`ShardedZoneGraphExplorer` — its parallel twin (``jobs=``)
* :mod:`repro.mc.portfolio` — cross-model portfolio verification
  (import the submodule directly: it sits above the core framework
  layer, so re-exporting it here would create an import cycle)
"""

from repro.mc.deadlock import DeadlockReport, find_deadlocks
from repro.mc.explorer import (
    ExplorationLimit,
    ExplorationResult,
    ZoneGraphExplorer,
)
from repro.mc.observers import (
    OBS_CLOCK,
    OBS_FLAG,
    BoundedResponseResult,
    DelayBound,
    check_bounded_response,
    instrument_response,
    max_response_delay,
)
from repro.mc.parallel import (
    ShardedZoneGraphExplorer,
    resolve_jobs,
    set_default_jobs,
)
from repro.mc.queries import (
    BatchOutcome,
    BoundedResponseQuery,
    ClockSupQuery,
    ReachQuery,
    ResponseSupQuery,
    SafetyQuery,
    StatsQuery,
    ZoneGraphStats,
    check_many,
    sup_clock,
    zone_graph_stats,
)
from repro.mc.reachability import (
    ReachabilityResult,
    SafetyResult,
    StateFormula,
    check_reachable,
    check_safety,
)
from repro.mc.state import CompiledNetwork, SymbolicState
from repro.mc.traces import format_trace, trace_channels

__all__ = [
    "OBS_CLOCK",
    "OBS_FLAG",
    "BatchOutcome",
    "BoundedResponseQuery",
    "BoundedResponseResult",
    "ClockSupQuery",
    "ReachQuery",
    "ResponseSupQuery",
    "SafetyQuery",
    "ShardedZoneGraphExplorer",
    "StatsQuery",
    "CompiledNetwork",
    "DeadlockReport",
    "DelayBound",
    "ExplorationLimit",
    "ExplorationResult",
    "ReachabilityResult",
    "SafetyResult",
    "StateFormula",
    "SymbolicState",
    "ZoneGraphExplorer",
    "ZoneGraphStats",
    "check_bounded_response",
    "check_many",
    "check_reachable",
    "check_safety",
    "find_deadlocks",
    "format_trace",
    "resolve_jobs",
    "set_default_jobs",
    "instrument_response",
    "max_response_delay",
    "sup_clock",
    "trace_channels",
    "zone_graph_stats",
]
