"""Compiled networks and symbolic states for zone-based exploration.

:class:`CompiledNetwork` preprocesses a :class:`~repro.ta.model.Network`
once — resolving clock and variable names to indices, pre-encoding
clock constraints as DBM operations, bucketing edges by (automaton,
location, channel) and computing the per-clock maximum constants used
by Extra_M extrapolation — so the explorer's inner loop touches no
strings.

A :class:`SymbolicState` is the classic triple *(location vector,
variable valuation, zone)*; the first two are hashable tuples, the
zone is a canonical DBM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.ta.bounds import (
    AbstractionSpec,
    analyze_lu_bounds,
    resolve_abstraction,
)
from repro.ta.channels import Channel
from repro.ta.clocks import (
    Assignment,
    ClockConstraint,
    ClockCopy,
    ClockReset,
)
from repro.ta.expr import Const, Expr
from repro.ta.model import Automaton, Edge, ModelError, Network
from repro.zones.dbm import DBM
from repro.zones.bounds import encode

__all__ = [
    "CompiledEdge",
    "CompiledNetwork",
    "SymbolicState",
    "encode_constraint",
]


def encode_constraint(constraint: ClockConstraint,
                      clock_ids: Mapping[str, int]) \
        -> list[tuple[int, int, int]]:
    """Pre-encode a clock atom as DBM ``constrain`` argument triples."""
    i = clock_ids[constraint.clock]
    j = clock_ids[constraint.other] if constraint.other is not None else 0
    op = constraint.op
    if op in ("<", "<="):
        return [(i, j, encode(constraint.bound, op == "<="))]
    if op in (">", ">="):
        return [(j, i, encode(-constraint.bound, op == ">="))]
    # ==
    return [(i, j, encode(constraint.bound, True)),
            (j, i, encode(-constraint.bound, True))]


@dataclass(frozen=True)
class CompiledEdge:
    """One edge with all names resolved to indices.

    ``clock_ops`` are ready-made ``(i, j, encoded_bound)`` triples;
    ``update_ops`` is the ordered action list with items
    ``("reset", clock_idx, value)``, ``("copy", dst_idx, src_idx)`` or
    ``("assign", var_idx, Expr)``.  ``guard_fn`` is the data guard
    compiled to a Python closure over the evaluation environment.
    """

    auto_idx: int
    source_idx: int
    target_idx: int
    clock_ops: tuple[tuple[int, int, int], ...]
    data_guard: Expr
    guard_fn: object  # Callable[[Mapping[str, int]], int]
    channel_idx: int | None
    is_emit: bool
    update_ops: tuple[tuple, ...]
    edge: Edge
    auto_name: str

    def has_clock_guard(self) -> bool:
        return bool(self.clock_ops)

    def label(self) -> str:
        return f"{self.auto_name}: {self.edge}"


def _expr_to_env_python(expr: Expr) -> str:
    """Translate a data expression to Python over ``env[...]``."""
    from repro.ta.expr import Binary, Const, Unary, Var

    if isinstance(expr, Const):
        return str(expr.value)
    if isinstance(expr, Var):
        return f"env[{expr.name!r}]"
    if isinstance(expr, Unary):
        inner = _expr_to_env_python(expr.operand)
        if expr.op == "-":
            return f"(-{inner})"
        return f"(0 if {inner} else 1)"
    if isinstance(expr, Binary):
        left = _expr_to_env_python(expr.left)
        right = _expr_to_env_python(expr.right)
        if expr.op == "&&":
            return f"(1 if ({left} and {right}) else 0)"
        if expr.op == "||":
            return f"(1 if ({left} or {right}) else 0)"
        if expr.op in ("<", "<=", ">", ">=", "==", "!="):
            return f"(1 if {left} {expr.op} {right} else 0)"
        if expr.op == "/":
            return f"_int_div({left}, {right})"
        if expr.op == "%":
            return f"_int_mod({left}, {right})"
        return f"({left} {expr.op} {right})"
    raise ModelError(f"cannot compile expression {expr!r}")


def compile_data_guard(expr: Expr):
    """Compile a data expression into a fast ``env -> int`` closure."""
    from repro.ta.expr import Const, int_div, int_mod

    if isinstance(expr, Const):
        value = expr.value
        return lambda env, _v=value: _v
    source = f"lambda env: {_expr_to_env_python(expr)}"
    return eval(compile(source, "<guard>", "eval"),
                {"_int_div": int_div, "_int_mod": int_mod})


class SymbolicState:
    """Triple (locations, valuation, zone); key = discrete part.

    The discrete key and its hash are memoized: the explorer consults
    them repeatedly (passed-bucket lookup, waiting-list dedup, shard
    assignment, trace-node construction), and before the memo every
    call re-allocated the pair tuple and re-hashed it.
    """

    __slots__ = ("locs", "vals", "zone", "_key", "_key_hash")

    def __init__(self, locs: tuple[int, ...], vals: tuple[int, ...],
                 zone: DBM):
        self.locs = locs
        self.vals = vals
        self.zone = zone
        self._key = None
        self._key_hash = None

    def key(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        key = self._key
        if key is None:
            key = self._key = (self.locs, self.vals)
        return key

    def key_hash(self) -> int:
        """Cached ``hash(self.key())`` — the shard-assignment key."""
        value = self._key_hash
        if value is None:
            value = self._key_hash = hash(self.key())
        return value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SymbolicState(locs={self.locs}, vals={self.vals}, " \
               f"zone={self.zone.as_text()})"


class CompiledNetwork:
    """Index-resolved form of a network plus semantic lookup tables."""

    def __init__(self, network: Network,
                 extra_max_constants: Mapping[str, int] | None = None,
                 abstraction: AbstractionSpec | str | None = None):
        """Compile ``network``.

        ``extra_max_constants`` raises the extrapolation ceiling of the
        named clocks (display names, see ``Network.clock_names``) —
        required by sup queries, whose answers must stay below the
        ceiling to be exact.  Under the LU abstraction the same
        ceilings raise the *lower*-bound map: that is the side whose
        widening rule could invent clock values above the ceiling, so
        it alone keeps sup readings and lower-bound observer formulas
        exact — the upper map stays free to erase the observer
        clock's lower-bound residue (the blow-up driver).

        ``abstraction`` selects the extrapolation operator
        (:func:`repro.ta.bounds.resolve_abstraction` order:
        explicit > ``set_abstraction`` > ``REPRO_ABSTRACTION`` >
        ``extra_m``).
        """
        self.network = network
        self.abstraction = resolve_abstraction(abstraction)
        self.automata: tuple[Automaton, ...] = network.automata
        self.n_automata = len(network.automata)

        # ---- clocks -----------------------------------------------------
        self.clock_ids = network.clock_index()
        self.n_clocks = network.n_clocks()
        self.clock_names = network.clock_names()
        self._name_to_clock = {name: idx for idx, name
                               in enumerate(self.clock_names)}
        # Qualified "Automaton.clock" aliases always resolve, even when
        # the bare local name is unique.
        for (auto_name, clock), idx in self.clock_ids.items():
            self._name_to_clock.setdefault(f"{auto_name}.{clock}", idx)

        # ---- variables --------------------------------------------------
        self.var_names: tuple[str, ...] = tuple(
            v.name for v in network.variables)
        self.var_decls = {v.name: v for v in network.variables}
        self._var_pos = {name: i for i, name in enumerate(self.var_names)}
        self.initial_vals: tuple[int, ...] = tuple(
            v.init for v in network.variables)
        self.constants: dict[str, int] = dict(network.constants)

        # ---- channels ---------------------------------------------------
        self.channels: tuple[Channel, ...] = network.channels
        self.channel_ids = {ch.name: i for i, ch in enumerate(self.channels)}
        self.urgent_channels = [i for i, ch in enumerate(self.channels)
                                if ch.urgent]
        self.broadcast = [ch.broadcast for ch in self.channels]

        # ---- locations --------------------------------------------------
        self.loc_ids: list[dict[str, int]] = []
        self.loc_names: list[list[str]] = []
        self.invariant_ops: list[list[tuple[tuple[int, int, int], ...]]] = []
        self.loc_committed: list[list[bool]] = []
        self.loc_urgent: list[list[bool]] = []
        self.initial_locs: tuple[int, ...] = ()

        initial: list[int] = []
        for a_idx, auto in enumerate(self.automata):
            ids = {loc.name: i for i, loc in enumerate(auto.locations)}
            self.loc_ids.append(ids)
            self.loc_names.append([loc.name for loc in auto.locations])
            clock_ids_here = self._automaton_clock_ids(auto)
            inv_ops = []
            committed = []
            urgent = []
            for loc in auto.locations:
                ops: list[tuple[int, int, int]] = []
                for atom in loc.invariant:
                    ops.extend(encode_constraint(atom, clock_ids_here))
                inv_ops.append(tuple(ops))
                committed.append(loc.committed)
                urgent.append(loc.urgent)
            self.invariant_ops.append(inv_ops)
            self.loc_committed.append(committed)
            self.loc_urgent.append(urgent)
            initial.append(ids[auto.initial])
        self.initial_locs = tuple(initial)

        # ---- edges ------------------------------------------------------
        # internal_edges[a][l]          -> [CompiledEdge]
        # emit_edges[a][l]    {ch: [CompiledEdge]}
        # recv_edges[a][l]    {ch: [CompiledEdge]}
        self.internal_edges: list[list[list[CompiledEdge]]] = []
        self.emit_edges: list[list[dict[int, list[CompiledEdge]]]] = []
        self.recv_edges: list[list[dict[int, list[CompiledEdge]]]] = []
        self.all_edges: list[CompiledEdge] = []
        for a_idx, auto in enumerate(self.automata):
            n_locs = len(auto.locations)
            internal: list[list[CompiledEdge]] = [[] for _ in range(n_locs)]
            emit: list[dict[int, list[CompiledEdge]]] = \
                [{} for _ in range(n_locs)]
            recv: list[dict[int, list[CompiledEdge]]] = \
                [{} for _ in range(n_locs)]
            for edge in auto.edges:
                compiled = self._compile_edge(a_idx, auto, edge)
                self.all_edges.append(compiled)
                src = compiled.source_idx
                if compiled.channel_idx is None:
                    internal[src].append(compiled)
                elif compiled.is_emit:
                    emit[src].setdefault(compiled.channel_idx,
                                         []).append(compiled)
                else:
                    recv[src].setdefault(compiled.channel_idx,
                                         []).append(compiled)
            self.internal_edges.append(internal)
            self.emit_edges.append(emit)
            self.recv_edges.append(recv)

        # ---- extrapolation constants -------------------------------------
        self.max_constants = self._compute_max_constants(
            extra_max_constants or {})
        # ---- per-location LU bounds (Extra⁺_LU) ---------------------------
        # The analysis and its composition caches exist only when the
        # LU abstraction is selected; the Extra_M path stays untouched
        # (and bit-identical to every published pin).
        self._lu_map = None
        #: Directional clock-index floors on the LU maps: the extra
        #: ceilings above (lower side — they protect lower-bound
        #: formulas and sup readings) plus any :meth:`raise_lu_floor`
        #: calls made by query-formula compilation.  Ships to process
        #: workers.
        self.lu_lower_floors: dict[int, int] = {}
        self.lu_upper_floors: dict[int, int] = {}
        self._lu_state_cache: dict[tuple[int, ...],
                                   tuple[tuple, tuple]] = {}
        if self.abstraction.is_lu:
            self._lu_map = analyze_lu_bounds(network)
            for name, ceiling in (extra_max_constants or {}).items():
                idx = self._name_to_clock[name]
                self.lu_lower_floors[idx] = max(
                    self.lu_lower_floors.get(idx, 0), ceiling)

        # ---- evaluation-environment memo ---------------------------------
        # One dict per distinct valuation; the explorer looks these up
        # once per discrete configuration instead of rebuilding them
        # for every expanded state.  Treat returned dicts as read-only.
        self._env_cache: dict[tuple[int, ...], dict[str, int]] = {}

        # ---- active-clock reduction (Daws & Yovine) -----------------------
        # inactive_clocks[a][l] = tuple of global clock indices of
        # automaton a's local clocks that are irrelevant at location l
        # (not read before being reset on every outgoing path).  The
        # explorer frees them, collapsing dead timer phases.  Global
        # clocks are never freed (observers read them externally).
        self.inactive_clocks = self._compute_inactive_clocks()
        #: Bumped by :meth:`protect_clocks`; explorers compare it to
        #: invalidate successor plans built against stale tables.
        self.reduction_version = 0
        #: Clock indices exempted so far — the sharded explorer's
        #: process workers replay these on their own compiled copies.
        self.protected_clocks: set[int] = set()

    # ------------------------------------------------------------------
    def _automaton_clock_ids(self, auto: Automaton) -> dict[str, int]:
        ids = {}
        for clock in self.network.global_clocks:
            ids[clock] = self.clock_ids[(auto.name, clock)]
        for clock in auto.clocks:
            ids[clock] = self.clock_ids[(auto.name, clock)]
        return ids

    def _compile_edge(self, a_idx: int, auto: Automaton,
                      edge: Edge) -> CompiledEdge:
        loc_ids = self.loc_ids[a_idx]
        clock_ids_here = self._automaton_clock_ids(auto)
        clock_ops: list[tuple[int, int, int]] = []
        for atom in edge.guard.clock_constraints:
            clock_ops.extend(encode_constraint(atom, clock_ids_here))
        update_ops: list[tuple] = []
        for action in edge.update.actions:
            if isinstance(action, ClockReset):
                update_ops.append(("reset", clock_ids_here[action.clock],
                                   action.value))
            elif isinstance(action, ClockCopy):
                update_ops.append(("copy", clock_ids_here[action.clock],
                                   clock_ids_here[action.source]))
            elif isinstance(action, Assignment):
                update_ops.append(("assign", action.var, action.expr))
        channel_idx = None
        is_emit = False
        if edge.sync is not None:
            channel_idx = self.channel_ids[edge.sync.channel]
            is_emit = edge.sync.is_emit
        return CompiledEdge(
            auto_idx=a_idx,
            source_idx=loc_ids[edge.source],
            target_idx=loc_ids[edge.target],
            clock_ops=tuple(clock_ops),
            data_guard=edge.guard.data,
            guard_fn=compile_data_guard(edge.guard.data),
            channel_idx=channel_idx,
            is_emit=is_emit,
            update_ops=tuple(update_ops),
            edge=edge,
            auto_name=auto.name,
        )

    def _compute_max_constants(
            self, extra: Mapping[str, int]) -> list[int]:
        """Per-clock Extra_M ceilings from every constraint and reset."""
        maxes = [0] * self.n_clocks
        for a_idx, auto in enumerate(self.automata):
            clock_ids_here = self._automaton_clock_ids(auto)
            atoms: list[ClockConstraint] = []
            for loc in auto.locations:
                atoms.extend(loc.invariant)
            for edge in auto.edges:
                atoms.extend(edge.guard.clock_constraints)
                for action in edge.update.actions:
                    if isinstance(action, ClockReset) and action.value:
                        idx = clock_ids_here[action.clock]
                        maxes[idx] = max(maxes[idx], action.value)
            for atom in atoms:
                bound = atom.max_constant()
                for clock in atom.clocks():
                    idx = clock_ids_here[clock]
                    maxes[idx] = max(maxes[idx], bound)
        for name, ceiling in extra.items():
            if name not in self._name_to_clock:
                raise ModelError(
                    f"extra max constant for unknown clock {name!r} "
                    f"(known: {self.clock_names[1:]})")
            idx = self._name_to_clock[name]
            maxes[idx] = max(maxes[idx], ceiling)
        return maxes

    def _compute_inactive_clocks(self) -> list[list[tuple[int, ...]]]:
        """Per-(automaton, location) inactive local clock indices."""
        result: list[list[tuple[int, ...]]] = []
        for a_idx, auto in enumerate(self.automata):
            local = set(auto.clocks)
            if not local:
                result.append([() for _ in auto.locations])
                continue
            loc_ids = self.loc_ids[a_idx]
            n_locs = len(auto.locations)
            used_at: list[set[str]] = [set() for _ in range(n_locs)]
            for loc in auto.locations:
                ids = loc_ids[loc.name]
                for atom in loc.invariant:
                    used_at[ids].update(c for c in atom.clocks()
                                        if c in local)
            edge_info = []
            for edge in auto.edges:
                used = set()
                for atom in edge.guard.clock_constraints:
                    used.update(c for c in atom.clocks() if c in local)
                resets = set()
                for action in edge.update.actions:
                    if isinstance(action, ClockReset) \
                            and action.clock in local:
                        resets.add(action.clock)
                    elif isinstance(action, ClockCopy):
                        if action.clock in local:
                            resets.add(action.clock)
                        if action.source in local:
                            used.add(action.source)
                edge_info.append((loc_ids[edge.source],
                                  loc_ids[edge.target], used, resets))
            active: list[set[str]] = [set(used_at[i])
                                      for i in range(n_locs)]
            changed = True
            while changed:
                changed = False
                for src, dst, used, resets in edge_info:
                    flow = used | (active[dst] - resets)
                    if not flow <= active[src]:
                        active[src] |= flow
                        changed = True
            clock_ids_here = self._automaton_clock_ids(auto)
            per_loc = []
            for i in range(n_locs):
                inactive = tuple(sorted(
                    clock_ids_here[c] for c in local - active[i]))
                per_loc.append(inactive)
            result.append(per_loc)
        return result

    def protect_clocks(self, indices) -> None:
        """Exempt clocks from active-clock reduction.

        Queries that read a clock's value (state formulas, sup
        queries) must call this before exploration — otherwise the
        reduction may free the clock in locations where the model
        itself no longer needs it, making its value meaningless there.
        """
        protect = set(indices)
        self.protected_clocks |= protect
        self.inactive_clocks = [
            [tuple(c for c in per_loc if c not in protect)
             for per_loc in per_auto]
            for per_auto in self.inactive_clocks
        ]
        self.reduction_version += 1

    # ------------------------------------------------------------------
    # LU abstraction (Extra⁺_LU)
    # ------------------------------------------------------------------
    def lu_bounds_for(self, locs: tuple[int, ...]) \
            -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Composed ``(lower, upper)`` maps for one location vector.

        Memoized per location vector (the explorer resolves them once
        per successor plan); invalidated together with the plan cache
        when floors rise (``reduction_version``).
        """
        cached = self._lu_state_cache.get(locs)
        if cached is None:
            cached = self._lu_state_cache[locs] = \
                self._lu_map.state_bounds(locs, self.lu_lower_floors,
                                          self.lu_upper_floors)
        return cached

    def raise_lu_floor(self, clock_idx: int, value: int, *,
                       lower: bool = True,
                       upper: bool = True) -> None:
        """Raise a clock's LU floors at every location.

        Query formulas constrain zones from *outside* the network
        (``StateFormula`` clock conditions), so their constants never
        appear in the static analysis; compilation calls this so the
        LU widening can never erase a distinction such a formula
        tests.  Floors are directional: a lower-bound atom ``x > c``
        only needs ``L(x) ≥ c`` (the rule erasing *upper* bounds must
        not invent values above ``c``), an upper-bound atom ``x < c``
        only needs ``U(x) ≥ c``.  No-op under Extra_M — its callers
        already thread the needed ceilings through
        ``extra_max_constants``, and the seed pins must stay
        bit-identical.
        """
        if self._lu_map is None:
            return
        raised = False
        if lower and value > self.lu_lower_floors.get(clock_idx, -1):
            self.lu_lower_floors[clock_idx] = value
            raised = True
        if upper and value > self.lu_upper_floors.get(clock_idx, -1):
            self.lu_upper_floors[clock_idx] = value
            raised = True
        if raised:
            self._lu_state_cache.clear()
            # Plans embed the composed maps; force a rebuild exactly
            # like protect_clocks does.
            self.reduction_version += 1

    # ------------------------------------------------------------------
    # State helpers
    # ------------------------------------------------------------------
    def clock_id_by_name(self, name: str) -> int:
        """Global clock index from a display name (see clock_names)."""
        try:
            return self._name_to_clock[name]
        except KeyError:
            raise ModelError(
                f"unknown clock {name!r} (known: "
                f"{self.clock_names[1:]})") from None

    def var_pos(self, name: str) -> int:
        try:
            return self._var_pos[name]
        except KeyError:
            raise ModelError(f"unknown variable {name!r}") from None

    def data_env(self, vals: Sequence[int]) -> dict[str, int]:
        """Evaluation environment for data guards and assignments.

        Memoized per valuation — callers must treat the returned dict
        as read-only (copy before mutating, as the explorer does for
        sequential assignment semantics).
        """
        key = tuple(vals)
        env = self._env_cache.get(key)
        if env is None:
            env = dict(self.constants)
            for name, value in zip(self.var_names, key):
                env[name] = value
            self._env_cache[key] = env
        return env

    def location_name(self, a_idx: int, loc_idx: int) -> str:
        return self.loc_names[a_idx][loc_idx]

    def state_description(self, state: SymbolicState) -> str:
        locs = ", ".join(
            f"{auto.name}.{self.loc_names[i][state.locs[i]]}"
            for i, auto in enumerate(self.automata))
        vals = ", ".join(
            f"{name}={value}"
            for name, value in zip(self.var_names, state.vals))
        zone = state.zone.as_text(self.clock_names)
        parts = [f"({locs})"]
        if vals:
            parts.append(f"[{vals}]")
        parts.append(f"{{{zone}}}")
        return " ".join(parts)

    # ------------------------------------------------------------------
    # Urgency / committedness
    # ------------------------------------------------------------------
    def any_committed(self, locs: Sequence[int]) -> bool:
        return any(self.loc_committed[a][locs[a]]
                   for a in range(self.n_automata))

    def any_urgent_location(self, locs: Sequence[int]) -> bool:
        return any(self.loc_urgent[a][locs[a]]
                   for a in range(self.n_automata))

    def urgent_sync_enabled(self, locs: Sequence[int],
                            env: Mapping[str, int]) -> bool:
        """True when a sync on an urgent channel is enabled.

        Urgent edges carry no clock guards (validated), so enabledness
        depends only on the discrete state.
        """
        for ch in self.urgent_channels:
            senders = []
            for a in range(self.n_automata):
                for edge in self.emit_edges[a][locs[a]].get(ch, ()):
                    if edge.guard_fn(env):
                        senders.append(a)
                        break
            if not senders:
                continue
            if self.broadcast[ch]:
                return True
            for a in senders:
                for b in range(self.n_automata):
                    if b == a:
                        continue
                    for edge in self.recv_edges[b][locs[b]].get(ch, ()):
                        if edge.guard_fn(env):
                            return True
        return False

    # ------------------------------------------------------------------
    # Moves: sets of edges that fire together
    # ------------------------------------------------------------------
    def moves(self, locs: Sequence[int],
              env: Mapping[str, int]) -> Iterator[tuple[CompiledEdge, ...]]:
        """All candidate discrete moves from a discrete configuration.

        A move is a tuple of edges firing atomically, sender first.
        Data guards of clock-guard-free participants are pre-filtered;
        clock guards (and remaining data guards) are checked by the
        caller against the zone.  Committed-location priority is
        enforced here.
        """
        committed = self.any_committed(locs)

        def allowed(*edges: CompiledEdge) -> bool:
            if not committed:
                return True
            return any(
                self.loc_committed[e.auto_idx][e.source_idx] for e in edges)

        # Internal moves.
        for a in range(self.n_automata):
            for edge in self.internal_edges[a][locs[a]]:
                if allowed(edge):
                    yield (edge,)

        # Synchronizations.
        for ch_idx in range(len(self.channels)):
            if self.broadcast[ch_idx]:
                yield from self._broadcast_moves(ch_idx, locs, env, allowed)
            else:
                yield from self._binary_moves(ch_idx, locs, allowed)

    def _binary_moves(self, ch_idx: int, locs: Sequence[int],
                      allowed) -> Iterator[tuple[CompiledEdge, ...]]:
        for a in range(self.n_automata):
            for sender in self.emit_edges[a][locs[a]].get(ch_idx, ()):
                for b in range(self.n_automata):
                    if b == a:
                        continue
                    for receiver in self.recv_edges[b][locs[b]].get(
                            ch_idx, ()):
                        if allowed(sender, receiver):
                            yield (sender, receiver)

    def _broadcast_moves(self, ch_idx: int, locs: Sequence[int],
                         env: Mapping[str, int],
                         allowed) -> Iterator[tuple[CompiledEdge, ...]]:
        """Broadcast: sender plus one enabled receiver per automaton.

        Receiver edges are clock-guard-free (validated), so their
        enabledness is exactly their data guard.  Every automaton with
        at least one enabled receiver *must* participate; when several
        of its receiver edges are enabled the choice is nondeterministic
        and we enumerate the combinations.
        """
        for a in range(self.n_automata):
            for sender in self.emit_edges[a][locs[a]].get(ch_idx, ()):
                groups: list[list[CompiledEdge]] = []
                for b in range(self.n_automata):
                    if b == a:
                        continue
                    enabled = [e for e
                               in self.recv_edges[b][locs[b]].get(ch_idx, ())
                               if e.guard_fn(env)]
                    if enabled:
                        groups.append(enabled)
                for combo in _product(groups):
                    move = (sender, *combo)
                    if allowed(*move):
                        yield move


def _product(groups: list[list[CompiledEdge]]) \
        -> Iterator[tuple[CompiledEdge, ...]]:
    """Cartesian product of receiver choices (usually singleton)."""
    if not groups:
        yield ()
        return
    head, *tail = groups
    for choice in head:
        for rest in _product(tail):
            yield (choice, *rest)
