"""Cross-scheme verdict memo — exploration reuse for the portfolio.

The Table-I sweep is massively redundant: schemes differing only in
buffer capacity produce bit-identical zone graphs whenever the
platform's timing keeps buffer occupancy strictly below *both*
capacities (the committed benchmarks show 16 grid points collapsing
to ~8 distinct explorations).  :class:`VerdictMemo` turns that
redundancy into reuse:

* Jobs are keyed by the **canonical capacity-erased hash** of their
  compiled PSM network (:func:`repro.ta.rename.canonical_network`)
  plus every knob that can change a verdict — query channels,
  deadlines, backend, abstraction, state budget, fused mode (the
  portfolio builds the key; the memo stores whatever tuple it gets).
* A completed job commits a :class:`MemoEntry` carrying its verified
  results **and an occupancy certificate**: the maximum value each
  capacity variable (and hence each erased comparison's left-hand
  sum) attained over the *complete* reachable state space of the
  deadline sweep.
* A later job with the same key hits iff the erasure was semantically
  inert — either every erased literal matches the donor's exactly
  (the networks are syntactically identical), or the certificate
  shows each erased site's sum stayed strictly below both the donor's
  and the candidate's literal.  In the latter case every erased
  comparison is uniformly decided the same way in both networks
  (``<``/``<=`` true, ``==``/``>``/``>=`` false, ``!=`` true), the
  networks are bisimilar by induction over transitions, and verdicts,
  bounds, suprema and the states/transitions tallies all coincide —
  the memoized row is *exact*, not approximate.

The memo is content-addressed and thread-safe; the in-flight map
lets concurrent portfolio coordinators dedupe work the same way the
PIM obligation cache does (first claimant computes, the rest wait and
re-check).  Entries are plain picklable data so the process executor
can populate the parent-side memo from worker rows.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Mapping

from repro.ta.rename import CanonicalModel, ErasedSite, canonical_network

__all__ = [
    "InFlight",
    "MemoEntry",
    "VerdictMemo",
    "capacity_bounds",
    "occupancy_targets",
    "psm_canonical_model",
]


def capacity_bounds(psm) -> dict[str, int]:
    """Map each of a PSM's buffer-capacity variables to its capacity.

    These are the count/staged variables of every interface channel;
    their declared ``hi`` *is* the effective capacity the transform
    assigned (Section IV's buffered communication).  The map doubles
    as the erasure spec for :func:`canonical_network` and as the
    watch-list for the occupancy certificate.
    """
    bounds: dict[str, int] = {}
    for vars_ in (*psm.input_vars.values(), *psm.output_vars.values()):
        for name in (vars_.count, vars_.staged):
            if name:
                bounds[name] = psm.network.variable(name).hi
    return bounds


def psm_canonical_model(psm) -> CanonicalModel:
    """Canonical capacity-erased form of a compiled PSM network."""
    return canonical_network(psm.network,
                             erase_capacities=capacity_bounds(psm))


def occupancy_targets(model: CanonicalModel,
                      ) -> tuple[tuple[str, ...], ...]:
    """The watch list certifying ``model``'s erasure: one target per
    distinct erased left-hand side, tracked as the *sum* of its
    variables (``check_many``'s ``track_maxima`` accepts tuples).
    Tracking the sum directly matters: ``count`` and ``staged`` may
    each reach 1 without their sum ever reaching 2, and adding
    per-variable maxima would needlessly fail the certificate."""
    return tuple(sorted({site.variables for site in model.erased}))


@dataclass
class MemoEntry:
    """One completed job's reusable verdicts plus its certificate.

    ``maxima`` maps each occupancy target — a tuple of the donor's
    *original* variable names, one per distinct erased left-hand
    side (:func:`occupancy_targets`) — to the maximum its sum
    attained over the deadline sweep's complete reachable state
    space; ``None`` when the sweep stopped early (then only
    literal-identical candidates may reuse the entry).
    The result objects are the donor's own (immutable by convention);
    memoized rows share them, so witness strings may mention the
    donor's literals — verdicts, bounds and tallies are what the
    bisimulation argument transfers.
    """

    donor: str
    erased: tuple[ErasedSite, ...]
    maxima: Mapping[tuple[str, ...], int] | None
    constraints: object
    original: object
    relaxed: object
    symbolic: Mapping[str, object] = field(default_factory=dict)

    def covers(self, model: CanonicalModel) -> bool:
        """Is reusing this entry for ``model`` semantically exact?"""
        if len(self.erased) != len(model.erased):
            # Same digest implies positionally equal site lists; a
            # mismatch means the caller keyed incompatible models.
            return False
        if all(donor.literal == cand.literal for donor, cand
               in zip(self.erased, model.erased)):
            return True
        if self.maxima is None:
            return False
        for donor, cand in zip(self.erased, model.erased):
            upper = self.maxima.get(donor.variables)
            if upper is None:
                return False
            if not (upper < donor.literal and upper < cand.literal):
                return False
        return True


class InFlight:
    """One key's in-flight claim: a completion event plus the outcome.

    ``failed`` is the failure sentinel of the claim/commit protocol:
    ``True`` once the owner released the key *without publishing an
    entry* — it crashed, blew its budget, its worker died, or its
    result simply was not memoizable.  Either way no entry is coming,
    so a woken waiter must fall back to exploring itself instead of
    re-claiming (which would serialize the survivors behind a new
    leader, or — before this flag existed — hang forever on an owner
    that never committed).
    """

    __slots__ = ("event", "failed")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.failed = False


class VerdictMemo:
    """Thread-safe content-addressed store of :class:`MemoEntry`.

    Several entries may share a key (e.g. an incomplete-certificate
    donor followed by a certified one); :meth:`find` returns the
    first that covers the candidate.  The in-flight protocol mirrors
    the portfolio's PIM obligation cache: :meth:`claim` either makes
    the caller the computing owner (returns ``None``) or hands back
    an :class:`InFlight` record to wait on before re-checking.  The
    owner *must* call :meth:`commit` — with ``entry=None`` on any
    failure — or every waiter deadlocks; the portfolio does so in a
    ``finally``.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._entries: dict[tuple, list[MemoEntry]] = {}
        self._inflight: dict[tuple, InFlight] = {}
        #: Jobs answered from the memo.
        self.hits = 0
        #: Jobs that ran a real exploration (memo enabled).
        self.misses = 0
        #: Claims released without an entry (owner failed or result
        #: was not memoizable); waiters fell back to exploring.
        self.failures = 0

    def __len__(self) -> int:
        with self._lock:
            return sum(len(entries)
                       for entries in self._entries.values())

    # Storage hooks — the service's BoundedVerdictMemo overrides these
    # to add LRU bookkeeping.  Both are called with ``_lock`` held.

    def _store(self, key: tuple, entry: MemoEntry) -> None:
        self._entries.setdefault(key, []).append(entry)

    def _touch(self, key: tuple) -> None:
        """A hit on ``key`` (recency hook; no-op in the base memo)."""

    def find(self, key: tuple,
             model: CanonicalModel) -> MemoEntry | None:
        """First committed entry whose reuse is exact for ``model``."""
        with self._lock:
            for entry in self._entries.get(key, ()):
                if entry.covers(model):
                    self.hits += 1
                    self._touch(key)
                    return entry
        return None

    def claim(self, key: tuple) -> InFlight | None:
        """Become the owner computing ``key`` (``None``) or get the
        current owner's :class:`InFlight` record to wait on."""
        with self._lock:
            record = self._inflight.get(key)
            if record is None:
                self._inflight[key] = InFlight()
                self.misses += 1
                return None
            return record

    def commit(self, key: tuple, entry: MemoEntry | None) -> None:
        """Publish the owner's result and release every waiter.

        ``entry=None`` means no entry is coming (failure or a
        non-memoizable result): the in-flight record is marked
        ``failed`` before its event is set, so waiters wake into the
        explore-yourself fallback instead of re-claiming.
        """
        with self._lock:
            if entry is not None:
                self._store(key, entry)
            record = self._inflight.pop(key, None)
            if entry is None and record is not None:
                self.failures += 1
        if record is not None:
            record.failed = entry is None
            record.event.set()

    def record(self, key: tuple, entry: MemoEntry) -> None:
        """Commit an entry without the claim/owner protocol (the
        process executor's parent populates the memo from finished
        rows, and fallback explorers publish theirs; appending is
        safe regardless of who currently owns the key)."""
        with self._lock:
            self._store(key, entry)

    def stats(self) -> dict[str, int]:
        return {"entries": len(self), "hits": self.hits,
                "misses": self.misses, "failures": self.failures}
