"""Trace formatting helpers.

The explorer reports counterexample traces as flat label lists; these
helpers turn them into the numbered, indented listings used by the CLI
and the Fig. 4 behavior benchmark.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_trace", "trace_channels"]


def format_trace(labels: Sequence[str] | None, *,
                 indent: str = "  ", max_steps: int | None = None) -> str:
    """Numbered multi-line rendering of a transition-label trace."""
    if labels is None:
        return f"{indent}(trace recording was disabled)"
    if not labels:
        return f"{indent}(initial state already satisfies the property)"
    shown = labels if max_steps is None else labels[:max_steps]
    lines = [f"{indent}{step:3d}. {label}"
             for step, label in enumerate(shown, start=1)]
    if max_steps is not None and len(labels) > max_steps:
        lines.append(f"{indent}     ... {len(labels) - max_steps} more")
    return "\n".join(lines)


def trace_channels(labels: Iterable[str]) -> list[str]:
    """Extract the synchronization channel sequence from a trace.

    Sync labels have the form ``"A: src --[g] ch! {u}--> dst || B: ..."``;
    the channel name is recovered from the first ``ch!`` occurrence.
    Internal transitions contribute nothing.
    """
    channels: list[str] = []
    for label in labels:
        for raw in label.replace("||", " ").split():
            token = raw.lstrip("-[(").rstrip("->")
            if token.endswith("!") and len(token) > 1:
                channels.append(token[:-1])
                break
    return channels
