"""Cross-model portfolio verification: whole scheme sweeps, one pool.

The paper's workflow verifies one implementation scheme at a time:
transform the PIM for the chosen scheme, check the Section-V
constraints, derive the Lemma-1/2 bounds, re-verify the deadline on
the PSM.  Design-space exploration — "which buffer size / polling
interval / period combination still meets REQ1?" — needs that whole
pipeline over *many* candidate schemes, and the schemes are
independent, so the verifier can be run as a many-tenant service
instead of a single-model checker.

:class:`PortfolioVerifier` schedules N ``(PIM, scheme, queries)`` jobs
concurrently:

* **One shared worker pool.**  Every job's zone-graph sweeps run over
  a single :class:`~repro.mc.parallel.WorkStealingPool` (threaded via
  :func:`~repro.mc.parallel.exploration_context`), so expansion waves
  from different schemes interleave across the same workers instead of
  each job spawning its own pool.  Python-only phases of one job
  overlap with numpy kernel phases of another.
* **One shared zone-intern table.**  Candidate PSMs differ only in
  platform parameters, so their zone graphs overlap heavily; interning
  across jobs dedups that storage (:mod:`repro.zones.intern`).
* **Deterministic job-ordered commit.**  Results are committed into a
  slot per submission index; :meth:`PortfolioVerifier.run` returns
  rows in job order no matter which scheme finishes first.
* **Per-job budgets and fault isolation.**  Each job carries its own
  ``max_states`` budget; a job that exhausts it (or whose scheme is
  invalid for the PIM) becomes a structured failure row, and every
  other job completes normally.
* **Shared PIM obligations.**  Jobs over the same PIM and requirement
  share step 1 (``PIM ⊨ P(Δ)``) and the Lemma-2 internal supremum —
  both are scheme-independent, so the portfolio computes each distinct
  obligation once (the values are exactly what every per-scheme run
  would produce; disable with ``share_pim_obligations=False``).

Bit-identity contract: in the default mode each job runs *exactly* the
sweeps of :meth:`repro.core.framework.TimingVerificationFramework.verify`
— same constraint pass, same fused step-5/6 deadline sweep, same
optional suprema batch — so every bound, verdict, sup and per-sweep
states/transitions tally equals the sequential per-scheme run, for
every worker count and backend (``tests/test_portfolio.py`` pins the
matrix).  ``fused=True`` additionally compiles each job's deadline and
suprema queries into **one** :func:`~repro.mc.queries.check_many`
sweep: verdicts, bounds and sup values are unchanged, but the tallies
are those of the shared sweep (documented divergence, same as
``check_many`` itself).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence, TYPE_CHECKING

from repro.mc.explorer import ExplorationLimit
from repro.mc.parallel import (
    WorkStealingPool,
    exploration_context,
    resolve_jobs,
)
from repro.zones.intern import ZoneInternTable

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids core cycle
    from repro.core.framework import VerificationReport
    from repro.core.pim import PIM
    from repro.core.scheme import ImplementationScheme
    from repro.mc.observers import BoundedResponseResult, DelayBound

__all__ = [
    "PortfolioJob",
    "PortfolioOutcome",
    "PortfolioResult",
    "PortfolioVerifier",
    "portfolio_jobs",
]


@dataclass(frozen=True)
class PortfolioJob:
    """One tenant of the portfolio: a (PIM, scheme, requirement) triple.

    ``max_states`` is this job's private exploration budget (``None``
    inherits the verifier default); exhausting it fails only this job.
    """

    name: str
    pim: "PIM"
    scheme: "ImplementationScheme"
    input_channel: str
    output_channel: str
    deadline_ms: int
    min_interarrival_ms: int | None = None
    measure_suprema: bool = False
    include_progress: bool = False
    max_states: int | None = None


def portfolio_jobs(pim: "PIM",
                   schemes: Sequence["ImplementationScheme"], *,
                   input_channel: str, output_channel: str,
                   deadline_ms: int,
                   **job_kwargs) -> list[PortfolioJob]:
    """One job per scheme, named after the scheme (grid sweeps)."""
    return [
        PortfolioJob(name=scheme.name, pim=pim, scheme=scheme,
                     input_channel=input_channel,
                     output_channel=output_channel,
                     deadline_ms=deadline_ms, **job_kwargs)
        for scheme in schemes
    ]


@dataclass
class PortfolioResult:
    """Structured verification row for one scheme of the portfolio."""

    index: int
    name: str
    scheme: "ImplementationScheme"
    deadline_ms: int
    #: ``"ok"``, ``"budget-exceeded"`` or ``"error"``.
    status: str = "ok"
    error: str | None = None
    #: The full per-scheme report (partial when the job failed).
    report: "VerificationReport | None" = None
    wall_seconds: float = 0.0

    # -- flattened row accessors ---------------------------------------
    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def bounds(self):
        return self.report.bounds if self.report else None

    @property
    def relaxed_deadline_ms(self) -> int | None:
        return self.bounds.relaxed if self.bounds else None

    @property
    def constraints_hold(self) -> bool | None:
        if self.report is None or self.report.constraints is None:
            return None
        return self.report.constraints.all_hold

    @property
    def original_holds(self) -> bool | None:
        """``PSM ⊨ P(Δ_mc)`` — pass/fail against the *original* deadline."""
        result = self.report.psm_original_result if self.report else None
        return result.holds if result is not None else None

    @property
    def relaxed_holds(self) -> bool | None:
        """``PSM ⊨ P(Δ'_mc)`` — pass/fail against the Lemma-2 deadline."""
        result = self.report.psm_relaxed_result if self.report else None
        return result.holds if result is not None else None

    @property
    def guarantee(self) -> bool:
        """Theorem 1's conclusion for this scheme."""
        return bool(self.report
                    and self.report.implementation_guarantee)

    @property
    def sups(self) -> "dict[str, DelayBound]":
        return self.report.symbolic if self.report else {}

    @property
    def states(self) -> int | None:
        """States of this job's PSM deadline sweep (steps 5+6)."""
        result = self.report.psm_relaxed_result if self.report else None
        return result.visited if result is not None else None

    @property
    def transitions(self) -> int | None:
        result = self.report.psm_relaxed_result if self.report else None
        return result.transitions if result is not None else None

    def row(self) -> dict:
        """JSON-ready summary (the benchmark record's shape)."""
        out = {
            "name": self.name,
            "status": self.status,
            "deadline_ms": self.deadline_ms,
            "relaxed_ms": self.relaxed_deadline_ms,
            "constraints_hold": self.constraints_hold,
            "original_holds": self.original_holds,
            "relaxed_holds": self.relaxed_holds,
            "guarantee": self.guarantee,
            "states": self.states,
            "transitions": self.transitions,
            "seconds": round(self.wall_seconds, 4),
        }
        if self.error:
            out["error"] = self.error
        if self.sups:
            out["sups"] = {name: str(bound)
                           for name, bound in self.sups.items()}
        return out

    def summary(self) -> str:
        if not self.ok:
            return f"{self.name}: {self.status} ({self.error})"
        verdict = "guaranteed" if self.guarantee else "NOT guaranteed"
        orig = {True: "holds", False: "fails", None: "?"}[
            self.original_holds]
        return (f"{self.name}: Δ'={self.relaxed_deadline_ms}ms "
                f"P(Δ') {verdict}, P({self.deadline_ms}) {orig}, "
                f"{self.states} states, {self.wall_seconds:.2f}s")


@dataclass
class PortfolioOutcome:
    """All rows of one portfolio run, in submission order."""

    results: list[PortfolioResult] = field(default_factory=list)
    #: Resolved worker-pool width (``None`` = sequential engine).
    jobs: int | None = None
    #: Scheme pipelines that ran concurrently.
    concurrency: int = 1
    fused: bool = False
    wall_seconds: float = 0.0

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index) -> PortfolioResult:
        return self.results[index]

    def __len__(self) -> int:
        return len(self.results)

    @property
    def all_ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def guaranteed(self) -> list[PortfolioResult]:
        """Schemes Theorem 1 accepts (constraints + relaxed deadline)."""
        return [r for r in self.results if r.guarantee]

    def summary(self) -> str:
        lines = [
            f"portfolio: {len(self.results)} schemes, "
            f"{len(self.guaranteed)} guaranteed, "
            f"workers={self.jobs or 'sequential'} "
            f"concurrency={self.concurrency}, "
            f"{self.wall_seconds:.2f}s",
        ]
        lines.extend(f"  {result.summary()}" for result in self.results)
        return "\n".join(lines)


class _SharedObligation:
    """Once-per-key computation shared across portfolio jobs."""

    __slots__ = ("event", "value", "error")

    def __init__(self):
        self.event = threading.Event()
        self.value = None
        self.error: BaseException | None = None


class PortfolioVerifier:
    """Verify a portfolio of implementation schemes concurrently.

    jobs:
        Worker-pool width shared by every sweep (resolved like every
        other ``jobs=`` in the library: explicit > ``set_default_jobs``
        > ``REPRO_JOBS``; ``None`` keeps the sequential engine and runs
        the jobs one after another).
    concurrency:
        How many scheme pipelines run at once (default: the resolved
        worker count).  Coordinator threads are cheap; the pool bounds
        the actual parallel zone work.
    max_states:
        Default per-job exploration budget
        (:class:`PortfolioJob.max_states` overrides it per scheme).
    fused:
        Compile each job's deadline + suprema queries into one
        :func:`~repro.mc.queries.check_many` sweep (identical verdicts
        and sups; shared-sweep tallies).  Off by default so every row
        is bit-identical to the per-scheme sequential ``verify``.
    intern:
        Zone-interning policy shared by all jobs: ``True`` (a table
        scoped to each :meth:`run` call — see ``scoped_intern``),
        ``False``, or a private
        :class:`~repro.zones.intern.ZoneInternTable`.  Interning is a
        property of the sharded engine, so with ``jobs=None`` (the
        sequential explorer, which never interns) this setting has no
        effect — exactly as everywhere else in the library.
    scoped_intern:
        With ``intern=True`` (the default), give every :meth:`run`
        call its own fresh intern table instead of the process-global
        one.  Cross-job dedup inside the run is unchanged, but a
        long-lived CLI/service process sweeping many grids no longer
        accumulates zones from prior portfolios.  Set to ``False`` to
        restore the global table (cross-run dedup at the cost of
        unbounded-until-reset growth); an explicit ``intern`` table is
        always respected as-is.
    share_pim_obligations:
        Compute each distinct (PIM, requirement) obligation — step 1
        and the internal supremum — once instead of once per scheme.
    abstraction:
        Extrapolation operator for every sweep of every job
        (``"extra_m"``/``"extra_lu"``; ``None`` defers to
        ``set_abstraction``/``REPRO_ABSTRACTION``).  Rows are
        verdict-, bound- and sup-identical either way; ``extra_lu``
        shrinks the per-scheme zone graphs — the blow-up corners of a
        grid most of all.
    """

    def __init__(self, *, jobs: int | None = None,
                 concurrency: int | None = None,
                 max_states: int = 1_000_000,
                 fused: bool = False,
                 intern: bool | ZoneInternTable = True,
                 scoped_intern: bool = True,
                 share_pim_obligations: bool = True,
                 abstraction: str | None = None):
        if concurrency is not None and concurrency < 1:
            raise ValueError(
                f"concurrency must be >= 1, got {concurrency}")
        self.jobs = jobs
        self.concurrency = concurrency
        self.max_states = max_states
        self.fused = fused
        self.intern = intern
        self.scoped_intern = scoped_intern
        self.share_pim_obligations = share_pim_obligations
        self.abstraction = abstraction
        self._pim_cache: dict[tuple, _SharedObligation] = {}
        self._pim_lock = threading.Lock()

    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[PortfolioJob], *,
            on_result: Callable[[PortfolioResult], None] | None = None,
            ) -> PortfolioOutcome:
        """Verify every job; rows come back in submission order.

        ``on_result`` (optional) observes rows as they complete — in
        *completion* order, from the coordinator thread that finished
        the job; the returned outcome stays job-ordered either way.
        An exception raised by the callback never disturbs the jobs
        themselves: every row still completes, and the first callback
        error re-raises after the run (identically in the inline and
        threaded schedulers — a dying observer must not orphan
        coordinator threads or leave half-filled outcomes).
        """
        job_list = list(jobs)
        started = time.perf_counter()
        resolved = resolve_jobs(self.jobs)
        width = resolved or 0
        pool = WorkStealingPool(width) if width > 1 else None
        concurrency = self.concurrency or width or 1
        concurrency = max(1, min(concurrency, len(job_list) or 1))
        results: list[PortfolioResult | None] = [None] * len(job_list)
        callback_errors: list[BaseException] = []
        self._pim_cache.clear()
        # Interning scope: a fresh table per run (default) keeps
        # long-lived processes from accumulating zones across grids;
        # ``None`` defers to the explorer default (the global table).
        if self.intern is True:
            run_intern = (ZoneInternTable() if self.scoped_intern
                          else None)
        else:
            run_intern = self.intern

        def execute(index: int) -> None:
            result = self._run_one(index, job_list[index], resolved,
                                   pool, run_intern)
            results[index] = result
            if on_result is not None:
                try:
                    on_result(result)
                except Exception as exc:
                    if not callback_errors:
                        callback_errors.append(exc)

        try:
            if concurrency == 1:
                for index in range(len(job_list)):
                    execute(index)
            else:
                self._run_threaded(len(job_list), concurrency, execute)
        finally:
            if pool is not None:
                pool.shutdown()
        if callback_errors:
            raise callback_errors[0]
        return PortfolioOutcome(
            results=list(results), jobs=resolved,
            concurrency=concurrency, fused=self.fused,
            wall_seconds=time.perf_counter() - started)

    def verify_schemes(self, pim: "PIM",
                       schemes: Sequence["ImplementationScheme"], *,
                       input_channel: str, output_channel: str,
                       deadline_ms: int,
                       **job_kwargs) -> PortfolioOutcome:
        """Grid front door: one job per scheme, then :meth:`run`."""
        return self.run(portfolio_jobs(
            pim, schemes, input_channel=input_channel,
            output_channel=output_channel, deadline_ms=deadline_ms,
            **job_kwargs))

    # ------------------------------------------------------------------
    @staticmethod
    def _run_threaded(count: int, concurrency: int,
                      execute: Callable[[int], None]) -> None:
        """Drain job indices in order over ``concurrency`` threads.

        Per-job failures become rows inside ``execute``; anything
        that still escapes it (``SystemExit``/``KeyboardInterrupt``
        or a scheduler bug) is *fatal*: draining stops and the first
        such error re-raises here — exactly what the inline scheduler
        does — rather than dying silently on a coordinator thread and
        returning an outcome with ``None`` holes.
        """
        cursor = {"next": 0}
        lock = threading.Lock()
        fatal: list[BaseException] = []

        def drain() -> None:
            while True:
                with lock:
                    index = cursor["next"]
                    if fatal or index >= count:
                        return
                    cursor["next"] = index + 1
                try:
                    execute(index)
                except BaseException as exc:
                    with lock:
                        if not fatal:
                            fatal.append(exc)
                    return

        threads = [threading.Thread(target=drain,
                                    name=f"portfolio-job-{i}")
                   for i in range(concurrency)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if fatal:
            raise fatal[0]

    def _run_one(self, index: int, job: PortfolioJob,
                 resolved: int | None,
                 pool: WorkStealingPool | None,
                 intern: bool | ZoneInternTable | None,
                 ) -> PortfolioResult:
        from repro.core.framework import (
            TimingVerificationFramework,
            VerificationReport,
        )

        started = time.perf_counter()
        report = VerificationReport(
            input_channel=job.input_channel,
            output_channel=job.output_channel,
            deadline_ms=job.deadline_ms)
        result = PortfolioResult(
            index=index, name=job.name, scheme=job.scheme,
            deadline_ms=job.deadline_ms, report=report)
        framework = TimingVerificationFramework(
            max_states=job.max_states or self.max_states, jobs=resolved,
            abstraction=self.abstraction)
        try:
            with exploration_context(pool=pool, intern=intern):
                self._verify_job(job, framework, report)
        except ExplorationLimit as exc:
            result.status = "budget-exceeded"
            result.error = str(exc)
        except Exception as exc:
            # Fault isolation is the contract: *any* job failure —
            # invalid scheme (SchemeError/ValueError), model error,
            # or an outright bug on a malformed job — must become a
            # structured row, never a dead coordinator thread leaving
            # a None slot behind.
            result.status = "error"
            result.error = f"{type(exc).__name__}: {exc}"
        result.wall_seconds = time.perf_counter() - started
        return result

    def _verify_job(self, job: PortfolioJob, framework,
                    report: "VerificationReport") -> None:
        """The Section-VI pipeline for one scheme (mutates ``report``).

        Mirrors ``TimingVerificationFramework.verify`` step by step;
        the only reordering is that the scheme-independent PIM
        obligations may come from the shared cache.
        """
        from repro.core.delays import bounds_from_internal

        pim_result, internal = self._pim_obligations(job, framework)
        report.pim_result = pim_result
        psm = framework.transform(job.pim, job.scheme)
        report.psm = psm
        report.constraints = framework.check_constraints(
            psm, min_interarrival_ms=job.min_interarrival_ms,
            include_progress=job.include_progress)
        report.bounds = bounds_from_internal(
            job.scheme, job.input_channel, job.output_channel,
            internal)
        deadlines = [job.deadline_ms, report.bounds.relaxed]
        if self.fused:
            self._fused_psm_queries(job, framework, report, psm,
                                    deadlines)
        else:
            report.psm_original_result, report.psm_relaxed_result = \
                framework.verify_psm_deadlines(
                    psm, job.input_channel, job.output_channel,
                    deadlines)
            if job.measure_suprema:
                report.symbolic = framework.measure_psm(
                    psm, job.input_channel, job.output_channel)

    def _fused_psm_queries(self, job: PortfolioJob, framework, report,
                           psm, deadlines: list[int]) -> None:
        """One ``check_many`` sweep for steps 5+6 (+ optional sups)."""
        from repro.mc.queries import (
            BoundedResponseQuery,
            ResponseSupQuery,
            check_many,
        )

        queries: list[object] = [
            BoundedResponseQuery(job.input_channel, job.output_channel,
                                 deadline)
            for deadline in deadlines
        ]
        if job.measure_suprema:
            queries += [
                ResponseSupQuery(job.input_channel,
                                 psm.io_name(job.input_channel)),
                ResponseSupQuery(psm.io_name(job.output_channel),
                                 job.output_channel),
                ResponseSupQuery(job.input_channel, job.output_channel),
            ]
        outcome = check_many(
            psm.network, queries, max_states=framework.max_states,
            jobs=framework.jobs, abstraction=framework.abstraction)
        report.psm_original_result = outcome[0]
        report.psm_relaxed_result = outcome[1]
        if job.measure_suprema:
            report.symbolic = {
                "Input-Delay": outcome[2],
                "Output-Delay": outcome[3],
                "M-C delay": outcome[4],
            }

    # ------------------------------------------------------------------
    def _pim_obligations(self, job: PortfolioJob, framework):
        """Step 1 + the Lemma-2 internal sup, deduped across jobs."""
        from repro.core.delays import internal_delay

        def compute():
            pim_result = framework.verify_pim(
                job.pim, job.input_channel, job.output_channel,
                job.deadline_ms)
            internal = internal_delay(
                job.pim, job.input_channel, job.output_channel,
                max_states=framework.max_states, jobs=framework.jobs,
                abstraction=framework.abstraction)
            return pim_result, internal

        if not self.share_pim_obligations:
            return compute()
        key = (id(job.pim), job.input_channel, job.output_channel,
               job.deadline_ms, framework.max_states)
        with self._pim_lock:
            entry = self._pim_cache.get(key)
            owner = entry is None
            if owner:
                entry = self._pim_cache[key] = _SharedObligation()
        if owner:
            try:
                entry.value = compute()
            except BaseException as exc:
                entry.error = exc
                raise
            finally:
                entry.event.set()
            return entry.value
        entry.event.wait()
        if entry.error is not None:
            raise entry.error
        return entry.value
