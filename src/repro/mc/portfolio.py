"""Cross-model portfolio verification: whole scheme sweeps, one pool.

The paper's workflow verifies one implementation scheme at a time:
transform the PIM for the chosen scheme, check the Section-V
constraints, derive the Lemma-1/2 bounds, re-verify the deadline on
the PSM.  Design-space exploration — "which buffer size / polling
interval / period combination still meets REQ1?" — needs that whole
pipeline over *many* candidate schemes, and the schemes are
independent, so the verifier can be run as a many-tenant service
instead of a single-model checker.

:class:`PortfolioVerifier` schedules N ``(PIM, scheme, queries)`` jobs
concurrently:

* **Two job-level executors.**  The default ``executor="thread"``
  runs scheme pipelines on coordinator threads over one shared
  worker pool (below) — right for the numpy backend, whose batched
  kernels release the GIL.  ``executor="process"`` (CLI
  ``--executor``, env ``REPRO_EXECUTOR``) partitions whole jobs
  across ``jobs`` worker *processes* via picklable job specs — true
  multi-core for the GIL-bound pure-Python reference backend.  Same
  rows either way.
* **One shared worker pool** (thread executor).  Every job's
  zone-graph sweeps run over a single
  :class:`~repro.mc.parallel.WorkStealingPool` (threaded via
  :func:`~repro.mc.parallel.exploration_context`), so expansion waves
  from different schemes interleave across the same workers instead of
  each job spawning its own pool.  Python-only phases of one job
  overlap with numpy kernel phases of another.
* **One shared zone-intern table.**  Candidate PSMs differ only in
  platform parameters, so their zone graphs overlap heavily; interning
  across jobs dedups that storage (:mod:`repro.zones.intern`).
* **Deterministic job-ordered commit.**  Results are committed into a
  slot per submission index; :meth:`PortfolioVerifier.run` returns
  rows in job order no matter which scheme finishes first.
* **Per-job budgets and fault isolation.**  Each job carries its own
  ``max_states`` budget; a job that exhausts it (or whose scheme is
  invalid for the PIM) becomes a structured failure row, and every
  other job completes normally.
* **Shared PIM obligations.**  Jobs over the same PIM and requirement
  share step 1 (``PIM ⊨ P(Δ)``) and the Lemma-2 internal supremum —
  both are scheme-independent, so the portfolio computes each distinct
  obligation once (the values are exactly what every per-scheme run
  would produce; disable with ``share_pim_obligations=False``).

Bit-identity contract: in the default mode each job runs *exactly* the
sweeps of :meth:`repro.core.framework.TimingVerificationFramework.verify`
— same constraint pass, same fused step-5/6 deadline sweep, same
optional suprema batch — so every bound, verdict, sup and per-sweep
states/transitions tally equals the sequential per-scheme run, for
every worker count, backend *and executor*
(``tests/test_portfolio.py`` pins the matrix).  ``fused=True`` additionally compiles each job's deadline and
suprema queries into **one** :func:`~repro.mc.queries.check_many`
sweep: verdicts, bounds and sup values are unchanged, but the tallies
are those of the shared sweep (documented divergence, same as
``check_many`` itself).
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence, TYPE_CHECKING

from repro.mc.explorer import ExplorationLimit
from repro.mc.parallel import (
    EngineConfig,
    WorkStealingPool,
    exploration_context,
    resolve_jobs,
)
from repro.zones.intern import ZoneInternTable

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids core cycle
    from repro.core.framework import VerificationReport
    from repro.core.pim import PIM
    from repro.core.scheme import ImplementationScheme
    from repro.mc.observers import BoundedResponseResult, DelayBound

__all__ = [
    "ENV_EXECUTOR",
    "PortfolioJob",
    "PortfolioOutcome",
    "PortfolioResult",
    "PortfolioVerifier",
    "portfolio_jobs",
    "resolve_executor",
]

#: Environment override for the job-level executor (like ``REPRO_JOBS``
#: for the worker count): ``thread`` or ``process``.
ENV_EXECUTOR = "REPRO_EXECUTOR"

_EXECUTORS = ("thread", "process")


def resolve_executor(executor: str | None = None) -> str:
    """Resolve an executor spec: explicit > ``REPRO_EXECUTOR`` > thread.

    ``thread`` schedules scheme pipelines on coordinator threads over
    one shared :class:`WorkStealingPool` (zone-level parallelism);
    ``process`` partitions whole jobs across worker *processes* — true
    multi-core for the GIL-bound pure-Python reference backend.
    """
    if executor is None:
        executor = os.environ.get(ENV_EXECUTOR, "").strip() or "thread"
    if executor not in _EXECUTORS:
        raise ValueError(
            f"unknown portfolio executor {executor!r} (choose from: "
            f"{', '.join(_EXECUTORS)}; also settable via "
            f"{ENV_EXECUTOR})")
    return executor


@dataclass(frozen=True)
class PortfolioJob:
    """One tenant of the portfolio: a (PIM, scheme, requirement) triple.

    ``max_states`` is this job's private exploration budget (``None``
    inherits the verifier default); exhausting it fails only this job.
    """

    name: str
    pim: "PIM"
    scheme: "ImplementationScheme"
    input_channel: str
    output_channel: str
    deadline_ms: int
    min_interarrival_ms: int | None = None
    measure_suprema: bool = False
    include_progress: bool = False
    max_states: int | None = None


def portfolio_jobs(pim: "PIM",
                   schemes: Sequence["ImplementationScheme"], *,
                   input_channel: str, output_channel: str,
                   deadline_ms: int,
                   **job_kwargs) -> list[PortfolioJob]:
    """One job per scheme, named after the scheme (grid sweeps)."""
    return [
        PortfolioJob(name=scheme.name, pim=pim, scheme=scheme,
                     input_channel=input_channel,
                     output_channel=output_channel,
                     deadline_ms=deadline_ms, **job_kwargs)
        for scheme in schemes
    ]


@dataclass
class PortfolioResult:
    """Structured verification row for one scheme of the portfolio."""

    index: int
    name: str
    scheme: "ImplementationScheme"
    deadline_ms: int
    #: ``"ok"``, ``"budget-exceeded"`` or ``"error"``.
    status: str = "ok"
    error: str | None = None
    #: The full per-scheme report (partial when the job failed).
    report: "VerificationReport | None" = None
    wall_seconds: float = 0.0

    # -- flattened row accessors ---------------------------------------
    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def bounds(self):
        return self.report.bounds if self.report else None

    @property
    def relaxed_deadline_ms(self) -> int | None:
        return self.bounds.relaxed if self.bounds else None

    @property
    def constraints_hold(self) -> bool | None:
        if self.report is None or self.report.constraints is None:
            return None
        return self.report.constraints.all_hold

    @property
    def original_holds(self) -> bool | None:
        """``PSM ⊨ P(Δ_mc)`` — pass/fail against the *original* deadline."""
        result = self.report.psm_original_result if self.report else None
        return result.holds if result is not None else None

    @property
    def relaxed_holds(self) -> bool | None:
        """``PSM ⊨ P(Δ'_mc)`` — pass/fail against the Lemma-2 deadline."""
        result = self.report.psm_relaxed_result if self.report else None
        return result.holds if result is not None else None

    @property
    def guarantee(self) -> bool:
        """Theorem 1's conclusion for this scheme."""
        return bool(self.report
                    and self.report.implementation_guarantee)

    @property
    def sups(self) -> "dict[str, DelayBound]":
        return self.report.symbolic if self.report else {}

    @property
    def states(self) -> int | None:
        """States of this job's PSM deadline sweep (steps 5+6)."""
        result = self.report.psm_relaxed_result if self.report else None
        return result.visited if result is not None else None

    @property
    def transitions(self) -> int | None:
        result = self.report.psm_relaxed_result if self.report else None
        return result.transitions if result is not None else None

    def row(self) -> dict:
        """JSON-ready summary (the benchmark record's shape)."""
        out = {
            "name": self.name,
            "status": self.status,
            "deadline_ms": self.deadline_ms,
            "relaxed_ms": self.relaxed_deadline_ms,
            "constraints_hold": self.constraints_hold,
            "original_holds": self.original_holds,
            "relaxed_holds": self.relaxed_holds,
            "guarantee": self.guarantee,
            "states": self.states,
            "transitions": self.transitions,
            "seconds": round(self.wall_seconds, 4),
        }
        if self.error:
            out["error"] = self.error
        if self.sups:
            out["sups"] = {name: str(bound)
                           for name, bound in self.sups.items()}
        return out

    def summary(self) -> str:
        if not self.ok:
            return f"{self.name}: {self.status} ({self.error})"
        verdict = "guaranteed" if self.guarantee else "NOT guaranteed"
        orig = {True: "holds", False: "fails", None: "?"}[
            self.original_holds]
        return (f"{self.name}: Δ'={self.relaxed_deadline_ms}ms "
                f"P(Δ') {verdict}, P({self.deadline_ms}) {orig}, "
                f"{self.states} states, {self.wall_seconds:.2f}s")


@dataclass
class PortfolioOutcome:
    """All rows of one portfolio run, in submission order."""

    results: list[PortfolioResult] = field(default_factory=list)
    #: Resolved worker-pool width (``None`` = sequential engine).
    jobs: int | None = None
    #: Scheme pipelines that ran concurrently.
    concurrency: int = 1
    fused: bool = False
    #: Job-level executor that produced the rows.
    executor: str = "thread"
    wall_seconds: float = 0.0

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index) -> PortfolioResult:
        return self.results[index]

    def __len__(self) -> int:
        return len(self.results)

    @property
    def all_ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def guaranteed(self) -> list[PortfolioResult]:
        """Schemes Theorem 1 accepts (constraints + relaxed deadline)."""
        return [r for r in self.results if r.guarantee]

    def summary(self) -> str:
        lines = [
            f"portfolio: {len(self.results)} schemes, "
            f"{len(self.guaranteed)} guaranteed, "
            f"workers={self.jobs or 'sequential'} "
            f"executor={self.executor} "
            f"concurrency={self.concurrency}, "
            f"{self.wall_seconds:.2f}s",
        ]
        lines.extend(f"  {result.summary()}" for result in self.results)
        return "\n".join(lines)


class _SharedObligation:
    """Once-per-key computation shared across portfolio jobs."""

    __slots__ = ("event", "value", "error")

    def __init__(self):
        self.event = threading.Event()
        self.value = None
        self.error: BaseException | None = None


class PortfolioVerifier:
    """Verify a portfolio of implementation schemes concurrently.

    jobs:
        Worker-pool width shared by every sweep (resolved like every
        other ``jobs=`` in the library: explicit > ``set_default_jobs``
        > ``REPRO_JOBS``; ``None`` keeps the sequential engine and runs
        the jobs one after another).  Under ``executor="process"`` the
        same number is the worker-*process* count instead.
    executor:
        Job-level execution mode (``None`` defers to
        ``REPRO_EXECUTOR``, default ``thread``):

        ``"thread"``
            Scheme pipelines run on coordinator threads over one
            shared :class:`WorkStealingPool` — parallelism lives at
            the zone level (batched numpy kernels release the GIL),
            so this is the right mode for the numpy backend.
        ``"process"``
            The job list is partitioned across ``jobs`` worker
            processes; each worker receives a picklable job spec
            (PIM + scheme parameters + requirement descriptors, never
            live compiled networks), replays the coordinator's
            backend/abstraction configuration
            (:class:`~repro.mc.parallel.EngineConfig`), compiles its
            own networks and runs the plain *sequential* per-scheme
            pipeline — true multi-core for the GIL-bound pure-Python
            reference backend.  Rows ship back as plain dataclasses
            and commit in deterministic job order; a worker crash or
            budget blow-up yields an error row, never a dead sweep.
            Scheme-independent PIM obligations are computed once in
            the parent and shipped to the workers, so the dedup win
            survives.  ``intern``/``scoped_intern`` are no-ops here
            (each worker's sequential engine never interns, and
            intern tables cannot span processes).
    concurrency:
        How many scheme pipelines run at once (default: the resolved
        worker count).  Coordinator threads are cheap; the pool bounds
        the actual parallel zone work.  Thread executor only —
        process mode's concurrency *is* its worker count.
    max_states:
        Default per-job exploration budget
        (:class:`PortfolioJob.max_states` overrides it per scheme).
    fused:
        Compile each job's deadline + suprema queries into one
        :func:`~repro.mc.queries.check_many` sweep (identical verdicts
        and sups; shared-sweep tallies).  Off by default so every row
        is bit-identical to the per-scheme sequential ``verify``.
    intern:
        Zone-interning policy shared by all jobs: ``True`` (a table
        scoped to each :meth:`run` call — see ``scoped_intern``),
        ``False``, or a private
        :class:`~repro.zones.intern.ZoneInternTable`.  Interning is a
        property of the sharded engine, so with ``jobs=None`` (the
        sequential explorer, which never interns) this setting has no
        effect — exactly as everywhere else in the library.
    scoped_intern:
        With ``intern=True`` (the default), give every :meth:`run`
        call its own fresh intern table instead of the process-global
        one.  Cross-job dedup inside the run is unchanged, but a
        long-lived CLI/service process sweeping many grids no longer
        accumulates zones from prior portfolios.  Set to ``False`` to
        restore the global table (cross-run dedup at the cost of
        unbounded-until-reset growth); an explicit ``intern`` table is
        always respected as-is.
    share_pim_obligations:
        Compute each distinct (PIM, requirement) obligation — step 1
        and the internal supremum — once instead of once per scheme.
    abstraction:
        Extrapolation operator for every sweep of every job
        (``"extra_m"``/``"extra_lu"``; ``None`` defers to
        ``set_abstraction``/``REPRO_ABSTRACTION``).  Rows are
        verdict-, bound- and sup-identical either way; ``extra_lu``
        shrinks the per-scheme zone graphs — the blow-up corners of a
        grid most of all.
    """

    def __init__(self, *, jobs: int | None = None,
                 executor: str | None = None,
                 concurrency: int | None = None,
                 max_states: int = 1_000_000,
                 fused: bool = False,
                 intern: bool | ZoneInternTable = True,
                 scoped_intern: bool = True,
                 share_pim_obligations: bool = True,
                 abstraction: str | None = None):
        if concurrency is not None and concurrency < 1:
            raise ValueError(
                f"concurrency must be >= 1, got {concurrency}")
        if executor is not None:
            resolve_executor(executor)  # validate eagerly
        self.jobs = jobs
        self.executor = executor
        self.concurrency = concurrency
        self.max_states = max_states
        self.fused = fused
        self.intern = intern
        self.scoped_intern = scoped_intern
        self.share_pim_obligations = share_pim_obligations
        self.abstraction = abstraction
        self._pim_cache: dict[tuple, _SharedObligation] = {}
        self._pim_lock = threading.Lock()

    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[PortfolioJob], *,
            on_result: Callable[[PortfolioResult], None] | None = None,
            ) -> PortfolioOutcome:
        """Verify every job; rows come back in submission order.

        ``on_result`` (optional) observes rows as they complete — in
        *completion* order, from the coordinator thread that finished
        the job; the returned outcome stays job-ordered either way.
        An exception raised by the callback never disturbs the jobs
        themselves: every row still completes, and the first callback
        error re-raises after the run (identically in the inline and
        threaded schedulers — a dying observer must not orphan
        coordinator threads or leave half-filled outcomes).
        """
        job_list = list(jobs)
        started = time.perf_counter()
        resolved = resolve_jobs(self.jobs)
        if resolve_executor(self.executor) == "process":
            return self._run_process(job_list, resolved, on_result,
                                     started)
        width = resolved or 0
        pool = WorkStealingPool(width) if width > 1 else None
        concurrency = self.concurrency or width or 1
        concurrency = max(1, min(concurrency, len(job_list) or 1))
        results: list[PortfolioResult | None] = [None] * len(job_list)
        callback_errors: list[BaseException] = []
        self._pim_cache.clear()
        # Interning scope: a fresh table per run (default) keeps
        # long-lived processes from accumulating zones across grids;
        # ``None`` defers to the explorer default (the global table).
        if self.intern is True:
            run_intern = (ZoneInternTable() if self.scoped_intern
                          else None)
        else:
            run_intern = self.intern

        def execute(index: int) -> None:
            result = self._run_one(index, job_list[index], resolved,
                                   pool, run_intern)
            results[index] = result
            if on_result is not None:
                try:
                    on_result(result)
                except Exception as exc:
                    if not callback_errors:
                        callback_errors.append(exc)

        try:
            if concurrency == 1:
                for index in range(len(job_list)):
                    execute(index)
            else:
                self._run_threaded(len(job_list), concurrency, execute)
        finally:
            if pool is not None:
                pool.shutdown()
        if callback_errors:
            raise callback_errors[0]
        return PortfolioOutcome(
            results=list(results), jobs=resolved,
            concurrency=concurrency, fused=self.fused,
            wall_seconds=time.perf_counter() - started)

    def verify_schemes(self, pim: "PIM",
                       schemes: Sequence["ImplementationScheme"], *,
                       input_channel: str, output_channel: str,
                       deadline_ms: int,
                       **job_kwargs) -> PortfolioOutcome:
        """Grid front door: one job per scheme, then :meth:`run`."""
        return self.run(portfolio_jobs(
            pim, schemes, input_channel=input_channel,
            output_channel=output_channel, deadline_ms=deadline_ms,
            **job_kwargs))

    # ------------------------------------------------------------------
    @staticmethod
    def _run_threaded(count: int, concurrency: int,
                      execute: Callable[[int], None]) -> None:
        """Drain job indices in order over ``concurrency`` threads.

        Per-job failures become rows inside ``execute``; anything
        that still escapes it (``SystemExit``/``KeyboardInterrupt``
        or a scheduler bug) is *fatal*: draining stops and the first
        such error re-raises here — exactly what the inline scheduler
        does — rather than dying silently on a coordinator thread and
        returning an outcome with ``None`` holes.
        """
        cursor = {"next": 0}
        lock = threading.Lock()
        fatal: list[BaseException] = []

        def drain() -> None:
            while True:
                with lock:
                    index = cursor["next"]
                    if fatal or index >= count:
                        return
                    cursor["next"] = index + 1
                try:
                    execute(index)
                except BaseException as exc:
                    with lock:
                        if not fatal:
                            fatal.append(exc)
                    return

        threads = [threading.Thread(target=drain,
                                    name=f"portfolio-job-{i}")
                   for i in range(concurrency)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if fatal:
            raise fatal[0]

    def _run_one(self, index: int, job: PortfolioJob,
                 resolved: int | None,
                 pool: WorkStealingPool | None,
                 intern: bool | ZoneInternTable | None,
                 obligation: tuple | None = None,
                 ) -> PortfolioResult:
        from repro.core.framework import (
            TimingVerificationFramework,
            VerificationReport,
        )

        started = time.perf_counter()
        report = VerificationReport(
            input_channel=job.input_channel,
            output_channel=job.output_channel,
            deadline_ms=job.deadline_ms)
        result = PortfolioResult(
            index=index, name=job.name, scheme=job.scheme,
            deadline_ms=job.deadline_ms, report=report)
        framework = TimingVerificationFramework(
            max_states=job.max_states or self.max_states, jobs=resolved,
            abstraction=self.abstraction)
        try:
            with exploration_context(pool=pool, intern=intern):
                self._verify_job(job, framework, report,
                                 obligation=obligation)
        except ExplorationLimit as exc:
            result.status = "budget-exceeded"
            result.error = str(exc)
        except Exception as exc:
            # Fault isolation is the contract: *any* job failure —
            # invalid scheme (SchemeError/ValueError), model error,
            # or an outright bug on a malformed job — must become a
            # structured row, never a dead coordinator thread leaving
            # a None slot behind.
            result.status = "error"
            result.error = f"{type(exc).__name__}: {exc}"
        result.wall_seconds = time.perf_counter() - started
        return result

    def _verify_job(self, job: PortfolioJob, framework,
                    report: "VerificationReport",
                    obligation: tuple | None = None) -> None:
        """The Section-VI pipeline for one scheme (mutates ``report``).

        Mirrors ``TimingVerificationFramework.verify`` step by step;
        the only reordering is that the scheme-independent PIM
        obligations may come from the shared cache — or, in a process
        worker, arrive precomputed from the parent (``obligation``).
        """
        from repro.core.delays import bounds_from_internal

        if obligation is not None:
            pim_result, internal = obligation
        else:
            pim_result, internal = self._pim_obligations(job, framework)
        report.pim_result = pim_result
        psm = framework.transform(job.pim, job.scheme)
        report.psm = psm
        report.constraints = framework.check_constraints(
            psm, min_interarrival_ms=job.min_interarrival_ms,
            include_progress=job.include_progress)
        report.bounds = bounds_from_internal(
            job.scheme, job.input_channel, job.output_channel,
            internal)
        deadlines = [job.deadline_ms, report.bounds.relaxed]
        if self.fused:
            self._fused_psm_queries(job, framework, report, psm,
                                    deadlines)
        else:
            report.psm_original_result, report.psm_relaxed_result = \
                framework.verify_psm_deadlines(
                    psm, job.input_channel, job.output_channel,
                    deadlines)
            if job.measure_suprema:
                report.symbolic = framework.measure_psm(
                    psm, job.input_channel, job.output_channel)

    def _fused_psm_queries(self, job: PortfolioJob, framework, report,
                           psm, deadlines: list[int]) -> None:
        """One ``check_many`` sweep for steps 5+6 (+ optional sups)."""
        from repro.mc.queries import (
            BoundedResponseQuery,
            ResponseSupQuery,
            check_many,
        )

        queries: list[object] = [
            BoundedResponseQuery(job.input_channel, job.output_channel,
                                 deadline)
            for deadline in deadlines
        ]
        if job.measure_suprema:
            queries += [
                ResponseSupQuery(job.input_channel,
                                 psm.io_name(job.input_channel)),
                ResponseSupQuery(psm.io_name(job.output_channel),
                                 job.output_channel),
                ResponseSupQuery(job.input_channel, job.output_channel),
            ]
        outcome = check_many(
            psm.network, queries, max_states=framework.max_states,
            jobs=framework.jobs, abstraction=framework.abstraction)
        report.psm_original_result = outcome[0]
        report.psm_relaxed_result = outcome[1]
        if job.measure_suprema:
            report.symbolic = {
                "Input-Delay": outcome[2],
                "Output-Delay": outcome[3],
                "M-C delay": outcome[4],
            }

    # ------------------------------------------------------------------
    # Process executor
    # ------------------------------------------------------------------
    def _run_process(self, job_list: list[PortfolioJob],
                     resolved: int | None,
                     on_result: Callable[[PortfolioResult], None] | None,
                     started: float) -> PortfolioOutcome:
        """Partition the job list across worker processes.

        Every job becomes a picklable :class:`_ProcessJobSpec`; rows
        ship back as plain :class:`PortfolioResult` dataclasses and
        commit into their submission slot, so the outcome is
        job-ordered no matter which worker finishes first.
        ``on_result`` streams rows in completion order from the
        parent, exactly like the thread scheduler.  Fault isolation
        covers the whole lifecycle: a job that cannot be shipped
        (pickling), a worker that dies (``BrokenProcessPool``), and a
        budget blow-up inside a worker each produce a structured
        error row — never a dead sweep, never a ``None`` slot.
        """
        results: list[PortfolioResult | None] = [None] * len(job_list)
        callback_errors: list[BaseException] = []
        self._pim_cache.clear()

        def commit(result: PortfolioResult) -> None:
            results[result.index] = result
            if on_result is not None:
                try:
                    on_result(result)
                except Exception as exc:
                    if not callback_errors:
                        callback_errors.append(exc)

        obligations, obligation_of = \
            self._parent_obligations(job_list)
        width = min(resolved or 1, len(job_list) or 1)
        pending: list[_ProcessJobSpec] = []
        for index, job in enumerate(job_list):
            slot = obligation_of[index]
            if slot is not None and obligations[slot][0] != "ok":
                # The shared obligation itself failed: every sharer
                # gets the same structured failure row — same status
                # classification (budget-exceeded vs error) as the
                # thread scheduler — and never reaches a worker.
                commit(PortfolioResult(
                    index=index, name=job.name, scheme=job.scheme,
                    deadline_ms=job.deadline_ms,
                    status=obligations[slot][0],
                    error=obligations[slot][1]))
                continue
            pending.append(_ProcessJobSpec(index=index, job=job,
                                           obligation=slot))
        if width <= 1:
            # No spare processes to partition onto: run the same
            # per-job pipeline inline (identical rows, no fork).
            values = [value for _, value in obligations]
            verifier = self._worker_verifier()
            for spec in pending:
                commit(verifier._run_one(
                    spec.index, spec.job, None, None, None,
                    obligation=(values[spec.obligation]
                                if spec.obligation is not None
                                else None)))
        elif pending:
            self._run_process_pool(pending, obligations, width, commit)
        if callback_errors:
            raise callback_errors[0]
        return PortfolioOutcome(
            results=list(results), jobs=resolved,
            concurrency=width, fused=self.fused, executor="process",
            wall_seconds=time.perf_counter() - started)

    def _worker_verifier(self) -> "PortfolioVerifier":
        """The verifier a worker (or the inline fallback) runs jobs
        on: sequential engine, no cross-job sharing — each row is
        exactly the per-scheme sequential ``verify``."""
        return PortfolioVerifier(
            jobs=None, executor="thread", max_states=self.max_states,
            fused=self.fused, intern=False,
            share_pim_obligations=False, abstraction=self.abstraction)

    def _run_process_pool(self, pending: list["_ProcessJobSpec"],
                          obligations: list[tuple], width: int,
                          commit: Callable[[PortfolioResult], None],
                          ) -> None:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor, as_completed

        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX
            ctx = multiprocessing.get_context()
        config = _ProcessConfig(
            engine=EngineConfig.capture(abstraction=self.abstraction,
                                        jobs=None),
            max_states=self.max_states, fused=self.fused,
            obligations=tuple(value for _, value in obligations))
        executor = ProcessPoolExecutor(
            max_workers=width, mp_context=ctx,
            initializer=_process_worker_init, initargs=(config,))
        try:
            futures = {executor.submit(_process_worker_run, spec): spec
                       for spec in pending}
            for future in as_completed(futures):
                spec = futures[future]
                try:
                    row = future.result()
                except Exception as exc:
                    # Submission pickling failures land here too (the
                    # executor sets them on the affected future); a
                    # dead worker breaks the pool and every pending
                    # future raises — each becomes its own error row.
                    # Only Exception: BrokenProcessPool and pickling
                    # errors are Exceptions, while a parent-side
                    # KeyboardInterrupt/SystemExit must abort the
                    # sweep, not become a fake worker failure.
                    row = PortfolioResult(
                        index=spec.index, name=spec.job.name,
                        scheme=spec.job.scheme,
                        deadline_ms=spec.job.deadline_ms,
                        status="error",
                        error=f"worker failed: "
                              f"{type(exc).__name__}: {exc}")
                # Outside the except: a KeyboardInterrupt/SystemExit
                # raised by the on_result callback must stay fatal
                # (as in the thread scheduler), not masquerade as a
                # worker failure.
                commit(row)
        finally:
            executor.shutdown(wait=True)

    def _parent_obligations(self, job_list: list[PortfolioJob]):
        """Step 1 + the Lemma-2 internal sup, once per distinct key,
        computed *in the parent* for shipping to process workers.

        Returns ``(values, obligation_of)`` where ``values[i]`` is
        ``("ok", (pim_result, internal))`` or ``("error", message)``
        and ``obligation_of[j]`` indexes the value job ``j`` shares
        (``None`` with ``share_pim_obligations=False`` — every worker
        then computes its own).
        """
        if not self.share_pim_obligations:
            return [], [None] * len(job_list)
        from repro.core.framework import TimingVerificationFramework

        values: list[tuple] = []
        index_of: dict[tuple, int] = {}
        obligation_of: list[int | None] = []
        for job in job_list:
            max_states = job.max_states or self.max_states
            key = (id(job.pim), job.input_channel, job.output_channel,
                   job.deadline_ms, max_states)
            slot = index_of.get(key)
            if slot is None:
                framework = TimingVerificationFramework(
                    max_states=max_states, jobs=None,
                    abstraction=self.abstraction)
                try:
                    value = ("ok", _compute_obligation(job, framework))
                except ExplorationLimit as exc:
                    # Same classification the per-job handler gives a
                    # blown budget, so thread and process rows agree.
                    value = ("budget-exceeded", str(exc))
                except Exception as exc:
                    value = ("error", f"{type(exc).__name__}: {exc}")
                slot = index_of[key] = len(values)
                values.append(value)
            obligation_of.append(slot)
        return values, obligation_of

    # ------------------------------------------------------------------
    def _pim_obligations(self, job: PortfolioJob, framework):
        """Step 1 + the Lemma-2 internal sup, deduped across jobs."""
        def compute():
            return _compute_obligation(job, framework)

        if not self.share_pim_obligations:
            return compute()
        key = (id(job.pim), job.input_channel, job.output_channel,
               job.deadline_ms, framework.max_states)
        with self._pim_lock:
            entry = self._pim_cache.get(key)
            owner = entry is None
            if owner:
                entry = self._pim_cache[key] = _SharedObligation()
        if owner:
            try:
                entry.value = compute()
            except BaseException as exc:
                entry.error = exc
                raise
            finally:
                entry.event.set()
            return entry.value
        entry.event.wait()
        if entry.error is not None:
            raise entry.error
        return entry.value


def _compute_obligation(job: PortfolioJob, framework) -> tuple:
    """One (PIM, requirement) obligation: step 1 + the internal sup."""
    from repro.core.delays import internal_delay

    pim_result = framework.verify_pim(
        job.pim, job.input_channel, job.output_channel,
        job.deadline_ms)
    internal = internal_delay(
        job.pim, job.input_channel, job.output_channel,
        max_states=framework.max_states, jobs=framework.jobs,
        abstraction=framework.abstraction)
    return pim_result, internal


# ----------------------------------------------------------------------
# Process-worker side (module level: picklable by reference)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _ProcessConfig:
    """Everything a worker process needs, shipped once per worker.

    ``engine`` replays the coordinator's resolved backend/abstraction
    (and pins the inner engine to sequential, ``jobs=None``);
    ``obligations`` carries the parent-computed shared PIM obligation
    values the job specs index into.
    """

    engine: EngineConfig
    max_states: int
    fused: bool
    obligations: tuple = ()


@dataclass(frozen=True)
class _ProcessJobSpec:
    """One job's picklable shipping form: the :class:`PortfolioJob`
    (PIM + scheme parameters + requirement descriptors — plain
    dataclasses, never compiled networks or zones) plus the index of
    its shared-obligation value, if any."""

    index: int
    job: PortfolioJob
    obligation: int | None = None


_PROC_PORTFOLIO: _ProcessConfig | None = None


def _process_worker_init(config: _ProcessConfig) -> None:
    """Replay the coordinator's engine configuration in this worker."""
    global _PROC_PORTFOLIO
    os.environ.pop(ENV_EXECUTOR, None)  # workers never recurse
    config.engine.apply()
    _PROC_PORTFOLIO = config


def _process_worker_run(spec: _ProcessJobSpec) -> PortfolioResult:
    """Run one job in this worker; always returns a structured row."""
    config = _PROC_PORTFOLIO
    verifier = PortfolioVerifier(
        jobs=None, executor="thread", max_states=config.max_states,
        fused=config.fused, intern=False, share_pim_obligations=False)
    obligation = (config.obligations[spec.obligation]
                  if spec.obligation is not None else None)
    return verifier._run_one(spec.index, spec.job, None, None, None,
                             obligation=obligation)
