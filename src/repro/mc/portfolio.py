"""Cross-model portfolio verification: whole scheme sweeps, one pool.

The paper's workflow verifies one implementation scheme at a time:
transform the PIM for the chosen scheme, check the Section-V
constraints, derive the Lemma-1/2 bounds, re-verify the deadline on
the PSM.  Design-space exploration — "which buffer size / polling
interval / period combination still meets REQ1?" — needs that whole
pipeline over *many* candidate schemes, and the schemes are
independent, so the verifier can be run as a many-tenant service
instead of a single-model checker.

:class:`PortfolioVerifier` schedules N ``(PIM, scheme, queries)`` jobs
concurrently:

* **Two job-level executors.**  The default ``executor="thread"``
  runs scheme pipelines on coordinator threads over one shared
  worker pool (below) — right for the numpy backend, whose batched
  kernels release the GIL.  ``executor="process"`` (CLI
  ``--executor``, env ``REPRO_EXECUTOR``) partitions whole jobs
  across ``jobs`` worker *processes* via picklable job specs — true
  multi-core for the GIL-bound pure-Python reference backend.  Same
  rows either way.
* **One shared worker pool** (thread executor).  Every job's
  zone-graph sweeps run over a single
  :class:`~repro.mc.parallel.WorkStealingPool` (threaded via
  :func:`~repro.mc.parallel.exploration_context`), so expansion waves
  from different schemes interleave across the same workers instead of
  each job spawning its own pool.  Python-only phases of one job
  overlap with numpy kernel phases of another.
* **One shared zone-intern table.**  Candidate PSMs differ only in
  platform parameters, so their zone graphs overlap heavily; interning
  across jobs dedups that storage (:mod:`repro.zones.intern`).
* **Deterministic job-ordered commit.**  Results are committed into a
  slot per submission index; :meth:`PortfolioVerifier.run` returns
  rows in job order no matter which scheme finishes first.
* **Per-job budgets and fault isolation.**  Each job carries its own
  ``max_states`` budget; a job that exhausts it (or whose scheme is
  invalid for the PIM) becomes a structured failure row, and every
  other job completes normally.
* **Shared PIM obligations.**  Jobs over the same PIM and requirement
  share step 1 (``PIM ⊨ P(Δ)``) and the Lemma-2 internal supremum —
  both are scheme-independent, so the portfolio computes each distinct
  obligation once (the values are exactly what every per-scheme run
  would produce; disable with ``share_pim_obligations=False``).

Bit-identity contract: in the default mode each job runs *exactly* the
sweeps of :meth:`repro.core.framework.TimingVerificationFramework.verify`
— same constraint pass, same fused step-5/6 deadline sweep, same
optional suprema batch — so every bound, verdict, sup and per-sweep
states/transitions tally equals the sequential per-scheme run, for
every worker count, backend *and executor*
(``tests/test_portfolio.py`` pins the matrix).  ``fused=True`` additionally compiles each job's deadline and
suprema queries into **one** :func:`~repro.mc.queries.check_many`
sweep: verdicts, bounds and sup values are unchanged, but the tallies
are those of the shared sweep (documented divergence, same as
``check_many`` itself).

Cross-scheme reuse (``reuse=True``) adds a third sharing layer on top
of the pool and the intern table: a :class:`~repro.mc.memo.VerdictMemo`
keyed on the canonical capacity-erased hash of each job's compiled PSM
(:func:`~repro.ta.rename.canonical_network`) plus every
verdict-relevant knob.  Jobs whose canonical keys collide commit the
first job's row instantly — the occupancy certificate in
:mod:`repro.mc.memo` makes the reuse *exact*, so memoized rows keep
the bit-identity contract.  ``prune_dominated=True`` additionally
derives dominated grid points' Theorem-1 verdicts from a verified
neighbor along the Lemma-1-monotone axes (poll, period) instead of
exploring them; derived rows carry ``derived_from`` provenance and
rest on the documented monotonicity assumption (see
``docs/PERFORMANCE.md``), which is why the pass is opt-in.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Callable, Sequence, TYPE_CHECKING

from repro.mc.explorer import ExplorationLimit
from repro.mc.memo import VerdictMemo
from repro.mc.parallel import (
    EngineConfig,
    WorkStealingPool,
    exploration_context,
    resolve_jobs,
)
from repro.zones.intern import ZoneInternTable

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids core cycle
    from repro.core.framework import VerificationReport
    from repro.core.pim import PIM
    from repro.core.scheme import ImplementationScheme
    from repro.mc.observers import BoundedResponseResult, DelayBound

__all__ = [
    "ENV_EXECUTOR",
    "PortfolioJob",
    "PortfolioOutcome",
    "PortfolioResult",
    "PortfolioVerifier",
    "memo_entry_from_row",
    "memoized_result",
    "portfolio_jobs",
    "resolve_executor",
]

#: Environment override for the job-level executor (like ``REPRO_JOBS``
#: for the worker count): ``thread`` or ``process``.
ENV_EXECUTOR = "REPRO_EXECUTOR"

_EXECUTORS = ("thread", "process")


def resolve_executor(executor: str | None = None) -> str:
    """Resolve an executor spec: explicit > ``REPRO_EXECUTOR`` > thread.

    ``thread`` schedules scheme pipelines on coordinator threads over
    one shared :class:`WorkStealingPool` (zone-level parallelism);
    ``process`` partitions whole jobs across worker *processes* — true
    multi-core for the GIL-bound pure-Python reference backend.
    """
    if executor is None:
        from repro.envvars import env_choice
        executor = env_choice(ENV_EXECUTOR, _EXECUTORS,
                              default="thread")
    if executor not in _EXECUTORS:
        raise ValueError(
            f"unknown portfolio executor {executor!r} (choose from: "
            f"{', '.join(_EXECUTORS)}; also settable via "
            f"{ENV_EXECUTOR})")
    return executor


@dataclass(frozen=True)
class PortfolioJob:
    """One tenant of the portfolio: a (PIM, scheme, requirement) triple.

    ``max_states`` is this job's private exploration budget (``None``
    inherits the verifier default); exhausting it fails only this job.
    """

    name: str
    pim: "PIM"
    scheme: "ImplementationScheme"
    input_channel: str
    output_channel: str
    deadline_ms: int
    min_interarrival_ms: int | None = None
    measure_suprema: bool = False
    include_progress: bool = False
    max_states: int | None = None


def portfolio_jobs(pim: "PIM",
                   schemes: Sequence["ImplementationScheme"], *,
                   input_channel: str, output_channel: str,
                   deadline_ms: int,
                   **job_kwargs) -> list[PortfolioJob]:
    """One job per scheme, named after the scheme (grid sweeps)."""
    return [
        PortfolioJob(name=scheme.name, pim=pim, scheme=scheme,
                     input_channel=input_channel,
                     output_channel=output_channel,
                     deadline_ms=deadline_ms, **job_kwargs)
        for scheme in schemes
    ]


@dataclass
class PortfolioResult:
    """Structured verification row for one scheme of the portfolio."""

    index: int
    name: str
    scheme: "ImplementationScheme"
    deadline_ms: int
    #: ``"ok"``, ``"budget-exceeded"`` or ``"error"``.
    status: str = "ok"
    error: str | None = None
    #: The full per-scheme report (partial when the job failed).
    report: "VerificationReport | None" = None
    wall_seconds: float = 0.0
    #: Donor job whose memoized verdicts this row reuses (``reuse=True``
    #: and the canonical keys matched); ``None`` = the row's own sweep.
    memo_hit: str | None = None
    #: Dominating neighbor this row's Theorem-1 verdict was derived
    #: from (``prune_dominated=True``); ``None`` = verdict explored.
    derived_from: str | None = None
    #: Occupancy maxima of this job's own complete deadline sweep —
    #: internal evidence the process executor ships back so the parent
    #: can populate its memo (never serialized into :meth:`row`).
    occupancy: "dict[str, int] | None" = None

    # -- flattened row accessors ---------------------------------------
    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def bounds(self):
        return self.report.bounds if self.report else None

    @property
    def relaxed_deadline_ms(self) -> int | None:
        return self.bounds.relaxed if self.bounds else None

    @property
    def constraints_hold(self) -> bool | None:
        if self.report is None or self.report.constraints is None:
            return None
        return self.report.constraints.all_hold

    @property
    def original_holds(self) -> bool | None:
        """``PSM ⊨ P(Δ_mc)`` — pass/fail against the *original* deadline."""
        result = self.report.psm_original_result if self.report else None
        return result.holds if result is not None else None

    @property
    def relaxed_holds(self) -> bool | None:
        """``PSM ⊨ P(Δ'_mc)`` — pass/fail against the Lemma-2 deadline."""
        result = self.report.psm_relaxed_result if self.report else None
        return result.holds if result is not None else None

    @property
    def guarantee(self) -> bool:
        """Theorem 1's conclusion for this scheme."""
        return bool(self.report
                    and self.report.implementation_guarantee)

    @property
    def sups(self) -> "dict[str, DelayBound]":
        return self.report.symbolic if self.report else {}

    @property
    def states(self) -> int | None:
        """States of this job's PSM deadline sweep (steps 5+6).

        A memoized row keeps its donor's tallies — the occupancy
        certificate makes the two zone graphs identical, so they *are*
        this scheme's tallies.  A dominance-derived row ran no sweep
        at all, so its tallies are ``None``.
        """
        if self.derived_from is not None:
            return None
        result = self.report.psm_relaxed_result if self.report else None
        return result.visited if result is not None else None

    @property
    def transitions(self) -> int | None:
        if self.derived_from is not None:
            return None
        result = self.report.psm_relaxed_result if self.report else None
        return result.transitions if result is not None else None

    def row(self) -> dict:
        """JSON-ready summary (the benchmark record's shape)."""
        out = {
            "name": self.name,
            "status": self.status,
            "deadline_ms": self.deadline_ms,
            "relaxed_ms": self.relaxed_deadline_ms,
            "constraints_hold": self.constraints_hold,
            "original_holds": self.original_holds,
            "relaxed_holds": self.relaxed_holds,
            "guarantee": self.guarantee,
            "states": self.states,
            "transitions": self.transitions,
            "seconds": round(self.wall_seconds, 4),
        }
        if self.error:
            out["error"] = self.error
        if self.sups:
            out["sups"] = {name: str(bound)
                           for name, bound in self.sups.items()}
        # Provenance keys only when set: memo-off rows stay
        # byte-identical to the pre-reuse record shape.
        if self.memo_hit is not None:
            out["memo_hit"] = self.memo_hit
        if self.derived_from is not None:
            out["derived_from"] = self.derived_from
        return out

    def summary(self) -> str:
        if not self.ok:
            return f"{self.name}: {self.status} ({self.error})"
        verdict = "guaranteed" if self.guarantee else "NOT guaranteed"
        orig = {True: "holds", False: "fails", None: "?"}[
            self.original_holds]
        if self.memo_hit is not None:
            origin = f"memo={self.memo_hit}"
        elif self.derived_from is not None:
            origin = f"derived={self.derived_from}"
        else:
            origin = f"{self.states} states"
        return (f"{self.name}: Δ'={self.relaxed_deadline_ms}ms "
                f"P(Δ') {verdict}, P({self.deadline_ms}) {orig}, "
                f"{origin}, {self.wall_seconds:.2f}s")


@dataclass
class PortfolioOutcome:
    """All rows of one portfolio run, in submission order."""

    results: list[PortfolioResult] = field(default_factory=list)
    #: Resolved worker-pool width (``None`` = sequential engine).
    jobs: int | None = None
    #: Scheme pipelines that ran concurrently.
    concurrency: int = 1
    fused: bool = False
    #: Job-level executor that produced the rows.
    executor: str = "thread"
    wall_seconds: float = 0.0
    #: Whether the cross-scheme verdict memo was consulted.
    reuse: bool = False
    #: Rows that ran their own exploration pipeline.
    explored: int = 0
    #: Rows answered from the verdict memo (``memo_hit`` set).
    memoized: int = 0
    #: Rows derived by dominance pruning (``derived_from`` set).
    pruned: int = 0
    #: Width of the shared zone-level worker pool (0 = none — the
    #: small-grid fallback scheduled whole jobs instead).
    pool_width: int = 0
    #: Expansion waves the shared pool ran — the non-timing proxy for
    #: zone-level scheduling overhead (0 under the fallback).
    pool_waves: int = 0
    #: Zones held by the run's scoped intern table when the run
    #: finished (0 when interning is off or unscoped).  Under
    #: ``warm_start`` this is the pinned table's live size — the
    #: number a daemon watches to see the cap working.
    interned_zones: int = 0
    #: Generation resets the scoped table performed (capacity
    #: evictions under ``warm_start_max_zones``).
    intern_resets: int = 0

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index) -> PortfolioResult:
        return self.results[index]

    def __len__(self) -> int:
        return len(self.results)

    @property
    def all_ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def guaranteed(self) -> list[PortfolioResult]:
        """Schemes Theorem 1 accepts (constraints + relaxed deadline)."""
        return [r for r in self.results if r.guarantee]

    def summary(self) -> str:
        lines = [
            f"portfolio: {len(self.results)} schemes, "
            f"{len(self.guaranteed)} guaranteed, "
            f"workers={self.jobs or 'sequential'} "
            f"executor={self.executor} "
            f"concurrency={self.concurrency}, "
            f"{self.wall_seconds:.2f}s",
        ]
        if self.reuse or self.memoized or self.pruned:
            lines.append(
                f"  reuse: {self.explored} explored, "
                f"{self.memoized} memoized, {self.pruned} pruned")
        lines.extend(f"  {result.summary()}" for result in self.results)
        return "\n".join(lines)

    def tally_reuse(self) -> None:
        """Recompute explored/memoized/pruned from the committed rows."""
        rows = [r for r in self.results if r is not None]
        self.memoized = sum(1 for r in rows if r.memo_hit is not None)
        self.pruned = sum(1 for r in rows
                          if r.derived_from is not None)
        self.explored = len(rows) - self.memoized - self.pruned


class _SharedObligation:
    """Once-per-key computation shared across portfolio jobs."""

    __slots__ = ("event", "value", "error")

    def __init__(self):
        self.event = threading.Event()
        self.value = None
        self.error: BaseException | None = None


class PortfolioVerifier:
    """Verify a portfolio of implementation schemes concurrently.

    jobs:
        Worker-pool width shared by every sweep (resolved like every
        other ``jobs=`` in the library: explicit > ``set_default_jobs``
        > ``REPRO_JOBS``; ``None`` keeps the sequential engine and runs
        the jobs one after another).  Under ``executor="process"`` the
        same number is the worker-*process* count instead.
    executor:
        Job-level execution mode (``None`` defers to
        ``REPRO_EXECUTOR``, default ``thread``):

        ``"thread"``
            Scheme pipelines run on coordinator threads over one
            shared :class:`WorkStealingPool` — parallelism lives at
            the zone level (batched numpy kernels release the GIL),
            so this is the right mode for the numpy backend.
        ``"process"``
            The job list is partitioned across ``jobs`` worker
            processes; each worker receives a picklable job spec
            (PIM + scheme parameters + requirement descriptors, never
            live compiled networks), replays the coordinator's
            backend/abstraction configuration
            (:class:`~repro.mc.parallel.EngineConfig`), compiles its
            own networks and runs the plain *sequential* per-scheme
            pipeline — true multi-core for the GIL-bound pure-Python
            reference backend.  Rows ship back as plain dataclasses
            and commit in deterministic job order; a worker crash or
            budget blow-up yields an error row, never a dead sweep.
            Scheme-independent PIM obligations are computed once in
            the parent and shipped to the workers, so the dedup win
            survives.  ``intern``/``scoped_intern`` are no-ops here
            (each worker's sequential engine never interns, and
            intern tables cannot span processes).
    concurrency:
        How many scheme pipelines run at once (default: the resolved
        worker count).  Coordinator threads are cheap; the pool bounds
        the actual parallel zone work.  Thread executor only —
        process mode's concurrency *is* its worker count.
    max_states:
        Default per-job exploration budget
        (:class:`PortfolioJob.max_states` overrides it per scheme).
    fused:
        Compile each job's deadline + suprema queries into one
        :func:`~repro.mc.queries.check_many` sweep (identical verdicts
        and sups; shared-sweep tallies).  Off by default so every row
        is bit-identical to the per-scheme sequential ``verify``.
    intern:
        Zone-interning policy shared by all jobs: ``True`` (a table
        scoped to each :meth:`run` call — see ``scoped_intern``),
        ``False``, or a private
        :class:`~repro.zones.intern.ZoneInternTable`.  Interning is a
        property of the sharded engine, so with ``jobs=None`` (the
        sequential explorer, which never interns) this setting has no
        effect — exactly as everywhere else in the library.
    scoped_intern:
        With ``intern=True`` (the default), give every :meth:`run`
        call its own fresh intern table instead of the process-global
        one.  Cross-job dedup inside the run is unchanged, but a
        long-lived CLI/service process sweeping many grids no longer
        accumulates zones from prior portfolios.  Set to ``False`` to
        restore the global table (cross-run dedup at the cost of
        unbounded-until-reset growth); an explicit ``intern`` table is
        always respected as-is.
    share_pim_obligations:
        Compute each distinct (PIM, requirement) obligation — step 1
        and the internal supremum — once instead of once per scheme.
    abstraction:
        Extrapolation operator for every sweep of every job
        (``"extra_m"``/``"extra_lu"``; ``None`` defers to
        ``set_abstraction``/``REPRO_ABSTRACTION``).  Rows are
        verdict-, bound- and sup-identical either way; ``extra_lu``
        shrinks the per-scheme zone graphs — the blow-up corners of a
        grid most of all.
    reuse:
        Consult the cross-scheme :class:`~repro.mc.memo.VerdictMemo`:
        jobs whose compiled PSMs have the same canonical
        capacity-erased hash (and the same requirement, deadlines,
        budget, backend and abstraction) share one exploration, and
        the occupancy certificate keeps the reuse *exact* — memoized
        rows carry the donor's verdicts, bounds, sups and tallies,
        which provably equal their own, plus ``memo_hit`` provenance.
        Works under both executors (the process parent consults the
        memo before dispatch and populates it from finished rows).
        Off by default so the library default reproduces the
        per-scheme sweep counts exactly; the CLI turns it on.
    prune_dominated:
        Opt-in Lemma-1 dominance planner: grid points that differ
        from a verified neighbor only by *more* slack on the
        property-tested monotone axes (polling interval, period)
        inherit the neighbor's Theorem-1 verdict instead of
        exploring, with ``derived_from`` provenance and their own
        analytic Lemma-1/2 bounds.  Rests on the documented
        monotonicity assumption (``docs/PERFORMANCE.md``); derived
        rows have no states/transitions tallies.
    warm_start:
        Keep the run-scoped intern table alive across :meth:`run`
        calls on this verifier, so a follow-up sweep of neighboring
        schemes starts with the previous grid's zones already
        interned (Tier-3 neighbor warm-start; only meaningful with
        ``intern=True`` and ``scoped_intern=True``).
    small_grid_fallback:
        When the job list is at least as wide as the worker pool,
        skip the shared zone-level pool entirely and run each job on
        its own inline engine (``jobs=1``) with ``width`` concurrent
        coordinators.  Job-level parallelism beats zone-level waves
        whenever there are enough jobs to fill the pool — the wave
        barriers and steal traffic of the shared pool were making
        small-scheme grids *slower* at ``jobs=4`` than sequential.
        For *tiny* models (structural size x deadline horizon under
        a static threshold) the fallback goes one step further and
        runs fully sequentially: whole-job threads only add GIL
        contention at that scale.  An explicit ``concurrency``
        overrides the sequential drop.  Rows are bit-identical in
        every mode (the worker-count invariance the test matrix
        pins); set to ``False`` to force the legacy shared pool.
    """

    def __init__(self, *, jobs: int | None = None,
                 executor: str | None = None,
                 concurrency: int | None = None,
                 max_states: int = 1_000_000,
                 fused: bool = False,
                 intern: bool | ZoneInternTable = True,
                 scoped_intern: bool = True,
                 share_pim_obligations: bool = True,
                 abstraction: str | None = None,
                 reuse: bool = False,
                 prune_dominated: bool = False,
                 warm_start: bool = False,
                 warm_start_max_zones: int | None = None,
                 small_grid_fallback: bool = True,
                 memo: VerdictMemo | None = None):
        if concurrency is not None and concurrency < 1:
            raise ValueError(
                f"concurrency must be >= 1, got {concurrency}")
        if executor is not None:
            resolve_executor(executor)  # validate eagerly
        self.jobs = jobs
        self.executor = executor
        self.concurrency = concurrency
        self.max_states = max_states
        self.fused = fused
        self.intern = intern
        self.scoped_intern = scoped_intern
        self.share_pim_obligations = share_pim_obligations
        self.abstraction = abstraction
        self.reuse = reuse
        self.prune_dominated = prune_dominated
        self.warm_start = warm_start
        if warm_start_max_zones is not None \
                and warm_start_max_zones < 1:
            raise ValueError(
                f"warm_start_max_zones must be >= 1, "
                f"got {warm_start_max_zones}")
        #: Cap on the pinned warm-start intern table.  Without one the
        #: table grows monotonically across :meth:`run` calls — a
        #: memory leak in a long-running daemon; with a cap the table
        #: generation-resets when full (``intern_resets`` counts).
        self.warm_start_max_zones = warm_start_max_zones
        self.small_grid_fallback = small_grid_fallback
        self._pim_cache: dict[tuple, _SharedObligation] = {}
        self._pim_lock = threading.Lock()
        #: Cross-scheme verdict memo; persists across :meth:`run`
        #: calls (content-addressed, so staleness cannot arise).  An
        #: injected memo (the service's bounded server-lifetime cache)
        #: is shared as-is — several verifiers may point at one.
        self._memo = memo if memo is not None else VerdictMemo()
        self._warm_intern: ZoneInternTable | None = None

    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[PortfolioJob], *,
            on_result: Callable[[PortfolioResult], None] | None = None,
            ) -> PortfolioOutcome:
        """Verify every job; rows come back in submission order.

        ``on_result`` (optional) observes rows as they complete — in
        *completion* order, from the coordinator thread that finished
        the job; the returned outcome stays job-ordered either way.
        An exception raised by the callback never disturbs the jobs
        themselves: every row still completes, and the first callback
        error re-raises after the run (identically in the inline and
        threaded schedulers — a dying observer must not orphan
        coordinator threads or leave half-filled outcomes).
        """
        job_list = list(jobs)
        started = time.perf_counter()
        resolved = resolve_jobs(self.jobs)
        if resolve_executor(self.executor) == "process":
            return self._run_process(job_list, resolved, on_result,
                                     started)
        width = resolved or 0
        concurrency = self.concurrency or width or 1
        concurrency = max(1, min(concurrency, len(job_list) or 1))
        # Small-grid fallback: with at least as many jobs as workers
        # (and enough coordinators to use them), whole-job concurrency
        # over inline engines beats zone-level waves — no shared pool,
        # no wave barriers, no steal traffic.  Rows are identical by
        # the worker-count-invariance contract.
        fallback = (self.small_grid_fallback and width > 1
                    and concurrency >= width
                    and len(job_list) >= width)
        if fallback:
            pool = None
            engine_jobs: int | None = 1
            # Tiny grids go all the way to sequential: whole-job
            # coordinator threads still contend on the GIL, and for
            # models this small the contention costs more than the
            # concurrency returns.  Explicit ``concurrency`` is
            # always respected.
            if self.concurrency is None and self._tiny_workload(
                    job_list[0]):
                concurrency = 1
        else:
            pool = WorkStealingPool(width) if width > 1 else None
            engine_jobs = resolved
        results: list[PortfolioResult | None] = [None] * len(job_list)
        callback_errors: list[BaseException] = []
        self._pim_cache.clear()
        run_intern = self._run_intern()

        def execute(index: int) -> None:
            result = self._run_one(index, job_list[index], engine_jobs,
                                   pool, run_intern)
            results[index] = result
            if on_result is not None:
                try:
                    on_result(result)
                except Exception as exc:
                    if not callback_errors:
                        callback_errors.append(exc)

        def schedule(indices: list[int]) -> None:
            if not indices:
                return
            if concurrency == 1 or len(indices) == 1:
                for index in indices:
                    execute(index)
            else:
                self._run_threaded(indices,
                                   min(concurrency, len(indices)),
                                   execute)

        deferred: dict[int, list[int]] = {}
        if self.prune_dominated:
            deferred = self._dominance_plan(job_list)
        first_round = [i for i in range(len(job_list))
                       if i not in deferred]
        try:
            schedule(first_round)
            leftovers: list[int] = []
            for index in sorted(deferred):
                donor = next(
                    (results[d] for d in deferred[index]
                     if results[d] is not None and results[d].ok
                     and results[d].guarantee), None)
                if donor is None:
                    # No dominating neighbor earned a guarantee:
                    # monotonicity transfers success only, so the
                    # dominated point must run its own pipeline.
                    leftovers.append(index)
                    continue
                execute_derived = self._derive_result(
                    index, job_list[index], donor, engine_jobs)
                results[index] = execute_derived
                if on_result is not None:
                    try:
                        on_result(execute_derived)
                    except Exception as exc:
                        if not callback_errors:
                            callback_errors.append(exc)
            schedule(leftovers)
        finally:
            if pool is not None:
                pool.shutdown()
        if callback_errors:
            raise callback_errors[0]
        outcome = PortfolioOutcome(
            results=list(results), jobs=resolved,
            concurrency=concurrency, fused=self.fused,
            reuse=self.reuse,
            pool_width=pool.width if pool is not None else 0,
            pool_waves=pool.waves if pool is not None else 0,
            wall_seconds=time.perf_counter() - started)
        if isinstance(run_intern, ZoneInternTable):
            stats = run_intern.stats()
            outcome.interned_zones = stats["zones"]
            outcome.intern_resets = stats["resets"]
        outcome.tally_reuse()
        return outcome

    def verify_schemes(self, pim: "PIM",
                       schemes: Sequence["ImplementationScheme"], *,
                       input_channel: str, output_channel: str,
                       deadline_ms: int,
                       on_result: "Callable[[PortfolioResult], None] | None" = None,
                       **job_kwargs) -> PortfolioOutcome:
        """Grid front door: one job per scheme, then :meth:`run`."""
        return self.run(portfolio_jobs(
            pim, schemes, input_channel=input_channel,
            output_channel=output_channel, deadline_ms=deadline_ms,
            **job_kwargs), on_result=on_result)

    def run_job(self, job: PortfolioJob, *, index: int = 0,
                obligation: tuple | None = None) -> PortfolioResult:
        """Verify one job synchronously on the calling thread.

        The per-job front door the service daemon's thread scheduler
        uses: it shares this verifier's verdict memo, so concurrent
        callers on equivalent models dedupe through the claim/commit
        protocol (one explores, the rest wait and hit), and failures
        come back as structured error rows exactly like :meth:`run`'s.
        ``obligation`` optionally supplies the precomputed
        ``(pim_result, internal)`` pair — the daemon caches those by
        canonical PIM digest instead of relying on the per-run
        ``id()``-keyed cache, which a long-lived process cannot trust
        across requests.
        """
        return self._run_one(index, job, resolve_jobs(self.jobs),
                             None, self._run_intern(),
                             obligation=obligation)

    def _run_intern(self) -> "bool | ZoneInternTable | None":
        """Interning scope for one run: a fresh table per run
        (default) keeps long-lived processes from accumulating zones
        across grids; ``warm_start`` pins one scoped table to this
        verifier so neighboring sweeps reuse each other's interned
        zones (capped by ``warm_start_max_zones``); ``None`` defers
        to the explorer default (the global table)."""
        if self.intern is not True:
            return self.intern
        if not self.scoped_intern:
            return None
        if self.warm_start:
            if self._warm_intern is None:
                if self.warm_start_max_zones is not None:
                    self._warm_intern = ZoneInternTable(
                        max_zones=self.warm_start_max_zones)
                else:
                    self._warm_intern = ZoneInternTable()
            return self._warm_intern
        return ZoneInternTable()

    def warm_start_stats(self) -> dict[str, int]:
        """Size + reset counters of the pinned warm-start table
        (zeros when ``warm_start`` is off or nothing ran yet) — the
        daemon exposes these so the leak-turned-cap is observable."""
        table = self._warm_intern
        if table is None:
            return {"zones": 0, "resets": 0}
        stats = table.stats()
        return {"zones": stats["zones"], "resets": stats["resets"]}

    # ------------------------------------------------------------------
    #: Structural-work hint below which the fallback scheduler drops
    #: its coordinator threads too: (locations + edges of the compiled
    #: PSM network) x the deadline horizon in ms.  The tiny test grid
    #: scores ~320, the 16-scheme case study ~40000 — the threshold
    #: sits an order of magnitude from both.
    _SEQUENTIAL_HINT = 2_000

    @classmethod
    def _tiny_workload(cls, job: PortfolioJob) -> bool:
        """Static size-threshold for the sequential fall-back.

        Compiles the first job's PSM (one extra ``transform``, no
        exploration) and scores the grid by structural size scaled by
        the deadline horizon — both knowable up front, so the
        scheduling decision is deterministic and timing-free.  A job
        that fails to compile scores "not tiny": the real pipeline
        will turn the failure into an error row either way.
        """
        from repro.core.transform import transform

        try:
            network = transform(job.pim, job.scheme).network
        except Exception:
            return False
        size = sum(len(automaton.locations) + len(automaton.edges)
                   for automaton in network.automata)
        return size * max(1, job.deadline_ms) < cls._SEQUENTIAL_HINT

    @staticmethod
    def _run_threaded(indices: Sequence[int], concurrency: int,
                      execute: Callable[[int], None]) -> None:
        """Drain the given job indices in order over ``concurrency``
        threads.

        Per-job failures become rows inside ``execute``; anything
        that still escapes it (``SystemExit``/``KeyboardInterrupt``
        or a scheduler bug) is *fatal*: draining stops and the first
        such error re-raises here — exactly what the inline scheduler
        does — rather than dying silently on a coordinator thread and
        returning an outcome with ``None`` holes.
        """
        cursor = {"next": 0}
        lock = threading.Lock()
        fatal: list[BaseException] = []

        def drain() -> None:
            while True:
                with lock:
                    position = cursor["next"]
                    if fatal or position >= len(indices):
                        return
                    cursor["next"] = position + 1
                try:
                    execute(indices[position])
                except BaseException as exc:
                    with lock:
                        if not fatal:
                            fatal.append(exc)
                    return

        # daemon=True: a Ctrl-C that aborts the join below must not
        # leave non-daemon coordinators pinning the interpreter alive
        # mid-exploration (the CLI exits 130 with a partial summary).
        threads = [threading.Thread(target=drain,
                                    name=f"portfolio-job-{i}",
                                    daemon=True)
                   for i in range(concurrency)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if fatal:
            raise fatal[0]

    def _run_one(self, index: int, job: PortfolioJob,
                 engine_jobs: int | None,
                 pool: WorkStealingPool | None,
                 intern: bool | ZoneInternTable | None,
                 obligation: tuple | None = None,
                 ) -> PortfolioResult:
        from repro.core.framework import (
            TimingVerificationFramework,
            VerificationReport,
        )

        started = time.perf_counter()
        report = VerificationReport(
            input_channel=job.input_channel,
            output_channel=job.output_channel,
            deadline_ms=job.deadline_ms)
        result = PortfolioResult(
            index=index, name=job.name, scheme=job.scheme,
            deadline_ms=job.deadline_ms, report=report)
        framework = TimingVerificationFramework(
            max_states=job.max_states or self.max_states,
            jobs=engine_jobs, abstraction=self.abstraction)
        try:
            with exploration_context(pool=pool, intern=intern):
                result.memo_hit, result.occupancy = self._verify_job(
                    job, framework, report, obligation=obligation)
        except ExplorationLimit as exc:
            result.status = "budget-exceeded"
            result.error = str(exc)
        except Exception as exc:
            # Fault isolation is the contract: *any* job failure —
            # invalid scheme (SchemeError/ValueError), model error,
            # or an outright bug on a malformed job — must become a
            # structured row, never a dead coordinator thread leaving
            # a None slot behind.
            result.status = "error"
            result.error = f"{type(exc).__name__}: {exc}"
        result.wall_seconds = time.perf_counter() - started
        return result

    def _verify_job(self, job: PortfolioJob, framework,
                    report: "VerificationReport",
                    obligation: tuple | None = None,
                    ) -> "tuple[str | None, dict[str, int] | None]":
        """The Section-VI pipeline for one scheme (mutates ``report``).

        Mirrors ``TimingVerificationFramework.verify`` step by step;
        the only reordering is that the scheme-independent PIM
        obligations may come from the shared cache — or, in a process
        worker, arrive precomputed from the parent (``obligation``).

        Returns ``(memo_donor, occupancy)``: the donor job's name when
        the row was answered from the verdict memo, and the occupancy
        maxima of this job's own complete sweep when it ran one with
        ``reuse`` enabled (evidence for cross-process memoization).
        """
        from repro.core.delays import bounds_from_internal

        if obligation is not None:
            pim_result, internal = obligation
        else:
            pim_result, internal = self._pim_obligations(job, framework)
        report.pim_result = pim_result
        psm = framework.transform(job.pim, job.scheme)
        report.psm = psm
        report.bounds = bounds_from_internal(
            job.scheme, job.input_channel, job.output_channel,
            internal)
        deadlines = [job.deadline_ms, report.bounds.relaxed]
        if not self.reuse:
            self._explore_job(job, framework, report, psm, deadlines)
            return None, None
        from repro.mc.memo import (
            MemoEntry,
            occupancy_targets,
            psm_canonical_model,
        )

        model = psm_canonical_model(psm)
        key = self._memo_key(job, psm, model, deadlines)
        memo = self._memo
        fallback = False
        while True:
            entry = memo.find(key, model)
            if entry is not None:
                report.constraints = entry.constraints
                report.psm_original_result = entry.original
                report.psm_relaxed_result = entry.relaxed
                if job.measure_suprema:
                    report.symbolic = dict(entry.symbolic)
                return entry.donor, None
            if fallback:
                break  # owner failed: explore without claiming
            claimed = memo.claim(key)
            if claimed is None:
                break  # we own the key: run the real pipeline
            claimed.event.wait()
            # The failed sentinel means no entry is coming for this
            # key; every waiter falls back to exploring concurrently
            # instead of re-claiming (or, worse, waiting forever on
            # an owner that crashed before commit).
            fallback = claimed.failed
        entry = None
        maxima: Mapping[str, int] | None = None
        complete = False
        try:
            track = occupancy_targets(model) if model.erased else ()
            maxima, complete = self._explore_job(
                job, framework, report, psm, deadlines, track=track)
            entry = MemoEntry(
                donor=job.name, erased=model.erased,
                maxima=maxima if complete else None,
                constraints=report.constraints,
                original=report.psm_original_result,
                relaxed=report.psm_relaxed_result,
                symbolic=dict(report.symbolic or {}))
        finally:
            if fallback:
                # Not the owner — nothing to release; still publish a
                # successful result for later jobs.
                if entry is not None:
                    memo.record(key, entry)
            else:
                # A failed pipeline commits None, which marks the
                # in-flight record failed and sends waiters into the
                # fallback path above.
                memo.commit(key, entry)
        return None, (dict(maxima) if complete and maxima else None)

    def _explore_job(self, job: PortfolioJob, framework, report,
                     psm, deadlines: list[int],
                     track: Sequence[str] = (),
                     ) -> "tuple[Mapping[str, int] | None, bool]":
        """Steps 3 + 5/6 (+ optional sups): the exploration half.

        With ``track`` names the deadline sweep additionally records
        occupancy maxima — a read-only observation
        (:func:`~repro.mc.queries.check_many`'s ``track_maxima``), so
        verdicts, traces and tallies are untouched.  Returns
        ``(maxima, complete)``; ``(None, False)`` when nothing was
        tracked.
        """
        report.constraints = framework.check_constraints(
            psm, min_interarrival_ms=job.min_interarrival_ms,
            include_progress=job.include_progress)
        outcome = None
        if self.fused:
            outcome = self._fused_psm_queries(job, framework, report,
                                              psm, deadlines, track)
        elif track:
            # Same call verify_psm_deadlines makes, plus the watch
            # list — bit-identical results.
            from repro.mc.queries import (
                BoundedResponseQuery,
                check_many,
            )

            outcome = check_many(
                psm.network,
                [BoundedResponseQuery(job.input_channel,
                                      job.output_channel, deadline)
                 for deadline in deadlines],
                max_states=framework.max_states, jobs=framework.jobs,
                abstraction=framework.abstraction, track_maxima=track)
            report.psm_original_result = outcome[0]
            report.psm_relaxed_result = outcome[1]
            if job.measure_suprema:
                report.symbolic = framework.measure_psm(
                    psm, job.input_channel, job.output_channel)
        else:
            report.psm_original_result, report.psm_relaxed_result = \
                framework.verify_psm_deadlines(
                    psm, job.input_channel, job.output_channel,
                    deadlines)
            if job.measure_suprema:
                report.symbolic = framework.measure_psm(
                    psm, job.input_channel, job.output_channel)
        if outcome is None:
            return None, False
        return outcome.maxima, outcome.complete

    def _fused_psm_queries(self, job: PortfolioJob, framework, report,
                           psm, deadlines: list[int],
                           track: Sequence[str] = ()):
        """One ``check_many`` sweep for steps 5+6 (+ optional sups)."""
        from repro.mc.queries import (
            BoundedResponseQuery,
            ResponseSupQuery,
            check_many,
        )

        queries: list[object] = [
            BoundedResponseQuery(job.input_channel, job.output_channel,
                                 deadline)
            for deadline in deadlines
        ]
        if job.measure_suprema:
            queries += [
                ResponseSupQuery(job.input_channel,
                                 psm.io_name(job.input_channel)),
                ResponseSupQuery(psm.io_name(job.output_channel),
                                 job.output_channel),
                ResponseSupQuery(job.input_channel, job.output_channel),
            ]
        outcome = check_many(
            psm.network, queries, max_states=framework.max_states,
            jobs=framework.jobs, abstraction=framework.abstraction,
            track_maxima=track)
        report.psm_original_result = outcome[0]
        report.psm_relaxed_result = outcome[1]
        if job.measure_suprema:
            report.symbolic = {
                "Input-Delay": outcome[2],
                "Output-Delay": outcome[3],
                "M-C delay": outcome[4],
            }
        return outcome

    def _memo_key(self, job: PortfolioJob, psm, model,
                  deadlines: list[int]) -> tuple:
        """Everything besides the canonical network that can change a
        verdict, a bound, a sup or a tally.

        Channel/variable names enter in canonical form so two
        renamed-but-isomorphic jobs still share a key.  The worker
        count is deliberately absent — tallies are worker-count
        invariant (the pinned contract).
        """
        engine = EngineConfig.capture(abstraction=self.abstraction,
                                      jobs=None)

        def cid(name: str):
            try:
                return model.channel_id(name)
            except KeyError:
                return ("raw", name)

        def vid(name: str):
            # A flag the compiled network never reads or writes has no
            # canonical id; keying on its raw name is safe (it cannot
            # affect any verdict) if slightly conservative.
            try:
                return model.variable_id(name)
            except KeyError:
                return ("raw", name)

        from repro.core.delays import detection_bound

        detection = None
        if job.min_interarrival_ms is not None:
            # Constraint 1's analytic half compares each input's
            # worst-case (fault-inflated) detection against the
            # inter-arrival time.
            detection = tuple(sorted(
                (cid(channel), detection_bound(job.scheme, channel))
                for channel in job.pim.input_channels()))
        return (
            job.scheme.faults.signature(),
            model.digest,
            cid(job.input_channel), cid(job.output_channel),
            cid(psm.io_name(job.input_channel)),
            cid(psm.io_name(job.output_channel)),
            tuple(deadlines),
            job.min_interarrival_ms, detection,
            job.measure_suprema, job.include_progress,
            self.fused,
            job.max_states or self.max_states,
            engine.backend, engine.abstraction,
            tuple(sorted(vid(flag) for flag in psm.miss_flags())),
            tuple(sorted(vid(v.overflow)
                         for v in psm.input_vars.values())),
            tuple(sorted(vid(v.overflow)
                         for v in psm.output_vars.values())),
            vid(psm.code_drop_flag),
        )

    # ------------------------------------------------------------------
    # Lemma-1 dominance pruning (Tier 2)
    # ------------------------------------------------------------------
    def _dominance_plan(self, job_list: list[PortfolioJob],
                        ) -> dict[int, list[int]]:
        """Map each dominated job index to its candidate donors.

        Jobs group by everything *except* the Lemma-1-monotone slack
        axes (polling interval, period); within a group a point is
        deferred when some kept point has componentwise ≥ slack —
        larger boundary delays, a tighter relaxed deadline and slower
        sampling, i.e. the strictly harder configuration.  Kept points
        explore; deferred points later inherit a kept donor's verdict
        if (and only if) that donor earned the Theorem-1 guarantee.
        """
        groups: dict[tuple, list[tuple[int, tuple]]] = {}
        for index, job in enumerate(job_list):
            signature = _dominance_signature(
                job, job.max_states or self.max_states)
            if signature is None:
                continue
            key, slack = signature
            groups.setdefault(key, []).append((index, slack))
        deferred: dict[int, list[int]] = {}
        for members in groups.values():
            # Harder points first: any dominator of a point has a
            # componentwise-≥ slack vector, hence a ≥ sum, hence
            # appears earlier (equal sums dominate only when equal).
            members.sort(key=lambda item: (-sum(item[1]), item[0]))
            kept: list[tuple[int, tuple]] = []
            for index, slack in members:
                donors = [kept_index for kept_index, kept_slack in kept
                          if all(a >= b for a, b
                                 in zip(kept_slack, slack))]
                if donors:
                    deferred[index] = donors
                else:
                    kept.append((index, slack))
        return deferred

    def _derive_result(self, index: int, job: PortfolioJob,
                       donor: PortfolioResult,
                       engine_jobs: int | None,
                       obligation: tuple | None = None,
                       ) -> PortfolioResult:
        """Tier-2 row: Theorem-1 verdict inherited from a dominating
        donor, no exploration.

        The row keeps its *own* analytic Lemma-1/2 bounds (exact per
        scheme — the relaxed deadline column stays truthful); the
        donor contributes the constraint and relaxed-deadline verdicts
        under the documented monotonicity assumption.  The shared
        verdict objects may mention the donor's parameters in their
        witness text; ``derived_from`` records the provenance and the
        states/transitions tallies are withheld.
        """
        from repro.core.delays import bounds_from_internal
        from repro.core.framework import (
            TimingVerificationFramework,
            VerificationReport,
        )

        started = time.perf_counter()
        report = VerificationReport(
            input_channel=job.input_channel,
            output_channel=job.output_channel,
            deadline_ms=job.deadline_ms)
        result = PortfolioResult(
            index=index, name=job.name, scheme=job.scheme,
            deadline_ms=job.deadline_ms, report=report,
            derived_from=donor.name)
        try:
            if obligation is not None:
                pim_result, internal = obligation
            else:
                framework = TimingVerificationFramework(
                    max_states=job.max_states or self.max_states,
                    jobs=engine_jobs, abstraction=self.abstraction)
                pim_result, internal = self._pim_obligations(
                    job, framework)
            report.pim_result = pim_result
            report.bounds = bounds_from_internal(
                job.scheme, job.input_channel, job.output_channel,
                internal)
            report.constraints = donor.report.constraints
            report.psm_relaxed_result = donor.report.psm_relaxed_result
        except ExplorationLimit as exc:
            result.status = "budget-exceeded"
            result.error = str(exc)
            result.derived_from = None
        except Exception as exc:
            result.status = "error"
            result.error = f"{type(exc).__name__}: {exc}"
            result.derived_from = None
        result.wall_seconds = time.perf_counter() - started
        return result

    # ------------------------------------------------------------------
    # Process executor
    # ------------------------------------------------------------------
    def _run_process(self, job_list: list[PortfolioJob],
                     resolved: int | None,
                     on_result: Callable[[PortfolioResult], None] | None,
                     started: float) -> PortfolioOutcome:
        """Partition the job list across worker processes.

        Every job becomes a picklable :class:`_ProcessJobSpec`; rows
        ship back as plain :class:`PortfolioResult` dataclasses and
        commit into their submission slot, so the outcome is
        job-ordered no matter which worker finishes first.
        ``on_result`` streams rows in completion order from the
        parent, exactly like the thread scheduler.  Fault isolation
        covers the whole lifecycle: a job that cannot be shipped
        (pickling), a worker that dies (``BrokenProcessPool``), and a
        budget blow-up inside a worker each produce a structured
        error row — never a dead sweep, never a ``None`` slot.
        """
        results: list[PortfolioResult | None] = [None] * len(job_list)
        callback_errors: list[BaseException] = []
        self._pim_cache.clear()

        def commit(result: PortfolioResult) -> None:
            results[result.index] = result
            if on_result is not None:
                try:
                    on_result(result)
                except Exception as exc:
                    if not callback_errors:
                        callback_errors.append(exc)

        obligations, obligation_of = \
            self._parent_obligations(job_list)
        # Parent-side memoization needs the shared obligation values
        # (the memoized row's analytic bounds come from them); with
        # sharing disabled the memo degrades to worker-local no-ops.
        pool_reuse = self.reuse and self.share_pim_obligations
        deferred = (self._dominance_plan(job_list)
                    if self.prune_dominated else {})
        width = min(resolved or 1, len(job_list) or 1)
        pending: list[_ProcessJobSpec] = []
        for index, job in enumerate(job_list):
            slot = obligation_of[index]
            if slot is not None and obligations[slot][0] != "ok":
                # The shared obligation itself failed: every sharer
                # gets the same structured failure row — same status
                # classification (budget-exceeded vs error) as the
                # thread scheduler — and never reaches a worker.
                commit(PortfolioResult(
                    index=index, name=job.name, scheme=job.scheme,
                    deadline_ms=job.deadline_ms,
                    status=obligations[slot][0],
                    error=obligations[slot][1]))
                deferred.pop(index, None)
                continue
            pending.append(_ProcessJobSpec(index=index, job=job,
                                           obligation=slot))
        spec_of = {spec.index: spec for spec in pending}
        inline_verifier = (self._worker_verifier()
                           if width <= 1 else None)

        def run_specs(specs: list[_ProcessJobSpec]) -> None:
            if not specs:
                return
            if inline_verifier is not None:
                # No spare processes to partition onto: run the same
                # per-job pipeline inline (identical rows, no fork);
                # the single verifier's memo spans the whole batch.
                values = [value for _, value in obligations]
                for spec in specs:
                    commit(inline_verifier._run_one(
                        spec.index, spec.job, None, None, None,
                        obligation=(values[spec.obligation]
                                    if spec.obligation is not None
                                    else None)))
            else:
                self._run_process_pool(specs, obligations, width,
                                       commit, reuse=pool_reuse)

        run_specs([spec for spec in pending
                   if spec.index not in deferred])
        leftovers: list[_ProcessJobSpec] = []
        for index in sorted(deferred):
            spec = spec_of.get(index)
            if spec is None:
                continue
            donor = next(
                (results[d] for d in deferred[index]
                 if results[d] is not None and results[d].ok
                 and results[d].guarantee), None)
            if donor is None:
                leftovers.append(spec)
                continue
            obligation = (obligations[spec.obligation][1]
                          if spec.obligation is not None else None)
            commit(self._derive_result(index, spec.job, donor, None,
                                       obligation=obligation))
        run_specs(leftovers)
        if callback_errors:
            raise callback_errors[0]
        outcome = PortfolioOutcome(
            results=list(results), jobs=resolved,
            concurrency=width, fused=self.fused, executor="process",
            reuse=self.reuse,
            wall_seconds=time.perf_counter() - started)
        outcome.tally_reuse()
        return outcome

    def _worker_verifier(self) -> "PortfolioVerifier":
        """The verifier a worker (or the inline fallback) runs jobs
        on: sequential engine, no cross-job sharing — each row is
        exactly the per-scheme sequential ``verify``.  ``reuse``
        passes through: the inline fallback's single verifier shares
        its memo across the batch; a worker process uses it only to
        track the occupancy evidence the parent memoizes from."""
        return PortfolioVerifier(
            jobs=None, executor="thread", max_states=self.max_states,
            fused=self.fused, intern=False,
            share_pim_obligations=False, abstraction=self.abstraction,
            reuse=self.reuse)

    def _run_process_pool(self, pending: list["_ProcessJobSpec"],
                          obligations: list[tuple], width: int,
                          commit: Callable[[PortfolioResult], None],
                          reuse: bool = False) -> None:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor, as_completed

        # Parent-side memo plan: one leader per canonical key is
        # dispatched; followers resolve against the parent memo once
        # their leader's row (with its occupancy evidence) lands.
        if reuse:
            leaders, followers, models = self._memo_split(
                pending, obligations)
        else:
            leaders, followers, models = list(pending), [], {}
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX
            ctx = multiprocessing.get_context()
        config = _ProcessConfig(
            engine=EngineConfig.capture(abstraction=self.abstraction,
                                        jobs=None),
            max_states=self.max_states, fused=self.fused,
            obligations=tuple(value for _, value in obligations),
            reuse=reuse)
        executor = ProcessPoolExecutor(
            max_workers=width, mp_context=ctx,
            initializer=_process_worker_init, initargs=(config,))

        def run_round(specs: list[_ProcessJobSpec]) -> None:
            futures = {executor.submit(_process_worker_run, spec): spec
                       for spec in specs}
            for future in as_completed(futures):
                spec = futures[future]
                try:
                    row = future.result()
                except Exception as exc:
                    # Submission pickling failures land here too (the
                    # executor sets them on the affected future); a
                    # dead worker breaks the pool and every pending
                    # future raises — each becomes its own error row.
                    # Only Exception: BrokenProcessPool and pickling
                    # errors are Exceptions, while a parent-side
                    # KeyboardInterrupt/SystemExit must abort the
                    # sweep, not become a fake worker failure.
                    row = PortfolioResult(
                        index=spec.index, name=spec.job.name,
                        scheme=spec.job.scheme,
                        deadline_ms=spec.job.deadline_ms,
                        status="error",
                        error=f"worker failed: "
                              f"{type(exc).__name__}: {exc}")
                if (reuse and row.status == "ok"
                        and spec.index in models):
                    self._record_worker_entry(spec, row, models)
                # Outside the except: a KeyboardInterrupt/SystemExit
                # raised by the on_result callback must stay fatal
                # (as in the thread scheduler), not masquerade as a
                # worker failure.
                commit(row)

        try:
            run_round(leaders)
            # A leader's entry need not cover every same-key follower
            # (its occupancy may have reached its own smaller
            # capacity), so resolution iterates: each round commits
            # every follower the memo now covers, then explores one
            # representative per key among the rest — every remaining
            # key shrinks by one member per round, so this terminates.
            pending_followers = followers
            while pending_followers:
                unresolved: list[_ProcessJobSpec] = []
                for spec in pending_followers:
                    key, model = models[spec.index]
                    entry = self._memo.find(key, model)
                    if entry is not None:
                        commit(self._memoized_result(spec, entry,
                                                     obligations))
                    else:
                        unresolved.append(spec)
                if not unresolved:
                    break
                representatives: list[_ProcessJobSpec] = []
                waiters: list[_ProcessJobSpec] = []
                seen_keys: set = set()
                for spec in unresolved:
                    key, _ = models[spec.index]
                    if key in seen_keys:
                        waiters.append(spec)
                    else:
                        seen_keys.add(key)
                        representatives.append(spec)
                run_round(representatives)
                pending_followers = waiters
        finally:
            # cancel_futures: on an abort (KeyboardInterrupt, daemon
            # shutdown) queued-but-unstarted jobs are dropped instead
            # of run to completion — shutdown then only waits for the
            # rounds already on workers.
            executor.shutdown(wait=True, cancel_futures=True)

    def _memo_split(self, pending: list["_ProcessJobSpec"],
                    obligations: list[tuple]):
        """Group specs by canonical memo key in the parent.

        Returns ``(leaders, followers, models)`` where ``models`` maps
        a spec index to its ``(key, model)``.  A job whose PSM cannot
        be compiled (or keyed) in the parent dispatches normally so
        the worker produces the properly classified failure row.
        """
        from repro.core.delays import bounds_from_internal
        from repro.core.transform import transform
        from repro.mc.memo import psm_canonical_model

        leaders: list[_ProcessJobSpec] = []
        followers: list[_ProcessJobSpec] = []
        models: dict[int, tuple] = {}
        seen: set[tuple] = set()
        for spec in pending:
            job = spec.job
            if spec.obligation is None:
                leaders.append(spec)
                continue
            try:
                psm = transform(job.pim, job.scheme)
                model = psm_canonical_model(psm)
                _, internal = obligations[spec.obligation][1]
                bounds = bounds_from_internal(
                    job.scheme, job.input_channel, job.output_channel,
                    internal)
                key = self._memo_key(
                    job, psm, model, [job.deadline_ms, bounds.relaxed])
            except Exception:
                leaders.append(spec)
                continue
            models[spec.index] = (key, model)
            if key in seen:
                followers.append(spec)
            else:
                seen.add(key)
                leaders.append(spec)
        return leaders, followers, models

    def _record_worker_entry(self, spec: "_ProcessJobSpec",
                             row: PortfolioResult, models) -> None:
        """Populate the parent memo from a finished worker row."""
        key, model = models[spec.index]
        entry = memo_entry_from_row(row, model)
        if entry is not None:
            self._memo.record(key, entry)

    def _memoized_result(self, spec: "_ProcessJobSpec", entry,
                         obligations: list[tuple]) -> PortfolioResult:
        """Parent-built row for a follower answered from the memo."""
        return memoized_result(spec.index, spec.job, entry,
                               obligations[spec.obligation][1])

    def _parent_obligations(self, job_list: list[PortfolioJob]):
        """Step 1 + the Lemma-2 internal sup, once per distinct key,
        computed *in the parent* for shipping to process workers.

        Returns ``(values, obligation_of)`` where ``values[i]`` is
        ``("ok", (pim_result, internal))`` or ``("error", message)``
        and ``obligation_of[j]`` indexes the value job ``j`` shares
        (``None`` with ``share_pim_obligations=False`` — every worker
        then computes its own).
        """
        if not self.share_pim_obligations:
            return [], [None] * len(job_list)
        from repro.core.framework import TimingVerificationFramework

        values: list[tuple] = []
        index_of: dict[tuple, int] = {}
        obligation_of: list[int | None] = []
        for job in job_list:
            max_states = job.max_states or self.max_states
            key = (id(job.pim), job.input_channel, job.output_channel,
                   job.deadline_ms, max_states)
            slot = index_of.get(key)
            if slot is None:
                framework = TimingVerificationFramework(
                    max_states=max_states, jobs=None,
                    abstraction=self.abstraction)
                try:
                    value = ("ok", _compute_obligation(job, framework))
                except ExplorationLimit as exc:
                    # Same classification the per-job handler gives a
                    # blown budget, so thread and process rows agree.
                    value = ("budget-exceeded", str(exc))
                except Exception as exc:
                    value = ("error", f"{type(exc).__name__}: {exc}")
                slot = index_of[key] = len(values)
                values.append(value)
            obligation_of.append(slot)
        return values, obligation_of

    # ------------------------------------------------------------------
    def _pim_obligations(self, job: PortfolioJob, framework):
        """Step 1 + the Lemma-2 internal sup, deduped across jobs."""
        def compute():
            return _compute_obligation(job, framework)

        if not self.share_pim_obligations:
            return compute()
        key = (id(job.pim), job.input_channel, job.output_channel,
               job.deadline_ms, framework.max_states)
        with self._pim_lock:
            entry = self._pim_cache.get(key)
            owner = entry is None
            if owner:
                entry = self._pim_cache[key] = _SharedObligation()
        if owner:
            try:
                entry.value = compute()
            except BaseException as exc:
                entry.error = exc
                raise
            finally:
                entry.event.set()
            return entry.value
        entry.event.wait()
        if entry.error is not None:
            raise entry.error
        return entry.value


def memo_entry_from_row(row: PortfolioResult,
                        model) -> "MemoEntry | None":
    """A :class:`~repro.mc.memo.MemoEntry` built from a finished row
    (``None`` when the row carries nothing memoizable — it errored
    before the relaxed sweep committed).

    ``model`` is the row's own canonical capacity-erased model; the
    process executor's parent and the service daemon both use this to
    populate a memo from rows that were produced elsewhere.
    """
    from repro.mc.memo import MemoEntry

    report = row.report
    if report is None or report.psm_relaxed_result is None:
        return None
    return MemoEntry(
        donor=row.name, erased=model.erased,
        maxima=row.occupancy,
        constraints=report.constraints,
        original=report.psm_original_result,
        relaxed=report.psm_relaxed_result,
        symbolic=dict(report.symbolic or {}))


def memoized_result(index: int, job: PortfolioJob, entry,
                    obligation: tuple) -> PortfolioResult:
    """A complete row answered from a memo entry, no exploration.

    ``obligation`` is the job's ``(pim_result, internal)`` pair (the
    scheme-independent half of the pipeline).  Verdicts, bounds and
    tallies are the donor's own — exact by the occupancy-certificate
    bisimulation — with ``memo_hit`` provenance set.
    """
    from repro.core.delays import bounds_from_internal
    from repro.core.framework import VerificationReport

    started = time.perf_counter()
    report = VerificationReport(
        input_channel=job.input_channel,
        output_channel=job.output_channel,
        deadline_ms=job.deadline_ms)
    result = PortfolioResult(
        index=index, name=job.name, scheme=job.scheme,
        deadline_ms=job.deadline_ms, report=report,
        memo_hit=entry.donor)
    pim_result, internal = obligation
    report.pim_result = pim_result
    report.bounds = bounds_from_internal(
        job.scheme, job.input_channel, job.output_channel,
        internal)
    report.constraints = entry.constraints
    report.psm_original_result = entry.original
    report.psm_relaxed_result = entry.relaxed
    if job.measure_suprema:
        report.symbolic = dict(entry.symbolic)
    result.wall_seconds = time.perf_counter() - started
    return result


def _compute_obligation(job: PortfolioJob, framework) -> tuple:
    """One (PIM, requirement) obligation: step 1 + the internal sup."""
    from repro.core.delays import internal_delay

    pim_result = framework.verify_pim(
        job.pim, job.input_channel, job.output_channel,
        job.deadline_ms)
    internal = internal_delay(
        job.pim, job.input_channel, job.output_channel,
        max_states=framework.max_states, jobs=framework.jobs,
        abstraction=framework.abstraction)
    return pim_result, internal


# ----------------------------------------------------------------------
# Lemma-1 dominance signatures
# ----------------------------------------------------------------------
def _freeze(value):
    """Hashable structural key for spec dataclasses and mappings."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return tuple((spec_field.name,
                      _freeze(getattr(value, spec_field.name)))
                     for spec_field in dataclasses.fields(value))
    if isinstance(value, Mapping):
        return tuple(sorted((key, _freeze(item))
                            for key, item in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(_freeze(item) for item in value))
    return value


def _dominance_signature(job: PortfolioJob, max_states: int,
                         ) -> tuple[tuple, tuple[int, ...]] | None:
    """``(group_key, slack_vector)`` for Lemma-1 dominance, or ``None``.

    The slack vector collects the property-tested monotone axes —
    each polled input's ``polling_interval`` (sorted by channel) and
    the invocation ``period`` — and the group key is everything else
    about the job: PIM identity, requirement, budget, and the scheme
    with the slack axes masked out.  A polled and an interrupt-driven
    input never share a group (``None`` vs the mask differ), so slack
    vectors within a group always align.  Jobs measuring suprema are
    never grouped: sup values are scheme-exact and cannot be derived.
    """
    if job.measure_suprema:
        return None
    scheme = job.scheme
    slack: list[int] = []
    inputs_key = []
    for channel in sorted(scheme.inputs):
        spec = scheme.inputs[channel]
        entry = []
        for spec_field in dataclasses.fields(spec):
            value = getattr(spec, spec_field.name)
            if (spec_field.name == "polling_interval"
                    and value is not None):
                slack.append(value)
                value = "*"
            entry.append((spec_field.name, _freeze(value)))
        inputs_key.append((channel, tuple(entry)))
    invocation = scheme.invocation
    invocation_key = []
    for spec_field in dataclasses.fields(invocation):
        value = getattr(invocation, spec_field.name)
        if spec_field.name == "period" and value is not None:
            slack.append(value)
            value = "*"
        invocation_key.append((spec_field.name, _freeze(value)))
    key = (
        id(job.pim), job.input_channel, job.output_channel,
        job.deadline_ms, job.min_interarrival_ms,
        job.include_progress, max_states,
        tuple(inputs_key),
        _freeze(scheme.outputs), _freeze(scheme.io_inputs),
        _freeze(scheme.io_outputs), tuple(invocation_key),
        _freeze(scheme.faults))
    return key, tuple(slack)


# ----------------------------------------------------------------------
# Process-worker side (module level: picklable by reference)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _ProcessConfig:
    """Everything a worker process needs, shipped once per worker.

    ``engine`` replays the coordinator's resolved backend/abstraction
    (and pins the inner engine to sequential, ``jobs=None``);
    ``obligations`` carries the parent-computed shared PIM obligation
    values the job specs index into.
    """

    engine: EngineConfig
    max_states: int
    fused: bool
    obligations: tuple = ()
    #: Track occupancy evidence in the workers so the parent can
    #: memoize their rows (the worker-local memo itself is inert —
    #: each worker builds a fresh verifier per job).
    reuse: bool = False


@dataclass(frozen=True)
class _ProcessJobSpec:
    """One job's picklable shipping form: the :class:`PortfolioJob`
    (PIM + scheme parameters + requirement descriptors — plain
    dataclasses, never compiled networks or zones) plus the index of
    its shared-obligation value, if any."""

    index: int
    job: PortfolioJob
    obligation: int | None = None


_PROC_PORTFOLIO: _ProcessConfig | None = None


def _process_worker_init(config: _ProcessConfig) -> None:
    """Replay the coordinator's engine configuration in this worker."""
    global _PROC_PORTFOLIO
    os.environ.pop(ENV_EXECUTOR, None)  # workers never recurse
    config.engine.apply()
    _PROC_PORTFOLIO = config


def _process_worker_run(spec: _ProcessJobSpec) -> PortfolioResult:
    """Run one job in this worker; always returns a structured row."""
    config = _PROC_PORTFOLIO
    verifier = PortfolioVerifier(
        jobs=None, executor="thread", max_states=config.max_states,
        fused=config.fused, intern=False, share_pim_obligations=False,
        reuse=config.reuse)
    obligation = (config.obligations[spec.obligation]
                  if spec.obligation is not None else None)
    return verifier._run_one(spec.index, spec.job, None, None, None,
                             obligation=obligation)
