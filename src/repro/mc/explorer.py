"""Zone-graph exploration (forward symbolic reachability).

The explorer enumerates the symbolic transition system of a network:
states are (location vector, valuation, canonical delay-closed zone).
Every stored zone already includes the time elapse allowed by the
invariants at its locations, so "state satisfies φ" means "some
concrete run reaches a configuration in the zone satisfying φ".

Termination comes from Extra_M extrapolation plus the passed-list
inclusion check — the textbook algorithm (Bengtsson & Yi 2003), with
UPPAAL's committed-location priority, urgent locations and urgent
channels layered on top.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

from repro.mc.state import CompiledEdge, CompiledNetwork, SymbolicState
from repro.ta.model import ModelError, Network
from repro.zones.dbm import DBM

__all__ = [
    "ExplorationLimit",
    "ExplorationResult",
    "ZoneGraphExplorer",
]


class ExplorationLimit(Exception):
    """Raised when the state-space budget is exhausted."""


@dataclass
class ExplorationResult:
    """Outcome of one exploration run."""

    #: Number of symbolic states stored (after inclusion reduction).
    visited: int
    #: First state satisfying the stop predicate, if any.
    stopped: SymbolicState | None = None
    #: Transition labels from the initial state to ``stopped``
    #: (only when the explorer was created with ``trace=True``).
    trace: list[str] | None = None
    #: True when the full zone graph was explored (no early stop).
    complete: bool = True
    #: Number of successor computations performed.
    transitions: int = 0

    @property
    def found(self) -> bool:
        return self.stopped is not None


_NodeId = tuple[tuple[tuple[int, ...], tuple[int, ...]], tuple[int, ...]]


class ZoneGraphExplorer:
    """Forward explorer over a compiled network.

    Parameters
    ----------
    network:
        The model to explore.
    extra_max_constants:
        Optional per-clock extrapolation ceilings (display names), for
        sup queries that must observe values above the model's own
        constants.
    trace:
        Record parent links so counterexample traces can be rebuilt.
    max_states:
        Hard cap on stored symbolic states.
    """

    def __init__(self, network: Network, *,
                 extra_max_constants: Mapping[str, int] | None = None,
                 trace: bool = False,
                 max_states: int = 1_000_000,
                 free_clock_when_zero: Mapping[str, str] | None = None):
        self.network = network
        self.compiled = CompiledNetwork(
            network, extra_max_constants=extra_max_constants)
        self.trace_enabled = trace
        self.max_states = max_states
        # Valuation-conditional clock freeing: {flag var -> clock}.
        # The named clock is freed in every state where the flag is 0.
        # Sound whenever the clock is only ever *read* under flag == 1
        # — the observer instrumentation's situation — and essential to
        # keep instrumented zone graphs close to the base model's size.
        self._conditional_free: list[tuple[int, int]] = []
        for flag, clock in (free_clock_when_zero or {}).items():
            self._conditional_free.append(
                (self.compiled.var_pos(flag),
                 self.compiled.clock_id_by_name(clock)))

    # ------------------------------------------------------------------
    def initial_state(self) -> SymbolicState:
        compiled = self.compiled
        zone = DBM.zero(compiled.n_clocks)
        locs = compiled.initial_locs
        vals = compiled.initial_vals
        self._free_inactive(zone, locs)
        self._free_conditional(zone, vals)
        self._apply_invariants(zone, locs)
        if zone.is_empty():
            raise ModelError(
                "initial state violates the location invariants")
        env = compiled.data_env(vals)
        if not self._delay_forbidden(locs, env):
            zone.up()
            self._apply_invariants(zone, locs)
        zone.extrapolate_max(compiled.max_constants)
        return SymbolicState(locs, vals, zone)

    def _free_inactive(self, zone: DBM, locs: tuple[int, ...]) -> None:
        """Active-clock reduction: free clocks dead at these locations."""
        compiled = self.compiled
        for a in range(compiled.n_automata):
            for clock_idx in compiled.inactive_clocks[a][locs[a]]:
                zone.free(clock_idx)

    def _free_conditional(self, zone: DBM,
                          vals: tuple[int, ...]) -> None:
        """Free clocks whose guarding flag is currently 0."""
        for var_pos, clock_idx in self._conditional_free:
            if vals[var_pos] == 0:
                zone.free(clock_idx)

    def _apply_invariants(self, zone: DBM, locs: tuple[int, ...]) -> None:
        compiled = self.compiled
        for a in range(compiled.n_automata):
            for i, j, bound in compiled.invariant_ops[a][locs[a]]:
                zone.constrain(i, j, bound)

    def _delay_forbidden(self, locs: tuple[int, ...],
                         env: Mapping[str, int]) -> bool:
        compiled = self.compiled
        return (compiled.any_committed(locs)
                or compiled.any_urgent_location(locs)
                or compiled.urgent_sync_enabled(locs, env))

    # ------------------------------------------------------------------
    def successors(self, state: SymbolicState) \
            -> Iterator[tuple[SymbolicState, str]]:
        """All symbolic successors with their transition labels."""
        compiled = self.compiled
        env = compiled.data_env(state.vals)
        for move in compiled.moves(state.locs, env):
            # Data guards are evaluated on the pre-state (UPPAAL rule).
            if not all(e.guard_fn(env) for e in move):
                continue
            zone = state.zone.copy()
            for edge in move:
                for i, j, bound in edge.clock_ops:
                    zone.constrain(i, j, bound)
            if zone.is_empty():
                continue
            new_locs = list(state.locs)
            for edge in move:
                new_locs[edge.auto_idx] = edge.target_idx
            locs = tuple(new_locs)
            # Updates in firing order (sender first), sequential data
            # semantics; assignments are range-checked.
            env2: dict[str, int] | None = None
            for edge in move:
                for op in edge.update_ops:
                    kind = op[0]
                    if kind == "reset":
                        zone.reset(op[1], op[2])
                    elif kind == "copy":
                        zone.assign_clock(op[1], op[2])
                    else:  # assign
                        if env2 is None:
                            env2 = dict(env)
                        decl = compiled.var_decls[op[1]]
                        try:
                            env2[op[1]] = decl.check(op[2].eval(env2))
                        except ModelError as exc:
                            raise ModelError(
                                f"{exc} (while firing "
                                f"{self._move_label(move)} from "
                                f"{compiled.state_description(state)})"
                            ) from exc
            vals = state.vals if env2 is None else tuple(
                env2[name] for name in compiled.var_names)
            self._free_inactive(zone, locs)
            if self._conditional_free:
                self._free_conditional(zone, vals)
            self._apply_invariants(zone, locs)
            if zone.is_empty():
                continue
            post_env = env if env2 is None else env2
            if not self._delay_forbidden(locs, post_env):
                zone.up()
                self._apply_invariants(zone, locs)
            zone.extrapolate_max(compiled.max_constants)
            if zone.is_empty():
                continue
            yield SymbolicState(locs, vals, zone), self._move_label(move)

    @staticmethod
    def _move_label(move: tuple[CompiledEdge, ...]) -> str:
        if len(move) == 1 and move[0].channel_idx is None:
            return move[0].label()
        return " || ".join(e.label() for e in move)

    # ------------------------------------------------------------------
    def explore(
        self,
        stop: Callable[[SymbolicState], bool] | None = None,
        visit: Callable[[SymbolicState], None] | None = None,
    ) -> ExplorationResult:
        """Breadth-first exploration.

        ``stop`` halts the search at the first satisfying state (its
        trace is reconstructed when tracing is on); ``visit`` is called
        once per stored state — use it to accumulate sup-style metrics.
        """
        compiled = self.compiled
        init = self.initial_state()
        passed: dict[tuple, list[DBM]] = {init.key(): [init.zone]}
        parents: dict[_NodeId, tuple[_NodeId | None, str]] = {}
        init_id = (init.key(), init.zone.frozen())
        if self.trace_enabled:
            parents[init_id] = (None, "<init>")
        stored = 1
        transitions = 0
        if visit is not None:
            visit(init)
        if stop is not None and stop(init):
            return ExplorationResult(
                visited=stored, stopped=init,
                trace=self._rebuild(parents, init_id), complete=False,
                transitions=transitions)
        waiting: deque[SymbolicState] = deque([init])
        while waiting:
            state = waiting.popleft()
            state_id = (state.key(), state.zone.frozen())
            for succ, label in self.successors(state):
                transitions += 1
                key = succ.key()
                zones = passed.setdefault(key, [])
                if any(z.includes(succ.zone) for z in zones):
                    continue
                zones[:] = [z for z in zones if not succ.zone.includes(z)]
                zones.append(succ.zone)
                stored += 1
                if stored > self.max_states:
                    raise ExplorationLimit(
                        f"exceeded {self.max_states} symbolic states "
                        f"exploring {self.network.name!r}")
                succ_id = (key, succ.zone.frozen())
                if self.trace_enabled:
                    parents[succ_id] = (state_id, label)
                if visit is not None:
                    visit(succ)
                if stop is not None and stop(succ):
                    return ExplorationResult(
                        visited=stored, stopped=succ,
                        trace=self._rebuild(parents, succ_id),
                        complete=False, transitions=transitions)
                waiting.append(succ)
        return ExplorationResult(visited=stored, complete=True,
                                 transitions=transitions)

    def _rebuild(self, parents: dict, node_id: _NodeId) \
            -> list[str] | None:
        if not self.trace_enabled:
            return None
        labels: list[str] = []
        current: _NodeId | None = node_id
        while current is not None:
            parent, label = parents[current]
            labels.append(label)
            current = parent
        labels.reverse()
        return labels[1:]  # drop the "<init>" marker

    # ------------------------------------------------------------------
    def iter_states(self) -> Iterator[SymbolicState]:
        """Materialize every reachable symbolic state (full search)."""
        states: list[SymbolicState] = []
        self.explore(visit=states.append)
        return iter(states)
