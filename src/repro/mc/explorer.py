"""Zone-graph exploration (forward symbolic reachability).

The explorer enumerates the symbolic transition system of a network:
states are (location vector, valuation, canonical delay-closed zone).
Every stored zone already includes the time elapse allowed by the
invariants at its locations, so "state satisfies φ" means "some
concrete run reaches a configuration in the zone satisfying φ".

Termination comes from Extra_M extrapolation plus the passed-list
inclusion check — the textbook algorithm (Bengtsson & Yi 2003), with
UPPAAL's committed-location priority, urgent locations and urgent
channels layered on top.

Performance architecture (see ``docs/PERFORMANCE.md``):

* **Memoized successor plans.**  Everything about a successor except
  its zone — enabled moves, data-guard filtering, target locations,
  variable updates, the clocks to free, the invariant constraints and
  the delay decision — depends only on the *discrete* part of a state.
  The explorer compiles this once per discrete configuration into a
  list of :class:`_MovePlan` steps; expanding a state then runs pure
  zone arithmetic.
* **Fused, allocation-lean zone pipeline.**  Each plan step executes
  copy → constrain* → reset*/copy* → free* → invariants → up →
  extrapolate on a single reusable scratch matrix (``copy_from`` +
  ``constrain_all`` with early exit on emptiness); a fresh zone is
  materialized only for successors that survive all emptiness checks.
* **Batched passed-list subsumption.**  Per discrete configuration the
  stored zones live in a backend-paired bucket
  (:mod:`repro.zones.store`) that answers inclusion/eviction sweeps in
  one pass instead of per-zone ``includes`` calls.
* **Subsumption-aware waiting list** (opt-in ``lazy_subsumption``):
  when a newly stored zone evicts subsumed zones from the passed list,
  their waiting-list entries are marked dead and skipped on pop
  instead of expanded.  The final reduced zone graph is provably
  unchanged (successor computation is monotone in the zone), but the
  *visit order and the visited/transitions tallies* shrink, so the
  default stays eager — ``zone_graph_stats`` and the paper experiments
  report bit-identical numbers to the seed implementation.

The zone backend (pure-Python reference or vectorized numpy) is chosen
per explorer via ``zone_backend=``, the ``REPRO_ZONE_BACKEND``
environment variable or :func:`repro.zones.backend.set_backend`; both
backends yield bit-identical zone graphs.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

from repro.mc.state import CompiledEdge, CompiledNetwork, SymbolicState
from repro.ta.model import ModelError, Network
from repro.zones.backend import resolve_backend
from repro.zones.costmodel import BackendHint

__all__ = [
    "ExplorationLimit",
    "ExplorationResult",
    "ZoneGraphExplorer",
    "exploration_count",
]


class ExplorationLimit(Exception):
    """Raised when the state-space budget is exhausted."""


#: Process-wide tally of exploration runs (sequential and sharded).
#: The shared-exploration query planner asserts against it: a batch of
#: queries compiled into one sweep must bump this exactly once.  The
#: lock keeps the tally exact when portfolio scheduler threads start
#: explorations concurrently (``int += 1`` is not atomic in CPython).
_EXPLORATIONS = 0
_EXPLORATIONS_LOCK = threading.Lock()


def exploration_count() -> int:
    """How many zone-graph explorations this process has started."""
    return _EXPLORATIONS


def _count_exploration() -> None:
    global _EXPLORATIONS
    with _EXPLORATIONS_LOCK:
        _EXPLORATIONS += 1


@dataclass
class ExplorationResult:
    """Outcome of one exploration run."""

    #: Number of symbolic states stored (after inclusion reduction).
    visited: int
    #: First state satisfying the stop predicate, if any.
    stopped: SymbolicState | None = None
    #: Transition labels from the initial state to ``stopped``
    #: (only when the explorer was created with ``trace=True``).
    trace: list[str] | None = None
    #: True when the full zone graph was explored (no early stop).
    complete: bool = True
    #: Number of successor computations performed.
    transitions: int = 0

    @property
    def found(self) -> bool:
        return self.stopped is not None


_NodeId = tuple[tuple[tuple[int, ...], tuple[int, ...]], tuple[int, ...]]


class _MovePlan:
    """One discrete move, fully resolved for a discrete configuration.

    Built once per (locations, valuation) pair: the data guards have
    already been evaluated (moves failing them never get a plan), the
    variable updates have been folded into ``vals``, and the zone work
    is reduced to op lists the fused pipeline replays on a scratch
    matrix.  ``error`` carries a deferred range-check failure that the
    seed semantics raise only when the guard-constrained zone is
    non-empty.
    """

    __slots__ = ("guard_ops", "zone_ops", "free_clocks", "invariant_ops",
                 "delay", "locs", "vals", "label", "error", "lu",
                 "channel_idx")

    def __init__(self, guard_ops, zone_ops, free_clocks, invariant_ops,
                 delay, locs, vals, label, error, lu=None,
                 channel_idx=None):
        self.guard_ops = guard_ops
        self.zone_ops = zone_ops
        self.free_clocks = free_clocks
        self.invariant_ops = invariant_ops
        self.delay = delay
        self.locs = locs
        self.vals = vals
        self.label = label
        self.error = error
        #: ``(lower, upper)`` Extra⁺_LU maps of the *target* location
        #: vector, or ``None`` under Extra_M.
        self.lu = lu
        #: Synchronization channel of the move (``None`` = internal) —
        #: the conformance monitor partitions plans on it.
        self.channel_idx = channel_idx


class _WaitEntry:
    """Waiting-list node; ``alive`` is cleared when the zone is evicted.

    Shared with the sharded explorer, which creates entries before a
    candidate's state is materialized (hence the ``None`` default).
    """

    __slots__ = ("state", "alive")

    def __init__(self, state: SymbolicState | None = None):
        self.state = state
        self.alive = True


class ZoneGraphExplorer:
    """Forward explorer over a compiled network.

    Parameters
    ----------
    network:
        The model to explore.
    extra_max_constants:
        Optional per-clock extrapolation ceilings (display names), for
        sup queries that must observe values above the model's own
        constants.
    trace:
        Record parent links so counterexample traces can be rebuilt.
    max_states:
        Hard cap on stored symbolic states.
    zone_backend:
        Zone-kernel choice (``auto``/``reference``/``numpy``); ``None``
        defers to :func:`repro.zones.backend.resolve_backend`.
    lazy_subsumption:
        Skip waiting-list entries whose zone was evicted by a larger
        one before they were expanded.  The reduced zone graph is
        unchanged but visit order and the visited/transitions counts
        shrink, so this is opt-in.
    abstraction:
        Extrapolation operator: ``"extra_m"`` (the default — global
        per-clock maximum constants, the seed behavior every pin is
        tied to) or ``"extra_lu"`` (per-location Extra⁺_LU bounds —
        same verdicts, bounds and suprema, smaller zone graphs).
        ``None`` defers to :func:`repro.ta.bounds.resolve_abstraction`
        (``set_abstraction`` override, then ``REPRO_ABSTRACTION``).
    """

    def __init__(self, network: Network, *,
                 extra_max_constants: Mapping[str, int] | None = None,
                 trace: bool = False,
                 max_states: int = 1_000_000,
                 free_clock_when_zero: Mapping[str, str] | None = None,
                 zone_backend: str | None = None,
                 lazy_subsumption: bool = False,
                 abstraction: str | None = None):
        self.network = network
        self.compiled = CompiledNetwork(
            network, extra_max_constants=extra_max_constants,
            abstraction=abstraction)
        self.abstraction = self.compiled.abstraction
        self.trace_enabled = trace
        self.max_states = max_states
        # ``auto`` resolution consults the compiled network's shape
        # (clock count + the portfolio scheduler's structural-size
        # measure); wave_width=1 models this sequential explorer's
        # one-state-at-a-time kernel calls.
        self.backend = resolve_backend(zone_backend, hint=BackendHint(
            n_clocks=self.compiled.n_clocks,
            structural_size=sum(len(a.locations) + len(a.edges)
                                for a in network.automata),
            wave_width=1))
        self.lazy_subsumption = lazy_subsumption
        self._dbm = self.backend.dbm
        self._bucket_cls = self.backend.bucket
        # Successor plans, memoized per discrete configuration.  Built
        # lazily so query compilation (protect_clocks) can still adjust
        # the active-clock tables before the first expansion; the
        # version check below drops stale plans if that happens after.
        self._plans: dict[tuple, list[_MovePlan]] = {}
        self._plans_version = self.compiled.reduction_version
        # Valuation-conditional clock freeing: {flag var -> clock}.
        # The named clock is freed in every state where the flag is 0.
        # Sound whenever the clock is only ever *read* under flag == 1
        # — the observer instrumentation's situation — and essential to
        # keep instrumented zone graphs close to the base model's size.
        self._conditional_free: list[tuple[int, int]] = []
        for flag, clock in (free_clock_when_zero or {}).items():
            self._conditional_free.append(
                (self.compiled.var_pos(flag),
                 self.compiled.clock_id_by_name(clock)))
        #: Parent links of the most recent traced exploration
        #: (``{node_id: (parent_id | None, label)}``); lets the query
        #: planner rebuild one trace per observer after a shared sweep.
        self.parents: dict[_NodeId, tuple[_NodeId | None, str]] = {}
        #: Per-key passed buckets of the most recent exploration
        #: (diagnostics/benchmarks only).
        self.passed_store: dict | None = None

    # ------------------------------------------------------------------
    def initial_state(self) -> SymbolicState:
        compiled = self.compiled
        zone = self._dbm.zero(compiled.n_clocks)
        locs = compiled.initial_locs
        vals = compiled.initial_vals
        self._free_inactive(zone, locs)
        self._free_conditional(zone, vals)
        self._apply_invariants(zone, locs)
        if zone.is_empty():
            raise ModelError(
                "initial state violates the location invariants")
        env = compiled.data_env(vals)
        if not self._delay_forbidden(locs, env):
            zone.up()
            self._apply_invariants(zone, locs)
        if self.abstraction.is_lu:
            zone.extrapolate_lu(*compiled.lu_bounds_for(locs))
        else:
            zone.extrapolate_max(compiled.max_constants)
        return SymbolicState(locs, vals, zone)

    def _free_inactive(self, zone, locs: tuple[int, ...]) -> None:
        """Active-clock reduction: free clocks dead at these locations."""
        compiled = self.compiled
        for a in range(compiled.n_automata):
            for clock_idx in compiled.inactive_clocks[a][locs[a]]:
                zone.free(clock_idx)

    def _free_conditional(self, zone,
                          vals: tuple[int, ...]) -> None:
        """Free clocks whose guarding flag is currently 0."""
        for var_pos, clock_idx in self._conditional_free:
            if vals[var_pos] == 0:
                zone.free(clock_idx)

    def _apply_invariants(self, zone, locs: tuple[int, ...]) -> None:
        compiled = self.compiled
        for a in range(compiled.n_automata):
            for i, j, bound in compiled.invariant_ops[a][locs[a]]:
                zone.constrain(i, j, bound)

    def _delay_forbidden(self, locs: tuple[int, ...],
                         env: Mapping[str, int]) -> bool:
        compiled = self.compiled
        return (compiled.any_committed(locs)
                or compiled.any_urgent_location(locs)
                or compiled.urgent_sync_enabled(locs, env))

    # ------------------------------------------------------------------
    # Successor plans
    # ------------------------------------------------------------------
    def _build_plans(self, locs: tuple[int, ...],
                     vals: tuple[int, ...]) -> list[_MovePlan]:
        """Resolve every enabled move of a discrete configuration."""
        compiled = self.compiled
        env = compiled.data_env(vals)
        lu_for = (compiled.lu_bounds_for if self.abstraction.is_lu
                  else None)
        plans: list[_MovePlan] = []
        for move in compiled.moves(locs, env):
            # Data guards are evaluated on the pre-state (UPPAAL rule).
            if not all(e.guard_fn(env) for e in move):
                continue
            guard_ops = tuple(op for e in move for op in e.clock_ops)
            label = self._move_label(move)
            # Updates in firing order (sender first), sequential data
            # semantics; assignments are range-checked.  A failing
            # check is deferred: the seed raises it only when the
            # guard-constrained zone turns out non-empty.
            zone_ops: list[tuple] = []
            env2: dict[str, int] | None = None
            error: ModelError | None = None
            for edge in move:
                for op in edge.update_ops:
                    if op[0] == "assign":
                        if env2 is None:
                            env2 = dict(env)
                        decl = compiled.var_decls[op[1]]
                        try:
                            env2[op[1]] = decl.check(op[2].eval(env2))
                        except ModelError as exc:
                            error = exc
                            break
                    else:  # reset / copy: pure zone work
                        zone_ops.append(op)
                if error is not None:
                    break
            if error is not None:
                plans.append(_MovePlan(
                    guard_ops, (), (), (), False, locs, vals, label,
                    error, channel_idx=move[0].channel_idx))
                continue
            new_locs = list(locs)
            for edge in move:
                new_locs[edge.auto_idx] = edge.target_idx
            locs2 = tuple(new_locs)
            vals2 = vals if env2 is None else tuple(
                env2[name] for name in compiled.var_names)
            free_clocks: list[int] = []
            for a in range(compiled.n_automata):
                free_clocks.extend(compiled.inactive_clocks[a][locs2[a]])
            for var_pos, clock_idx in self._conditional_free:
                if vals2[var_pos] == 0:
                    free_clocks.append(clock_idx)
            invariant_ops = tuple(
                op for a in range(compiled.n_automata)
                for op in compiled.invariant_ops[a][locs2[a]])
            post_env = env if env2 is None else env2
            delay = not self._delay_forbidden(locs2, post_env)
            plans.append(_MovePlan(
                guard_ops, tuple(zone_ops), tuple(free_clocks),
                invariant_ops, delay, locs2, vals2, label, None,
                lu_for(locs2) if lu_for is not None else None,
                channel_idx=move[0].channel_idx))
        return plans

    def plans_for(self, key: tuple) -> list[_MovePlan]:
        """Memoized successor plans of one discrete configuration."""
        if self._plans_version != self.compiled.reduction_version:
            self._plans.clear()
            self._plans_version = self.compiled.reduction_version
        plans = self._plans.get(key)
        if plans is None:
            plans = self._plans[key] = self._build_plans(*key)
        return plans

    def successors(self, state: SymbolicState) \
            -> Iterator[tuple[SymbolicState, str]]:
        """All symbolic successors with their transition labels."""
        plans = self.plans_for(state.key())
        if not plans:
            return
        src = state.zone
        scratch = None
        max_consts = self.compiled.max_constants
        for plan in plans:
            if scratch is None:
                scratch = src.copy()
            else:
                scratch.copy_from(src)
            if not scratch.constrain_all(plan.guard_ops):
                continue
            if plan.error is not None:
                raise ModelError(
                    f"{plan.error} (while firing {plan.label} from "
                    f"{self.compiled.state_description(state)})"
                ) from plan.error
            for op in plan.zone_ops:
                if op[0] == "reset":
                    scratch.reset(op[1], op[2])
                else:  # copy
                    scratch.assign_clock(op[1], op[2])
            if plan.free_clocks:
                scratch.free_many(plan.free_clocks)
            if not scratch.constrain_all(plan.invariant_ops):
                continue
            if plan.delay:
                scratch.up()
                scratch.constrain_all(plan.invariant_ops)
            if plan.lu is not None:
                scratch.extrapolate_lu(plan.lu[0], plan.lu[1])
            else:
                scratch.extrapolate_max(max_consts)
            if scratch.is_empty():
                continue
            yield SymbolicState(plan.locs, plan.vals,
                                scratch.copy()), plan.label

    @staticmethod
    def _move_label(move: tuple[CompiledEdge, ...]) -> str:
        if len(move) == 1 and move[0].channel_idx is None:
            return move[0].label()
        return " || ".join(e.label() for e in move)

    # ------------------------------------------------------------------
    def explore(
        self,
        stop: Callable[[SymbolicState], bool] | None = None,
        visit: Callable[[SymbolicState], None] | None = None,
    ) -> ExplorationResult:
        """Breadth-first exploration.

        ``stop`` halts the search at the first satisfying state (its
        trace is reconstructed when tracing is on); ``visit`` is called
        once per stored state — use it to accumulate sup-style metrics.
        """
        _count_exploration()
        bucket_cls = self._bucket_cls
        lazy = self.lazy_subsumption
        trace_on = self.trace_enabled
        init = self.initial_state()
        init_entry = _WaitEntry(init)
        bucket = bucket_cls()
        bucket.insert(init.zone, init_entry)
        # ``passed_store`` exposes the live per-key buckets of the most
        # recent exploration — benchmarks read row counts off it as a
        # memory proxy; it is never consulted by the search itself.
        passed: dict[tuple, object] = {init.key(): bucket}
        self.passed_store = passed
        parents = self.parents = {}
        if trace_on:
            init_id = (init.key(), init.zone.frozen())
            parents[init_id] = (None, "<init>")
        stored = 1
        transitions = 0
        if visit is not None:
            visit(init)
        if stop is not None and stop(init):
            return ExplorationResult(
                visited=stored, stopped=init,
                trace=self._rebuild(
                    parents,
                    (init.key(), init.zone.frozen())),
                complete=False, transitions=transitions)
        waiting: deque[_WaitEntry] = deque([init_entry])
        while waiting:
            entry = waiting.popleft()
            if lazy and not entry.alive:
                continue
            state = entry.state
            state_id = ((state.key(), state.zone.frozen())
                        if trace_on else None)
            for succ, label in self.successors(state):
                transitions += 1
                key = succ.key()
                bucket = passed.get(key)
                if bucket is None:
                    bucket = bucket_cls()
                    passed[key] = bucket
                elif bucket.covers(succ.zone):
                    continue
                succ_entry = _WaitEntry(succ)
                for evicted in bucket.insert(succ.zone, succ_entry):
                    evicted.alive = False
                stored += 1
                if stored > self.max_states:
                    raise ExplorationLimit(
                        f"exceeded {self.max_states} symbolic states "
                        f"exploring {self.network.name!r}")
                if trace_on:
                    parents[(key, succ.zone.frozen())] = (state_id, label)
                if visit is not None:
                    visit(succ)
                if stop is not None and stop(succ):
                    return ExplorationResult(
                        visited=stored, stopped=succ,
                        trace=self._rebuild(
                            parents, (key, succ.zone.frozen())),
                        complete=False, transitions=transitions)
                waiting.append(succ_entry)
        return ExplorationResult(visited=stored, complete=True,
                                 transitions=transitions)

    def rebuild_trace(self, node_id: _NodeId) -> list[str] | None:
        """Trace to ``node_id`` from the most recent traced exploration.

        ``node_id`` is ``(state.key(), state.zone.frozen())`` of a
        state stored during the last :meth:`explore` call with tracing
        on; used by the query planner to extract one witness trace per
        observer from a single shared sweep.
        """
        return self._rebuild(self.parents, node_id)

    def _rebuild(self, parents: dict, node_id: _NodeId) \
            -> list[str] | None:
        if not self.trace_enabled:
            return None
        labels: list[str] = []
        current: _NodeId | None = node_id
        while current is not None:
            parent, label = parents[current]
            labels.append(label)
            current = parent
        labels.reverse()
        return labels[1:]  # drop the "<init>" marker

    # ------------------------------------------------------------------
    def iter_states(self) -> Iterator[SymbolicState]:
        """Materialize every reachable symbolic state (full search)."""
        states: list[SymbolicState] = []
        self.explore(visit=states.append)
        return iter(states)
