"""Deadlock / timelock detection.

A symbolic state is *stuck* when it has no discrete successor and its
delay-closed zone is time-bounded (some invariant caps every clock, so
the run cannot let time diverge either).  Such states usually signal a
modeling bug — e.g. an EXEIO stage whose guard can never fire — and
the transformation tests use this check as a sanity net.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mc.explorer import ZoneGraphExplorer
from repro.ta.model import Network
from repro.zones.bounds import INF

__all__ = ["DeadlockReport", "find_deadlocks"]


@dataclass
class DeadlockReport:
    """Stuck states found during a full exploration."""

    stuck_states: list[str]
    visited: int

    @property
    def deadlock_free(self) -> bool:
        return not self.stuck_states

    def summary(self) -> str:
        if self.deadlock_free:
            return f"deadlock-free ({self.visited} states)"
        head = self.stuck_states[0]
        return (f"{len(self.stuck_states)} stuck state(s), e.g. {head} "
                f"({self.visited} states)")


def find_deadlocks(network: Network, *,
                   max_states: int = 1_000_000,
                   limit: int = 10,
                   abstraction: str | None = None) -> DeadlockReport:
    """Search the full zone graph for stuck (dead/time-locked) states.

    Runs under Extra_M — and refuses ``abstraction="extra_lu"`` rather
    than silently honoring it: the timelock test below reads clock
    *upper bounds* of stored zones, which the coarser Extra⁺_LU
    widening legitimately turns into ∞.  LU preserves reachability
    verdicts, not boundedness of individual zones, so running this
    query under LU would misclassify genuinely time-locked states as
    live (time could "diverge" through a widened bound that the real
    zone caps).  A process-wide ``set_abstraction("extra_lu")`` does
    not leak in either — the explorer is pinned to Extra_M.

    ``abstraction`` exists so grid/portfolio plumbing can pass its
    engine setting through uniformly; only ``None`` and ``"extra_m"``
    are accepted.
    """
    if abstraction is not None and abstraction != "extra_m":
        raise ValueError(
            f"find_deadlocks only supports the extra_m abstraction, "
            f"got {abstraction!r}: the timelock test reads zone upper "
            f"bounds, which Extra⁺_LU widening turns into ∞ and would "
            f"make stuck states look live. Drop the argument (extra_m "
            f"is always used) or pass abstraction='extra_m'.")
    explorer = ZoneGraphExplorer(network, max_states=max_states,
                                 abstraction="extra_m")
    compiled = explorer.compiled
    stuck: list[str] = []
    states = list(explorer.iter_states())
    for state in states:
        if len(stuck) >= limit:
            break
        has_successor = False
        for _succ, _label in explorer.successors(state):
            has_successor = True
            break
        if has_successor:
            continue
        time_bounded = all(
            state.zone.upper_bound(x) < INF
            for x in range(1, compiled.n_clocks)
        ) and compiled.n_clocks > 1
        if time_bounded or compiled.n_clocks == 1:
            stuck.append(compiled.state_description(state))
    return DeadlockReport(stuck_states=stuck, visited=len(states))
