"""Generic symbolic queries and the shared-exploration query planner.

Besides the single-purpose helpers (:func:`sup_clock`,
:func:`zone_graph_stats`), this module hosts :func:`check_many`: a
planner that compiles a *batch* of reachability / safety /
bounded-response / sup-clock / statistics queries into **one**
multi-observer sweep of the zone graph, in the spirit of on-the-fly
observer composition (Chupilko & Kamkin 2013; Abid, Dal Zilio &
Le Botlan 2013).  The paper's experiments chain several queries over
the same PSM — the planner removes the per-query re-exploration.

All query functions accept ``jobs=`` to route the sweep through the
sharded parallel explorer (:mod:`repro.mc.parallel`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.mc.observers import (
    OBS_CLOCK,
    OBS_FLAG,
    BoundedResponseResult,
    DelayBound,
    _default_ceiling,
    instrument_response,
    resolve_sup_step,
)
from repro.mc.parallel import make_explorer
from repro.mc.reachability import (
    ReachabilityResult,
    SafetyResult,
    StateFormula,
)
from repro.mc.state import SymbolicState
from repro.ta.model import Network

__all__ = [
    "BatchOutcome",
    "BoundedResponseQuery",
    "ClockSupQuery",
    "ReachQuery",
    "ResponseSupQuery",
    "SafetyQuery",
    "StatsQuery",
    "ZoneGraphStats",
    "check_many",
    "sup_clock",
    "zone_graph_stats",
]


def sup_clock(
    network: Network,
    clock_name: str,
    condition: StateFormula | None = None,
    *,
    cap: int = 1 << 22,
    initial_ceiling: int = 1024,
    max_states: int = 1_000_000,
    zone_backend: str | None = None,
    jobs: int | None = None,
    abstraction: str | None = None,
) -> DelayBound:
    """Supremum of a clock over reachable states satisfying a formula.

    Uses the same iterative-ceiling scheme as
    :func:`repro.mc.observers.max_response_delay`: the result is exact
    once it falls strictly below the extrapolation ceiling.
    """
    ceiling = initial_ceiling
    while True:
        explorer = make_explorer(
            network, jobs=jobs,
            extra_max_constants={clock_name: ceiling},
            max_states=max_states, zone_backend=zone_backend,
            abstraction=abstraction)
        compiled = explorer.compiled
        clock_idx = compiled.clock_id_by_name(clock_name)
        compiled.protect_clocks([clock_idx])
        predicate = (condition.compile(compiled)
                     if condition is not None else None)
        best: list[int | None] = [None]

        def visit(state: SymbolicState) -> None:
            if predicate is not None and not predicate(state):
                return
            upper = state.zone.upper_bound(clock_idx)
            if best[0] is None or upper > best[0]:
                best[0] = upper

        result = explorer.explore(visit=visit)
        done, ceiling = resolve_sup_step(best[0], ceiling, cap,
                                         result.visited)
        if done is not None:
            return done


@dataclass
class ZoneGraphStats:
    """Size metrics of a fully explored zone graph."""

    states: int
    transitions: int
    discrete_configurations: int

    def __str__(self) -> str:
        return (f"{self.states} symbolic states, "
                f"{self.transitions} transitions, "
                f"{self.discrete_configurations} discrete configurations")


def zone_graph_stats(
    network: Network,
    *,
    extra_max_constants: Mapping[str, int] | None = None,
    max_states: int = 1_000_000,
    zone_backend: str | None = None,
    lazy_subsumption: bool = False,
    jobs: int | None = None,
    abstraction: str | None = None,
) -> ZoneGraphStats:
    """Fully explore a network and report its zone-graph size.

    ``zone_backend`` selects the DBM kernel (identical results either
    way); ``jobs`` routes the sweep through the sharded parallel
    explorer (identical results again — in the default eager mode);
    ``lazy_subsumption`` skips expanding waiting states whose zones
    were evicted by larger ones — the reduced zone graph is unchanged
    but the states/transitions tallies shrink, so leave it off when
    comparing against published seed numbers.  Combining
    ``lazy_subsumption`` with ``jobs`` prunes slightly less than the
    sequential lazy explorer (tallies land between eager and
    sequential-lazy; see :mod:`repro.mc.parallel`).
    """
    explorer = make_explorer(
        network, jobs=jobs, extra_max_constants=extra_max_constants,
        max_states=max_states, zone_backend=zone_backend,
        lazy_subsumption=lazy_subsumption, abstraction=abstraction)
    keys: set = set()

    def visit(state: SymbolicState) -> None:
        keys.add(state.key())

    result = explorer.explore(visit=visit)
    return ZoneGraphStats(
        states=result.visited,
        transitions=result.transitions,
        discrete_configurations=len(keys),
    )


# ======================================================================
# Shared-exploration query planner
# ======================================================================
@dataclass(frozen=True)
class ReachQuery:
    """``E<> formula`` — answered by a :class:`ReachabilityResult`."""

    formula: StateFormula


@dataclass(frozen=True)
class SafetyQuery:
    """``A[] ¬bad`` — answered by a :class:`SafetyResult`."""

    bad: StateFormula


@dataclass(frozen=True)
class BoundedResponseQuery:
    """``P(Δ)``: trigger ⤳≤deadline response — a
    :class:`BoundedResponseResult`."""

    trigger: str
    response: str
    deadline: int


@dataclass(frozen=True)
class ResponseSupQuery:
    """Exact sup of a trigger→response delay — a :class:`DelayBound`."""

    trigger: str
    response: str
    cap: int = 1 << 22
    initial_ceiling: int | None = None


@dataclass(frozen=True)
class ClockSupQuery:
    """Sup of a clock over states satisfying a formula — a
    :class:`DelayBound`."""

    clock: str
    condition: StateFormula | None = None
    cap: int = 1 << 22
    initial_ceiling: int = 1024


@dataclass(frozen=True)
class StatsQuery:
    """Zone-graph size metrics — a :class:`ZoneGraphStats`."""


@dataclass
class BatchOutcome:
    """Results of one :func:`check_many` call, in query order.

    ``explorations`` counts the zone-graph sweeps the batch needed —
    1 unless a sup query had to raise its extrapolation ceiling
    (verifiable externally via
    :func:`repro.mc.explorer.exploration_count`).
    """

    results: tuple = field(default_factory=tuple)
    explorations: int = 0
    visited: int = 0
    transitions: int = 0
    #: Per-target maximum over the final sweep's visited states,
    #: keyed by the ``track_maxima`` entry (a variable name, or a
    #: tuple of names tracked as their sum); ``None`` = not requested.
    maxima: dict | None = None
    #: Whether the final sweep covered the full reachable state space
    #: (False when an early stop resolved every hit query first).
    complete: bool = True

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index):
        return self.results[index]

    def __len__(self) -> int:
        return len(self.results)


class _HitObserver:
    """Observer for reach-style queries: record the first satisfying
    state (the same state the individual BFS query would stop at)."""

    __slots__ = ("predicate", "state", "node", "_trace")

    def __init__(self, predicate, trace_on: bool):
        self.predicate = predicate
        self.state = None
        self.node = None
        self._trace = trace_on

    def visit(self, state: SymbolicState) -> bool:
        """Returns True when this visit resolved the query."""
        if self.state is not None or not self.predicate(state):
            return False
        self.state = state
        if self._trace:
            self.node = (state.key(), state.zone.frozen())
        return True


class _SupObserver:
    """Observer tracking the encoded upper bound of one clock."""

    __slots__ = ("clock_idx", "flag_pos", "predicate", "best")

    def __init__(self, clock_idx: int, flag_pos: int | None = None,
                 predicate=None):
        self.clock_idx = clock_idx
        self.flag_pos = flag_pos
        self.predicate = predicate
        self.best: int | None = None

    def visit(self, state: SymbolicState) -> None:
        if self.flag_pos is not None and state.vals[self.flag_pos] != 1:
            return
        if self.predicate is not None and not self.predicate(state):
            return
        upper = state.zone.upper_bound(self.clock_idx)
        if self.best is None or upper > self.best:
            self.best = upper


def check_many(
    network: Network,
    queries: Sequence[object],
    *,
    trace: bool = True,
    max_states: int = 1_000_000,
    zone_backend: str | None = None,
    jobs: int | None = None,
    lazy_subsumption: bool = False,
    abstraction: str | None = None,
    track_maxima: "Sequence[str | tuple[str, ...]]" = (),
) -> BatchOutcome:
    """Answer a batch of queries with one shared exploration.

    The planner

    1. instruments the network once for every distinct
       (trigger, response) pair the batch mentions (fresh observer
       clock/flag per pair — behavior-preserving, so verdicts match
       the individually-instrumented runs),
    2. merges the extrapolation requirements (response deadlines and
       sup ceilings, per clock, by maximum — Extra_M only gets finer,
       which preserves every verdict and exact supremum), and
    3. runs one exploration evaluating all observers per stored state,
       stopping early only when every query is hit-resolvable and has
       hit.

    Per-query *verdicts and sup values* always match the individual
    ``check_reachable`` / ``check_safety`` /
    ``check_bounded_response`` / ``sup_clock`` /
    ``max_response_delay`` calls.  Witness/counterexample strings and
    traces match them too when the batch needs no instrumentation
    beyond the individual run's — in particular, a single-query batch
    *is* the individual run, tallies and traces included.  With
    several (trigger, response) pairs in one batch, the shared sweep
    runs on the jointly-instrumented network, so witness descriptions
    and trace labels additionally mention the other pairs' observer
    clocks/flags (``obs_w2 = 0, obs_tracking2 = 1`` …) — the same
    underlying behavior, differently annotated.  The
    ``visited``/``transitions`` tallies are those of the shared sweep
    (one exploration instead of one per query).  A second sweep
    happens only when a sup query's value reached its extrapolation
    ceiling (the classic iterative scheme);
    ``BatchOutcome.explorations`` reports the count.

    ``track_maxima`` lists discrete variables — or tuples of
    variables, tracked as their *sum* — whose maximum over the
    visited states should be reported in ``BatchOutcome.maxima`` — a
    read-only observation that changes no verdict, tally or trace.
    The portfolio's verdict memo uses it to certify that buffer
    occupancy (including combined ``count + staged`` occupancy) stays
    below erased capacity literals; pair it with
    ``BatchOutcome.complete``, which says whether the final sweep
    covered the full reachable state space.
    """
    queries = list(queries)
    for query in queries:
        if not isinstance(query, (ReachQuery, SafetyQuery,
                                  BoundedResponseQuery,
                                  ResponseSupQuery, ClockSupQuery,
                                  StatsQuery)):
            raise TypeError(f"unsupported query {query!r}")

    # ---- one instrumentation per distinct (trigger, response) pair ----
    pairs: list[tuple[str, str]] = []
    for query in queries:
        if isinstance(query, (BoundedResponseQuery, ResponseSupQuery)):
            pair = (query.trigger, query.response)
            if pair not in pairs:
                pairs.append(pair)
    instrumented = network
    pair_obs: dict[tuple[str, str], tuple[str, str]] = {}
    for index, (trigger, response) in enumerate(pairs):
        suffix = "" if index == 0 else str(index + 1)
        clock, flag = OBS_CLOCK + suffix, OBS_FLAG + suffix
        instrumented = instrument_response(
            instrumented, trigger, response, clock=clock, flag=flag)
        pair_obs[(trigger, response)] = (clock, flag)
    free_map = {flag: clock for clock, flag in pair_obs.values()}

    # ---- extrapolation requirements (mutable for the ceiling loop) ----
    deadlines: dict[str, int] = {}
    sup_state: dict[int, dict] = {}  # query index -> ceiling loop state
    for index, query in enumerate(queries):
        if isinstance(query, BoundedResponseQuery):
            clock, _ = pair_obs[(query.trigger, query.response)]
            deadlines[clock] = max(deadlines.get(clock, 0),
                                   query.deadline + 1)
        elif isinstance(query, ResponseSupQuery):
            clock, _ = pair_obs[(query.trigger, query.response)]
            sup_state[index] = {
                "clock": clock,
                "ceiling": (query.initial_ceiling
                            or _default_ceiling(network)),
                "cap": query.cap,
                "done": None,
            }
        elif isinstance(query, ClockSupQuery):
            sup_state[index] = {
                "clock": query.clock,
                "ceiling": query.initial_ceiling,
                "cap": query.cap,
                "done": None,
            }
    hit_indices = [i for i, q in enumerate(queries)
                   if isinstance(q, (ReachQuery, SafetyQuery,
                                     BoundedResponseQuery))]
    full_sweep = len(hit_indices) < len(queries)
    trace_on = trace and bool(hit_indices)

    explorations = 0
    while True:
        extra: dict[str, int] = dict(deadlines)
        for state in sup_state.values():
            extra[state["clock"]] = max(extra.get(state["clock"], 0),
                                        state["ceiling"])
        explorer = make_explorer(
            instrumented, jobs=jobs, trace=trace_on,
            extra_max_constants=extra, max_states=max_states,
            free_clock_when_zero=free_map, zone_backend=zone_backend,
            lazy_subsumption=lazy_subsumption, abstraction=abstraction)
        compiled = explorer.compiled

        observers: dict[int, object] = {}
        for index, query in enumerate(queries):
            if isinstance(query, ReachQuery):
                observers[index] = _HitObserver(
                    query.formula.compile(compiled), trace_on)
            elif isinstance(query, SafetyQuery):
                observers[index] = _HitObserver(
                    query.bad.compile(compiled), trace_on)
            elif isinstance(query, BoundedResponseQuery):
                clock, flag = pair_obs[(query.trigger, query.response)]
                formula = StateFormula(
                    data=f"{flag} == 1",
                    clocks=f"{clock} > {query.deadline}")
                observers[index] = _HitObserver(
                    formula.compile(compiled), trace_on)
            elif isinstance(query, ResponseSupQuery):
                clock, flag = pair_obs[(query.trigger, query.response)]
                observers[index] = _SupObserver(
                    compiled.clock_id_by_name(clock),
                    flag_pos=compiled.var_pos(flag))
            elif isinstance(query, ClockSupQuery):
                clock_idx = compiled.clock_id_by_name(query.clock)
                compiled.protect_clocks([clock_idx])
                predicate = (query.condition.compile(compiled)
                             if query.condition is not None else None)
                observers[index] = _SupObserver(clock_idx,
                                                predicate=predicate)
            elif isinstance(query, StatsQuery):
                observers[index] = keys = set()
        pending = len(hit_indices)
        hit_observers = [observers[i] for i in hit_indices]
        sup_observers = [observers[i] for i in sup_state]
        stats_sets = [observers[i] for i, q in enumerate(queries)
                      if isinstance(q, StatsQuery)]
        # Reset per sweep: positions are compilation-specific and a
        # ceiling retry re-visits every state anyway.  Each target is
        # a variable name or a tuple of names (tracked as their sum —
        # the shape of an erased capacity comparison's left-hand side).
        watch = [
            (slot, tuple(compiled.var_pos(name) for name in
                         (target if isinstance(target, tuple)
                          else (target,))))
            for slot, target in enumerate(track_maxima)
        ]
        watch_best = [None] * len(watch)

        def visit(state: SymbolicState) -> None:
            nonlocal pending
            for observer in hit_observers:
                if observer.visit(state):
                    pending -= 1
            for observer in sup_observers:
                observer.visit(state)
            for keys in stats_sets:
                keys.add(state.key())
            for slot, positions in watch:
                value = 0
                for pos in positions:
                    value += state.vals[pos]
                best = watch_best[slot]
                if best is None or value > best:
                    watch_best[slot] = value

        stop = None
        if not full_sweep:
            def stop(_state: SymbolicState) -> bool:
                return pending == 0

        result = explorer.explore(stop=stop, visit=visit)
        explorations += 1

        # ---- iterative sup ceilings (max_response_delay's scheme) ----
        retry = False
        for index, state in sup_state.items():
            if state["done"] is not None:
                continue
            done, next_ceiling = resolve_sup_step(
                observers[index].best, state["ceiling"], state["cap"],
                result.visited)
            if done is not None:
                state["done"] = done
            else:
                state["ceiling"] = next_ceiling
                retry = True
        if retry:
            # Re-measure every sup in the shared re-sweep (exact
            # values are ceiling-independent; already-unbounded
            # queries re-resolve as unbounded without another retry).
            for state in sup_state.values():
                state["done"] = None
            continue
        break

    # ---- package per-query results ------------------------------------
    results: list[object] = []
    for index, query in enumerate(queries):
        observer = observers[index]
        if isinstance(query, (ReachQuery, SafetyQuery,
                              BoundedResponseQuery)):
            hit_state = observer.state
            witness = (compiled.state_description(hit_state)
                       if hit_state is not None else None)
            hit_trace = (explorer.rebuild_trace(observer.node)
                         if observer.node is not None else None)
            if isinstance(query, ReachQuery):
                results.append(ReachabilityResult(
                    reachable=hit_state is not None,
                    formula=query.formula.describe(),
                    visited=result.visited, witness=witness,
                    trace=hit_trace,
                    transitions=result.transitions))
            elif isinstance(query, SafetyQuery):
                results.append(SafetyResult(
                    holds=hit_state is None,
                    formula=query.bad.describe(),
                    visited=result.visited, counterexample=witness,
                    trace=hit_trace,
                    transitions=result.transitions))
            else:
                results.append(BoundedResponseResult(
                    holds=hit_state is None,
                    trigger=query.trigger, response=query.response,
                    deadline=query.deadline,
                    visited=result.visited, counterexample=witness,
                    trace=hit_trace,
                    transitions=result.transitions))
        elif isinstance(query, (ResponseSupQuery, ClockSupQuery)):
            results.append(sup_state[index]["done"])
        else:  # StatsQuery
            results.append(ZoneGraphStats(
                states=result.visited,
                transitions=result.transitions,
                discrete_configurations=len(observer)))
    maxima = None
    if track_maxima:
        maxima = {target: watch_best[slot]
                  for slot, target in enumerate(track_maxima)}
    return BatchOutcome(results=tuple(results),
                        explorations=explorations,
                        visited=result.visited,
                        transitions=result.transitions,
                        maxima=maxima,
                        complete=result.complete)
