"""Generic symbolic queries: sup-of-clock, state counting, inspection.

These build on the explorer and are used by the delay analysis
(:mod:`repro.core.delays`) and the scaling benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.mc.explorer import ZoneGraphExplorer
from repro.mc.observers import DelayBound
from repro.mc.reachability import StateFormula
from repro.mc.state import SymbolicState
from repro.ta.model import Network
from repro.zones.bounds import INF, bound_value

__all__ = ["sup_clock", "zone_graph_stats", "ZoneGraphStats"]


def sup_clock(
    network: Network,
    clock_name: str,
    condition: StateFormula | None = None,
    *,
    cap: int = 1 << 22,
    initial_ceiling: int = 1024,
    max_states: int = 1_000_000,
    zone_backend: str | None = None,
) -> DelayBound:
    """Supremum of a clock over reachable states satisfying a formula.

    Uses the same iterative-ceiling scheme as
    :func:`repro.mc.observers.max_response_delay`: the result is exact
    once it falls strictly below the extrapolation ceiling.
    """
    ceiling = initial_ceiling
    while True:
        explorer = ZoneGraphExplorer(
            network, extra_max_constants={clock_name: ceiling},
            max_states=max_states, zone_backend=zone_backend)
        compiled = explorer.compiled
        clock_idx = compiled.clock_id_by_name(clock_name)
        compiled.protect_clocks([clock_idx])
        predicate = (condition.compile(compiled)
                     if condition is not None else None)
        best: list[int | None] = [None]

        def visit(state: SymbolicState) -> None:
            if predicate is not None and not predicate(state):
                return
            upper = state.zone.upper_bound(clock_idx)
            if best[0] is None or upper > best[0]:
                best[0] = upper

        result = explorer.explore(visit=visit)
        if best[0] is None:
            return DelayBound(bounded=True, sup=0, attained=True,
                              visited=result.visited, ceiling=ceiling)
        if best[0] >= INF or bound_value(best[0]) >= ceiling:
            if ceiling > cap:
                return DelayBound(bounded=False, visited=result.visited,
                                  ceiling=ceiling)
            ceiling *= 4
            continue
        return DelayBound(
            bounded=True,
            sup=bound_value(best[0]),
            attained=bool(best[0] & 1),
            visited=result.visited,
            ceiling=ceiling,
        )


@dataclass
class ZoneGraphStats:
    """Size metrics of a fully explored zone graph."""

    states: int
    transitions: int
    discrete_configurations: int

    def __str__(self) -> str:
        return (f"{self.states} symbolic states, "
                f"{self.transitions} transitions, "
                f"{self.discrete_configurations} discrete configurations")


def zone_graph_stats(
    network: Network,
    *,
    extra_max_constants: Mapping[str, int] | None = None,
    max_states: int = 1_000_000,
    zone_backend: str | None = None,
    lazy_subsumption: bool = False,
) -> ZoneGraphStats:
    """Fully explore a network and report its zone-graph size.

    ``zone_backend`` selects the DBM kernel (identical results either
    way); ``lazy_subsumption`` skips expanding waiting states whose
    zones were evicted by larger ones — the reduced zone graph is
    unchanged but the states/transitions tallies shrink, so leave it
    off when comparing against published seed numbers.
    """
    explorer = ZoneGraphExplorer(
        network, extra_max_constants=extra_max_constants,
        max_states=max_states, zone_backend=zone_backend,
        lazy_subsumption=lazy_subsumption)
    keys: set = set()

    def visit(state: SymbolicState) -> None:
        keys.add(state.key())

    result = explorer.explore(visit=visit)
    return ZoneGraphStats(
        states=result.visited,
        transitions=result.transitions,
        discrete_configurations=len(keys),
    )
