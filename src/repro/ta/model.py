"""Timed automata and networks (the UPPAAL-subset modeling language).

A :class:`Network` is the unit of verification: a parallel composition
of :class:`Automaton` instances communicating over declared
:class:`~repro.ta.channels.Channel`\\ s and shared bounded integer
:class:`VariableDecl`\\ s.  Clocks are automaton-local; the network
resolves them to global indices by prefixing (``"M.x"``) unless the
name is already unique.

The classes here are *syntax*.  Symbolic semantics live in
:mod:`repro.mc`; concrete (simulation) semantics in
:mod:`repro.codegen.interpreter`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping

from repro.ta.channels import Channel, Sync
from repro.ta.clocks import ClockConstraint, Guard, Update

__all__ = [
    "Location",
    "Edge",
    "Automaton",
    "VariableDecl",
    "Network",
    "ModelError",
]


class ModelError(Exception):
    """Raised for structurally invalid models and runtime model errors
    (e.g. assigning a variable outside its declared range)."""


@dataclass(frozen=True)
class Location:
    """A control location of one automaton.

    ``urgent`` freezes time while occupied; ``committed`` additionally
    forces the next transition to leave a committed location (atomic
    sequences).  Invariants are conjunctions of clock atoms.
    """

    name: str
    invariant: tuple[ClockConstraint, ...] = ()
    urgent: bool = False
    committed: bool = False

    def __post_init__(self) -> None:
        if self.urgent and self.committed:
            raise ModelError(
                f"location {self.name!r} cannot be urgent and committed")
        if (self.urgent or self.committed) and self.invariant:
            raise ModelError(
                f"location {self.name!r}: urgent/committed locations "
                f"cannot carry invariants")

    def __str__(self) -> str:
        marks = ""
        if self.urgent:
            marks = " (urgent)"
        if self.committed:
            marks = " (committed)"
        inv = " inv: " + " && ".join(str(c) for c in self.invariant) \
            if self.invariant else ""
        return f"{self.name}{marks}{inv}"


@dataclass(frozen=True)
class Edge:
    """A transition between two locations of one automaton."""

    source: str
    target: str
    guard: Guard = field(default_factory=Guard)
    sync: Sync | None = None
    update: Update = field(default_factory=Update)

    def label(self) -> str:
        parts = []
        if not self.guard.is_trivial():
            parts.append(f"[{self.guard}]")
        if self.sync is not None:
            parts.append(str(self.sync))
        if not self.update.is_empty():
            parts.append(f"{{{self.update}}}")
        return " ".join(parts)

    def __str__(self) -> str:
        return f"{self.source} --{self.label()}--> {self.target}"


@dataclass(frozen=True)
class Automaton:
    """One timed automaton: locations, local clocks and edges."""

    name: str
    locations: tuple[Location, ...]
    edges: tuple[Edge, ...]
    initial: str
    clocks: tuple[str, ...] = ()

    def location(self, name: str) -> Location:
        for loc in self.locations:
            if loc.name == name:
                return loc
        raise ModelError(f"automaton {self.name!r}: no location {name!r}")

    def location_names(self) -> list[str]:
        return [loc.name for loc in self.locations]

    def has_location(self, name: str) -> bool:
        return any(loc.name == name for loc in self.locations)

    def edges_from(self, location: str) -> list[Edge]:
        return [e for e in self.edges if e.source == location]

    def input_channels(self) -> set[str]:
        """Channels this automaton receives on (``ch?``)."""
        return {e.sync.channel for e in self.edges
                if e.sync is not None and not e.sync.is_emit}

    def output_channels(self) -> set[str]:
        """Channels this automaton emits on (``ch!``)."""
        return {e.sync.channel for e in self.edges
                if e.sync is not None and e.sync.is_emit}

    def with_name(self, name: str) -> "Automaton":
        return replace(self, name=name)

    def __str__(self) -> str:
        lines = [f"automaton {self.name} (initial {self.initial})"]
        lines += [f"  loc {loc}" for loc in self.locations]
        lines += [f"  {edge}" for edge in self.edges]
        return "\n".join(lines)


@dataclass(frozen=True)
class VariableDecl:
    """A shared bounded integer variable ``lo ≤ v ≤ hi``.

    Bounded domains keep the product state space finite — assigning a
    value outside the range is a *model error* surfaced during
    exploration, mirroring UPPAAL's runtime range check.
    """

    name: str
    init: int = 0
    lo: int = 0
    hi: int = 1 << 30

    def __post_init__(self) -> None:
        if not self.lo <= self.init <= self.hi:
            raise ModelError(
                f"variable {self.name!r}: initial value {self.init} "
                f"outside [{self.lo}, {self.hi}]")

    def check(self, value: int) -> int:
        if not self.lo <= value <= self.hi:
            raise ModelError(
                f"variable {self.name!r}: value {value} outside "
                f"[{self.lo}, {self.hi}]")
        return value

    def __str__(self) -> str:
        return f"int[{self.lo},{self.hi}] {self.name} = {self.init}"


@dataclass(frozen=True)
class Network:
    """A parallel composition of automata — the verification unit.

    ``constants`` are symbolic names folded into guards at parse time
    and available to data expressions at evaluation time; they never
    change.  ``variables`` are the shared mutable discrete state.
    ``global_clocks`` are clocks visible to every automaton (used by
    the observer instrumentation in :mod:`repro.mc.observers`).
    """

    name: str
    automata: tuple[Automaton, ...]
    channels: tuple[Channel, ...] = ()
    variables: tuple[VariableDecl, ...] = ()
    constants: Mapping[str, int] = field(default_factory=dict)
    global_clocks: tuple[str, ...] = ()

    def automaton(self, name: str) -> Automaton:
        for auto in self.automata:
            if auto.name == name:
                return auto
        raise ModelError(f"network {self.name!r}: no automaton {name!r}")

    def automaton_index(self, name: str) -> int:
        for i, auto in enumerate(self.automata):
            if auto.name == name:
                return i
        raise ModelError(f"network {self.name!r}: no automaton {name!r}")

    def channel(self, name: str) -> Channel:
        for ch in self.channels:
            if ch.name == name:
                return ch
        raise ModelError(f"network {self.name!r}: no channel {name!r}")

    def has_channel(self, name: str) -> bool:
        return any(ch.name == name for ch in self.channels)

    def variable(self, name: str) -> VariableDecl:
        for var in self.variables:
            if var.name == name:
                return var
        raise ModelError(f"network {self.name!r}: no variable {name!r}")

    def clock_index(self) -> dict[tuple[str, str], int]:
        """Map (automaton, clock name) → global DBM index (from 1).

        Global clocks come first (same index for every automaton),
        then each automaton's local clocks.  :meth:`clock_names` gives
        the resolved display names in index order.
        """
        index: dict[tuple[str, str], int] = {}
        for pos, clock in enumerate(self.global_clocks, start=1):
            for auto in self.automata:
                index[(auto.name, clock)] = pos
        next_id = 1 + len(self.global_clocks)
        for auto in self.automata:
            for clock in auto.clocks:
                if clock in self.global_clocks:
                    raise ModelError(
                        f"automaton {auto.name!r}: local clock {clock!r} "
                        f"shadows a global clock")
                index[(auto.name, clock)] = next_id
                next_id += 1
        return index

    def clock_names(self) -> list[str]:
        """Resolved global clock names, position 0 = reference clock."""
        counts: dict[str, int] = {}
        for auto in self.automata:
            for clock in auto.clocks:
                counts[clock] = counts.get(clock, 0) + 1
        names = ["t0"]
        names.extend(self.global_clocks)
        for auto in self.automata:
            for clock in auto.clocks:
                if counts[clock] > 1:
                    names.append(f"{auto.name}.{clock}")
                else:
                    names.append(clock)
        return names

    def n_clocks(self) -> int:
        """DBM dimension: global + local clocks + the reference clock."""
        return (1 + len(self.global_clocks)
                + sum(len(a.clocks) for a in self.automata))

    def clocks_visible_to(self, automaton: Automaton) -> tuple[str, ...]:
        """Clock names the given automaton may reference."""
        return self.global_clocks + automaton.clocks

    def add_automata(self, extra: Iterable[Automaton],
                     extra_channels: Iterable[Channel] = (),
                     extra_variables: Iterable[VariableDecl] = (),
                     name: str | None = None) -> "Network":
        """A new network with additional components (for observers)."""
        known_channels = {c.name for c in self.channels}
        new_channels = [c for c in extra_channels
                        if c.name not in known_channels]
        known_vars = {v.name for v in self.variables}
        new_vars = [v for v in extra_variables if v.name not in known_vars]
        return Network(
            name=name or self.name,
            automata=self.automata + tuple(extra),
            channels=self.channels + tuple(new_channels),
            variables=self.variables + tuple(new_vars),
            constants=dict(self.constants),
        )

    def with_channels_broadcast(self, names: Iterable[str]) -> "Network":
        """A copy where the named channels are declared broadcast.

        Used by the observer machinery to tap synchronizations.  Note:
        converting a binary channel with a single emitter/receiver pair
        to broadcast preserves its behavior *when every receiver edge
        is guard-compatible*; the validator re-checks the result.
        """
        wanted = set(names)
        channels = tuple(
            Channel(ch.name, broadcast=True, urgent=ch.urgent)
            if ch.name in wanted else ch
            for ch in self.channels
        )
        return replace(self, channels=channels)

    def stats(self) -> dict[str, int]:
        """Structural statistics (used by reports and tests)."""
        return {
            "automata": len(self.automata),
            "locations": sum(len(a.locations) for a in self.automata),
            "edges": sum(len(a.edges) for a in self.automata),
            "clocks": self.n_clocks() - 1,
            "channels": len(self.channels),
            "variables": len(self.variables),
        }

    def __str__(self) -> str:
        lines = [f"network {self.name}"]
        lines += [f"  {ch}" for ch in self.channels]
        lines += [f"  {var}" for var in self.variables]
        for auto in self.automata:
            lines += ["  " + line for line in str(auto).splitlines()]
        return "\n".join(lines)


def data_env(network: Network,
             valuation: Mapping[str, int]) -> dict[str, int]:
    """Evaluation environment: constants overlaid with a valuation."""
    env = dict(network.constants)
    env.update(valuation)
    return env
