"""Per-location lower/upper clock-bound analysis (the LU abstraction).

Zone-graph termination needs an extrapolation operator; the coarser the
operator, the smaller the graph.  The classical refinement over the
global-maximum-constant ``Extra_M`` is the *LU-bounds* family
(Behrmann, Bouyer, Larsen & Pelánek, "Lower and Upper Bounds in
Zone-Based Abstractions of Timed Automata"): split every clock's
ceiling into

* ``L(x)`` — the largest constant ``c`` such that some constraint
  ``x > c`` / ``x >= c`` can still be applied (a *lower*-bound guard),
* ``U(x)`` — the largest ``c`` from ``x < c`` / ``x <= c`` constraints,

and additionally make both maps *location-dependent*: only constraints
reachable from the automaton's current location — without the clock
being overwritten on the way — contribute.  A clock whose next use is
behind a reset contributes nothing, and a clock that is only ever
bounded from below never needs its upper bounds remembered at all.
The ``Extra⁺_LU`` operator built on these maps (see
``DBM.extrapolate_lu``) preserves reachability verdicts exactly while
collapsing zone graphs by large constant factors.

This module hosts the *static analysis* producing those maps plus the
process-wide abstraction-selection plumbing (:class:`AbstractionSpec`,
:func:`resolve_abstraction`, :func:`set_abstraction`,
``REPRO_ABSTRACTION``), mirroring the zone-backend selection in
:mod:`repro.zones.backend`.

The analysis is a backward data-flow fixpoint per automaton:

* invariants contribute at their location, guards at their edge's
  source location;
* bounds at an edge's target flow back to the source through the
  edge's update list in *reverse* order — a reset ``x := c`` kills
  ``x``'s demand (recording ``c`` on both sides, matching the
  conservative treatment of ``CompiledNetwork._compute_max_constants``),
  a copy ``x := y`` transfers ``x``'s demand onto ``y``;
* for a network state the per-clock bound is the maximum over every
  automaton's map at its current location (each automaton
  over-approximates its own future constraints, so the composition is
  sound), raised by any *floors* (observer/sup-query ceilings and
  query-formula constants, which live outside the network).

Soundness relies on the models being diagonal-free per clock *pair*
exactly as ``Extra_M`` already does; difference constraints
``x - y ≺ c`` are handled conservatively by charging ``|c|`` to both
sides of both clocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.ta.clocks import ClockConstraint, ClockCopy, ClockReset
from repro.ta.model import Network

__all__ = [
    "ENV_ABSTRACTION",
    "EXTRA_LU",
    "EXTRA_M",
    "NO_BOUND",
    "AbstractionSpec",
    "LUBoundsMap",
    "analyze_lu_bounds",
    "available_abstractions",
    "resolve_abstraction",
    "set_abstraction",
]

#: "This clock needs no bound of this kind here" — any finite bound is
#: larger, so ``max`` composition treats it as the identity, and the
#: ``Extra⁺_LU`` widening rules treat it as "always widen".
NO_BOUND = -1

EXTRA_M = "extra_m"
EXTRA_LU = "extra_lu"

#: Environment override for the default abstraction (like
#: ``REPRO_ZONE_BACKEND`` for the kernel choice).
ENV_ABSTRACTION = "REPRO_ABSTRACTION"

_ALIASES = {
    "extra_m": EXTRA_M,
    "m": EXTRA_M,
    "extra_lu": EXTRA_LU,
    "extra_lu_plus": EXTRA_LU,
    "lu": EXTRA_LU,
}

_forced: str | None = None


@dataclass(frozen=True)
class AbstractionSpec:
    """Resolved extrapolation choice threaded through the explorers.

    ``extra_m`` is the seed behavior (global per-clock maximum
    constants, bit-identical zone graphs to every published pin);
    ``extra_lu`` switches every extrapolation call to the per-location
    ``Extra⁺_LU`` operator.  Equality verdicts, Lemma-2 bounds and
    exact suprema are preserved either way — only the zone-graph size
    (and therefore wall time) changes.
    """

    name: str

    @property
    def is_lu(self) -> bool:
        return self.name == EXTRA_LU


_EXTRA_M_SPEC = AbstractionSpec(EXTRA_M)
_EXTRA_LU_SPEC = AbstractionSpec(EXTRA_LU)


def available_abstractions() -> tuple[str, ...]:
    """Canonical abstraction names (both are always available)."""
    return (EXTRA_M, EXTRA_LU)


def set_abstraction(name: str | None) -> None:
    """Install a process-wide abstraction override (``None`` clears it).

    Accepts ``extra_m`` (alias ``m``) or ``extra_lu`` (aliases
    ``lu``/``extra_lu_plus``) — the CLI ``--abstraction`` flag maps to
    this, exactly like ``--zone-backend`` maps to
    :func:`repro.zones.backend.set_backend`.
    """
    global _forced
    if name is not None and name not in _ALIASES:
        raise ValueError(
            f"unknown abstraction {name!r} "
            f"(choose from: {', '.join(sorted(set(_ALIASES)))})")
    _forced = name


def resolve_abstraction(
        name: str | AbstractionSpec | None = None) -> AbstractionSpec:
    """Resolve an abstraction spec.

    Order: explicit name > :func:`set_abstraction` override >
    ``REPRO_ABSTRACTION`` environment variable > ``extra_m`` (so every
    existing bit-identity pin stands by default).
    """
    if isinstance(name, AbstractionSpec):
        return name
    if name is None:
        if _forced is not None:
            name = _forced
        else:
            from repro.envvars import env_choice
            name = env_choice(ENV_ABSTRACTION, _ALIASES,
                              default=EXTRA_M)
    key = _ALIASES.get(name)
    if key is None:
        raise ValueError(
            f"unknown abstraction {name!r} "
            f"(choose from: {', '.join(sorted(set(_ALIASES)))})")
    return _EXTRA_LU_SPEC if key == EXTRA_LU else _EXTRA_M_SPEC


# ======================================================================
# The per-location analysis
# ======================================================================
class LUBoundsMap:
    """Per-automaton, per-location, per-clock L/U maps for a network.

    ``lower[a][l][x]`` / ``upper[a][l][x]`` give automaton ``a``'s
    contribution for *global clock index* ``x`` while it sits at
    location ``l`` (``NO_BOUND`` when that automaton demands nothing).
    :meth:`state_bounds` composes a network state's maps by maximum.
    """

    __slots__ = ("n_clocks", "lower", "upper")

    def __init__(self, n_clocks: int,
                 lower: list[list[list[int]]],
                 upper: list[list[list[int]]]):
        self.n_clocks = n_clocks
        self.lower = lower
        self.upper = upper

    def state_bounds(self, locs: Sequence[int],
                     lower_floors: Mapping[int, int] | None = None,
                     upper_floors: Mapping[int, int] | None = None,
                     ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Composed ``(lower, upper)`` tuples for one location vector.

        The floor mappings raise individual clocks' maps — the hook
        for observer/sup-query ceilings and query-formula constants,
        whose constraints live outside the network.  Floors are
        *directional*: a ceiling needed so lower-bound formulas
        (``w > Δ``) and clock-supremum readings stay exact belongs in
        ``lower_floors`` only — leaving ``U`` at ``NO_BOUND`` lets the
        widening erase the clock's lower-bound residue, which is
        where observer-instrumented zone graphs blow up.  The
        reference clock's entries are pinned to 0 (the ``Extra⁺_LU``
        rules expect ``L(x₀) = U(x₀) = 0``).
        """
        n = self.n_clocks
        low = [NO_BOUND] * n
        up = [NO_BOUND] * n
        for a, loc in enumerate(locs):
            for x, value in enumerate(self.lower[a][loc]):
                if value > low[x]:
                    low[x] = value
            for x, value in enumerate(self.upper[a][loc]):
                if value > up[x]:
                    up[x] = value
        if lower_floors:
            for x, value in lower_floors.items():
                if value > low[x]:
                    low[x] = value
        if upper_floors:
            for x, value in upper_floors.items():
                if value > up[x]:
                    up[x] = value
        low[0] = up[0] = 0
        return tuple(low), tuple(up)

    def global_bounds(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Location-independent maps: the maximum over every location."""
        n = self.n_clocks
        low = [NO_BOUND] * n
        up = [NO_BOUND] * n
        for per_auto_low, per_auto_up in zip(self.lower, self.upper):
            for per_loc in per_auto_low:
                for x, value in enumerate(per_loc):
                    if value > low[x]:
                        low[x] = value
            for per_loc in per_auto_up:
                for x, value in enumerate(per_loc):
                    if value > up[x]:
                        up[x] = value
        low[0] = up[0] = 0
        return tuple(low), tuple(up)


def _automaton_clock_ids(network: Network, auto) -> dict[str, int]:
    """Local clock name → global clock index (mirrors CompiledNetwork)."""
    clock_ids = network.clock_index()
    ids = {}
    for clock in network.global_clocks:
        ids[clock] = clock_ids[(auto.name, clock)]
    for clock in auto.clocks:
        ids[clock] = clock_ids[(auto.name, clock)]
    return ids


def _charge_atom(atom: ClockConstraint, ids: Mapping[str, int],
                 low: list[int], up: list[int]) -> None:
    """Record one constraint atom's demand into L/U rows."""
    if atom.other is None:
        x = ids[atom.clock]
        bound = atom.bound
        if atom.op in ("<", "<="):
            if bound > up[x]:
                up[x] = bound
        elif atom.op in (">", ">="):
            if bound > low[x]:
                low[x] = bound
        else:  # == is the conjunction of both directions
            if bound > up[x]:
                up[x] = bound
            if bound > low[x]:
                low[x] = bound
        return
    # Difference constraint x - y ≺ c: charge both sides of both
    # clocks (the conservative treatment Extra_M's max-constant pass
    # uses — LU refinement is only claimed for single-clock atoms).
    bound = abs(atom.bound)
    for clock in (atom.clock, atom.other):
        x = ids[clock]
        if bound > up[x]:
            up[x] = bound
        if bound > low[x]:
            low[x] = bound


def analyze_lu_bounds(network: Network) -> LUBoundsMap:
    """Compute the per-location LU maps for every automaton.

    Backward fixpoint per automaton: a location's rows accumulate its
    invariant atoms, its outgoing guards, and the target locations'
    rows filtered backward through each edge's update list (resets
    kill a clock's demand, copies ``x := y`` transfer ``x``'s demand
    onto ``y``).  Nonzero reset values are charged to both maps at the
    source, matching ``Extra_M``'s conservative constant collection —
    this keeps the derived maps pointwise ≤ the global max-constant
    map, which the property tests pin.
    """
    n_clocks = network.n_clocks()
    all_lower: list[list[list[int]]] = []
    all_upper: list[list[list[int]]] = []
    for auto in network.automata:
        ids = _automaton_clock_ids(network, auto)
        loc_ids = {loc.name: i for i, loc in enumerate(auto.locations)}
        n_locs = len(auto.locations)
        lower = [[NO_BOUND] * n_clocks for _ in range(n_locs)]
        upper = [[NO_BOUND] * n_clocks for _ in range(n_locs)]
        # Direct contributions: invariants and outgoing guards (plus
        # nonzero reset values).
        for loc in auto.locations:
            row = loc_ids[loc.name]
            for atom in loc.invariant:
                _charge_atom(atom, ids, lower[row], upper[row])
        edges = []
        for edge in auto.edges:
            src = loc_ids[edge.source]
            dst = loc_ids[edge.target]
            for atom in edge.guard.clock_constraints:
                _charge_atom(atom, ids, lower[src], upper[src])
            ops = []
            for action in edge.update.actions:
                if isinstance(action, ClockReset):
                    x = ids[action.clock]
                    ops.append(("reset", x))
                    if action.value:
                        value = action.value
                        if value > lower[src][x]:
                            lower[src][x] = value
                        if value > upper[src][x]:
                            upper[src][x] = value
                elif isinstance(action, ClockCopy):
                    ops.append(("copy", ids[action.clock],
                                ids[action.source]))
            # Backward transfer is applied in reverse update order.
            ops.reverse()
            edges.append((src, dst, tuple(ops)))
        # Fixpoint: propagate target demands back through the edges.
        changed = True
        while changed:
            changed = False
            for src, dst, ops in edges:
                need_low = list(lower[dst])
                need_up = list(upper[dst])
                for op in ops:
                    if op[0] == "reset":
                        need_low[op[1]] = NO_BOUND
                        need_up[op[1]] = NO_BOUND
                    else:  # copy x := y — x's demand lands on y
                        _, x, y = op
                        if x != y:
                            if need_low[x] > need_low[y]:
                                need_low[y] = need_low[x]
                            if need_up[x] > need_up[y]:
                                need_up[y] = need_up[x]
                            need_low[x] = NO_BOUND
                            need_up[x] = NO_BOUND
                src_low = lower[src]
                src_up = upper[src]
                for x in range(n_clocks):
                    if need_low[x] > src_low[x]:
                        src_low[x] = need_low[x]
                        changed = True
                    if need_up[x] > src_up[x]:
                        src_up[x] = need_up[x]
                        changed = True
        all_lower.append(lower)
        all_upper.append(upper)
    return LUBoundsMap(n_clocks, all_lower, all_upper)
