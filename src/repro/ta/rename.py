"""Channel renaming — the syntactic heart of the PIM→PSM transform.

Section IV(1) of the paper constructs ``MIO`` from ``M`` by renaming
every input synchronization ``m_*`` to ``i_*`` and every output
synchronization ``c_*`` to ``o_*`` while leaving locations, guards,
invariants and updates untouched.  The helpers here implement exactly
that, as pure functions on the immutable syntax objects.

The second half of the module inverts the idea: instead of renaming
*into* a target vocabulary, :func:`canonical_network` renames a whole
network *out of* any vocabulary — channels, variables, clocks and
locations are relabeled positionally (first-occurrence order over the
declared automaton/edge order), constants are folded, and unused
declarations are dropped.  Two networks receive the same canonical
text exactly when they are alpha-equivalent compositions, which makes
the sha256 of the text a structural hash: the key of the portfolio's
cross-scheme verdict memo (:mod:`repro.mc.memo`).  The optional
*capacity erasure* additionally blanks comparison literals that only
restate a buffer bound, so schemes differing in nothing but an
unreached capacity hash equal (see :class:`ErasedSite` for the
side-conditions the memo must discharge before treating that as
semantic equality).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Mapping

from repro.ta.channels import Sync
from repro.ta.clocks import (
    Assignment,
    ClockCopy,
    ClockReset,
    Guard,
    Update,
)
from repro.ta.expr import Binary, Const, Expr, Unary, Var
from repro.ta.model import Automaton, Network

__all__ = [
    "CanonicalModel",
    "ErasedSite",
    "canonical_network",
    "rename_channels",
    "rename_clocks",
    "boundary_rename_map",
    "mc_to_io_name",
]


def rename_channels(automaton: Automaton,
                    mapping: Mapping[str, str],
                    new_name: str | None = None) -> Automaton:
    """A copy of ``automaton`` with channels renamed per ``mapping``.

    Channels not present in the mapping are preserved.  The structure
    (locations, edges, guards, updates, clocks) is untouched — the
    modularity property of the paper's transformation.
    """
    new_edges = []
    for edge in automaton.edges:
        if edge.sync is not None and edge.sync.channel in mapping:
            new_sync = Sync(channel=mapping[edge.sync.channel],
                            direction=edge.sync.direction)
            new_edges.append(replace(edge, sync=new_sync))
        else:
            new_edges.append(edge)
    return replace(
        automaton,
        edges=tuple(new_edges),
        name=new_name if new_name is not None else automaton.name,
    )


def rename_clocks(automaton: Automaton,
                  mapping: Mapping[str, str], *,
                  keep_local: bool = False) -> Automaton:
    """A copy with clocks renamed in invariants, guards and updates.

    With ``keep_local=False`` (the default) the renamed clocks are
    removed from the automaton's local clock list — the PIM→PSM
    transformation uses this to *hoist* MIO's clocks to network
    globals so EXEIO's complementary transitions can reference them
    (Section IV(3)).
    """
    def fix_guard(guard: Guard) -> Guard:
        return Guard(
            clock_constraints=tuple(c.renamed_clocks(mapping)
                                    for c in guard.clock_constraints),
            data=guard.data,
        )

    def fix_update(update: Update) -> Update:
        actions = []
        for action in update.actions:
            if isinstance(action, ClockReset):
                actions.append(ClockReset(
                    clock=mapping.get(action.clock, action.clock),
                    value=action.value))
            elif isinstance(action, ClockCopy):
                actions.append(ClockCopy(
                    clock=mapping.get(action.clock, action.clock),
                    source=mapping.get(action.source, action.source)))
            else:
                assert isinstance(action, Assignment)
                actions.append(action)
        return Update(actions=tuple(actions))

    new_locations = tuple(
        replace(loc, invariant=tuple(c.renamed_clocks(mapping)
                                     for c in loc.invariant))
        for loc in automaton.locations
    )
    new_edges = tuple(
        replace(edge, guard=fix_guard(edge.guard),
                update=fix_update(edge.update))
        for edge in automaton.edges
    )
    if keep_local:
        new_clocks = tuple(mapping.get(c, c) for c in automaton.clocks)
    else:
        new_clocks = tuple(c for c in automaton.clocks
                           if c not in mapping)
    return replace(automaton, locations=new_locations, edges=new_edges,
                   clocks=new_clocks)


def mc_to_io_name(channel: str) -> str:
    """Map an mc-boundary channel name to its io-boundary twin.

    Follows the paper's naming convention: ``m_BolusReq`` →
    ``i_BolusReq`` and ``c_StartInfusion`` → ``o_StartInfusion``.
    Names without the ``m_``/``c_`` prefix get an ``io_`` prefix, so
    the function is total and injective on any sane channel set.
    """
    if channel.startswith("m_"):
        return "i_" + channel[2:]
    if channel.startswith("c_"):
        return "o_" + channel[2:]
    return "io_" + channel


def boundary_rename_map(input_channels: set[str] | list[str],
                        output_channels: set[str] | list[str]) \
        -> dict[str, str]:
    """Rename map for constructing MIO from M (Section IV(1))."""
    mapping = {name: mc_to_io_name(name) for name in input_channels}
    for name in output_channels:
        mapping[name] = mc_to_io_name(name)
    return mapping


# ======================================================================
# Canonical structural form (the verdict-memo hash)
# ======================================================================
_CMP_OPS = frozenset(("<", "<=", ">", ">=", "==", "!="))


@dataclass(frozen=True)
class ErasedSite:
    """One blanked capacity literal of a canonical form.

    ``variables`` are the *original* variable names summed on the
    non-constant side of the comparison (or the single declared
    variable for a ``kind="decl"`` range bound); ``literal`` is the
    erased constant.  Canonical forms list their sites in
    serialization order, so two networks with equal canonical text
    have positionally corresponding sites.  Erasure is only a sound
    identification when, over the full reachable state space, the sum
    of the site's variables stays *strictly below* both networks'
    literals — then every erased comparison is uniformly decided the
    same way on both sides (``<``/``<=`` true, ``==``/``>``/``>=``
    false, ``!=`` true) and the networks are bisimilar.  The memo
    checks exactly that condition against measured occupancy maxima.
    """

    variables: tuple[str, ...]
    literal: int
    kind: str = "cmp"


@dataclass(frozen=True)
class CanonicalModel:
    """A network's canonical text digest plus the data the verdict
    memo needs to interpret it: the original→canonical maps for
    channels and variables (to key queries and occupancy certificates
    on vocabulary-independent ids) and the ordered erased-literal
    sites."""

    digest: str
    channel_ids: Mapping[str, str]
    variable_ids: Mapping[str, str]
    erased: tuple[ErasedSite, ...]

    def channel_id(self, name: str) -> str:
        return self.channel_ids[name]

    def variable_id(self, name: str) -> str:
        return self.variable_ids[name]


def _sum_of_vars(expr: Expr) -> list[str] | None:
    """The variable names of a pure ``v1 + v2 + …`` tree, else None."""
    if isinstance(expr, Var):
        return [expr.name]
    if isinstance(expr, Binary) and expr.op == "+":
        left = _sum_of_vars(expr.left)
        right = _sum_of_vars(expr.right)
        if left is not None and right is not None:
            return left + right
    return None


class _Canonicalizer:
    """Single-use builder of one network's canonical text.

    Renaming is positional: ids are handed out in first-occurrence
    order over a fixed traversal (automata in declared order; per
    automaton the locations in canonical order, then the edges in
    declared order).  Automaton and edge order are *preserved*, not
    sorted — they determine the explorer's successor enumeration
    order, which early-stopping queries observe.  Channel/variable
    declaration order is canonicalized away (lookups are by name, so
    reordering declarations is semantically inert), and unused
    declarations are dropped.
    """

    def __init__(self, network: Network,
                 erase: Mapping[str, int] | None):
        self.network = network
        self.erase = dict(erase or {})
        self.constants = dict(network.constants)
        self.channel_ids: dict[str, str] = {}
        self.variable_ids: dict[str, str] = {}
        self.global_clock_ids: dict[str, str] = {}
        self.erased: list[ErasedSite] = []
        self._globals = set(network.global_clocks)

    # -- id allocation --------------------------------------------------
    def _channel(self, name: str) -> str:
        cid = self.channel_ids.get(name)
        if cid is None:
            cid = f"c{len(self.channel_ids)}"
            self.channel_ids[name] = cid
        return cid

    def _variable(self, name: str) -> str:
        vid = self.variable_ids.get(name)
        if vid is None:
            vid = f"v{len(self.variable_ids)}"
            self.variable_ids[name] = vid
        return vid

    def _clock(self, local_ids: dict[str, str], name: str) -> str:
        if name in self._globals:
            cid = self.global_clock_ids.get(name)
            if cid is None:
                cid = f"g{len(self.global_clock_ids)}"
                self.global_clock_ids[name] = cid
            return cid
        cid = local_ids.get(name)
        if cid is None:
            cid = f"k{len(local_ids)}"
            local_ids[name] = cid
        return cid

    # -- expressions ----------------------------------------------------
    def _expr(self, expr: Expr) -> str:
        return self._expr_rec(expr.fold(self.constants))

    def _expr_rec(self, expr: Expr) -> str:
        if isinstance(expr, Const):
            return str(expr.value)
        if isinstance(expr, Var):
            return self._variable(expr.name)
        if isinstance(expr, Unary):
            return f"({expr.op}{self._expr_rec(expr.operand)})"
        assert isinstance(expr, Binary)
        if expr.op in _CMP_OPS and self.erase:
            blanked = self._try_erase(expr)
            if blanked is not None:
                return blanked
        return (f"({self._expr_rec(expr.left)}{expr.op}"
                f"{self._expr_rec(expr.right)})")

    def _try_erase(self, expr: Binary) -> str | None:
        """Blank ``<sum of capacity vars> op <their capacity>`` (either
        orientation), recording the site."""
        for const_side, var_side, template in (
                (expr.right, expr.left, "({body}{op}#)"),
                (expr.left, expr.right, "(#{op}{body})")):
            if not isinstance(const_side, Const):
                continue
            names = _sum_of_vars(var_side)
            if not names:
                continue
            if any(self.erase.get(name) != const_side.value
                   for name in names):
                continue
            body = self._expr_rec(var_side)
            self.erased.append(ErasedSite(tuple(names),
                                          const_side.value))
            return template.format(body=body, op=expr.op)
        return None

    # -- structure ------------------------------------------------------
    def _guard(self, guard: Guard, local_ids: dict[str, str]) -> str:
        atoms = []
        for atom in guard.clock_constraints:
            lhs = self._clock(local_ids, atom.clock)
            if atom.other is not None:
                lhs += "-" + self._clock(local_ids, atom.other)
            atoms.append(f"{lhs}{atom.op}{atom.bound}")
        return ";".join(atoms) + "|" + self._expr(guard.data)

    def _update(self, update: Update, local_ids: dict[str, str]) -> str:
        parts = []
        for action in update.actions:
            if isinstance(action, ClockReset):
                parts.append(f"r{self._clock(local_ids, action.clock)}"
                             f"={action.value}")
            elif isinstance(action, ClockCopy):
                parts.append(f"r{self._clock(local_ids, action.clock)}"
                             f"={self._clock(local_ids, action.source)}")
            else:
                assert isinstance(action, Assignment)
                parts.append(f"{self._variable(action.var)}"
                             f"={self._expr(action.expr)}")
        return ";".join(parts)

    def _automaton(self, automaton: Automaton) -> str:
        local_ids: dict[str, str] = {}
        # Canonical location order: initial, then first occurrence as
        # an edge endpoint, then any unreferenced leftovers in
        # declared order (they are unreachable control states, but we
        # keep them — reachability is a semantic question the hash
        # must not presume to answer).
        loc_ids: dict[str, str] = {}

        def loc(name: str) -> str:
            lid = loc_ids.get(name)
            if lid is None:
                lid = f"l{len(loc_ids)}"
                loc_ids[name] = lid
            return lid

        loc(automaton.initial)
        edge_texts = []
        for edge in automaton.edges:
            source, target = loc(edge.source), loc(edge.target)
            sync = ""
            if edge.sync is not None:
                sync = self._channel(edge.sync.channel) + \
                    edge.sync.direction
            edge_texts.append(
                f"{source}>{target}[{self._guard(edge.guard, local_ids)}"
                f"/{sync}/{self._update(edge.update, local_ids)}]")
        for location in automaton.locations:
            loc(location.name)
        by_id = sorted(automaton.locations,
                       key=lambda location: loc_ids[location.name])
        loc_texts = []
        for location in by_id:
            invariant = ";".join(
                f"{self._clock(local_ids, atom.clock)}"
                f"{atom.op}{atom.bound}"
                for atom in location.invariant)
            marks = ("u" if location.urgent else
                     "c" if location.committed else "")
            loc_texts.append(f"{loc_ids[location.name]}:{invariant}"
                             f":{marks}")
        # Declared-but-unreferenced clocks still widen the DBM; record
        # how many so dimension-changing edits perturb the hash.
        unused = sum(1 for clock in automaton.clocks
                     if clock not in local_ids)
        return ("A(" + loc_ids[automaton.initial] + ";"
                + ",".join(loc_texts) + ";"
                + ",".join(edge_texts) + f";+{unused})")

    def render(self) -> str:
        automata_text = []
        for automaton in self.network.automata:
            automata_text.append(self._automaton(automaton))
        channel_table = []
        for name, cid in sorted(self.channel_ids.items(),
                                key=lambda item: int(item[1][1:])):
            channel = self.network.channel(name)
            flags = ("b" if channel.broadcast else "") + \
                ("u" if channel.urgent else "")
            channel_table.append(f"{cid}:{flags}")
        variable_table = []
        declared = {decl.name: decl for decl in self.network.variables}
        for name, vid in sorted(self.variable_ids.items(),
                                key=lambda item: int(item[1][1:])):
            decl = declared.get(name)
            if decl is None:
                # Referenced but undeclared: a folded-away constant
                # would have been substituted, so this is a modeling
                # error the validator reports elsewhere; serialize the
                # bare name class to stay total.
                variable_table.append(f"{vid}:?")
                continue
            hi: str = str(decl.hi)
            if self.erase.get(name) == decl.hi:
                self.erased.append(ErasedSite((name,), decl.hi, "decl"))
                hi = "#"
            variable_table.append(f"{vid}:{decl.init}:{decl.lo}:{hi}")
        unused_globals = sum(
            1 for clock in self.network.global_clocks
            if clock not in self.global_clock_ids)
        return ("NET|" + "|".join(automata_text)
                + "|CH|" + ",".join(channel_table)
                + "|VAR|" + ",".join(variable_table)
                + f"|+g{unused_globals}")


def canonical_network(
        network: Network, *,
        erase_capacities: Mapping[str, int] | None = None,
) -> CanonicalModel:
    """Canonical structural form of a network.

    Returns a :class:`CanonicalModel` whose ``digest`` is equal for
    any two networks that differ only by renaming (automata, channels,
    variables, clocks, locations), by channel/variable declaration
    order, or — when ``erase_capacities`` maps variables to their
    capacity bounds — by the erased capacity literals themselves.
    Automaton and edge order are significant (they drive exploration
    order); every numeric constant outside the erased sites is
    significant too.
    """
    builder = _Canonicalizer(network, erase_capacities)
    text = builder.render()
    return CanonicalModel(
        digest=hashlib.sha256(text.encode()).hexdigest(),
        channel_ids=dict(builder.channel_ids),
        variable_ids=dict(builder.variable_ids),
        erased=tuple(builder.erased))
