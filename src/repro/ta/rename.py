"""Channel renaming — the syntactic heart of the PIM→PSM transform.

Section IV(1) of the paper constructs ``MIO`` from ``M`` by renaming
every input synchronization ``m_*`` to ``i_*`` and every output
synchronization ``c_*`` to ``o_*`` while leaving locations, guards,
invariants and updates untouched.  The helpers here implement exactly
that, as pure functions on the immutable syntax objects.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping

from repro.ta.channels import Sync
from repro.ta.clocks import (
    Assignment,
    ClockCopy,
    ClockReset,
    Guard,
    Update,
)
from repro.ta.model import Automaton

__all__ = [
    "rename_channels",
    "rename_clocks",
    "boundary_rename_map",
    "mc_to_io_name",
]


def rename_channels(automaton: Automaton,
                    mapping: Mapping[str, str],
                    new_name: str | None = None) -> Automaton:
    """A copy of ``automaton`` with channels renamed per ``mapping``.

    Channels not present in the mapping are preserved.  The structure
    (locations, edges, guards, updates, clocks) is untouched — the
    modularity property of the paper's transformation.
    """
    new_edges = []
    for edge in automaton.edges:
        if edge.sync is not None and edge.sync.channel in mapping:
            new_sync = Sync(channel=mapping[edge.sync.channel],
                            direction=edge.sync.direction)
            new_edges.append(replace(edge, sync=new_sync))
        else:
            new_edges.append(edge)
    return replace(
        automaton,
        edges=tuple(new_edges),
        name=new_name if new_name is not None else automaton.name,
    )


def rename_clocks(automaton: Automaton,
                  mapping: Mapping[str, str], *,
                  keep_local: bool = False) -> Automaton:
    """A copy with clocks renamed in invariants, guards and updates.

    With ``keep_local=False`` (the default) the renamed clocks are
    removed from the automaton's local clock list — the PIM→PSM
    transformation uses this to *hoist* MIO's clocks to network
    globals so EXEIO's complementary transitions can reference them
    (Section IV(3)).
    """
    def fix_guard(guard: Guard) -> Guard:
        return Guard(
            clock_constraints=tuple(c.renamed_clocks(mapping)
                                    for c in guard.clock_constraints),
            data=guard.data,
        )

    def fix_update(update: Update) -> Update:
        actions = []
        for action in update.actions:
            if isinstance(action, ClockReset):
                actions.append(ClockReset(
                    clock=mapping.get(action.clock, action.clock),
                    value=action.value))
            elif isinstance(action, ClockCopy):
                actions.append(ClockCopy(
                    clock=mapping.get(action.clock, action.clock),
                    source=mapping.get(action.source, action.source)))
            else:
                assert isinstance(action, Assignment)
                actions.append(action)
        return Update(actions=tuple(actions))

    new_locations = tuple(
        replace(loc, invariant=tuple(c.renamed_clocks(mapping)
                                     for c in loc.invariant))
        for loc in automaton.locations
    )
    new_edges = tuple(
        replace(edge, guard=fix_guard(edge.guard),
                update=fix_update(edge.update))
        for edge in automaton.edges
    )
    if keep_local:
        new_clocks = tuple(mapping.get(c, c) for c in automaton.clocks)
    else:
        new_clocks = tuple(c for c in automaton.clocks
                           if c not in mapping)
    return replace(automaton, locations=new_locations, edges=new_edges,
                   clocks=new_clocks)


def mc_to_io_name(channel: str) -> str:
    """Map an mc-boundary channel name to its io-boundary twin.

    Follows the paper's naming convention: ``m_BolusReq`` →
    ``i_BolusReq`` and ``c_StartInfusion`` → ``o_StartInfusion``.
    Names without the ``m_``/``c_`` prefix get an ``io_`` prefix, so
    the function is total and injective on any sane channel set.
    """
    if channel.startswith("m_"):
        return "i_" + channel[2:]
    if channel.startswith("c_"):
        return "o_" + channel[2:]
    return "io_" + channel


def boundary_rename_map(input_channels: set[str] | list[str],
                        output_channels: set[str] | list[str]) \
        -> dict[str, str]:
    """Rename map for constructing MIO from M (Section IV(1))."""
    mapping = {name: mc_to_io_name(name) for name in input_channels}
    for name in output_channels:
        mapping[name] = mc_to_io_name(name)
    return mapping
