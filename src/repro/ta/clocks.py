"""Clock constraints, guards, invariants and updates.

A *clock constraint* is an atom ``x ≺ n``, ``x - y ≺ n`` or the mirror
forms with ``>``/``>=``; ``==`` expands to the conjunction of ``<=``
and ``>=``.  Constraint bounds are integer constants after folding the
model's symbolic constants — a restriction (validated in
:mod:`repro.ta.validate`) that keeps zone extrapolation exact.

A *guard* couples a list of clock constraints with one data expression;
an *update* is a sequence of clock resets/copies and variable
assignments executed left to right, exactly like an UPPAAL edge label.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.ta.expr import Const, Expr
from repro.zones.bounds import encode
from repro.zones.dbm import DBM

__all__ = [
    "ClockConstraint",
    "Guard",
    "ClockReset",
    "ClockCopy",
    "Assignment",
    "Update",
    "TRUE_GUARD",
]

_COMPARISONS = ("<", "<=", ">", ">=", "==")


@dataclass(frozen=True)
class ClockConstraint:
    """``clock - other ≺ bound`` (``other=None`` means the reference 0).

    ``op`` is one of ``< <= > >= ==``; ``>``/``>=`` atoms are stored
    as written and normalized when applied to a DBM.
    """

    clock: str
    op: str
    bound: int
    other: str | None = None

    def __post_init__(self) -> None:
        if self.op not in _COMPARISONS:
            raise ValueError(f"bad comparison operator '{self.op}'")

    def apply(self, zone: DBM, index: Mapping[str, int]) -> DBM:
        """Intersect ``zone`` with this constraint (clock name → index)."""
        i = index[self.clock]
        j = index[self.other] if self.other is not None else 0
        if self.op in ("<", "<="):
            zone.constrain(i, j, encode(self.bound, self.op == "<="))
        elif self.op in (">", ">="):
            zone.constrain(j, i, encode(-self.bound, self.op == ">="))
        else:  # ==
            zone.constrain(i, j, encode(self.bound, True))
            zone.constrain(j, i, encode(-self.bound, True))
        return zone

    def clocks(self) -> tuple[str, ...]:
        return (self.clock,) if self.other is None else (self.clock,
                                                         self.other)

    def max_constant(self) -> int:
        """Contribution to per-clock maximum constants (Extra_M)."""
        return abs(self.bound)

    def renamed_clocks(self, mapping: Mapping[str, str]) -> "ClockConstraint":
        return ClockConstraint(
            clock=mapping.get(self.clock, self.clock),
            op=self.op,
            bound=self.bound,
            other=None if self.other is None
            else mapping.get(self.other, self.other),
        )

    def holds(self, values: Mapping[str, int]) -> bool:
        """Concrete-semantics check against clock values (simulation)."""
        lhs = values[self.clock]
        if self.other is not None:
            lhs -= values[self.other]
        if self.op == "<":
            return lhs < self.bound
        if self.op == "<=":
            return lhs <= self.bound
        if self.op == ">":
            return lhs > self.bound
        if self.op == ">=":
            return lhs >= self.bound
        return lhs == self.bound

    def __str__(self) -> str:
        lhs = self.clock if self.other is None else \
            f"{self.clock} - {self.other}"
        return f"{lhs} {self.op} {self.bound}"


@dataclass(frozen=True)
class Guard:
    """Edge guard: conjunction of clock atoms and one data predicate."""

    clock_constraints: tuple[ClockConstraint, ...] = ()
    data: Expr = field(default_factory=lambda: Const(1))

    def is_trivial(self) -> bool:
        return not self.clock_constraints and isinstance(self.data, Const) \
            and self.data.value != 0

    def data_holds(self, env: Mapping[str, int]) -> bool:
        return self.data.eval(env) != 0

    def __str__(self) -> str:
        parts = [str(c) for c in self.clock_constraints]
        if not (isinstance(self.data, Const) and self.data.value == 1):
            parts.append(str(self.data))
        return " && ".join(parts) if parts else "true"


TRUE_GUARD = Guard()


@dataclass(frozen=True)
class ClockReset:
    """``clock := value`` (non-negative constant)."""

    clock: str
    value: int = 0

    def __str__(self) -> str:
        return f"{self.clock} = {self.value}"


@dataclass(frozen=True)
class ClockCopy:
    """``clock := source`` (clock-to-clock copy)."""

    clock: str
    source: str

    def __str__(self) -> str:
        return f"{self.clock} = {self.source}"


@dataclass(frozen=True)
class Assignment:
    """``var := expr`` over the discrete variables."""

    var: str
    expr: Expr

    def __str__(self) -> str:
        return f"{self.var} = {self.expr}"


@dataclass(frozen=True)
class Update:
    """Ordered sequence of clock and variable updates.

    The order is the source order of the edge label; variable
    assignments see the effects of earlier assignments (UPPAAL
    sequential semantics).
    """

    actions: tuple[ClockReset | ClockCopy | Assignment, ...] = ()

    def clock_actions(self) -> list[ClockReset | ClockCopy]:
        return [a for a in self.actions
                if isinstance(a, (ClockReset, ClockCopy))]

    def assignments(self) -> list[Assignment]:
        return [a for a in self.actions if isinstance(a, Assignment)]

    def apply_data(self, env: dict[str, int]) -> None:
        """Run the variable assignments in order, mutating ``env``."""
        for action in self.actions:
            if isinstance(action, Assignment):
                env[action.var] = action.expr.eval(env)

    def is_empty(self) -> bool:
        return not self.actions

    def __str__(self) -> str:
        return ", ".join(str(a) for a in self.actions)


def invariant_zone(
    constraints: Sequence[ClockConstraint],
    zone: DBM,
    index: Mapping[str, int],
) -> DBM:
    """Intersect ``zone`` with a conjunction of invariant atoms."""
    for constraint in constraints:
        constraint.apply(zone, index)
    return zone
