"""Parser for the modeling language's guard/invariant/update labels.

Edge labels are written as UPPAAL-style strings::

    guard:      "x >= 250 && cnt < CAP"
    invariant:  "x <= 500"
    update:     "x = 0, cnt = cnt + 1"

The parser is a plain tokenizer + recursive-descent expression parser.
Guards are then *split*: top-level conjuncts that mention clocks must
be simple atoms (``x ≺ n`` or ``x - y ≺ n`` and their mirrored forms)
and become :class:`~repro.ta.clocks.ClockConstraint`; everything else
forms the data predicate.  Constraint bounds may be written with model
constants (``x <= PERIOD``) — they are folded to integers using the
constant environment supplied by the caller, keeping the zone algebra
exact.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.ta.clocks import (
    Assignment,
    ClockConstraint,
    ClockCopy,
    ClockReset,
    Guard,
    Update,
)
from repro.ta.expr import Binary, Const, Expr, Unary, Var, conjoin

__all__ = [
    "ParseError",
    "tokenize",
    "parse_expression",
    "parse_guard",
    "parse_invariant",
    "parse_update",
]


class ParseError(Exception):
    """Raised on any syntactic or semantic label error."""


# ----------------------------------------------------------------------
# Tokenizer
# ----------------------------------------------------------------------
_TWO_CHAR = ("&&", "||", "<=", ">=", "==", "!=", ":=")
_ONE_CHAR = "()+-*/%<>!=,;"


def tokenize(text: str) -> list[str]:
    """Split a label into tokens; raises :class:`ParseError` on junk."""
    tokens: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        pair = text[i:i + 2]
        if pair in _TWO_CHAR:
            tokens.append(pair)
            i += 2
            continue
        if ch.isdigit():
            j = i
            while j < n and text[j].isdigit():
                j += 1
            tokens.append(text[i:j])
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] in "_."):
                j += 1
            tokens.append(text[i:j])
            i = j
            continue
        if ch in _ONE_CHAR:
            tokens.append(ch)
            i += 1
            continue
        raise ParseError(f"unexpected character {ch!r} in {text!r}")
    return tokens


# ----------------------------------------------------------------------
# Recursive-descent expression parser
# ----------------------------------------------------------------------
class _Parser:
    """Precedence-climbing parser over a token list."""

    def __init__(self, tokens: list[str], source: str):
        self.tokens = tokens
        self.pos = 0
        self.source = source

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def advance(self) -> str:
        token = self.peek()
        if token is None:
            raise ParseError(f"unexpected end of input in {self.source!r}")
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.advance()
        if got != token:
            raise ParseError(
                f"expected {token!r} but found {got!r} in {self.source!r}")

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)

    # Grammar (lowest to highest precedence):
    #   or    := and ('||' and)*
    #   and   := cmp ('&&' cmp)*
    #   cmp   := add (('<'|'<='|'>'|'>='|'=='|'!=') add)?
    #   add   := mul (('+'|'-') mul)*
    #   mul   := unary (('*'|'/'|'%') unary)*
    #   unary := ('-'|'!') unary | atom
    #   atom  := INT | IDENT | 'true' | 'false' | '(' or ')'
    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.peek() == "||":
            self.advance()
            left = Binary("||", left, self.parse_and())
        return left

    def parse_and(self) -> Expr:
        left = self.parse_cmp()
        while self.peek() == "&&":
            self.advance()
            left = Binary("&&", left, self.parse_cmp())
        return left

    def parse_cmp(self) -> Expr:
        left = self.parse_add()
        if self.peek() in ("<", "<=", ">", ">=", "==", "!="):
            op = self.advance()
            left = Binary(op, left, self.parse_add())
        return left

    def parse_add(self) -> Expr:
        left = self.parse_mul()
        while self.peek() in ("+", "-"):
            op = self.advance()
            left = Binary(op, left, self.parse_mul())
        return left

    def parse_mul(self) -> Expr:
        left = self.parse_unary()
        while self.peek() in ("*", "/", "%"):
            op = self.advance()
            left = Binary(op, left, self.parse_unary())
        return left

    def parse_unary(self) -> Expr:
        token = self.peek()
        if token in ("-", "!"):
            self.advance()
            return Unary(token, self.parse_unary())
        return self.parse_atom()

    def parse_atom(self) -> Expr:
        token = self.advance()
        if token == "(":
            inner = self.parse_or()
            self.expect(")")
            return inner
        if token.isdigit():
            return Const(int(token))
        if token == "true":
            return Const(1)
        if token == "false":
            return Const(0)
        if token[0].isalpha() or token[0] == "_":
            return Var(token)
        raise ParseError(f"unexpected token {token!r} in {self.source!r}")


def parse_expression(text: str) -> Expr:
    """Parse a full expression; the whole string must be consumed."""
    parser = _Parser(tokenize(text), text)
    expr = parser.parse_or()
    if not parser.at_end():
        raise ParseError(
            f"trailing tokens {parser.tokens[parser.pos:]} in {text!r}")
    return expr


# ----------------------------------------------------------------------
# Guard / invariant splitting
# ----------------------------------------------------------------------
def _split_conjuncts(expr: Expr) -> list[Expr]:
    """Flatten top-level ``&&`` into a conjunct list."""
    if isinstance(expr, Binary) and expr.op == "&&":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _clock_side(expr: Expr, clocks: frozenset[str]) \
        -> tuple[str, str | None] | None:
    """Recognize ``x`` or ``x - y`` over clocks; None when not a match."""
    if isinstance(expr, Var) and expr.name in clocks:
        return expr.name, None
    if (isinstance(expr, Binary) and expr.op == "-"
            and isinstance(expr.left, Var) and expr.left.name in clocks
            and isinstance(expr.right, Var) and expr.right.name in clocks):
        return expr.left.name, expr.right.name
    return None


_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "=="}


def _fold_to_int(expr: Expr, constants: Mapping[str, int],
                 source: str) -> int:
    folded = expr.fold(constants)
    if not isinstance(folded, Const):
        raise ParseError(
            f"clock-constraint bound {expr} in {source!r} does not fold "
            f"to a constant (unknown names: {sorted(folded.free_vars())})")
    return folded.value


def _atom_to_constraint(
    expr: Expr,
    clocks: frozenset[str],
    constants: Mapping[str, int],
    source: str,
) -> ClockConstraint | None:
    """Convert a conjunct into a clock atom, or None for data conjuncts."""
    mentions_clock = bool(expr.free_vars() & clocks)
    if not mentions_clock:
        return None
    if not isinstance(expr, Binary) or expr.op not in _FLIP and \
            expr.op != "!=":
        raise ParseError(
            f"clocks may only appear in simple comparison atoms; got "
            f"{expr} in {source!r}")
    if expr.op == "!=":
        raise ParseError(
            f"'!=' is not allowed on clocks (not zone-representable): "
            f"{expr} in {source!r}")
    left_clocks = _clock_side(expr.left, clocks)
    right_clocks = _clock_side(expr.right, clocks)
    if left_clocks and not (expr.right.free_vars() & clocks):
        clock, other = left_clocks
        op = expr.op
        bound_expr = expr.right
    elif right_clocks and not (expr.left.free_vars() & clocks):
        clock, other = right_clocks
        op = _FLIP[expr.op]
        bound_expr = expr.left
    else:
        raise ParseError(
            f"unsupported clock atom shape {expr} in {source!r}; use "
            f"'x ~ e' or 'x - y ~ e' with a constant-foldable bound")
    bound = _fold_to_int(bound_expr, constants, source)
    return ClockConstraint(clock=clock, op=op, bound=bound, other=other)


def parse_guard(
    text: str | None,
    clocks: Sequence[str] | frozenset[str] = (),
    constants: Mapping[str, int] | None = None,
) -> Guard:
    """Parse an edge guard into clock atoms plus a data predicate."""
    if text is None or not text.strip():
        return Guard()
    clock_set = frozenset(clocks)
    constant_env = dict(constants or {})
    expr = parse_expression(text)
    atoms: list[ClockConstraint] = []
    data_parts: list[Expr] = []
    for conjunct in _split_conjuncts(expr):
        atom = _atom_to_constraint(conjunct, clock_set, constant_env, text)
        if atom is not None:
            atoms.append(atom)
        else:
            data_parts.append(conjunct.fold(constant_env))
    return Guard(clock_constraints=tuple(atoms), data=conjoin(data_parts))


def parse_invariant(
    text: str | None,
    clocks: Sequence[str] | frozenset[str],
    constants: Mapping[str, int] | None = None,
) -> tuple[ClockConstraint, ...]:
    """Parse a location invariant (clock atoms only).

    Upper-bound atoms (``<``, ``<=``, ``==``) are the idiomatic use;
    lower bounds are accepted because UPPAAL accepts them too.
    """
    if text is None or not text.strip():
        return ()
    guard = parse_guard(text, clocks, constants)
    if not (isinstance(guard.data, Const) and guard.data.value == 1):
        raise ParseError(
            f"invariant {text!r} contains non-clock conjuncts "
            f"({guard.data}); invariants must constrain clocks only")
    return guard.clock_constraints


def parse_update(
    text: str | None,
    clocks: Sequence[str] | frozenset[str] = (),
    constants: Mapping[str, int] | None = None,
) -> Update:
    """Parse a comma/semicolon-separated update list.

    ``x = 0`` resets clock ``x``; ``x = y`` with both clocks is a clock
    copy; any other ``name = expr`` is a variable assignment.  ``:=``
    is accepted as a synonym for ``=``.
    """
    if text is None or not text.strip():
        return Update()
    clock_set = frozenset(clocks)
    constant_env = dict(constants or {})
    actions: list[ClockReset | ClockCopy | Assignment] = []
    for piece in _split_statements(text):
        tokens = tokenize(piece)
        if len(tokens) < 3 or tokens[1] not in ("=", ":="):
            raise ParseError(
                f"update statement {piece!r} must have the form "
                f"'name = expression'")
        target = tokens[0]
        if not (target[0].isalpha() or target[0] == "_"):
            raise ParseError(f"bad assignment target {target!r}")
        rhs_text = piece.split(tokens[1], 1)[1]
        rhs = parse_expression(rhs_text)
        if target in clock_set:
            if isinstance(rhs, Var) and rhs.name in clock_set:
                actions.append(ClockCopy(clock=target, source=rhs.name))
                continue
            value = _fold_to_int(rhs, constant_env, text)
            if value < 0:
                raise ParseError(
                    f"clocks cannot be set to negative values: {piece!r}")
            actions.append(ClockReset(clock=target, value=value))
        else:
            actions.append(Assignment(var=target,
                                      expr=rhs.fold(constant_env)))
    return Update(actions=tuple(actions))


def _split_statements(text: str) -> list[str]:
    """Split on top-level ``,``/``;`` (respecting parentheses)."""
    pieces: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch in ",;" and depth == 0:
            piece = "".join(current).strip()
            if piece:
                pieces.append(piece)
            current = []
        else:
            current.append(ch)
    piece = "".join(current).strip()
    if piece:
        pieces.append(piece)
    return pieces
