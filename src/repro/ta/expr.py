"""Integer/boolean expression AST for guards, updates and invariants.

The modeling language mirrors the UPPAAL expression subset the paper's
models need: integer constants, variable references, unary ``-``/``!``,
binary arithmetic (``+ - * / %``), comparisons and short-circuit
boolean connectives (``&& ||``).  Booleans are integers (0 = false).

Expressions evaluate against a mapping from names to integers (the
discrete part of a symbolic state, plus model constants).  They know
their free variables, support renaming and constant folding, and print
back to parseable source — properties the parser and the PIM→PSM
transformation rely on.
"""

from __future__ import annotations

from typing import Callable, Mapping

__all__ = [
    "Expr",
    "Const",
    "Var",
    "Unary",
    "Binary",
    "ExprError",
    "int_div",
    "int_mod",
]


class ExprError(Exception):
    """Raised on evaluation of an ill-formed expression (e.g. unknown
    variable, division by zero)."""


class Expr:
    """Abstract expression node."""

    __slots__ = ()

    def eval(self, env: Mapping[str, int]) -> int:
        raise NotImplementedError

    def free_vars(self) -> frozenset[str]:
        raise NotImplementedError

    def rename(self, mapping: Mapping[str, str]) -> "Expr":
        """A copy with variable names substituted per ``mapping``."""
        raise NotImplementedError

    def fold(self, env: Mapping[str, int]) -> "Expr":
        """Partially evaluate: substitute names found in ``env`` and
        collapse constant subtrees."""
        raise NotImplementedError

    def is_const(self) -> bool:
        return isinstance(self, Const)

    def __str__(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Expr) and str(self) == str(other)

    def __hash__(self) -> int:
        return hash(str(self))


class Const(Expr):
    """Integer literal (``true``/``false`` parse to 1/0)."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = int(value)

    def eval(self, env: Mapping[str, int]) -> int:
        return self.value

    def free_vars(self) -> frozenset[str]:
        return frozenset()

    def rename(self, mapping: Mapping[str, str]) -> Expr:
        return self

    def fold(self, env: Mapping[str, int]) -> Expr:
        return self

    def __str__(self) -> str:
        return str(self.value)


class Var(Expr):
    """Reference to a variable or model constant by name."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def eval(self, env: Mapping[str, int]) -> int:
        try:
            return env[self.name]
        except KeyError:
            raise ExprError(f"unknown variable '{self.name}'") from None

    def free_vars(self) -> frozenset[str]:
        return frozenset((self.name,))

    def rename(self, mapping: Mapping[str, str]) -> Expr:
        return Var(mapping.get(self.name, self.name))

    def fold(self, env: Mapping[str, int]) -> Expr:
        if self.name in env:
            return Const(env[self.name])
        return self

    def __str__(self) -> str:
        return self.name


_UNARY_OPS: dict[str, Callable[[int], int]] = {
    "-": lambda a: -a,
    "!": lambda a: 0 if a else 1,
}


class Unary(Expr):
    """Unary minus or logical negation."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr):
        if op not in _UNARY_OPS:
            raise ExprError(f"unknown unary operator '{op}'")
        self.op = op
        self.operand = operand

    def eval(self, env: Mapping[str, int]) -> int:
        return _UNARY_OPS[self.op](self.operand.eval(env))

    def free_vars(self) -> frozenset[str]:
        return self.operand.free_vars()

    def rename(self, mapping: Mapping[str, str]) -> Expr:
        return Unary(self.op, self.operand.rename(mapping))

    def fold(self, env: Mapping[str, int]) -> Expr:
        inner = self.operand.fold(env)
        if isinstance(inner, Const):
            return Const(_UNARY_OPS[self.op](inner.value))
        return Unary(self.op, inner)

    def __str__(self) -> str:
        return f"{self.op}({self.operand})"


def int_div(a: int, b: int) -> int:
    """C-style truncating division, matching UPPAAL semantics.

    Public because generated code (:mod:`repro.codegen.generator`)
    references it for ``/`` so interpreter and generated semantics
    agree on negative operands.
    """
    if b == 0:
        raise ExprError("division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def int_mod(a: int, b: int) -> int:
    """C-style remainder paired with :func:`int_div`."""
    return a - int_div(a, b) * b


_BINARY_OPS: dict[str, Callable[[int, int], int]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": int_div,
    "%": int_mod,
    "<": lambda a, b: 1 if a < b else 0,
    "<=": lambda a, b: 1 if a <= b else 0,
    ">": lambda a, b: 1 if a > b else 0,
    ">=": lambda a, b: 1 if a >= b else 0,
    "==": lambda a, b: 1 if a == b else 0,
    "!=": lambda a, b: 1 if a != b else 0,
}


class Binary(Expr):
    """Binary arithmetic, comparison or boolean connective.

    ``&&`` and ``||`` short-circuit, so e.g. ``n > 0 && 10 / n > 1`` is
    safe — matching what modelers expect from UPPAAL.
    """

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in _BINARY_OPS and op not in ("&&", "||"):
            raise ExprError(f"unknown binary operator '{op}'")
        self.op = op
        self.left = left
        self.right = right

    def eval(self, env: Mapping[str, int]) -> int:
        if self.op == "&&":
            if not self.left.eval(env):
                return 0
            return 1 if self.right.eval(env) else 0
        if self.op == "||":
            if self.left.eval(env):
                return 1
            return 1 if self.right.eval(env) else 0
        return _BINARY_OPS[self.op](self.left.eval(env), self.right.eval(env))

    def free_vars(self) -> frozenset[str]:
        return self.left.free_vars() | self.right.free_vars()

    def rename(self, mapping: Mapping[str, str]) -> Expr:
        return Binary(self.op, self.left.rename(mapping),
                      self.right.rename(mapping))

    def fold(self, env: Mapping[str, int]) -> Expr:
        left = self.left.fold(env)
        right = self.right.fold(env)
        if isinstance(left, Const) and isinstance(right, Const):
            return Const(Binary(self.op, left, right).eval({}))
        # Boolean identities let folded guards stay small.
        if self.op == "&&":
            if isinstance(left, Const):
                return right if left.value else Const(0)
            if isinstance(right, Const):
                return left if right.value else Const(0)
        if self.op == "||":
            if isinstance(left, Const):
                return Const(1) if left.value else right
            if isinstance(right, Const):
                return Const(1) if right.value else left
        return Binary(self.op, left, right)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


def conjoin(parts: list[Expr]) -> Expr:
    """Conjunction of expressions (``Const(1)`` for the empty list)."""
    if not parts:
        return Const(1)
    result = parts[0]
    for part in parts[1:]:
        result = Binary("&&", result, part)
    return result
