"""Fluent builders for automata and networks.

The builders are the intended public way to write models::

    net = NetworkBuilder("pim", constants={"DEADLINE": 500})
    net.channel("m_BolusReq")
    net.channel("c_StartInfusion")

    m = net.automaton("M", clocks=["x"])
    m.location("Idle", initial=True)
    m.location("Requested", invariant="x <= DEADLINE")
    m.edge("Idle", "Requested", sync="m_BolusReq?", update="x = 0")
    m.edge("Requested", "Infusing", guard="x >= 250",
           sync="c_StartInfusion!")
    m.location("Infusing")

    pim = net.build()

Labels are parsed eagerly so errors carry the offending source text;
the finished :class:`~repro.ta.model.Network` is validated by
:func:`repro.ta.validate.validate`.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.ta.channels import Channel, Sync
from repro.ta.clocks import Guard, Update
from repro.ta.model import (
    Automaton,
    Edge,
    Location,
    ModelError,
    Network,
    VariableDecl,
)
from repro.ta.parser import parse_guard, parse_invariant, parse_update
from repro.ta.validate import validate

__all__ = ["AutomatonBuilder", "NetworkBuilder"]


class AutomatonBuilder:
    """Accumulates locations and edges for one automaton."""

    def __init__(self, name: str, clocks: Sequence[str] = (),
                 constants: Mapping[str, int] | None = None,
                 extra_clocks: Sequence[str] = ()):
        self.name = name
        self.clocks = tuple(clocks)
        self.constants = dict(constants or {})
        self._parse_clocks = tuple(clocks) + tuple(extra_clocks)
        self._locations: list[Location] = []
        self._edges: list[Edge] = []
        self._initial: str | None = None

    # ------------------------------------------------------------------
    def location(self, name: str, invariant: str | None = None, *,
                 initial: bool = False, urgent: bool = False,
                 committed: bool = False) -> "AutomatonBuilder":
        """Declare a location; ``invariant`` is a label string."""
        if any(loc.name == name for loc in self._locations):
            raise ModelError(
                f"automaton {self.name!r}: duplicate location {name!r}")
        constraints = parse_invariant(invariant, self._parse_clocks, self.constants)
        self._locations.append(Location(
            name=name, invariant=constraints,
            urgent=urgent, committed=committed,
        ))
        if initial:
            if self._initial is not None:
                raise ModelError(
                    f"automaton {self.name!r}: two initial locations "
                    f"({self._initial!r} and {name!r})")
            self._initial = name
        return self

    def edge(self, source: str, target: str, *,
             guard: str | None = None, sync: str | None = None,
             update: str | None = None) -> "AutomatonBuilder":
        """Declare an edge; all labels are strings (or None)."""
        parsed_guard: Guard = parse_guard(guard, self._parse_clocks, self.constants)
        parsed_update: Update = parse_update(update, self._parse_clocks,
                                             self.constants)
        parsed_sync = Sync.parse(sync) if sync else None
        self._edges.append(Edge(
            source=source, target=target, guard=parsed_guard,
            sync=parsed_sync, update=parsed_update,
        ))
        return self

    def loop(self, location: str, *, guard: str | None = None,
             sync: str | None = None,
             update: str | None = None) -> "AutomatonBuilder":
        """Convenience self-loop edge."""
        return self.edge(location, location, guard=guard, sync=sync,
                         update=update)

    # ------------------------------------------------------------------
    def build(self) -> Automaton:
        if not self._locations:
            raise ModelError(f"automaton {self.name!r} has no locations")
        initial = self._initial or self._locations[0].name
        known = {loc.name for loc in self._locations}
        for edge in self._edges:
            for end in (edge.source, edge.target):
                if end not in known:
                    raise ModelError(
                        f"automaton {self.name!r}: edge {edge} references "
                        f"unknown location {end!r}")
        return Automaton(
            name=self.name,
            locations=tuple(self._locations),
            edges=tuple(self._edges),
            initial=initial,
            clocks=self.clocks,
        )


class NetworkBuilder:
    """Accumulates channels, variables and automata for a network."""

    def __init__(self, name: str,
                 constants: Mapping[str, int] | None = None):
        self.name = name
        self.constants = dict(constants or {})
        self._channels: list[Channel] = []
        self._variables: list[VariableDecl] = []
        self._automata: list[AutomatonBuilder | Automaton] = []
        self._global_clocks: list[str] = []

    # ------------------------------------------------------------------
    def channel(self, name: str, *, broadcast: bool = False,
                urgent: bool = False) -> "NetworkBuilder":
        if any(ch.name == name for ch in self._channels):
            raise ModelError(
                f"network {self.name!r}: duplicate channel {name!r}")
        self._channels.append(Channel(name, broadcast=broadcast,
                                      urgent=urgent))
        return self

    def channels(self, names: Sequence[str], *, broadcast: bool = False,
                 urgent: bool = False) -> "NetworkBuilder":
        for name in names:
            self.channel(name, broadcast=broadcast, urgent=urgent)
        return self

    def int_var(self, name: str, init: int = 0, lo: int = 0,
                hi: int = 1 << 30) -> "NetworkBuilder":
        if any(v.name == name for v in self._variables):
            raise ModelError(
                f"network {self.name!r}: duplicate variable {name!r}")
        self._variables.append(VariableDecl(name, init=init, lo=lo, hi=hi))
        return self

    def bool_var(self, name: str, init: bool = False) -> "NetworkBuilder":
        return self.int_var(name, init=1 if init else 0, lo=0, hi=1)

    def constant(self, name: str, value: int) -> "NetworkBuilder":
        """Add a named constant (usable in labels added afterwards)."""
        self.constants[name] = value
        return self

    def global_clock(self, name: str) -> "NetworkBuilder":
        """Declare a network-wide clock visible to all automata."""
        if name in self._global_clocks:
            raise ModelError(
                f"network {self.name!r}: duplicate global clock {name!r}")
        self._global_clocks.append(name)
        return self

    def automaton(self, name: str,
                  clocks: Sequence[str] = ()) -> AutomatonBuilder:
        """Open a new automaton builder attached to this network.

        The builder parses labels against the automaton's local clocks
        plus the network's global clocks declared so far.
        """
        builder = AutomatonBuilder(name, clocks=clocks,
                                   constants=self.constants,
                                   extra_clocks=tuple(self._global_clocks))
        self._automata.append(builder)
        return builder

    def add_automaton(self, automaton: Automaton) -> "NetworkBuilder":
        """Attach an already-built automaton (e.g. from a transform)."""
        self._automata.append(automaton)
        return self

    # ------------------------------------------------------------------
    def build(self, check: bool = True) -> Network:
        automata = tuple(
            item.build() if isinstance(item, AutomatonBuilder) else item
            for item in self._automata
        )
        network = Network(
            name=self.name,
            automata=automata,
            channels=tuple(self._channels),
            variables=tuple(self._variables),
            constants=dict(self.constants),
            global_clocks=tuple(self._global_clocks),
        )
        if check:
            validate(network)
        return network
