"""Rendering of automata and networks for documentation and figures.

Two output formats:

* **Graphviz dot** — for regenerating the paper's automaton figures
  (Figs. 1, 5, 6); written as text so no graphviz binary is needed.
* **ASCII summaries** — tabular structure dumps used by the CLI and
  the figure benchmarks.
"""

from __future__ import annotations

from repro.ta.model import Automaton, Network

__all__ = ["automaton_to_dot", "network_to_dot", "network_summary"]


def _escape(text: str) -> str:
    return text.replace('"', '\\"')


def automaton_to_dot(auto: Automaton, *, rankdir: str = "LR") -> str:
    """Graphviz source for one automaton."""
    lines = [
        f'digraph "{_escape(auto.name)}" {{',
        f"  rankdir={rankdir};",
        '  node [shape=ellipse, fontsize=11];',
        '  edge [fontsize=9];',
        '  __init [shape=point, width=0.08];',
    ]
    for loc in auto.locations:
        attrs = []
        label = loc.name
        if loc.invariant:
            inv = " && ".join(str(c) for c in loc.invariant)
            label += f"\\n{inv}"
        if loc.urgent:
            attrs.append('color="orange"')
            label += "\\n(urgent)"
        if loc.committed:
            attrs.append('color="red"')
            label += "\\n(committed)"
        attrs.insert(0, f'label="{_escape(label)}"')
        lines.append(f'  "{_escape(loc.name)}" [{", ".join(attrs)}];')
    lines.append(f'  __init -> "{_escape(auto.initial)}";')
    for edge in auto.edges:
        label = _escape(edge.label())
        lines.append(
            f'  "{_escape(edge.source)}" -> "{_escape(edge.target)}" '
            f'[label="{label}"];')
    lines.append("}")
    return "\n".join(lines)


def network_to_dot(network: Network) -> str:
    """Graphviz source with one cluster per automaton."""
    lines = [
        f'digraph "{_escape(network.name)}" {{',
        "  rankdir=LR;",
        "  compound=true;",
        '  node [shape=ellipse, fontsize=11];',
        '  edge [fontsize=9];',
    ]
    for idx, auto in enumerate(network.automata):
        lines.append(f"  subgraph cluster_{idx} {{")
        lines.append(f'    label="{_escape(auto.name)}";')
        prefix = f"a{idx}_"
        lines.append(
            f'    {prefix}__init [shape=point, width=0.08];')
        for loc in auto.locations:
            label = loc.name
            if loc.invariant:
                inv = " && ".join(str(c) for c in loc.invariant)
                label += f"\\n{inv}"
            if loc.urgent:
                label += "\\n(urgent)"
            if loc.committed:
                label += "\\n(committed)"
            lines.append(
                f'    "{prefix}{_escape(loc.name)}" '
                f'[label="{_escape(label)}"];')
        lines.append(
            f'    {prefix}__init -> "{prefix}{_escape(auto.initial)}";')
        for edge in auto.edges:
            lines.append(
                f'    "{prefix}{_escape(edge.source)}" -> '
                f'"{prefix}{_escape(edge.target)}" '
                f'[label="{_escape(edge.label())}"];')
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)


def network_summary(network: Network) -> str:
    """Readable multi-line summary of a network's structure."""
    stats = network.stats()
    lines = [
        f"network {network.name}: "
        f"{stats['automata']} automata, {stats['locations']} locations, "
        f"{stats['edges']} edges, {stats['clocks']} clocks, "
        f"{stats['channels']} channels, {stats['variables']} variables",
    ]
    for channel in network.channels:
        lines.append(f"  {channel}")
    for variable in network.variables:
        lines.append(f"  {variable}")
    for auto in network.automata:
        lines.append(
            f"  {auto.name}: initial={auto.initial}, "
            f"locations={len(auto.locations)}, edges={len(auto.edges)}, "
            f"clocks={list(auto.clocks)}")
    return "\n".join(lines)
