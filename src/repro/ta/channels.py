"""Synchronization channels.

Channels follow UPPAAL's taxonomy:

* **binary** (default): one ``ch!`` edge pairs with exactly one ``ch?``
  edge in another automaton; both fire atomically.
* **broadcast**: one ``ch!`` sender fires together with *every*
  automaton currently able to take a ``ch?`` edge; receivers cannot
  block the sender.  Receiver edges must not carry clock guards (the
  UPPAAL restriction) so that enabledness is zone-independent.
* **urgent**: time may not elapse while a synchronization on the
  channel is enabled.  Urgent edges must not carry clock guards.

The observer machinery in :mod:`repro.mc.observers` relies on
broadcast channels to *tap* a model without perturbing it.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Channel", "Sync", "EMIT", "RECEIVE"]

EMIT = "!"
RECEIVE = "?"


@dataclass(frozen=True)
class Channel:
    """A named synchronization channel."""

    name: str
    broadcast: bool = False
    urgent: bool = False

    def __str__(self) -> str:
        flags = []
        if self.urgent:
            flags.append("urgent")
        if self.broadcast:
            flags.append("broadcast")
        prefix = " ".join(flags) + " " if flags else ""
        return f"{prefix}chan {self.name}"


@dataclass(frozen=True)
class Sync:
    """An edge's synchronization action: ``channel!`` or ``channel?``."""

    channel: str
    direction: str  # EMIT or RECEIVE

    def __post_init__(self) -> None:
        if self.direction not in (EMIT, RECEIVE):
            raise ValueError(f"bad sync direction {self.direction!r}")

    @classmethod
    def parse(cls, text: str) -> "Sync":
        """Parse ``"ch!"`` / ``"ch?"``."""
        text = text.strip()
        if not text or text[-1] not in (EMIT, RECEIVE):
            raise ValueError(
                f"sync label {text!r} must end with '!' or '?'")
        name = text[:-1].strip()
        if not name:
            raise ValueError(f"sync label {text!r} has no channel name")
        return cls(channel=name, direction=text[-1])

    @property
    def is_emit(self) -> bool:
        return self.direction == EMIT

    def __str__(self) -> str:
        return f"{self.channel}{self.direction}"
