"""Timed automata modeling language (UPPAAL subset).

Public surface: build models with :class:`NetworkBuilder`, inspect
them via :class:`Network`, and hand them to :mod:`repro.mc` for
verification or :mod:`repro.codegen` for code generation.
"""

from repro.ta.bounds import (
    AbstractionSpec,
    LUBoundsMap,
    analyze_lu_bounds,
    available_abstractions,
    resolve_abstraction,
    set_abstraction,
)
from repro.ta.builder import AutomatonBuilder, NetworkBuilder
from repro.ta.channels import Channel, Sync
from repro.ta.clocks import (
    Assignment,
    ClockConstraint,
    ClockCopy,
    ClockReset,
    Guard,
    Update,
)
from repro.ta.expr import Binary, Const, Expr, ExprError, Unary, Var
from repro.ta.model import (
    Automaton,
    Edge,
    Location,
    ModelError,
    Network,
    VariableDecl,
)
from repro.ta.parser import (
    ParseError,
    parse_expression,
    parse_guard,
    parse_invariant,
    parse_update,
)
from repro.ta.rename import boundary_rename_map, mc_to_io_name, \
    rename_channels
from repro.ta.render import automaton_to_dot, network_summary, \
    network_to_dot
from repro.ta.uppaal import network_to_uppaal_xml
from repro.ta.validate import Problem, check, validate

__all__ = [
    "AbstractionSpec",
    "Automaton",
    "AutomatonBuilder",
    "Assignment",
    "LUBoundsMap",
    "Binary",
    "Channel",
    "ClockConstraint",
    "ClockCopy",
    "ClockReset",
    "Const",
    "Edge",
    "Expr",
    "ExprError",
    "Guard",
    "Location",
    "ModelError",
    "Network",
    "NetworkBuilder",
    "ParseError",
    "Problem",
    "Sync",
    "Unary",
    "Update",
    "Var",
    "VariableDecl",
    "analyze_lu_bounds",
    "automaton_to_dot",
    "available_abstractions",
    "boundary_rename_map",
    "check",
    "mc_to_io_name",
    "network_summary",
    "network_to_dot",
    "network_to_uppaal_xml",
    "parse_expression",
    "parse_guard",
    "parse_invariant",
    "parse_update",
    "rename_channels",
    "resolve_abstraction",
    "set_abstraction",
    "validate",
]
