"""Well-formedness validation for networks.

Verification results are only as good as the model, so the validator
is strict: every rule below corresponds to an assumption the symbolic
semantics (:mod:`repro.mc`) or the code generator
(:mod:`repro.codegen`) relies on.

Checked rules
-------------
* unique automaton names; unique location names per automaton
* every edge endpoint exists; the initial location exists
* every sync references a declared channel
* clock atoms reference clocks declared by the *owning* automaton
* data expressions reference declared variables or constants only
* assignment targets are variables (not constants, not clocks of
  other automata)
* broadcast ``?``-edges carry no clock guards (UPPAAL restriction —
  receiver enabledness must be zone-independent)
* urgent-channel edges carry no clock guards (UPPAAL restriction —
  urgency must be decidable from the discrete state)
* binary channels have at least one emitter and one receiver
  (reported as a warning, not an error)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ta.clocks import Assignment, ClockCopy, ClockReset
from repro.ta.model import Automaton, ModelError, Network

__all__ = ["Problem", "check", "validate"]


@dataclass(frozen=True)
class Problem:
    """One validation finding."""

    severity: str  # "error" | "warning"
    where: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.where}: {self.message}"


def _check_automaton(network: Network, auto: Automaton,
                     problems: list[Problem]) -> None:
    where = f"automaton {auto.name!r}"
    names = [loc.name for loc in auto.locations]
    if len(set(names)) != len(names):
        problems.append(Problem("error", where, "duplicate location names"))
    if not auto.has_location(auto.initial):
        problems.append(Problem(
            "error", where, f"initial location {auto.initial!r} missing"))
    clock_set = set(auto.clocks) | set(network.global_clocks)
    known_names = ({v.name for v in network.variables}
                   | set(network.constants))
    channel_names = {ch.name for ch in network.channels}
    var_names = {v.name for v in network.variables}

    for loc in auto.locations:
        for atom in loc.invariant:
            for clock in atom.clocks():
                if clock not in clock_set:
                    problems.append(Problem(
                        "error", f"{where} location {loc.name!r}",
                        f"invariant uses undeclared clock {clock!r}"))

    for edge in auto.edges:
        ewhere = f"{where} edge {edge.source}->{edge.target}"
        for end in (edge.source, edge.target):
            if not auto.has_location(end):
                problems.append(Problem(
                    "error", ewhere, f"unknown location {end!r}"))
        for atom in edge.guard.clock_constraints:
            for clock in atom.clocks():
                if clock not in clock_set:
                    problems.append(Problem(
                        "error", ewhere,
                        f"guard uses undeclared clock {clock!r}"))
        unknown = edge.guard.data.free_vars() - known_names
        if unknown:
            problems.append(Problem(
                "error", ewhere,
                f"guard references unknown names {sorted(unknown)}"))
        if edge.sync is not None:
            if edge.sync.channel not in channel_names:
                problems.append(Problem(
                    "error", ewhere,
                    f"undeclared channel {edge.sync.channel!r}"))
            else:
                channel = network.channel(edge.sync.channel)
                has_clock_guard = bool(edge.guard.clock_constraints)
                if channel.urgent and has_clock_guard:
                    problems.append(Problem(
                        "error", ewhere,
                        f"urgent channel {channel.name!r} edge carries a "
                        f"clock guard"))
                if (channel.broadcast and not edge.sync.is_emit
                        and has_clock_guard):
                    problems.append(Problem(
                        "error", ewhere,
                        f"broadcast receiver on {channel.name!r} carries "
                        f"a clock guard"))
        for action in edge.update.actions:
            if isinstance(action, (ClockReset, ClockCopy)):
                targets = [action.clock]
                if isinstance(action, ClockCopy):
                    targets.append(action.source)
                for clock in targets:
                    if clock not in clock_set:
                        problems.append(Problem(
                            "error", ewhere,
                            f"update uses undeclared clock {clock!r}"))
            elif isinstance(action, Assignment):
                if action.var in network.constants:
                    problems.append(Problem(
                        "error", ewhere,
                        f"cannot assign to constant {action.var!r}"))
                elif action.var not in var_names:
                    problems.append(Problem(
                        "error", ewhere,
                        f"assignment to undeclared variable "
                        f"{action.var!r}"))
                unknown = action.expr.free_vars() - known_names
                if unknown:
                    problems.append(Problem(
                        "error", ewhere,
                        f"assignment reads unknown names "
                        f"{sorted(unknown)}"))


def _check_channels(network: Network, problems: list[Problem]) -> None:
    emitters: dict[str, int] = {}
    receivers: dict[str, int] = {}
    for auto in network.automata:
        for edge in auto.edges:
            if edge.sync is None:
                continue
            book = emitters if edge.sync.is_emit else receivers
            book[edge.sync.channel] = book.get(edge.sync.channel, 0) + 1
    for channel in network.channels:
        if channel.broadcast:
            continue
        if emitters.get(channel.name, 0) and not receivers.get(
                channel.name, 0):
            problems.append(Problem(
                "warning", f"channel {channel.name!r}",
                "has emitters but no receivers (binary sync will "
                "never fire)"))
        if receivers.get(channel.name, 0) and not emitters.get(
                channel.name, 0):
            problems.append(Problem(
                "warning", f"channel {channel.name!r}",
                "has receivers but no emitters (binary sync will "
                "never fire)"))


def check(network: Network) -> list[Problem]:
    """All validation findings, errors and warnings."""
    problems: list[Problem] = []
    names = [auto.name for auto in network.automata]
    if len(set(names)) != len(names):
        problems.append(Problem(
            "error", f"network {network.name!r}",
            "duplicate automaton names"))
    channel_names = [ch.name for ch in network.channels]
    if len(set(channel_names)) != len(channel_names):
        problems.append(Problem(
            "error", f"network {network.name!r}",
            "duplicate channel declarations"))
    overlap = {v.name for v in network.variables} & set(network.constants)
    if overlap:
        problems.append(Problem(
            "error", f"network {network.name!r}",
            f"names declared both variable and constant: "
            f"{sorted(overlap)}"))
    for auto in network.automata:
        _check_automaton(network, auto, problems)
    _check_channels(network, problems)
    return problems


def validate(network: Network) -> Network:
    """Raise :class:`~repro.ta.model.ModelError` on the first error.

    Warnings are tolerated (they describe models that are legal but
    probably unintended).  Returns the network for chaining.
    """
    problems = check(network)
    errors = [p for p in problems if p.severity == "error"]
    if errors:
        summary = "\n".join(str(p) for p in errors)
        raise ModelError(
            f"network {network.name!r} failed validation:\n{summary}")
    return network
