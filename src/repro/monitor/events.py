"""Trace event interchange: JSONL ⇄ :class:`~repro.sim.trace.TraceEvent`.

One event per line, keyed exactly like the recorder's fields::

    {"time_us": 50000, "kind": "m", "channel": "m_BolusReq", "tag": 0}

``kind``/``channel``/``time_us`` are required; ``tag`` and ``note``
are optional.  Unknown keys are rejected (they usually mean a schema
mismatch, not extra metadata).  This is the format `repro monitor`
reads from files/stdin and the service ``monitor`` op carries on the
wire.
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator

from repro.monitor.model import MonitorError
from repro.sim.trace import EVENT_KINDS, TraceEvent

__all__ = [
    "event_to_dict",
    "event_from_dict",
    "events_to_jsonl",
    "events_from_jsonl",
    "trace_events",
]

_FIELDS = frozenset({"time_us", "kind", "channel", "tag", "note"})


def event_to_dict(event: TraceEvent) -> dict:
    data = {"time_us": event.time_us, "kind": event.kind,
            "channel": event.channel}
    if event.tag is not None:
        data["tag"] = event.tag
    if event.note:
        data["note"] = event.note
    return data


def event_from_dict(data: dict) -> TraceEvent:
    if not isinstance(data, dict):
        raise MonitorError(f"trace event must be an object, got "
                           f"{type(data).__name__}")
    unknown = set(data) - _FIELDS
    if unknown:
        raise MonitorError(
            f"unknown trace event keys: {sorted(unknown)}")
    try:
        time_us = data["time_us"]
        kind = data["kind"]
        channel = data["channel"]
    except KeyError as exc:
        raise MonitorError(f"trace event missing key {exc}") from None
    if not isinstance(time_us, int) or time_us < 0:
        raise MonitorError(
            f"time_us must be a non-negative integer, got {time_us!r}")
    if kind not in EVENT_KINDS:
        raise MonitorError(f"unknown event kind {kind!r} "
                           f"(expected one of {', '.join(EVENT_KINDS)})")
    return TraceEvent(time_us=time_us, kind=kind, channel=channel,
                      tag=data.get("tag"), note=data.get("note", ""))


def events_to_jsonl(events: Iterable[TraceEvent]) -> str:
    return "\n".join(json.dumps(event_to_dict(e), sort_keys=True)
                     for e in events)


def events_from_jsonl(lines: Iterable[str]) -> Iterator[TraceEvent]:
    """Parse JSONL lines (blank lines and ``#`` comments skipped)."""
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise MonitorError(
                f"line {lineno}: invalid JSON ({exc})") from None
        try:
            yield event_from_dict(data)
        except MonitorError as exc:
            raise MonitorError(f"line {lineno}: {exc}") from None


def trace_events(trace) -> list[TraceEvent]:
    """All events of a :class:`~repro.sim.trace.TraceRecorder`."""
    return list(trace)
