"""Online timed-trace conformance monitoring against a scheme's PSM.

Build a :class:`MonitorModel` once per (PIM, scheme) pair, then feed
recorded or live :class:`~repro.sim.trace.TraceEvent` streams through
:class:`MonitorSession` (one trace) or :class:`BatchMonitor` (many
traces, vectorized).  Non-conforming traces yield a
:class:`DeviationReport` naming the violated timing bound.  See
``docs/MONITORING.md`` for the architecture.
"""

from repro.monitor.batch import BatchMonitor
from repro.monitor.events import (
    event_from_dict,
    event_to_dict,
    events_from_jsonl,
    events_to_jsonl,
    trace_events,
)
from repro.monitor.model import (
    MON_CLOCK,
    MonitorError,
    MonitorModel,
    build_monitor_network,
    receptive_environment,
)
from repro.monitor.report import AdmissibleWindow, DeviationReport
from repro.monitor.session import MonitorSession

__all__ = [
    "MON_CLOCK",
    "MonitorError",
    "MonitorModel",
    "MonitorSession",
    "BatchMonitor",
    "AdmissibleWindow",
    "DeviationReport",
    "build_monitor_network",
    "receptive_environment",
    "event_to_dict",
    "event_from_dict",
    "events_to_jsonl",
    "events_from_jsonl",
    "trace_events",
]
