"""Precompiled conformance-monitor model for one (PIM, scheme) pair.

The monitor answers "does this concrete timed trace belong to the
scheme's PSM?" — the runtime-verification half of the paper's story
(PAPERS.md, arXiv:1303.1010).  Three transformations turn the PSM into
a *monitor network* whose zone graph matches recorded traces exactly:

1. **Receptive environment.**  The model environment (ENVMC) encodes
   *assumptions* about users — think times, single outstanding
   requests.  A monitored trace already fixes when every input
   happened, so keeping those assumptions would reject valid traces
   whose stimuli the simulator timed differently (the case-study
   requester thinks from the *response*, the model ENV from its own
   output event).  The monitor therefore swaps ENVMC for a universal
   single-location automaton that can emit any input and accept any
   output at any time: inputs become free stimuli and only the
   *implementation's* timing is checked.

2. **Microsecond rescaling.**  Models count integer milliseconds; the
   simulator stamps integer microseconds.  Every clock-constraint
   bound and reset constant is multiplied by 1000, giving an
   isomorphic zone graph in which trace timestamps pin clock values
   without rounding.

3. **Observation clock.**  A fresh global clock ``_mon`` — reset on
   every matched observable event, never read by the model — measures
   the gap to the next event.  Matching an event at gap ``T`` means
   intersecting a candidate zone with ``_mon == T`` before the
   transition's own guards.  ``_mon`` gets a huge extrapolation
   ceiling (raised on both LU maps) so widening can never blur a pin.

The model is built once and shared: :class:`MonitorModel` owns the
compiled network, the per-discrete-configuration move index
(:class:`MonitorMoves` — internal moves vs. observable moves keyed by
channel), and an intern table of candidate zones populated by
:meth:`MonitorModel.precompile`.  Sessions (scalar:
:mod:`repro.monitor.session`; vectorized: :mod:`repro.monitor.batch`)
only *read* it, so one precompiled model serves unbounded concurrent
traces — in-process, via :class:`repro.api.Session`, or cached for the
server lifetime inside the service daemon.
"""

from __future__ import annotations

from dataclasses import replace

from repro.mc.explorer import ExplorationLimit, ZoneGraphExplorer
from repro.ta.builder import AutomatonBuilder
from repro.ta.model import Automaton, ModelError, Network
from repro.ta.validate import validate
from repro.zones.intern import ZoneInternTable

__all__ = [
    "MON_CLOCK",
    "US_PER_MS",
    "DEFAULT_MON_CEILING_US",
    "MonitorError",
    "MonitorMoves",
    "MonitorModel",
    "receptive_environment",
    "scale_clock_constants",
    "build_monitor_network",
]

#: Observation clock: reset on every matched observable event.
MON_CLOCK = "_mon"

#: Model milliseconds → trace microseconds.
US_PER_MS = 1000

#: Default extrapolation ceiling for ``_mon`` (µs): pins stay exact
#: for inter-event gaps up to ~12 days.
DEFAULT_MON_CEILING_US = 1 << 40


class MonitorError(Exception):
    """Raised for malformed traces or monitor-model build failures."""


def receptive_environment(envmc: Automaton,
                          name: str | None = None) -> Automaton:
    """A universal environment with ``envmc``'s channel alphabet.

    One location, no clocks, no guards: a self-loop emitting each
    channel the model environment emitted (the system's inputs) and
    receiving each channel it received (the system's outputs).  Every
    environment behavior is a behavior of this automaton, so replacing
    ENVMC with it checks implementation timing only.
    """
    builder = AutomatonBuilder(name or envmc.name)
    builder.location("Free", initial=True)
    for channel in sorted(envmc.output_channels()):
        builder.edge("Free", "Free", sync=f"{channel}!")
    for channel in sorted(envmc.input_channels()):
        builder.edge("Free", "Free", sync=f"{channel}?")
    return builder.build()


def scale_clock_constants(network: Network, factor: int) -> Network:
    """A copy of ``network`` with every clock constant × ``factor``.

    Scales invariant atoms, guard atoms and reset values; data
    expressions (counts, flags) are untouched.  Uniform scaling is a
    time-rescaling bijection on runs, so the zone graph is isomorphic.
    """
    def scale_constraints(constraints):
        return tuple(replace(c, bound=c.bound * factor)
                     for c in constraints)

    automata = []
    for auto in network.automata:
        locations = tuple(
            replace(loc, invariant=scale_constraints(loc.invariant))
            if loc.invariant else loc
            for loc in auto.locations)
        edges = []
        for edge in auto.edges:
            guard = edge.guard
            if guard.clock_constraints:
                guard = replace(guard, clock_constraints=scale_constraints(
                    guard.clock_constraints))
            actions = tuple(
                replace(a, value=a.value * factor)
                if type(a).__name__ == "ClockReset" and a.value else a
                for a in edge.update.actions)
            if actions != edge.update.actions or guard is not edge.guard:
                edge = replace(edge, guard=guard,
                               update=replace(edge.update, actions=actions))
            edges.append(edge)
        automata.append(replace(auto, locations=locations,
                                edges=tuple(edges)))
    return replace(network, automata=tuple(automata))


def build_monitor_network(psm, *, factor: int = US_PER_MS) -> Network:
    """The monitor network of a PSM: receptive env + µs scale + ``_mon``."""
    network = psm.network
    env_idx = network.automaton_index(psm.envmc)
    automata = list(network.automata)
    automata[env_idx] = receptive_environment(automata[env_idx])
    if MON_CLOCK in network.global_clocks:
        raise MonitorError(
            f"network {network.name!r} already declares {MON_CLOCK!r}")
    monitored = replace(
        network,
        name=f"{network.name}_monitor",
        automata=tuple(automata),
        global_clocks=network.global_clocks + (MON_CLOCK,))
    return validate(scale_clock_constants(monitored, factor))


class MonitorMoves:
    """One discrete configuration's moves, partitioned for matching.

    ``internal`` are the moves a trace never sees (platform automata
    stepping, polls, io hand-offs) — the closure between observed
    events runs over exactly these.  ``observable`` maps a boundary
    channel index to the moves that synchronize on it — candidates for
    matching an observed event.
    """

    __slots__ = ("internal", "observable")

    def __init__(self, internal, observable):
        self.internal = internal
        self.observable = observable


class MonitorModel:
    """One compiled, indexed monitor — built once, read by many sessions.

    Parameters mirror the explorer's knobs.  ``mon_ceiling_us`` is the
    extrapolation ceiling of the observation clock (pins above it
    would lose exactness); ``max_states`` bounds :meth:`precompile`.
    """

    def __init__(self, psm, *,
                 zone_backend: str | None = None,
                 abstraction: str | None = None,
                 max_states: int = 200_000,
                 mon_ceiling_us: int = DEFAULT_MON_CEILING_US):
        self.psm = psm
        self.network = build_monitor_network(psm)
        self.explorer = ZoneGraphExplorer(
            self.network,
            extra_max_constants={MON_CLOCK: mon_ceiling_us},
            max_states=max_states,
            zone_backend=zone_backend,
            abstraction=abstraction)
        self.compiled = self.explorer.compiled
        self.backend = self.explorer.backend
        self.abstraction = self.explorer.abstraction
        self.mon_idx = self.compiled.clock_id_by_name(MON_CLOCK)
        self.mon_ceiling_us = mon_ceiling_us
        # Both LU maps: the pin constrains _mon from above AND below,
        # so neither side's widening may erase its bounds.  (No-op
        # under Extra_M — the ceiling above covers it symmetrically.)
        self.compiled.raise_lu_floor(self.mon_idx, mon_ceiling_us,
                                     lower=True, upper=True)
        envmc = psm.network.automaton(psm.envmc)
        #: Boundary channels: what the environment sends (trace kind
        #: ``m``) and what it receives back (trace kind ``c``).
        self.input_channels = tuple(sorted(envmc.output_channels()))
        self.output_channels = tuple(sorted(envmc.input_channels()))
        self._channel_index = {
            name: self.compiled.channel_ids[name]
            for name in self.input_channels + self.output_channels}
        self._observable_ids = frozenset(self._channel_index.values())
        self._kind_channels = {"m": frozenset(self.input_channels),
                               "c": frozenset(self.output_channels)}
        self._moves: dict[tuple, MonitorMoves] = {}
        self._moves_version = self.compiled.reduction_version
        #: Candidate-zone intern table (shared across sessions of this
        #: model; precompile seeds it with every reachable zone).
        self.intern = ZoneInternTable()
        #: Discrete-configuration index built by :meth:`precompile`:
        #: key → tuple of interned candidate zones reachable there.
        self.index: dict[tuple, tuple] = {}
        #: Precompile outcome (``None`` until run).
        self.precompile_stats: dict | None = None

    # ------------------------------------------------------------------
    def observable(self, kind: str, channel: str) -> bool:
        """Is a trace event a boundary event this monitor matches?"""
        channels = self._kind_channels.get(kind)
        return channels is not None and channel in channels

    def channel_index(self, channel: str) -> int:
        return self._channel_index[channel]

    def moves_for(self, key: tuple) -> MonitorMoves:
        """Partitioned successor moves of one discrete configuration."""
        if self._moves_version != self.compiled.reduction_version:
            self._moves.clear()
            self._moves_version = self.compiled.reduction_version
        moves = self._moves.get(key)
        if moves is None:
            observable_ids = self._observable_ids
            internal: list = []
            observable: dict[int, list] = {}
            for plan in self.explorer.plans_for(key):
                if plan.channel_idx in observable_ids:
                    observable.setdefault(plan.channel_idx,
                                          []).append(plan)
                else:
                    internal.append(plan)
            moves = self._moves[key] = MonitorMoves(
                tuple(internal),
                {ch: tuple(plans) for ch, plans in observable.items()})
        return moves

    def initial_frontier(self) -> list:
        """Initial symbolic states (delay-closed, ``_mon`` = run time)."""
        state = self.explorer.initial_state()
        state = replace_zone(state, self.intern.intern(state.zone))
        return [state]

    # ------------------------------------------------------------------
    def precompile(self) -> dict:
        """Explore the monitor zone graph; warm and index every key.

        The walk runs on a *probe* twin of the session explorer whose
        ``_mon`` ceiling is 0: a free-running observation clock under
        the huge session ceiling would keep zones distinct forever,
        while ceiling 0 widens every ``_mon`` bound away immediately,
        making the probe graph isomorphic to the mon-less network's —
        finite, and an over-approximation of anything a session (whose
        pins only *restrict* behavior) can reach.  Every visited key
        warms the session explorer's plan partition and contributes
        its zone to the candidate index.  Returns (and remembers) a
        stats dict; ``complete=False`` means ``max_states`` cut the
        walk short — sessions still work, filling caches on demand.
        """
        probe = ZoneGraphExplorer(
            self.network,
            extra_max_constants={MON_CLOCK: 0},
            max_states=self.explorer.max_states,
            zone_backend=self.backend.name,
            abstraction=self.abstraction.name)
        seen: dict[tuple, list] = {}
        transitions = 0

        def visit(state) -> None:
            self.moves_for(state.key())
            seen.setdefault(state.key(), []).append(
                self.intern.intern(state.zone))

        try:
            result = probe.explore(visit=visit)
            states, transitions = result.visited, result.transitions
            complete = result.complete
        except ExplorationLimit:
            states = sum(len(zones) for zones in seen.values())
            complete = False
        self.index = {key: tuple(zones) for key, zones in seen.items()}
        self.precompile_stats = {
            "states": states,
            "transitions": transitions,
            "keys": len(self.index),
            "zones": len(self.intern),
            "complete": complete,
            "backend": self.backend.name,
            "abstraction": self.abstraction.name,
        }
        return self.precompile_stats

    def stats(self) -> dict:
        """Shape + cache statistics (service ``stats`` op, reports)."""
        return {
            "network": self.network.name,
            "clocks": self.compiled.n_clocks - 1,
            "backend": self.backend.name,
            "abstraction": self.abstraction.name,
            "input_channels": list(self.input_channels),
            "output_channels": list(self.output_channels),
            "keys_cached": len(self._moves),
            "intern": self.intern.stats(),
            "precompile": self.precompile_stats,
        }


def replace_zone(state, zone):
    """A :class:`SymbolicState` sharing ``state``'s discrete part."""
    from repro.mc.state import SymbolicState

    return SymbolicState(state.locs, state.vals, zone)
