"""One trace session: online matching of a timed event stream.

A :class:`MonitorSession` holds the *frontier* — every symbolic state
of the monitor network consistent with the events observed so far —
and advances it per observed event in two phases (the on-the-fly
subset construction of arXiv:1303.1010):

1. **Closure**: explore the internal (unobservable) moves reachable
   from the frontier, pruning any state whose observation clock can no
   longer be ≤ the event's gap (the event would already be overdue
   there).  Per-configuration inclusion subsumption keeps the closure
   finite and small.
2. **Match**: for every closure state, fire each move on the event's
   channel with the zone first pinned to ``_mon == gap`` and ``_mon``
   reset to 0 in the move's updates.  The surviving successors are the
   new frontier; an empty frontier means the trace deviated, and the
   closure states are handed to :mod:`repro.monitor.report` to compute
   when the event *would* have been admissible.

The plan pipeline below replays :meth:`ZoneGraphExplorer.successors`
op-for-op (same order, same kernels), so monitor zones are
bit-compatible with exploration zones — and with the vectorized
stepper in :mod:`repro.monitor.batch`, which runs the same sequence
through :class:`repro.zones.batch.BatchExpander`.
"""

from __future__ import annotations

from collections import deque

from repro.mc.state import SymbolicState
from repro.monitor.model import MonitorError, MonitorModel
from repro.monitor.report import DeviationReport, build_deviation
from repro.ta.model import ModelError
from repro.zones.bounds import LE_ZERO, bound_add, encode

__all__ = ["MonitorSession", "can_match_within", "pin_ops"]


def can_match_within(zone, mon_idx: int, gap_us: int) -> bool:
    """Can ``_mon`` still take the value ``gap_us`` in this zone?

    Mirrors the constrain kernel's emptiness test for the upcoming pin
    ``_mon ≤ gap``: the closure prunes states where the observed event
    would already be overdue.
    """
    return bound_add(zone.get(0, mon_idx),
                     encode(gap_us, True)) >= LE_ZERO


def pin_ops(mon_idx: int, gap_us: int) -> tuple:
    """Constrain ops for ``_mon == gap_us`` (applied before guards)."""
    return ((mon_idx, 0, encode(gap_us, True)),
            (0, mon_idx, encode(-gap_us, True)))


class MonitorSession:
    """Streaming conformance check of one trace against one model.

    Sessions are cheap (a frontier of a few zones plus counters); the
    model is shared and read-only.  ``requirement`` optionally names
    the paper requirement being monitored — ``(input_channel,
    output_channel, deadline_ms)`` — so deviation reports can attribute
    a late output to the measured end-to-end delay as well as to the
    model's admissible window.
    """

    __slots__ = ("model", "session_id", "frontier", "conforming",
                 "deviation", "last_time_us", "events_seen",
                 "events_observed", "history", "requirement",
                 "_scratch")

    def __init__(self, model: MonitorModel, *, session_id: int = 0,
                 requirement: tuple | None = None,
                 history: int = 64):
        self.model = model
        self.session_id = session_id
        self.frontier: list[SymbolicState] = model.initial_frontier()
        self.conforming = True
        self.deviation: DeviationReport | None = None
        self.last_time_us = 0
        self.events_seen = 0
        self.events_observed = 0
        self.history: deque = deque(maxlen=history)
        self.requirement = requirement
        self._scratch = None

    # ------------------------------------------------------------------
    def observe(self, event) -> bool:
        """Consume one :class:`~repro.sim.trace.TraceEvent`.

        Returns the session's conformance verdict so far.  Events of
        unobservable kinds/channels only bump the counter; a
        non-conforming session ignores further events (the first
        deviation is the verdict).
        """
        self.events_seen += 1
        if not self.conforming:
            return False
        if not self.model.observable(event.kind, event.channel):
            return True
        if event.time_us < self.last_time_us:
            raise MonitorError(
                f"trace time went backwards: {event.time_us} after "
                f"{self.last_time_us} (kind={event.kind!r}, "
                f"channel={event.channel!r})")
        gap_us = event.time_us - self.last_time_us
        self.events_observed += 1
        candidates = self._closure(gap_us)
        frontier = self._match(candidates, event, gap_us)
        self.history.append(event)
        if frontier:
            self.frontier = frontier
            self.last_time_us = event.time_us
            return True
        self.conforming = False
        self.deviation = build_deviation(self, event, gap_us, candidates)
        return False

    def feed(self, events) -> bool:
        """Consume an iterable of events; final conformance verdict."""
        for event in events:
            self.observe(event)
        return self.conforming

    # ------------------------------------------------------------------
    # Closure over internal moves
    # ------------------------------------------------------------------
    def _closure(self, gap_us: int) -> list[SymbolicState]:
        """States reachable via internal moves with ``_mon ≤ gap`` open."""
        mon = self.model.mon_idx
        passed: dict[tuple, list] = {}
        candidates: list[SymbolicState] = []
        queue: deque[SymbolicState] = deque()
        for state in self.frontier:
            if not can_match_within(state.zone, mon, gap_us):
                continue
            self._closure_insert(passed, candidates, queue, state)
        while queue:
            state = queue.popleft()
            for plan in self.model.moves_for(state.key()).internal:
                zone = self._run_internal(state.zone, plan, state)
                if zone is None:
                    continue
                if not can_match_within(zone, mon, gap_us):
                    continue
                self._closure_insert(
                    passed, candidates, queue,
                    SymbolicState(plan.locs, plan.vals, zone))
        return candidates

    @staticmethod
    def _closure_insert(passed, candidates, queue, state) -> bool:
        bucket = passed.get(state.key())
        if bucket is None:
            bucket = passed[state.key()] = []
        else:
            for stored in bucket:
                if stored.includes(state.zone):
                    return False
        bucket.append(state.zone)
        candidates.append(state)
        queue.append(state)
        return True

    # ------------------------------------------------------------------
    # Matching the observed event
    # ------------------------------------------------------------------
    def _match(self, candidates, event, gap_us: int) -> list[SymbolicState]:
        channel_idx = self.model.channel_index(event.channel)
        pins = pin_ops(self.model.mon_idx, gap_us)
        frontier: list[SymbolicState] = []
        seen: dict[tuple, list] = {}
        intern = self.model.intern
        for state in candidates:
            plans = self.model.moves_for(state.key()).observable
            for plan in plans.get(channel_idx, ()):
                zone = self._run_observable(state.zone, plan, pins, state)
                if zone is None:
                    continue
                zone = intern.intern(zone)
                bucket = seen.get((plan.locs, plan.vals))
                if bucket is None:
                    bucket = seen[(plan.locs, plan.vals)] = []
                elif any(stored.includes(zone) for stored in bucket):
                    continue
                bucket.append(zone)
                frontier.append(SymbolicState(plan.locs, plan.vals, zone))
        return frontier

    # ------------------------------------------------------------------
    # Plan pipelines (op-identical to ZoneGraphExplorer.successors)
    # ------------------------------------------------------------------
    def _scratch_from(self, src):
        scratch = self._scratch
        if scratch is None or scratch.size != src.size:
            scratch = self._scratch = src.copy()
        else:
            scratch.copy_from(src)
        return scratch

    def _run_internal(self, src, plan, state):
        scratch = self._scratch_from(src)
        if not scratch.constrain_all(plan.guard_ops):
            return None
        self._check_plan_error(plan, state)
        return self._finish_plan(scratch, plan, mon_reset=False)

    def _run_observable(self, src, plan, pins, state):
        scratch = self._scratch_from(src)
        if not scratch.constrain_all(pins):
            return None
        if not scratch.constrain_all(plan.guard_ops):
            return None
        self._check_plan_error(plan, state)
        return self._finish_plan(scratch, plan, mon_reset=True)

    def _check_plan_error(self, plan, state) -> None:
        if plan.error is not None:
            raise ModelError(
                f"{plan.error} (while firing {plan.label} from "
                f"{self.model.compiled.state_description(state)})"
            ) from plan.error

    def _finish_plan(self, scratch, plan, *, mon_reset: bool):
        for op in plan.zone_ops:
            if op[0] == "reset":
                scratch.reset(op[1], op[2])
            else:  # copy
                scratch.assign_clock(op[1], op[2])
        if mon_reset:
            scratch.reset(self.model.mon_idx, 0)
        if plan.free_clocks:
            scratch.free_many(plan.free_clocks)
        if not scratch.constrain_all(plan.invariant_ops):
            return None
        if plan.delay:
            scratch.up()
            scratch.constrain_all(plan.invariant_ops)
        if plan.lu is not None:
            scratch.extrapolate_lu(plan.lu[0], plan.lu[1])
        else:
            scratch.extrapolate_max(self.model.compiled.max_constants)
        if scratch.is_empty():
            return None
        return scratch.copy()

    # ------------------------------------------------------------------
    def verdict(self) -> dict:
        """Serializable outcome row (CLI/service/report surfaces)."""
        return {
            "session": self.session_id,
            "conforming": self.conforming,
            "events": self.events_seen,
            "observed": self.events_observed,
            "frontier": len(self.frontier),
            "deviation": (self.deviation.to_dict()
                          if self.deviation is not None else None),
        }
