"""Vectorized monitoring: advance many trace sessions per kernel call.

At traffic scale the monitor's cost is not the zone math but the
per-call dispatch around it: thousands of concurrent traces each
advance a small frontier through the same handful of memoized plans.
:class:`BatchMonitor` therefore steps all sessions *in lockstep*, the
way the sharded explorer batches a wave (:mod:`repro.mc.parallel`):

1. collect every (session, event) of the batch, fold unobservable
   events straight into the ``events_seen`` counters, and dedup lanes
   whose (frontier, gap, channel) signatures are identical — interned
   zones make the check an identity comparison, and duplicate lanes
   are the common case at traffic scale — then open each remaining
   representative's closure with its own gap;
2. per BFS generation, gather every (state, internal plan) task across
   *all* sessions, group the tasks by plan identity, stack the source
   zones ``(B, n, n)`` and run each plan once through the batched
   pipeline (:class:`~repro.zones.batch.BatchExpander`, or the native
   whole-plan kernel when the model compiled on that backend);
3. match phase: the same grouping over observable plans, with each
   lane pinned to its session's own gap via the per-lane
   :meth:`~repro.zones.batch.BatchExpander.constrain_each` kernel
   (pins differ per session, so the whole-plan native path does not
   apply — the numpy stage-by-stage pipeline runs it for both
   backends, whose bit-identity is already established).

Verdicts are bit-identical to feeding each session one event at a
time: tasks scatter back in (session, frontier order, plan order)
sequence — exactly the scalar session's loop order — and zone values
never depend on another lane, so subsumption and frontier contents
replay the sequential decisions verbatim.  Without numpy (or on the
reference backend) the class transparently falls back to scalar
per-session stepping.
"""

from __future__ import annotations

from repro.mc.state import SymbolicState
from repro.monitor.model import MonitorError, MonitorModel
from repro.monitor.report import build_deviation
from repro.monitor.session import MonitorSession
from repro.ta.model import ModelError
from repro.zones.bounds import LE_ZERO, bound_add, encode

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy-less fallback
    np = None

__all__ = ["BatchMonitor"]

#: Backends whose zones expose the stackable ``_m`` int64 matrix.
_BATCHED_BACKENDS = ("numpy", "native")


class _Step:
    """One session's in-flight work for the current event batch."""

    __slots__ = ("session", "event", "gap_us", "channel_idx",
                 "passed", "candidates", "queue", "frontier", "seen")

    def __init__(self, session, event, gap_us, channel_idx):
        self.session = session
        self.event = event
        self.gap_us = gap_us
        self.channel_idx = channel_idx
        self.passed: dict[tuple, list] = {}
        self.candidates: list = []
        self.queue: list = []
        self.frontier: list = []
        self.seen: dict[tuple, list] = {}


class BatchMonitor:
    """A pool of :class:`MonitorSession`\\ s stepped in lockstep.

    ``requirement`` and ``history`` are forwarded to every session
    (sessions of one pool typically watch the same scheme and paper
    requirement).  ``vectorized`` defaults to auto-detection: batched
    kernels when numpy is importable and the model compiled on a
    stackable backend, scalar per-session stepping otherwise; pass
    ``False`` to force the scalar path (the bit-identity tests do).
    """

    def __init__(self, model: MonitorModel, n_sessions: int, *,
                 requirement: tuple | None = None,
                 history: int = 64,
                 vectorized: bool | None = None):
        self.model = model
        self.sessions = [
            MonitorSession(model, session_id=i, requirement=requirement,
                           history=history)
            for i in range(n_sessions)]
        supported = (np is not None
                     and model.backend.name in _BATCHED_BACKENDS)
        if vectorized is None:
            vectorized = supported
        elif vectorized and not supported:
            raise MonitorError(
                "vectorized monitoring needs numpy and a numpy/native "
                f"zone backend (model compiled on "
                f"{model.backend.name!r})")
        self.vectorized = vectorized
        if vectorized:
            from repro.zones.batch import BatchExpander

            compiled = model.compiled
            self._pin_expander = BatchExpander(
                compiled.n_clocks, compiled.max_constants)
            if model.backend.name == "native":
                from repro.zones.dbm_native import NativeBatchExpander

                self._internal_expander = NativeBatchExpander(
                    compiled.n_clocks, compiled.max_constants)
            else:
                self._internal_expander = self._pin_expander
            self._dbm = model.explorer._dbm

    # ------------------------------------------------------------------
    @property
    def conforming(self) -> bool:
        return all(session.conforming for session in self.sessions)

    def verdicts(self) -> list[dict]:
        return [session.verdict() for session in self.sessions]

    # ------------------------------------------------------------------
    def feed(self, streams) -> bool:
        """Drive per-session event streams to exhaustion, in lockstep.

        ``streams[i]`` is session ``i``'s event iterable; each round
        takes the next event of every still-live stream and advances
        them as one batch.  Returns the pool-wide conformance verdict.

        Unobservable events — the overwhelming majority of a platform
        trace — only bump a session's ``events_seen`` counter (the
        contract of :meth:`MonitorSession.observe`), so they are
        folded into the counter here in one pass and never enter the
        batch rounds; verdicts and counters are identical to feeding
        every event through :meth:`observe_batch` one round at a time.
        """
        observable = self.model.observable
        live = {}
        for idx, stream in enumerate(streams):
            session = self.sessions[idx]
            kept = []
            for event in stream:
                if observable(event.kind, event.channel):
                    kept.append(event)
                else:
                    session.events_seen += 1
            if kept:
                live[idx] = iter(kept)
        while live:
            batch = []
            for idx in sorted(live):
                try:
                    batch.append((idx, next(live[idx])))
                except StopIteration:
                    del live[idx]
            if batch:
                self.observe_batch(batch)
        return self.conforming

    def observe_batch(self, events) -> None:
        """Consume ``(session_index, event)`` pairs, one batched step.

        At most one event per session per batch (the second event's
        closure depends on the first's frontier); :meth:`feed` slices
        streams accordingly.
        """
        events = list(events)
        if not self.vectorized:
            for idx, event in events:
                self.sessions[idx].observe(event)
            return
        steps: list[_Step] = []
        busy: set[int] = set()
        for idx, event in events:
            if idx in busy:
                raise MonitorError(
                    f"session {idx} appears twice in one batch; feed "
                    f"its events through consecutive batches")
            busy.add(idx)
            session = self.sessions[idx]
            session.events_seen += 1
            if not session.conforming:
                continue
            if not self.model.observable(event.kind, event.channel):
                continue
            if event.time_us < session.last_time_us:
                raise MonitorError(
                    f"trace time went backwards: {event.time_us} after "
                    f"{session.last_time_us} (kind={event.kind!r}, "
                    f"channel={event.channel!r})")
            steps.append(_Step(session, event,
                               event.time_us - session.last_time_us,
                               self.model.channel_index(event.channel)))
            session.events_observed += 1
        if steps:
            groups = self._dedup_lanes(steps)
            reps = [members[0] for members in groups]
            self._closure_wave(reps)
            self._match_wave(reps)
            for members in groups:
                rep = members[0]
                for twin in members[1:]:
                    twin.candidates = rep.candidates
                    twin.frontier = list(rep.frontier)
        for step in steps:
            session = step.session
            session.history.append(step.event)
            if step.frontier:
                session.frontier = step.frontier
                session.last_time_us = step.event.time_us
            else:
                session.conforming = False
                session.deviation = build_deviation(
                    session, step.event, step.gap_us, step.candidates)

    @staticmethod
    def _dedup_lanes(steps) -> list[list]:
        """Group steps doing provably identical work this round.

        A step's outcome is a pure function of (frontier, gap,
        channel): frontier zones are interned, so object identity
        certifies zone equality, and sessions whose lanes share the
        signature — common at traffic scale, where phase-anchored
        periodic systems quantize concurrent traces into a handful of
        protocol states — run the waves once and share the resulting
        (immutable) candidate and frontier states.  Copies are
        bit-identical by construction: same inputs through the same
        pure pipeline.
        """
        groups: dict[tuple, list] = {}
        for step in steps:
            signature = (step.gap_us, step.channel_idx,
                         tuple((s.locs, s.vals, id(s.zone))
                               for s in step.session.frontier))
            members = groups.get(signature)
            if members is None:
                groups[signature] = [step]
            else:
                members.append(step)
        return list(groups.values())

    # ------------------------------------------------------------------
    # Closure over internal moves, one generation per kernel wave
    # ------------------------------------------------------------------
    def _closure_wave(self, steps) -> None:
        mon = self.model.mon_idx
        moves_for = self.model.moves_for
        for step in steps:
            for state in step.session.frontier:
                if self._can_match(state.zone.get(0, mon), step.gap_us):
                    self._insert(step, state)
        while True:
            tasks: list = []
            for step in steps:
                generation, step.queue = step.queue, []
                for state in generation:
                    for plan in moves_for(state.key()).internal:
                        tasks.append((step, state, plan))
            if not tasks:
                return
            rows = self._run_groups(tasks, self._internal_expander)
            for (step, state, plan), row in zip(tasks, rows):
                if row is None:
                    continue
                if not self._can_match(int(row[0, mon]), step.gap_us):
                    continue
                self._insert(step, SymbolicState(
                    plan.locs, plan.vals, self._materialize(row)))

    @staticmethod
    def _can_match(mon_lower: int, gap_us: int) -> bool:
        """``can_match_within`` on a raw encoded ``D[0][mon]`` bound."""
        return bound_add(mon_lower, encode(gap_us, True)) >= LE_ZERO

    @staticmethod
    def _insert(step, state) -> None:
        """Replay of :meth:`MonitorSession._closure_insert`."""
        key = state.key()
        bucket = step.passed.get(key)
        if bucket is None:
            bucket = step.passed[key] = []
        else:
            for stored in bucket:
                if stored.includes(state.zone):
                    return
        bucket.append(state.zone)
        step.candidates.append(state)
        step.queue.append(state)

    # ------------------------------------------------------------------
    # Matching the observed events, pinned per lane
    # ------------------------------------------------------------------
    def _match_wave(self, steps) -> None:
        model = self.model
        tasks: list = []
        for step in steps:
            for state in step.candidates:
                plans = model.moves_for(state.key()).observable
                for plan in plans.get(step.channel_idx, ()):
                    tasks.append((step, state, plan))
        if not tasks:
            return
        rows = self._run_groups(tasks, None)
        intern = model.intern
        for (step, state, plan), row in zip(tasks, rows):
            if row is None:
                continue
            zone = intern.intern(self._materialize(row))
            key = (plan.locs, plan.vals)
            bucket = step.seen.get(key)
            if bucket is None:
                bucket = step.seen[key] = []
            elif any(stored.includes(zone) for stored in bucket):
                continue
            bucket.append(zone)
            step.frontier.append(
                SymbolicState(plan.locs, plan.vals, zone))

    # ------------------------------------------------------------------
    # Plan-grouped kernel waves
    # ------------------------------------------------------------------
    def _run_groups(self, tasks, expander) -> list:
        """Run every task's plan batched; result rows in task order.

        ``expander`` runs whole internal plans (``None`` selects the
        pinned observable pipeline).  Deferred plan errors raise for
        the globally first task whose guards survive, matching the
        scalar session's raise point.
        """
        groups: dict[int, list] = {}
        plans: dict[int, object] = {}
        for t, (_step, _state, plan) in enumerate(tasks):
            pid = id(plan)
            plans[pid] = plan
            groups.setdefault(pid, []).append(t)
        rows: list = [None] * len(tasks)
        first_error: tuple | None = None
        for pid, idxs in groups.items():
            plan = plans[pid]
            stack = np.stack([tasks[t][1].zone._m for t in idxs])
            if expander is not None:
                work, alive = expander.run_plan(stack, plan)
            else:
                work, alive = self._run_pinned(
                    stack, plan,
                    np.array([tasks[t][0].gap_us for t in idxs],
                             dtype=np.int64))
            if work is None:  # deferred range-check error plan
                for b, t in enumerate(idxs):
                    if alive[b]:
                        if first_error is None or t < first_error[0]:
                            first_error = (t, plan)
                        break  # idxs ascend: first live is smallest t
                continue
            for b, t in enumerate(idxs):
                if alive[b]:
                    rows[t] = work[b]
        if first_error is not None:
            t, plan = first_error
            step, state, _plan = tasks[t]
            raise ModelError(
                f"{plan.error} (while firing {plan.label} from "
                f"{self.model.compiled.state_description(state)})"
            ) from plan.error
        return rows

    def _run_pinned(self, stack, plan, gaps):
        """Observable pipeline with per-lane ``_mon == gap`` pins.

        Stage-for-stage replay of
        :meth:`MonitorSession._run_observable` through the numpy
        batch kernels: pin, guards, updates + ``_mon`` reset, frees,
        invariants, delay, extrapolation.
        """
        expander = self._pin_expander
        mon = self.model.mon_idx
        work = stack
        alive = np.ones(work.shape[0], dtype=bool)
        expander.constrain_each(work, alive, mon, 0, (gaps << 1) | 1)
        expander.constrain_each(work, alive, 0, mon, ((-gaps) << 1) | 1)
        dead = not alive.any()
        for i, j, bound in plan.guard_ops:
            if dead:
                return work, alive
            expander.constrain(work, alive, i, j, bound)
            dead = not alive.any()
        if plan.error is not None:
            return None, alive
        if dead:
            return work, alive
        for op in plan.zone_ops:
            if op[0] == "reset":
                expander.reset(work, op[1], op[2])
            else:  # copy
                expander.assign_clock(work, op[1], op[2])
        expander.reset(work, mon, 0)
        if plan.free_clocks:
            expander.free_many(work, plan.free_clocks)
        for i, j, bound in plan.invariant_ops:
            expander.constrain(work, alive, i, j, bound)
            if not alive.any():
                return work, alive
        if plan.delay:
            expander.up(work)
            for i, j, bound in plan.invariant_ops:
                expander.constrain(work, alive, i, j, bound)
        if plan.lu is not None:
            expander.extrapolate_lu(work, alive, plan.lu)
        else:
            expander.extrapolate_max(work, alive)
        return work, alive

    def _materialize(self, row):
        """A fresh backend zone adopting a batched result row."""
        dbm_cls = self._dbm
        zone = dbm_cls.__new__(dbm_cls)
        zone.size = self.model.compiled.n_clocks
        zone._m = row.copy()
        zone._empty = False
        zone._frozen = None
        return zone
