"""Deviation reports: *which* timing bound a trace broke, and by how much.

When a session's frontier empties, the closure states it died with
still encode everything the model would have allowed.  Re-running each
candidate move's guards *without* the ``_mon == gap`` pin leaves the
observation clock free, so its remaining bounds are exactly the
admissible firing window of that move — "the model admits
``c_StartInfusion`` between 2.1 ms and 500 ms after the previous
event".  The report collects these :class:`AdmissibleWindow`\\ s, the
distance from the observed gap to the nearest one (``delta_us`` — how
late or early the event was), and, when the session knows the paper
requirement it guards, the measured end-to-end delay of the failing
request as a :class:`~repro.analysis.delays.RequestTiming`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.delays import RequestTiming
from repro.zones.bounds import INF, bound_value

__all__ = ["AdmissibleWindow", "DeviationReport", "build_deviation"]

#: Cap on reported windows (closures can hold many equivalent moves).
MAX_WINDOWS = 8


@dataclass(frozen=True)
class AdmissibleWindow:
    """One candidate move's feasible ``_mon`` interval (µs)."""

    channel: str
    lo_us: int
    hi_us: int | None          # None = unbounded above
    lo_strict: bool = False
    hi_strict: bool = False
    move: str = ""             # transition label (diagnostics)

    def contains(self, gap_us: int) -> bool:
        if gap_us < self.lo_us or (gap_us == self.lo_us
                                   and self.lo_strict):
            return False
        if self.hi_us is None:
            return True
        return gap_us < self.hi_us or (gap_us == self.hi_us
                                       and not self.hi_strict)

    def describe(self) -> str:
        left = "(" if self.lo_strict else "["
        if self.hi_us is None:
            right = "∞)"
        else:
            right = f"{self.hi_us / 1000:g} ms" + \
                (")" if self.hi_strict else "]")
        return f"{left}{self.lo_us / 1000:g} ms, {right}"

    def to_dict(self) -> dict:
        return {"channel": self.channel, "lo_us": self.lo_us,
                "hi_us": self.hi_us, "lo_strict": self.lo_strict,
                "hi_strict": self.hi_strict, "move": self.move}


@dataclass
class DeviationReport:
    """Why a trace stopped conforming at one event."""

    session: int
    time_us: int
    kind: str
    channel: str
    #: Time since the previously matched event.
    gap_us: int
    #: Admissible windows of the event's channel across the closure
    #: (empty = the move was not enabled at all, regardless of time).
    windows: tuple[AdmissibleWindow, ...] = ()
    #: Signed distance to the nearest window: positive = the event
    #: came too late by that many µs, negative = too early.  ``None``
    #: when no window exists (non-timing deviation).
    delta_us: int | None = None
    #: Measured end-to-end timing of the failing request, when the
    #: session monitors a named requirement (input, output, deadline).
    measured: RequestTiming | None = None
    #: Deadline of the monitored requirement (ms), if known.
    deadline_ms: int | None = None
    #: Recently matched events leading up to the deviation.
    recent: tuple = field(default_factory=tuple)

    def describe(self) -> str:
        lines = [
            f"non-conforming at t={self.time_us / 1000:.3f} ms: "
            f"{self.kind} {self.channel} "
            f"({self.gap_us / 1000:.3f} ms after the previous event)"]
        if not self.windows:
            lines.append(
                f"  {self.channel} is not admissible in any model "
                f"state reachable here (untimed deviation)")
        else:
            for window in self.windows[:MAX_WINDOWS]:
                lines.append(
                    f"  model admits {self.channel} in "
                    f"{window.describe()} after the previous event"
                    + (f"  [{window.move}]" if window.move else ""))
            if self.delta_us is not None:
                how = ("late" if self.delta_us > 0 else "early")
                lines.append(
                    f"  violated bound: event {abs(self.delta_us) / 1000:.3f}"
                    f" ms too {how} for the nearest admissible window")
        if self.measured is not None and self.measured.mc_delay is not None:
            line = (f"  measured request delay: "
                    f"Δmc = {self.measured.mc_delay:.3f} ms")
            if self.deadline_ms is not None:
                line += f" (requirement deadline {self.deadline_ms} ms)"
            lines.append(line)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        measured = None
        if self.measured is not None:
            measured = {"tag": self.measured.tag,
                        "t_m_ms": self.measured.t_m,
                        "t_c_ms": self.measured.t_c,
                        "mc_delay_ms": self.measured.mc_delay}
        return {
            "session": self.session,
            "time_us": self.time_us,
            "kind": self.kind,
            "channel": self.channel,
            "gap_us": self.gap_us,
            "windows": [w.to_dict() for w in self.windows[:MAX_WINDOWS]],
            "delta_us": self.delta_us,
            "measured": measured,
            "deadline_ms": self.deadline_ms,
            "description": self.describe(),
        }


def admissible_windows(session, channel_idx: int,
                       candidates) -> list[AdmissibleWindow]:
    """Feasible ``_mon`` windows of a channel over closure states.

    Applies each candidate move's clock guards *without* the event
    pin; the observation clock's surviving bounds are the interval in
    which the model admits the move.
    """
    model = session.model
    mon = model.mon_idx
    names = {idx: name for name, idx in model._channel_index.items()}
    windows: list[AdmissibleWindow] = []
    seen: set[tuple] = set()
    for state in candidates:
        plans = model.moves_for(state.key()).observable
        for plan in plans.get(channel_idx, ()):
            scratch = state.zone.copy()
            if not scratch.constrain_all(plan.guard_ops):
                continue
            lower = scratch.get(0, mon)
            upper = scratch.get(mon, 0)
            lo_us = -bound_value(lower)
            hi_us = None if upper >= INF else bound_value(upper)
            window = AdmissibleWindow(
                channel=names.get(channel_idx, "?"),
                lo_us=lo_us, hi_us=hi_us,
                lo_strict=not (lower & 1),
                hi_strict=not (upper & 1) and upper < INF,
                move=plan.label)
            key = (window.lo_us, window.hi_us, window.lo_strict,
                   window.hi_strict)
            if key not in seen:
                seen.add(key)
                windows.append(window)
    return windows


def _nearest_delta(windows, gap_us: int) -> int | None:
    """Signed µs distance from ``gap_us`` to the closest window."""
    best: int | None = None
    for window in windows:
        if window.contains(gap_us):
            return 0
        if gap_us < window.lo_us:
            delta = gap_us - window.lo_us          # early: negative
        elif window.hi_us is not None:
            delta = gap_us - window.hi_us          # late: positive
        else:
            continue
        if best is None or abs(delta) < abs(best):
            best = delta
    return best


def _measured_timing(session, event) -> RequestTiming | None:
    """Δmc of the failing request, from the session's event history.

    Only meaningful when the session monitors a requirement and the
    failing event is that requirement's output: the most recent
    matched input event is the paper's ``t_m`` edge (REQ1 — one
    outstanding request), the failing event the would-be ``t_c``.
    """
    if session.requirement is None:
        return None
    input_channel, output_channel = session.requirement[:2]
    if event.kind != "c" or event.channel != output_channel:
        return None
    for past in reversed(session.history):
        if past.kind == "m" and past.channel == input_channel:
            return RequestTiming(
                tag=past.tag if past.tag is not None else -1,
                t_m=past.time_ms, t_c=event.time_ms)
    return None


def build_deviation(session, event, gap_us: int,
                    candidates) -> DeviationReport:
    """Assemble the report for a session's first non-conforming event."""
    model = session.model
    try:
        channel_idx = model.channel_index(event.channel)
    except KeyError:
        channel_idx = -1
    windows = admissible_windows(session, channel_idx, candidates)
    deadline_ms = None
    if session.requirement is not None and len(session.requirement) > 2:
        deadline_ms = session.requirement[2]
    return DeviationReport(
        session=session.session_id,
        time_us=event.time_us,
        kind=event.kind,
        channel=event.channel,
        gap_us=gap_us,
        windows=tuple(windows),
        delta_us=_nearest_delta(windows, gap_us),
        measured=_measured_timing(session, event),
        deadline_ms=deadline_ms,
        recent=tuple(session.history)[-8:],
    )
