"""``repro.api`` — the unified front door to the framework.

Every entry point in this repo — the verifier, the portfolio sweep,
the service daemon and the new conformance monitor — is configured by
the same four knobs (zone backend, abstraction, worker count, job
executor) plus the optional fault axes.  Historically each call site
threaded those knobs by hand (CLI flags → ``set_backend`` /
``set_default_jobs`` globals → per-function keyword arguments), which
meant every new entry point re-invented the resolution order.

:class:`Session` resolves the knobs **once**, at construction time,
with the canonical precedence *explicit argument > process override >
environment variable > default* (delegating to the existing
resolvers, which consult :mod:`repro.envvars`), and exposes the
verbs off that shared configuration::

    from repro.api import Session

    s = Session(backend="numpy", jobs=4)
    report = s.verify(pim, scheme, input_channel="m_BolusReq",
                      output_channel="c_StartInfusion",
                      deadline_ms=500)
    verdicts = s.monitor([trace], pim=pim, scheme=scheme)

A mis-set environment variable (say ``REPRO_JOBS=banana``) therefore
fails at ``Session(...)`` time with a targeted
:class:`~repro.envvars.EnvVarError`, not halfway through a long
verification run.

The old per-function knob-threading style keeps working through the
module-level :func:`verify` / :func:`portfolio` / :func:`monitor`
wrappers, which emit a :class:`DeprecationWarning` and build a
one-shot :class:`Session` internally.
"""

from __future__ import annotations

import warnings
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from repro.core.framework import (
    TimingVerificationFramework,
    VerificationReport,
)
from repro.mc.parallel import resolve_jobs
from repro.mc.portfolio import resolve_executor
from repro.ta.bounds import resolve_abstraction
from repro.zones import backend as _zone_backend
from repro.zones.backend import requested_backend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.monitor import MonitorModel
    from repro.service.client import ServiceClient

__all__ = [
    "Session",
    "verify",
    "portfolio",
    "monitor",
]

#: ``Session(faults=...)`` accepts the same axis names as the CLI
#: ``--faults`` flag (short spellings) or the scheme-factory keyword
#: names directly.
FAULT_AXES = {
    "k": "fault_k",
    "replicas": "fault_r",
    "jitter": "fault_eps",
    "fault_k": "fault_k",
    "fault_r": "fault_r",
    "fault_eps": "fault_eps",
}


def _normalize_faults(faults) -> dict[str, list[int]]:
    """Canonicalize a fault mapping to ``{axis: [values...]}``."""
    axes: dict[str, list[int]] = {}
    for key, value in dict(faults or {}).items():
        name = FAULT_AXES.get(key)
        if name is None:
            raise ValueError(
                f"unknown fault axis {key!r} (choose from: "
                f"{', '.join(sorted(set(FAULT_AXES)))})")
        values = list(value) if isinstance(value, (list, tuple)) \
            else [value]
        axes[name] = [int(v) for v in values]
    return axes


class Session:
    """One resolved configuration, many verification verbs.

    Parameters
    ----------
    backend:
        Zone-backend spec (``auto`` / ``reference`` / ``numpy`` /
        ``native``); ``None`` defers to ``set_backend`` /
        ``REPRO_ZONE_BACKEND`` / ``auto``.
    abstraction:
        Extrapolation operator (``extra_m`` / ``extra_lu``); ``None``
        defers to ``set_abstraction`` / ``REPRO_ABSTRACTION``.
    jobs:
        Worker count for the sharded explorer; ``None`` defers to
        ``set_default_jobs`` / ``REPRO_JOBS`` (and then means the
        sequential engine).
    executor:
        Portfolio job executor (``thread`` / ``process``); ``None``
        defers to ``REPRO_EXECUTOR`` / ``thread``.
    faults:
        Optional fault axes applied when call sites build schemes from
        this session (``{"k": 1}`` or sweeps ``{"k": [0, 1]}``); the
        keys accept both the CLI spellings and the scheme-factory
        keyword names.
    max_states:
        Symbolic-state budget for each verification obligation.
    monitor_max_states:
        Budget for :meth:`monitor` precompilation (monitor networks
        are one scheme each, so the default is smaller).
    """

    def __init__(self, *, backend: str | None = None,
                 abstraction: str | None = None,
                 jobs: int | None = None,
                 executor: str | None = None,
                 faults: Mapping | None = None,
                 max_states: int = 1_000_000,
                 monitor_max_states: int = 200_000):
        self.backend = requested_backend(backend)
        self.abstraction = resolve_abstraction(abstraction)
        self.jobs = resolve_jobs(jobs)
        self.executor = resolve_executor(executor)
        self.faults = _normalize_faults(faults)
        self.max_states = max_states
        self.monitor_max_states = monitor_max_states
        self._framework: TimingVerificationFramework | None = None
        self._monitor_models: dict[str, "MonitorModel"] = {}

    # -- introspection -------------------------------------------------
    def describe(self) -> dict:
        """The resolved configuration, JSON-friendly."""
        return {
            "backend": self.backend,
            "abstraction": self.abstraction.name,
            "jobs": self.jobs,
            "executor": self.executor,
            "faults": {k: list(v) for k, v in self.faults.items()},
            "max_states": self.max_states,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        knobs = ", ".join(f"{k}={v!r}"
                          for k, v in self.describe().items())
        return f"Session({knobs})"

    # -- fault-axis helpers --------------------------------------------
    def fault_values(self) -> dict[str, int]:
        """Scalar fault axes (the single-scheme ``verify`` shape)."""
        single = {}
        for name, values in self.faults.items():
            if len(values) != 1:
                raise ValueError(
                    f"verify takes one value per fault axis, got "
                    f"{name}={values} (sweeps belong to 'portfolio')")
            single[name] = values[0]
        return single

    def fault_axes(self) -> dict[str, list[int]]:
        """Fault axes as grid sweeps (the ``portfolio`` shape)."""
        return {name: list(values)
                for name, values in self.faults.items()}

    # -- knob application ----------------------------------------------
    @contextmanager
    def _applied(self):
        """Pin the session's backend for the duration of a call.

        The framework and the explorer resolve the zone backend
        through the process-wide spec; install this session's choice
        for the call and restore the previous override after, so
        concurrent code using a different ``Session`` (or none) is
        unaffected once the call returns.
        """
        previous = _zone_backend._forced
        _zone_backend.set_backend(self.backend)
        try:
            yield
        finally:
            _zone_backend._forced = previous

    @property
    def framework(self) -> TimingVerificationFramework:
        """The lazily-built engine behind :meth:`verify`."""
        if self._framework is None:
            self._framework = TimingVerificationFramework(
                max_states=self.max_states,
                jobs=self.jobs,
                abstraction=self.abstraction.name)
        return self._framework

    # -- the verbs -----------------------------------------------------
    def verify(self, pim, scheme, *, input_channel: str,
               output_channel: str, deadline_ms: int,
               **kwargs) -> VerificationReport:
        """Run the full pipeline on one (PIM, scheme) pair.

        Accepts the same keyword arguments as
        :meth:`~repro.core.framework.TimingVerificationFramework.verify`
        (``min_interarrival_ms``, ``measure_suprema``, ...).
        """
        with self._applied():
            return self.framework.verify(
                pim, scheme,
                input_channel=input_channel,
                output_channel=output_channel,
                deadline_ms=deadline_ms, **kwargs)

    def portfolio(self, pim, schemes, *, input_channel: str,
                  output_channel: str, deadline_ms: int,
                  executor: str | None = None, **kwargs):
        """Verify a scheme grid concurrently (design-space sweep).

        The session's resolved ``executor`` is the default; all other
        keyword arguments pass through to
        :meth:`~repro.core.framework.TimingVerificationFramework.verify_portfolio`.
        """
        with self._applied():
            return self.framework.verify_portfolio(
                pim, schemes,
                input_channel=input_channel,
                output_channel=output_channel,
                deadline_ms=deadline_ms,
                executor=executor if executor is not None
                else self.executor,
                **kwargs)

    # -- monitoring ----------------------------------------------------
    def monitor_model(self, *, pim=None, scheme=None, psm=None,
                      mon_ceiling_us: int | None = None
                      ) -> "MonitorModel":
        """A precompiled :class:`~repro.monitor.MonitorModel`.

        Models are cached on the session keyed by the canonical PSM
        digest, so repeated :meth:`monitor` calls against the same
        scheme skip the zone-graph precompilation.
        """
        from repro.monitor import MonitorModel
        from repro.ta.rename import canonical_network

        if psm is None:
            if pim is None or scheme is None:
                raise ValueError(
                    "monitor_model needs either psm= or both pim= "
                    "and scheme=")
            from repro.core.transform import transform
            psm = transform(pim, scheme)
        digest = canonical_network(psm.network).digest
        model = self._monitor_models.get(digest)
        if model is None:
            kwargs = {}
            if mon_ceiling_us is not None:
                kwargs["mon_ceiling_us"] = mon_ceiling_us
            with self._applied():
                model = MonitorModel(
                    psm,
                    abstraction=self.abstraction.name,
                    max_states=self.monitor_max_states, **kwargs)
                model.precompile()
            self._monitor_models[digest] = model
        return model

    def monitor(self, traces: Sequence[Iterable], *, pim=None,
                scheme=None, psm=None,
                requirement: tuple[str, str, int] | None = None,
                batch: bool = True) -> list[dict]:
        """Check recorded traces against a scheme's PSM.

        ``traces`` is a sequence of event streams (each an iterable of
        :class:`~repro.sim.trace.TraceEvent`).  Returns one verdict
        dict per trace, in order — see
        :meth:`repro.monitor.MonitorSession.verdict` for the shape.
        ``requirement`` optionally names ``(input_channel,
        output_channel, deadline_ms)`` so deviation reports can quote
        the measured end-to-end delay against the deadline.
        """
        from repro.monitor import BatchMonitor

        model = self.monitor_model(pim=pim, scheme=scheme, psm=psm)
        streams = [list(t) for t in traces]
        runner = BatchMonitor(model, len(streams),
                              requirement=requirement,
                              vectorized=None if batch else False)
        runner.feed(streams)
        return runner.verdicts()

    # -- service -------------------------------------------------------
    def serve_client(self, address: str, *,
                     timeout: float = 300.0) -> "ServiceClient":
        """A connected :class:`~repro.service.client.ServiceClient`.

        The caller owns the connection (use it as a context manager
        or call ``close()``).
        """
        from repro.service.client import ServiceClient

        client = ServiceClient(address, timeout=timeout)
        client.connect()
        return client


# ----------------------------------------------------------------------
# Legacy per-call knob threading (deprecated).
# ----------------------------------------------------------------------

def _legacy_session(**knobs) -> Session:
    warnings.warn(
        "per-call knob threading through repro.api module functions "
        "is deprecated; build a repro.api.Session once and call its "
        "methods instead",
        DeprecationWarning, stacklevel=3)
    return Session(**knobs)


def verify(pim, scheme, *, input_channel: str, output_channel: str,
           deadline_ms: int, backend: str | None = None,
           abstraction: str | None = None, jobs: int | None = None,
           max_states: int = 1_000_000,
           **kwargs) -> VerificationReport:
    """Deprecated one-shot wrapper — use :meth:`Session.verify`."""
    session = _legacy_session(backend=backend, abstraction=abstraction,
                              jobs=jobs, max_states=max_states)
    return session.verify(pim, scheme, input_channel=input_channel,
                          output_channel=output_channel,
                          deadline_ms=deadline_ms, **kwargs)


def portfolio(pim, schemes, *, input_channel: str,
              output_channel: str, deadline_ms: int,
              backend: str | None = None,
              abstraction: str | None = None,
              jobs: int | None = None, executor: str | None = None,
              max_states: int = 1_000_000, **kwargs):
    """Deprecated one-shot wrapper — use :meth:`Session.portfolio`."""
    session = _legacy_session(backend=backend, abstraction=abstraction,
                              jobs=jobs, executor=executor,
                              max_states=max_states)
    return session.portfolio(pim, schemes,
                             input_channel=input_channel,
                             output_channel=output_channel,
                             deadline_ms=deadline_ms, **kwargs)


def monitor(traces, *, pim=None, scheme=None, psm=None,
            requirement: tuple[str, str, int] | None = None,
            backend: str | None = None,
            abstraction: str | None = None,
            max_states: int = 200_000, batch: bool = True) -> list[dict]:
    """Deprecated one-shot wrapper — use :meth:`Session.monitor`."""
    session = _legacy_session(backend=backend,
                              abstraction=abstraction,
                              monitor_max_states=max_states)
    return session.monitor(traces, pim=pim, scheme=scheme, psm=psm,
                           requirement=requirement, batch=batch)
