"""Environment actors driving an implemented system.

Two drivers:

* :class:`PatternEnvironment` replays an arrival pattern open-loop and
  records the ``c`` actuations it observes — enough for Fig. 3-style
  scenarios and the stress tests behind Constraints 2/3.
* :class:`ClosedLoopRequester` reproduces the paper's case-study
  protocol: press the bolus button, wait for the infusion to start,
  pause a random think-time, press again — 60 times.  One request is
  outstanding at a time, matching the assumption under which the
  instrumented-observer delay equals the per-request delay.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.envs.patterns import Arrival
from repro.platforms.system import ImplementedSystem
from repro.sim.engine import ms_to_us, us_to_ms

__all__ = ["Observation", "PatternEnvironment", "ClosedLoopRequester"]


@dataclass(frozen=True)
class Observation:
    """One observed actuation at the mc-boundary."""

    time_ms: float
    channel: str
    tag: int


@dataclass
class PatternEnvironment:
    """Replays arrivals; passively records actuations."""

    system: ImplementedSystem
    observations: list[Observation] = field(default_factory=list)
    _tags: itertools.count = field(default_factory=lambda:
                                   itertools.count(1))

    def __post_init__(self) -> None:
        self.system.attach_observer(self._on_actuate)

    def schedule(self, pattern) -> list[int]:
        """Queue every arrival of ``pattern``; returns the tags used."""
        tags = []
        for arrival in pattern:
            tag = next(self._tags)
            tags.append(tag)
            self._press_at(arrival, tag)
        return tags

    def _press_at(self, arrival: Arrival, tag: int) -> None:
        sim = self.system.sim
        sim.schedule_at(
            max(sim.now, ms_to_us(arrival.time_ms)),
            lambda: self.system.signal_input(arrival.channel, tag),
            label=f"env:{arrival.channel}")

    def _on_actuate(self, channel: str, tag: int) -> None:
        self.observations.append(Observation(
            us_to_ms(self.system.sim.now), channel, tag))


class ClosedLoopRequester:
    """Press → await response → think → press again (case study).

    ``think_ms`` draws uniformly from [lo, hi] on the system's RNG
    stream ``"env:think"``; a ``timeout_ms`` guards against a lost
    response wedging the scenario (timed-out requests are recorded and
    the loop continues).
    """

    def __init__(self, system: ImplementedSystem, request_channel: str,
                 response_channel: str, count: int,
                 think_ms: tuple[int, int] = (2000, 4000),
                 timeout_ms: int = 10_000,
                 first_press_ms: int = 50):
        self.system = system
        self.request_channel = request_channel
        self.response_channel = response_channel
        self.count = count
        self.think_ms = think_ms
        self.timeout_ms = timeout_ms
        self.first_press_ms = first_press_ms
        self.requests_made = 0
        self.responses_seen = 0
        self.timeouts = 0
        self.observations: list[Observation] = []
        self._awaiting = False
        self._timeout_handle = None
        system.attach_observer(self._on_actuate)

    # ------------------------------------------------------------------
    def start(self) -> None:
        self.system.sim.schedule(ms_to_us(self.first_press_ms),
                                 self._press, label="env:first-press")

    def _press(self) -> None:
        if self.requests_made >= self.count:
            return
        self.requests_made += 1
        self._awaiting = True
        self.system.signal_input(self.request_channel, self.requests_made)
        self._timeout_handle = self.system.sim.schedule(
            ms_to_us(self.timeout_ms), self._on_timeout,
            label="env:timeout")

    def _on_actuate(self, channel: str, tag: int) -> None:
        self.observations.append(Observation(
            us_to_ms(self.system.sim.now), channel, tag))
        if channel != self.response_channel or not self._awaiting:
            return
        self._awaiting = False
        self.responses_seen += 1
        if self._timeout_handle is not None:
            self._timeout_handle.cancel()
        self._schedule_next()

    def _on_timeout(self) -> None:
        if not self._awaiting:
            return
        self._awaiting = False
        self.timeouts += 1
        self._schedule_next()

    def _schedule_next(self) -> None:
        if self.requests_made >= self.count:
            return
        think = self.system.rng.uniform_int(
            "env:think", ms_to_us(self.think_ms[0]),
            ms_to_us(self.think_ms[1]))
        self.system.sim.schedule(think, self._press, label="env:think")

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return (self.requests_made >= self.count
                and not self._awaiting)
