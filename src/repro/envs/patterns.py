"""Input arrival patterns for environment simulation.

A pattern yields ``(time_ms, channel)`` pairs in nondecreasing time
order.  Three generators cover the paper's needs: scripted event lists
(the Fig. 3 scenario), periodic arrivals, and random arrivals with a
minimum inter-arrival gap (the quantity Constraint 1 compares against
the input processing delay).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Sequence

__all__ = [
    "Arrival",
    "ScriptedPattern",
    "PeriodicPattern",
    "RandomPattern",
]


@dataclass(frozen=True)
class Arrival:
    """One environmental stimulus."""

    time_ms: float
    channel: str


class ScriptedPattern:
    """Fixed list of arrivals (validated to be time-ordered)."""

    def __init__(self, arrivals: Sequence[tuple[float, str]]):
        events = [Arrival(t, ch) for t, ch in arrivals]
        for earlier, later in zip(events, events[1:]):
            if later.time_ms < earlier.time_ms:
                raise ValueError(
                    f"scripted pattern not time-ordered at "
                    f"{later.time_ms} < {earlier.time_ms}")
        self._events = events

    def __iter__(self) -> Iterator[Arrival]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)


class PeriodicPattern:
    """``count`` arrivals every ``period_ms`` starting at ``offset_ms``."""

    def __init__(self, channel: str, count: int, period_ms: float,
                 offset_ms: float = 0.0):
        if count < 0 or period_ms <= 0:
            raise ValueError("need count >= 0 and period > 0")
        self.channel = channel
        self.count = count
        self.period_ms = period_ms
        self.offset_ms = offset_ms

    def __iter__(self) -> Iterator[Arrival]:
        for k in range(self.count):
            yield Arrival(self.offset_ms + k * self.period_ms,
                          self.channel)

    def __len__(self) -> int:
        return self.count


class RandomPattern:
    """Random arrivals with inter-arrival gaps in [gap_min, gap_max].

    The generator takes its own ``random.Random`` so experiment seeds
    stay reproducible (see :class:`repro.sim.rng.RandomStreams`).
    """

    def __init__(self, channel: str, count: int, gap_min_ms: float,
                 gap_max_ms: float, rng: random.Random,
                 offset_ms: float = 0.0):
        if gap_min_ms < 0 or gap_max_ms < gap_min_ms:
            raise ValueError("need 0 <= gap_min <= gap_max")
        self.channel = channel
        self.count = count
        self.gap_min_ms = gap_min_ms
        self.gap_max_ms = gap_max_ms
        self.rng = rng
        self.offset_ms = offset_ms

    def __iter__(self) -> Iterator[Arrival]:
        t = self.offset_ms
        for _ in range(self.count):
            t += self.rng.uniform(self.gap_min_ms, self.gap_max_ms)
            yield Arrival(t, self.channel)

    def __len__(self) -> int:
        return self.count
