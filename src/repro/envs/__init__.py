"""Environment simulation: arrival patterns and closed-loop actors."""

from repro.envs.environment import (
    ClosedLoopRequester,
    Observation,
    PatternEnvironment,
)
from repro.envs.patterns import (
    Arrival,
    PeriodicPattern,
    RandomPattern,
    ScriptedPattern,
)

__all__ = [
    "Arrival",
    "ClosedLoopRequester",
    "Observation",
    "PatternEnvironment",
    "PeriodicPattern",
    "RandomPattern",
    "ScriptedPattern",
]
